(* Fault injection and graceful degradation.

   What happens when the shipped plan file is corrupted in transit, or
   when the reconfiguration hardware itself misbehaves? This example
   walks the failure modes one at a time:

   1. a corrupted plan file is loaded through the validating loader —
      fatal corruption is rejected with typed diagnostics (and the
      machine would run the full-speed baseline), while near-miss
      corruption is repaired with warnings;
   2. a broken run-time policy (here: one that raises) is wrapped in the
      degradation guard, which swallows the fault and falls back to the
      full-speed baseline mid-run;
   3. a domain with a stuck frequency is injected into the hardware
      model, and the guard's watchdog detects that its writes are being
      ignored.

     dune exec examples/fault_injection.exe *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Analyze = Mcd_core.Analyze
module Plan_io = Mcd_core.Plan_io
module Editor = Mcd_core.Editor
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Controller = Mcd_cpu.Controller
module Metrics = Mcd_power.Metrics
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Dvfs = Mcd_domains.Dvfs
module Rng = Mcd_util.Rng
module Error = Mcd_robust.Error
module Inject = Mcd_robust.Inject
module Degrade = Mcd_robust.Degrade

let run_reference (w : Workload.t) ?(dvfs_faults = []) controller =
  Pipeline.run ?controller ~dvfs_faults ~config:Config.alpha21264_like
    ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
    ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()

let () =
  let w = Suite.by_name "gsm encode" in
  let rng = Rng.create 2003 in
  let plan, _ =
    Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
      ~context:Context.lf ~trace_insts:w.Workload.train_window ()
  in
  let baseline = run_reference w None in

  (* --- 1. artifact corruption -------------------------------------- *)
  print_endline "== corrupting the shipped plan file ==";
  List.iter
    (fun ff ->
      let path = Filename.temp_file "fault_injection" ".plan" in
      Plan_io.save plan ~path;
      Inject.corrupt_file ff ~rng ~path;
      (match Plan_io.load_result ~path ~tree:plan.Mcd_core.Plan.tree with
      | Error errors ->
          Printf.printf "%-18s rejected -> full-speed baseline\n"
            (Inject.name (Inject.File ff));
          List.iter
            (fun e -> Printf.printf "    %s\n" (Error.to_string e))
            errors
      | Ok { Plan_io.plan = repaired; warnings } ->
          Printf.printf "%-18s loaded with %d repair(s)\n"
            (Inject.name (Inject.File ff))
            (List.length warnings);
          List.iter
            (fun e -> Printf.printf "    %s\n" (Error.to_string e))
            warnings;
          ignore (Editor.edit repaired));
      Sys.remove path)
    [ Inject.Truncate; Inject.Mutate_frequency; Inject.Stale_fingerprint ];

  (* --- 2. a policy that crashes mid-run ----------------------------- *)
  print_endline "\n== a run-time policy that raises ==";
  let raising =
    {
      Controller.name = "sabotaged";
      on_marker = (fun _ ~now:_ -> failwith "corrupt frequency table");
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  let counters = Degrade.counters () in
  let run = run_reference w (Some (Degrade.guard ~counters raising)) in
  Printf.printf "guarded run completed: %.1f%% slowdown vs baseline, %s\n"
    (Metrics.perf_degradation_pct ~baseline run)
    (Format.asprintf "%a" Degrade.pp_counters counters);

  (* --- 3. a stuck hardware domain ----------------------------------- *)
  print_endline "\n== a domain whose frequency is stuck ==";
  let edited = Editor.edit plan in
  let counters = Degrade.counters () in
  let guarded = Degrade.guard ~counters edited.Editor.controller in
  let stuck = [ Dvfs.Stuck_at (Domain.Integer, Freq.fmin_mhz) ] in
  let run = run_reference w ~dvfs_faults:stuck (Some guarded) in
  Printf.printf
    "integer domain stuck at %d MHz: %.1f%% slowdown vs baseline, %s\n"
    Freq.fmin_mhz
    (Metrics.perf_degradation_pct ~baseline run)
    (Format.asprintf "%a" Degrade.pp_counters counters)
