(** Primitive-event collection for the off-line analysis (phase 2).

    The collector is attached to a full-speed profiling run of the
    pipeline as a {!Mcd_cpu.Probe.t}. Markers drive a {!Mcd_profiling.Tracker}
    over the training call tree; the dynamic instruction stream is
    thereby partitioned into intervals, each attributed to the innermost
    long-running node active at that point (or to no node). Events are
    filed to the interval containing their instruction, so a node's
    recorded segments contain its own work but not the work of
    long-running descendants — which are scaled independently.

    To bound memory, only the first [max_segments_per_node] intervals of
    each node are recorded, and a segment stops growing at
    [max_events_per_segment] events; both caps echo the paper's
    combining of (a sample of) dynamic instances. *)

type t

val create :
  tree:Mcd_profiling.Call_tree.t ->
  ?max_segments_per_node:int ->
  ?max_events_per_segment:int ->
  unit ->
  t
(** Defaults: 4 segments per node, 200_000 events per segment. *)

val probe : t -> Mcd_cpu.Probe.t

val segments : t -> (int * Mcd_cpu.Probe.event array list) list
(** [(node_id, segments)] for every long-running node that was entered
    at least once, in tree order. Each segment's events are sorted by
    instruction sequence number and stage. *)

val intervals_seen : t -> int
(** Total attribution intervals opened (including discarded ones). *)
