(** The policy zoo: every DVFS policy the repo knows, on one registry.

    Each entry is a {!Policy.t} — a factory plus identity — so callers
    get a fresh controller per run and a canonical cache-key fragment
    per parameterisation. The registry feeds the tournament experiment
    and the CLI's [--policy] flag. *)

val baseline : Policy.t
(** The MCD baseline: all domains at full speed, no reactions. *)

val fixed : ?label:string -> Mcd_domains.Reconfig.setting -> Policy.t
(** Write the setting once, at the first marker, then never react.
    The one-shot arming flag is allocated inside [create], so every
    run of the same policy value fires. *)

(** {1 Utilization-proportional} *)

type util_prop_params = {
  interval_cycles : int;  (** sampling interval, front-end cycles *)
  ewma : float;  (** smoothing weight on the newest utilisation *)
  cooldown : int;  (** min sample intervals between writes per domain *)
}

val util_prop_default : util_prop_params
val util_prop_params_id : util_prop_params -> string list

val util_prop_controller :
  ?params:util_prop_params -> ?sink:Mcd_obs.Sink.t -> unit ->
  Mcd_cpu.Controller.t
(** Fresh single-use controller; prefer {!util_prop}. *)

val util_prop : ?label:string -> ?params:util_prop_params -> unit -> Policy.t
(** [f = f_min + (f_max - f_min) * U] on the smoothed per-domain queue
    utilisation. Named ["util-prop"]; feedback. *)

(** {1 Attack/decay parameterisations} *)

val online :
  ?label:string -> ?params:Attack_decay.params -> unit -> Policy.t
(** {!Attack_decay.policy}, re-exported as the registry's default
    on-line contender. *)

val eager_params : Attack_decay.params
(** Twitchier attack threshold, double decay step, looser IPC guard. *)

val online_eager : unit -> Policy.t
(** The attack/decay policy at {!eager_params}, labelled
    ["online-eager"]. Same [name] as {!online}, different [params] —
    the two must (and do) key separately in the cache. *)

(** {1 Registry} *)

val all : unit -> Policy.t list
(** Every registered policy, baseline first. Labels are unique. *)

val contenders : unit -> Policy.t list
(** {!all} minus the baseline: the policies worth racing. *)

val adversaries : unit -> Policy.t list
(** The attack/decay family ({!online}, {!online_eager}): the reactive
    rivals the generative property campaign
    ({!Mcd_experiments.Campaign}) hunts counterexamples against. *)

val by_name : string -> Policy.t option
(** Look a policy up by its registry label (see {!Policy.id}). *)

val names : unit -> string list
(** Registry labels, in {!all} order. *)
