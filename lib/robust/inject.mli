(** Deterministic fault injection for the profile→edit→run pipeline.

    Each fault is a named, enumerable variant, and every stochastic
    choice (which byte to flip, which field to mutate, which domain to
    pin) draws from an {!Mcd_util.Rng} stream, so a campaign run with a
    given seed is bit-reproducible.

    Faults come in three layers. {e Artifact faults} corrupt a saved
    plan file on disk — what happens when a shipped profile is
    truncated in transit, bit-rotted, or simply stale. {e Runtime
    faults} corrupt the machine's reconfiguration behaviour — a domain
    whose frequency is stuck, register writes that are silently lost, a
    voltage ramp that never completes. {e Serve faults} attack the
    experiment daemon's crash-safety machinery — a worker that dies
    mid-compute, a journal append torn by the crash, a socket severed
    mid-payload, a compute that outruns every deadline. Serve faults
    are driven against a live server by the chaos harness
    ([tools/chaos_smoke.ml]) and are deliberately {e not} part of
    {!all}, so the workload robustness campaign keeps its
    eight-fault-per-cell semantics. *)

type file_fault =
  | Truncate  (** drop the tail of the file *)
  | Bit_flip  (** flip one random bit somewhere in the file *)
  | Mutate_frequency
      (** rewrite one frequency field of a node/unit setting to a
          corrupt value (out of range or off the legal grid) *)
  | Stale_fingerprint
      (** replace the tree fingerprint, modelling a plan trained on an
          older build of the program *)
  | Drop_lines  (** delete random interior lines (lost trace events) *)

type runtime_fault =
  | Stuck_domain
      (** one domain is pinned at a random legal frequency and ignores
          every reconfiguration write *)
  | Lost_writes
      (** each reconfiguration-register write is silently dropped with
          probability 1/2 *)
  | Frozen_slew
      (** one domain accepts targets but its ramp never moves *)

type serve_fault =
  | Worker_crash
      (** the worker's whole process dies mid-compute (SIGKILL-like);
          the job stays incomplete in the journal and must be replayed
          — contrast a raising compute, which fails the job terminally *)
  | Torn_journal
      (** a journal append is cut short by the crash, leaving a partial
          record that recovery must drop silently *)
  | Socket_drop
      (** the server dies between ack and payload, severing every
          connection mid-exchange; clients must reconnect and refetch *)
  | Delayed_completion
      (** a compute sleeps far past the per-job deadline, exercising
          the stuck-worker watchdog *)

type fault =
  | File of file_fault
  | Runtime of runtime_fault
  | Serve of serve_fault

val all : fault list
(** Every file and runtime fault class, in a fixed order — the
    robustness campaign grid. Serve faults are not included; see
    {!serve_all}. *)

val serve_all : fault list
(** Every serve fault class, in a fixed order. *)

val name : fault -> string

val of_name : string -> fault option
(** Resolves every fault in [all @ serve_all]. *)

val names : string list
(** Names of [all @ serve_all]. *)

val corrupt_file : file_fault -> rng:Mcd_util.Rng.t -> path:string -> unit
(** Corrupt the plan file at [path] in place. When a fault has no
    applicable site (e.g. [Mutate_frequency] on a plan with no
    settings), it degenerates to [Bit_flip] so the file is always
    actually corrupted. *)

val dvfs_faults :
  runtime_fault -> rng:Mcd_util.Rng.t -> Mcd_domains.Dvfs.fault list
(** The hardware faults to pass to {!Mcd_cpu.Pipeline.run} for
    [Stuck_domain] and [Frozen_slew]; empty for [Lost_writes]. *)

val harness :
  runtime_fault -> rng:Mcd_util.Rng.t -> Mcd_cpu.Controller.t ->
  Mcd_cpu.Controller.t
(** Interpose the fault between a policy and the reconfiguration
    register: under [Lost_writes], settings emitted by the policy are
    dropped with probability 1/2 before they reach the hardware. The
    other runtime faults live in the hardware model and leave the
    controller untouched. *)

(** {2 Serve-fault mechanisms}

    Building blocks the chaos harness composes around a server's
    [compute] seam or journal file. [Socket_drop] has no combinator —
    its mechanism {e is} the harness's [SIGKILL] of a server with
    clients parked mid-exchange. *)

val crash_compute : ?after_s:float -> unit -> 'a -> 'b
(** A compute that sleeps [after_s] (default 0) and then kills the
    whole process with [Unix._exit 9] — [Worker_crash]. Never
    returns. *)

val delay_compute :
  rng:Mcd_util.Rng.t -> max_delay_s:float -> ('a -> 'b) -> 'a -> 'b
(** Sleep a uniform draw from [0, max_delay_s) before computing —
    [Delayed_completion]. *)

val tear_file : rng:Mcd_util.Rng.t -> path:string -> unit
(** Cut 1–80 bytes off the file's tail in place — [Torn_journal], a
    crash mid-append. No-op on an empty file. *)
