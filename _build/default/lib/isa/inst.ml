type iclass =
  | Int_alu
  | Int_mult
  | Fp_alu
  | Fp_mult
  | Load
  | Store
  | Branch

let iclass_to_string = function
  | Int_alu -> "int_alu"
  | Int_mult -> "int_mult"
  | Fp_alu -> "fp_alu"
  | Fp_mult -> "fp_mult"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"

let num_logical_regs = 64
let is_fp_reg r = r >= 32
let no_reg = -1

type dyn = {
  seq : int;
  static_id : int;
  klass : iclass;
  srcs : int array;
  dst : int;
  addr : int;
  taken : bool;
}

let pp_dyn fmt d =
  Format.fprintf fmt "#%d pc=%d %s dst=%d srcs=[%s]" d.seq d.static_id
    (iclass_to_string d.klass) d.dst
    (String.concat "," (Array.to_list (Array.map string_of_int d.srcs)));
  if d.addr >= 0 then Format.fprintf fmt " addr=%d" d.addr;
  if d.klass = Branch then Format.fprintf fmt " taken=%b" d.taken
