lib/core/threshold.mli: Mcd_domains Mcd_util
