lib/mcd/freq.mli:
