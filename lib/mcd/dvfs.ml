module Time = Mcd_util.Time

type dstate = {
  mutable current : float; (* MHz *)
  mutable target : float;
  mutable last : Time.t;
  mutable stuck : bool; (* ignores set_target entirely *)
  mutable frozen : bool; (* accepts targets but the ramp never moves *)
}

type t = { domains : dstate array }

type fault = Stuck_at of Domain.t * int | Frozen_slew of Domain.t

let slew_ns_per_mhz = 73.3

let create () =
  {
    domains =
      Array.init Domain.count (fun _ ->
          {
            current = float_of_int Freq.fmax_mhz;
            target = float_of_int Freq.fmax_mhz;
            last = Time.zero;
            stuck = false;
            frozen = false;
          });
  }

(* Queries at times earlier than the last observation (e.g. projecting
   the arrival of a result produced in the past) answer with the current
   operating point rather than rewinding the ramp. *)
let advance ds ~now =
  if now > ds.last && ds.current <> ds.target && not ds.frozen then begin
    let elapsed_ns = Time.to_ns (now - ds.last) in
    let delta_mhz = elapsed_ns /. slew_ns_per_mhz in
    (* Snap exactly onto the target the moment the ramp reaches (or
       overshoots) it, rather than relying on min/max clamping to make
       the float equality in [in_transition] come out true. The slew
       arithmetic must terminate for any interleaving of queries. *)
    if Float.abs (ds.target -. ds.current) <= delta_mhz then
      ds.current <- ds.target
    else if ds.current < ds.target then
      ds.current <- ds.current +. delta_mhz
    else ds.current <- ds.current -. delta_mhz
  end;
  if now > ds.last then ds.last <- now

let set_target ?on_snap ?sink t domain ~now ~mhz =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  let snapped = Freq.clamp mhz in
  if snapped <> mhz then
    Option.iter (fun f -> f ~requested:mhz ~snapped) on_snap;
  if not ds.stuck then begin
    let before = int_of_float ds.target in
    ds.target <- float_of_int snapped;
    if snapped <> before then
      match sink with
      | None -> ()
      | Some s ->
          Mcd_obs.Sink.dvfs_retarget s ~t_ps:now ~domain:(Domain.index domain)
            ~before ~after:snapped
  end

let force t domain ~mhz =
  let ds = t.domains.(Domain.index domain) in
  let f = float_of_int (Freq.clamp mhz) in
  ds.current <- f;
  ds.target <- f

let inject t = function
  | Stuck_at (domain, mhz) ->
      let ds = t.domains.(Domain.index domain) in
      let f = float_of_int (Freq.clamp mhz) in
      ds.current <- f;
      ds.target <- f;
      ds.stuck <- true
  | Frozen_slew domain -> t.domains.(Domain.index domain).frozen <- true

let target_mhz t domain =
  int_of_float t.domains.(Domain.index domain).target

let current_mhz t domain ~now =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  ds.current

let voltage t domain ~now = Freq.voltage_f (current_mhz t domain ~now)
let energy_scale t domain ~now = Freq.energy_scale (current_mhz t domain ~now)

let in_transition t domain ~now =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  ds.current <> ds.target
