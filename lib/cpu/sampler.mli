(** Phase-sampled simulation: representative-instance memoization of
    repeating call-tree phases inside one pipeline run.

    The walker's marker stream exposes exactly the phase structure the
    profiler counts (function and loop instances). When the same node
    runs many times — a codec step called per frame, an inner loop per
    outer iteration — a cycle-accurate simulation of every instance
    mostly re-derives the same numbers. The sampler watches the marker
    stream during a run, and for each long-running node simulates one
    representative instance per {e signature} — (node, per-domain DVFS
    target vector) — exactly, then answers the remaining instances
    from the recorded measure: the pipeline fast-forwards the walker
    across the instance and extrapolates cycles, energy and the
    synchronization counters instead of executing it. Promotion is
    optimistic (the first recording already serves skips) with
    deferred verification: a measure is only trusted while the run is
    less than twice the measure's age, past which the next instance
    re-records and the fresh recording must agree with the old one
    within [tolerance] — so every measure is re-verified against an
    independent instance within one epoch doubling, and a cold-start
    measure (recorded when the run was young) is replaced almost
    immediately by a warmed-up one. Skips are bounded by the same
    horizon: an extrapolation can never outlive the measure serving
    it.

    Measurements are only attributable when the machine is empty, so
    the pipeline drains (stops fetching until the ROB and fetch buffer
    are empty) before recording or skipping an instance; the instance's
    own Enter/Exit markers are always processed normally (controller
    reactions, reconfiguration writes, probe callbacks), keeping the
    editor's balanced save/restore stacks exact — only the balanced
    interior of the instance is fast-forwarded. A signature whose
    verification instances disagree beyond [tolerance] is marked
    unstable and simulated exactly forever after.

    Node instances are not the only repetition in a run: a long loop
    executed once still repeats at its {e iteration} boundaries, which
    the walker exposes as loop back-edge branches
    ({!Mcd_isa.Walker.as_loop_branch}). For loops past [min_insts]
    whose iterations are individually small, the sampler additionally
    records {e batches} of iterations (at least [min_insts]
    instructions, ending on a boundary), keyed by position inside the
    loop execution quantised to [min_insts]-sized buckets — iteration
    cost is not position-invariant (a loop's first iterations re-fill
    the caches its phase siblings evicted), so each extrapolation must
    come from a position-matched measure. Skips are bounded at the
    next bucket edge, where that bucket's measure takes over; the tail
    bucket runs to the end of the loop. This is the mechanism that
    samples iteration-heavy kernels whose enclosing node runs only
    once. During a skip the swallowed instructions still warm the
    caches and the branch predictor functionally (tags, LRU and
    history update; no timing, no energy), so the phase that follows a
    skip meets the machine state the exact run would have produced.
    Recorded spans may themselves contain skips of already-stable
    inner signatures: snapshots include the extrapolation
    accumulators, so a measure always reflects the full span it
    covers. At most one recording is open at a time; new recordings
    simply do not start inside another one.

    Known, deliberately accepted approximations (all bounded by the
    differential test suite): skipped instances do not advance the
    simulated clocks (their runtime is added to the run totals
    analytically), the enter-marker stall of a skipped instance is
    charged twice (once by the reaction, once inside the recorded
    measure — tens of cycles against a >= [min_insts] instance), and a
    cycle-driven on-line controller does not observe samples inside
    skipped instances. *)

type params = {
  min_insts : int;
      (** a node is a sampling candidate once two completed instances
          exist and the latest reaches this many dynamic instructions;
          also the iteration-batch minimum and position-bucket width.
          Every recorded span starts at a drained (empty-pipeline)
          point and so carries a fixed refill cost that each
          extrapolation replays — the span length dilutes that
          systematic overestimate, which is why the default is
          deliberately coarse *)
  verify : int;
      (** extra exact instances a refreshed signature must record to
          confirm stability (agreement window = 1 + [verify]) *)
  tolerance : float;
      (** maximum relative disagreement in per-instruction runtime and
          energy between the verification recordings *)
}

val default_params : params
(** [{ min_insts = 4_000; verify = 1; tolerance = 0.05 }] *)

val params_id : params -> string
(** Canonical rendering for cache keys: every parameter in a fixed
    order, floats in lossless [%h] form. *)

(** Machine-state deltas the pipeline measures around a recorded
    instance. Built by the pipeline at drained points. *)
type snapshot = {
  now_ps : int;
  cycles_front : int;
  pj : float array;  (** per-domain energy, length [Domain.count + 1] *)
  crossings : int;
  penalties : int;
  reconfigs : int;
  instr_points : int;
  instr_ps : int;
}

(** One recorded representative instance: the deltas to replay for each
    skipped instance of the same signature. *)
type measure = {
  m_insts : int;
  dps : int;
  dcycles : int;
  dpj : float array;
  dcrossings : int;
  dpenalties : int;
  dreconfigs : int;
  dinstr_points : int;
  dinstr_ps : int;
  exit_targets : int array;
      (** per-domain DVFS targets when the recorded instance ended —
          restored after a skip so the post-instance machine sees the
          frequencies the exact run would have left behind *)
}

type t

val create : params -> t
(** Fresh sampler state; one per pipeline run. *)

(** What the pipeline must do with the marker it just pulled from the
    stream. [Wait] and the drained-only variants implement the drain
    protocol: the pipeline pushes the marker back and stops fetching
    until the machine empties. *)
type decision =
  | Proceed  (** process the marker normally *)
  | Wait  (** drain first: push the marker back, re-decide when empty *)
  | Record
      (** process the enter marker, then call {!begin_record} with a
          fresh snapshot *)
  | End_record
      (** call {!end_record} with a fresh snapshot {e before}
          processing the exit marker *)
  | Skip of measure
      (** only from {!decide}: process the enter marker, swallow the
          balanced interior, push the matching exit marker back, and
          extrapolate from the measure (reporting the swallowed
          instructions via {!note_skipped}) *)
  | Skip_iters of measure * int
      (** only from {!decide_backedge}: swallow from this (taken) back
          edge up to the loop's final not-taken back edge {e or} the
          first iteration boundary at/after [bound] swallowed
          instructions, whichever comes first; push the stopping
          branch back, extrapolate from the measure, then call
          {!note_iter_boundary} *)

val decide :
  t ->
  Mcd_isa.Walker.marker ->
  drained:bool ->
  measuring:bool ->
  targets:(unit -> int array) ->
  decision
(** Called for {e every} marker before it is processed. Mutates the
    sampler's phase stack except when answering [Wait] (a [Wait]ed
    marker is re-presented and re-decided verbatim). [targets] is
    consulted lazily, only when a candidate node needs its signature.
    Never answers [Wait] when [drained] is true. *)

val decide_backedge :
  t ->
  loop_id:int ->
  taken:bool ->
  drained:bool ->
  measuring:bool ->
  targets:(unit -> int array) ->
  decision
(** Called before fetching a loop back-edge branch (after the fetch
    buffer capacity check, so any non-[Wait] answer is final for this
    event). Drives iteration-level sampling of the innermost loop:
    [Record]/[End_record] bracket an iteration batch exactly as for
    markers; [Skip_iters] fast-forwards a position-matched chunk.
    [Proceed] fetches the branch normally. Side-effect-free when
    answering [Wait]. *)

val note_inst : t -> unit
(** One dynamic instruction accepted from the stream (executed path). *)

val note_skipped : t -> insts:int -> unit
(** [insts] dynamic instructions were fast-forwarded by a skip. *)

val note_iter_boundary : t -> unit
(** A [Skip_iters] fast-forward just ended at an iteration boundary of
    the loop on top of the phase stack: realign its bookkeeping.
    Called after {!note_skipped} has reported the swallowed span. *)

val begin_record : t -> snapshot:snapshot -> unit
val end_record : t -> snapshot:snapshot -> targets:int array -> unit

val abort_record : t -> unit
(** Discard any open recording without saving a measure; the owning
    frame reverts to plain tracking. The pipeline calls this at the
    warm-up boundary, where the measured counters reset and in-flight
    snapshots become incomparable. *)

type report = {
  recorded_instances : int;
  skipped_instances : int;
  skipped_insts : int;
  unstable_signatures : int;
}

val report : t -> report
