lib/cpu/cache.ml: Array Config Option
