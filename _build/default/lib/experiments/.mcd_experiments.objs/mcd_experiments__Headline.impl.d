lib/experiments/headline.ml: List Mcd_power Mcd_profiling Mcd_util Mcd_workloads Runner
