(** Small descriptive-statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values; 0 for the empty list.
    Raises [Invalid_argument] on a zero or negative element. *)

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; 0 when [whole = 0]. *)

val ratio_percent_change : baseline:float -> value:float -> float
(** Percentage change of [value] relative to [baseline]:
    positive when [value] exceeds the baseline. *)
