(** Functional-unit pools.

    A pool holds [count] units with a fixed latency in owning-domain
    cycles. Pipelined pools (ALUs) accept a new operation every cycle
    per unit; unpipelined pools (multipliers) occupy the unit for the
    full latency. *)

type t

val create : count:int -> latency_cycles:int -> pipelined:bool -> t

val try_issue :
  t -> now:Mcd_util.Time.t -> period_ps:int -> Mcd_util.Time.t option
(** Attempt to claim a unit at [now] in a domain whose current period is
    [period_ps]. Returns the completion time of the operation, or [None]
    if every unit is busy. *)

val latency_cycles : t -> int
val operations : t -> int
