(** Frequency and voltage model.

    Domains scale between 250 MHz and 1 GHz in 16 steps of 50 MHz
    (an XScale-like table with the paper's compressed voltage range of
    0.65 V – 1.20 V, voltage linear in frequency). *)

val fmax_mhz : int
(** 1000 MHz. *)

val fmin_mhz : int
(** 250 MHz. *)

val vmax : float
(** 1.20 V. *)

val vmin : float
(** 0.65 V. *)

val step_mhz : int
(** 50 MHz between adjacent steps. *)

val num_steps : int
(** 16: frequencies 250, 300, ..., 1000 MHz. *)

val steps : int array
(** All selectable frequencies in MHz, ascending. *)

val clamp : int -> int
(** Clamp an arbitrary MHz value into range and snap it to the nearest
    step. *)

val is_step : int -> bool
(** True when the value is exactly one of [steps] — i.e. {!clamp} would
    return it unchanged. *)

val index_of : int -> int
(** Step index (0 = 250 MHz ... 15 = 1000 MHz) of a frequency that must
    be one of [steps]. Raises [Invalid_argument] otherwise. *)

val of_index : int -> int
(** Frequency in MHz at a step index. *)

val voltage : int -> float
(** Supply voltage at a given frequency (MHz); linear interpolation
    between [(fmin, vmin)] and [(fmax, vmax)]. The frequency need not be
    a step (mid-transition frequencies are continuous). *)

val voltage_f : float -> float
(** Same on a continuous frequency. *)

val period_ps : float -> int
(** Clock period in integer picoseconds at a continuous frequency in
    MHz. *)

val energy_scale : float -> float
(** [(voltage f / vmax)^2]: the factor applied to dynamic energy when a
    domain runs at frequency [f] MHz. *)
