(** The policy tournament: every registered policy raced on the same
    benchmarks, scored on the paper's three axes.

    Each contender from the {!Mcd_control.Policies} registry is
    simulated on each workload through {!Runner.policy_run} (so every
    cell is cached under the policy's own canonical key), compared
    against the shared MCD baseline, and ranked by mean
    energy x delay improvement. Because ED improvement is a
    scalarisation of the other two axes, the report also flags the
    degradation/savings Pareto frontier: a policy nobody beats on both
    axes at once survives even if its ED rank is middling. *)

type entry = {
  policy : Mcd_control.Policy.t;
  per_workload : (string * Runner.comparison) list;
      (** per-benchmark scores, in workload order *)
  mean : Runner.comparison;  (** unweighted mean over the workloads *)
  rank : int;  (** 1-based, by mean ED improvement (descending) *)
  pareto : bool;
      (** no other entry is at-least-as-good on both degradation and
          savings and strictly better on one *)
}

type t = { workloads : string list; entries : entry list }

val quick_names : string list
(** The bench harness's --quick subset: one representative per suite
    corner. *)

val quick_workloads : unit -> Mcd_workloads.Workload.t list

val run :
  ?policies:Mcd_control.Policy.t list ->
  ?workloads:Mcd_workloads.Workload.t list ->
  unit ->
  t
(** Race [policies] (default {!Mcd_control.Policies.contenders}) on
    [workloads] (default the full 19-benchmark suite), fanning out per
    workload over {!Runner.map_workloads}. *)

val render : t -> string
(** The ranked human table. *)

val to_json : t -> Mcd_obs.Json.t
(** Machine-readable report, schema ["mcd-dvfs-tournament/1"]: the
    workload list plus one object per entry with rank, policy identity
    (label, name, canonical params), Pareto flag, the three mean axes
    and the per-workload breakdown. *)
