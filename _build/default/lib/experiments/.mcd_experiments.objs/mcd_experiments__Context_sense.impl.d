lib/experiments/context_sense.ml: List Mcd_core Mcd_power Mcd_profiling Mcd_util Mcd_workloads Printf Runner
