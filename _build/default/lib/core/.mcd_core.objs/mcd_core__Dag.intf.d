lib/core/dag.mli: Mcd_cpu Mcd_domains Path_model
