lib/core/oracle.ml: Array Dag List Mcd_cpu Mcd_domains Mcd_trace Mcd_util Path_model Plan Shaker Threshold
