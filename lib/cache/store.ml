module Error = Mcd_robust.Error
module Metrics = Mcd_obs.Metrics

type t = {
  dir : string;
  metrics : Metrics.t;
  hits : Metrics.counter;
  misses : Metrics.counter;
  corrupt : Metrics.counter;
  stores : Metrics.counter;
  bytes_read : Metrics.counter;
  bytes_written : Metrics.counter;
  gc_removed : Metrics.counter;
  gc_freed_bytes : Metrics.counter;
  (* Metrics counters are plain accumulators; serialize updates so the
     store is safe under Par's multi-domain fan-out. *)
  mutex : Mutex.t;
}

let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let objects_dir t = Filename.concat t.dir "objects"

let create ~dir =
  let metrics = Metrics.create () in
  let t =
    {
      dir;
      metrics;
      hits = Metrics.counter metrics "cache.hits";
      misses = Metrics.counter metrics "cache.misses";
      corrupt = Metrics.counter metrics "cache.corrupt";
      stores = Metrics.counter metrics "cache.stores";
      bytes_read = Metrics.counter metrics "cache.bytes_read";
      bytes_written = Metrics.counter metrics "cache.bytes_written";
      gc_removed = Metrics.counter metrics "cache.gc_removed";
      gc_freed_bytes = Metrics.counter metrics "cache.gc_freed_bytes";
      mutex = Mutex.create ();
    }
  in
  ensure_dir (objects_dir t);
  t

let dir t = t.dir
let metrics t = t.metrics

let count t c =
  Mutex.lock t.mutex;
  Metrics.incr c;
  Mutex.unlock t.mutex

let count_bytes t c n =
  Mutex.lock t.mutex;
  Metrics.add c n;
  Mutex.unlock t.mutex

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  stores : int;
  bytes_read : int;
  bytes_written : int;
  gc_removed : int;
  gc_freed_bytes : int;
}

let stats t : stats =
  Mutex.lock t.mutex;
  let s =
    {
      hits = Metrics.value t.hits;
      misses = Metrics.value t.misses;
      corrupt = Metrics.value t.corrupt;
      stores = Metrics.value t.stores;
      bytes_read = Metrics.value t.bytes_read;
      bytes_written = Metrics.value t.bytes_written;
      gc_removed = Metrics.value t.gc_removed;
      gc_freed_bytes = Metrics.value t.gc_freed_bytes;
    }
  in
  Mutex.unlock t.mutex;
  s

let object_path t key =
  let digest = Key.digest key in
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub digest 0 2))
    (String.sub digest 2 (String.length digest - 2))

(* --- object container -------------------------------------------------- *)

(* mcd-dvfs-cache <format> <kind>
   key <canonical>
   payload-bytes <n>
   <n payload bytes>
   end
   The full canonical key is embedded so a digest collision (or a stale
   file from a different format) surfaces as corruption, never as a
   wrong answer; the byte count plus `end` trailer detects truncation. *)
let container key payload =
  Printf.sprintf "mcd-dvfs-cache %d %s\nkey %s\npayload-bytes %d\n%send\n"
    Key.format_version (Key.kind key) (Key.canonical key)
    (String.length payload) payload

let parse_container ~key content =
  let fail reason = Result.Error reason in
  let line_end from =
    match String.index_from_opt content from '\n' with
    | Some i -> Result.Ok i
    | None -> fail "truncated header"
  in
  let ( let* ) = Result.bind in
  let* e1 = line_end 0 in
  let header = String.sub content 0 e1 in
  let expected_header =
    Printf.sprintf "mcd-dvfs-cache %d %s" Key.format_version (Key.kind key)
  in
  if header <> expected_header then
    fail (Printf.sprintf "bad header %S" header)
  else
    let* e2 = line_end (e1 + 1) in
    let key_line = String.sub content (e1 + 1) (e2 - e1 - 1) in
    if key_line <> "key " ^ Key.canonical key then
      fail "key mismatch (digest collision or stale object)"
    else
      let* e3 = line_end (e2 + 1) in
      let bytes_line = String.sub content (e2 + 1) (e3 - e2 - 1) in
      let* n =
        match String.split_on_char ' ' bytes_line with
        | [ "payload-bytes"; v ] -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Result.Ok n
            | _ -> fail (Printf.sprintf "bad payload size %S" v))
        | _ -> fail (Printf.sprintf "bad payload-bytes line %S" bytes_line)
      in
      let start = e3 + 1 in
      if String.length content <> start + n + 4 then fail "truncated payload"
      else if String.sub content (start + n) 4 <> "end\n" then
        fail "missing end marker"
      else Result.Ok (String.sub content start n)

let log_corrupt t ~path ~reason =
  count t t.corrupt;
  Printf.eprintf "mcd-dvfs: %s\n%!"
    (Error.to_string (Error.Cache_corrupt { path; reason }))

type lookup = Absent | Corrupt of string | Found of string

let read_object t key =
  let path = object_path t key in
  if not (Sys.file_exists path) then Absent
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error reason -> Corrupt reason
    | content -> (
        match parse_container ~key content with
        | Result.Ok payload ->
            count_bytes t t.bytes_read (String.length payload);
            Found payload
        | Result.Error reason -> Corrupt reason)

let tmp_seq = Atomic.make 0

let add t key payload =
  let path = object_path t key in
  ensure_dir (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (container key payload));
    Sys.rename tmp path
  with
  | () ->
      count t t.stores;
      count_bytes t t.bytes_written (String.length payload)
  | exception Sys_error reason ->
      (* an unwritable cache degrades to recompute-only, never fails the
         run *)
      (try Sys.remove tmp with Sys_error _ -> ());
      Printf.eprintf "mcd-dvfs: %s\n%!"
        (Error.to_string (Error.Io_error { path; message = reason }))

let find t key =
  match read_object t key with
  | Found payload ->
      count t t.hits;
      Some payload
  | Absent ->
      count t t.misses;
      None
  | Corrupt reason ->
      log_corrupt t ~path:(object_path t key) ~reason;
      count t t.misses;
      None

let cached t ~key ~encode ~decode compute =
  let recompute () =
    count t t.misses;
    let v = compute () in
    add t key (encode v);
    v
  in
  match read_object t key with
  | Absent -> recompute ()
  | Corrupt reason ->
      log_corrupt t ~path:(object_path t key) ~reason;
      recompute ()
  | Found payload -> (
      match decode payload with
      | Result.Ok v ->
          count t t.hits;
          v
      | Result.Error reason ->
          (* container intact but payload unparseable: same corruption
             path — recompute and heal by overwriting *)
          log_corrupt t ~path:(object_path t key) ~reason;
          recompute ())

(* --- disk accounting and gc -------------------------------------------- *)

let iter_objects t f =
  let objects = objects_dir t in
  if Sys.file_exists objects then
    Array.iter
      (fun shard ->
        let shard_dir = Filename.concat objects shard in
        if Sys.is_directory shard_dir then
          Array.iter
            (fun name ->
              let path = Filename.concat shard_dir name in
              match Unix.stat path with
              | st when st.Unix.st_kind = Unix.S_REG -> f path st
              | _ -> ()
              | exception Unix.Unix_error _ -> ())
            (Sys.readdir shard_dir))
      (Sys.readdir objects)

let disk_usage t =
  let objects = ref 0 and bytes = ref 0 in
  iter_objects t (fun _path st ->
      incr objects;
      bytes := !bytes + st.Unix.st_size);
  (!objects, !bytes)

let gc ?(max_bytes = 0) t =
  let _, total = disk_usage t in
  let entries = ref [] in
  iter_objects t (fun path st ->
      entries := (path, st.Unix.st_mtime, st.Unix.st_size) :: !entries);
  (* oldest first; keep the newest entries under the byte budget *)
  let by_age =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) !entries
  in
  let excess = total - max_bytes in
  let removed = ref 0 and freed = ref 0 in
  List.iter
    (fun (path, _, size) ->
      if !freed < excess then begin
        match Sys.remove path with
        | () ->
            incr removed;
            freed := !freed + size
        | exception Sys_error _ -> ()
      end)
    by_age;
  count_bytes t t.gc_removed !removed;
  count_bytes t t.gc_freed_bytes !freed;
  (!removed, !freed)

(* --- process-wide default store ---------------------------------------- *)

let default_store : t option ref = ref None
let default_resolved = ref false

let set_default o =
  default_resolved := true;
  default_store := o

let default () =
  if not !default_resolved then begin
    default_resolved := true;
    match Sys.getenv_opt "MCD_DVFS_CACHE" with
    | Some dir when dir <> "" -> default_store := Some (create ~dir)
    | _ -> ()
  end;
  !default_store
