(** Application editing (phase 4 of the paper).

    The paper rewrites binaries, inserting label-tracking instrumentation
    in prologues/epilogues and reconfiguration writes at long-running
    nodes, then lets the simulator charge a fixed penalty per executed
    point. This module is the equivalent step for our IR programs: from
    a {!Plan.t} it produces the {!Mcd_cpu.Controller.t} that reproduces
    exactly what the inserted code would do at run time — maintain the
    current call-tree label (for path-tracking contexts), write the
    reconfiguration register with the planned frequencies on entry to a
    long-running region, and restore the caller's setting on exit — and
    reports each executed point's cost so the pipeline can charge it.

    Per-point costs follow Section 3.4: about 9 front-end cycles for an
    instrumentation point that accesses the label lookup table, about 17
    for a reconfiguration point (label table plus frequency table plus
    register write), about 2 for a loop header or call-site offset
    update, and 1 cycle (virtually zero: the write schedules into spare
    slots) for the static reconfiguration points of the L+F and F
    schemes. *)

type counters = {
  mutable reconfig_execs : int;
      (** reconfiguration points executed (register writes) *)
  mutable instr_execs : int;
      (** instrumentation-only points executed (label tracking) *)
}

type edited = { controller : Mcd_cpu.Controller.t; counters : counters }

val edit : Plan.t -> edited
(** Build the run-time policy for the plan's context. The returned
    controller is single-use: it carries run state (label stack, saved
    settings). Call [edit] again for every simulation. *)

val instr_stall_cycles : int
(** 9 *)

val reconfig_stall_cycles : int
(** 17 *)

val offset_stall_cycles : int
(** 2: loop header / call-site label offset update *)

val static_reconfig_stall_cycles : int
(** 1: L+F / F reconfiguration points *)
