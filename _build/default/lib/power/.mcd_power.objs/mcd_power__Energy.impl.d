lib/power/energy.ml: Array Mcd_domains
