(* Tests for the robustness subsystem: typed diagnostics, validation,
   deterministic fault injection, and the degradation guard. *)

module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Controller = Mcd_cpu.Controller
module Walker = Mcd_isa.Walker
module Rng = Mcd_util.Rng
module Error = Mcd_robust.Error
module Validate = Mcd_robust.Validate
module Inject = Mcd_robust.Inject
module Degrade = Mcd_robust.Degrade

(* --- Error ------------------------------------------------------------ *)

let test_error_exit_codes () =
  let io = Error.Io_error { path = "p"; message = "m" } in
  let validation = Error.Bad_slowdown { value = Float.nan } in
  Alcotest.(check int) "io" 3 (Error.exit_code io);
  Alcotest.(check int) "validation" 2 (Error.exit_code validation);
  Alcotest.(check int) "empty" 0 (Error.exit_code_of_list []);
  Alcotest.(check int) "io dominates" 3
    (Error.exit_code_of_list [ validation; io ]);
  Alcotest.(check int) "validation only" 2
    (Error.exit_code_of_list [ validation ])

let test_error_messages_name_the_site () =
  let e =
    Error.Illegal_frequency
      { where = "plan:12"; requested_mhz = 313; snapped_mhz = 300 }
  in
  let s = Error.to_string e in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names where" true (contains "plan:12" s);
  Alcotest.(check bool) "names value" true (contains "313" s)

(* --- Validate --------------------------------------------------------- *)

let test_validate_setting_arity () =
  match Validate.setting ~where:"t" [| 1000; 1000 |] with
  | Result.Error (Error.Bad_setting_arity { expected; found; _ }) ->
      Alcotest.(check int) "expected" Domain.count expected;
      Alcotest.(check int) "found" 2 found
  | _ -> Alcotest.fail "expected arity error"

let test_validate_setting_out_of_range_is_fatal () =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(1) <- 999_999;
  (match Validate.setting ~where:"t" s with
  | Result.Error (Error.Illegal_frequency { requested_mhz; _ }) ->
      Alcotest.(check int) "offender" 999_999 requested_mhz
  | _ -> Alcotest.fail "expected fatal frequency error");
  s.(1) <- -17;
  match Validate.setting ~where:"t" s with
  | Result.Error (Error.Illegal_frequency _) -> ()
  | _ -> Alcotest.fail "expected fatal frequency error"

let test_validate_setting_snaps_off_grid () =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(0) <- 313;
  match Validate.setting ~where:"t" s with
  | Result.Ok (repaired, [ Error.Illegal_frequency { snapped_mhz; _ } ]) ->
      Alcotest.(check bool) "on grid" true (Freq.is_step repaired.(0));
      Alcotest.(check int) "snapped" snapped_mhz repaired.(0)
  | _ -> Alcotest.fail "expected snap with one warning"

let test_validate_weight_and_slowdown () =
  (match Validate.weight ~node:1 ~domain:0 ~bin:0 Float.nan with
  | 0.0, Some (Error.Bad_histogram_weight _) -> ()
  | _ -> Alcotest.fail "NaN weight not repaired");
  (match Validate.weight ~node:1 ~domain:0 ~bin:0 (-2.0) with
  | 0.0, Some _ -> ()
  | _ -> Alcotest.fail "negative weight not repaired");
  (match Validate.weight ~node:1 ~domain:0 ~bin:0 3.5 with
  | 3.5, None -> ()
  | _ -> Alcotest.fail "good weight mangled");
  match Validate.slowdown_pct (-1.0) with
  | 0.0, Some (Error.Bad_slowdown _) -> ()
  | _ -> Alcotest.fail "negative slowdown not repaired"

(* --- Inject ----------------------------------------------------------- *)

let test_inject_names_roundtrip () =
  Alcotest.(check int) "eight fault classes" 8 (List.length Inject.all);
  List.iter
    (fun f ->
      match Inject.of_name (Inject.name f) with
      | Some f' -> Alcotest.(check bool) "roundtrip" true (f = f')
      | None -> Alcotest.fail ("of_name failed for " ^ Inject.name f))
    Inject.all;
  (* the serve-layer fault classes live outside [all] (the sweep grid)
     but still name-roundtrip for the chaos harness and CLI *)
  Alcotest.(check int) "four serve fault classes" 4
    (List.length Inject.serve_all);
  List.iter
    (fun f ->
      match Inject.of_name (Inject.name f) with
      | Some f' -> Alcotest.(check bool) "serve roundtrip" true (f = f')
      | None -> Alcotest.fail ("of_name failed for " ^ Inject.name f))
    Inject.serve_all;
  Alcotest.(check bool) "unknown name" true (Inject.of_name "gremlin" = None)

let sample_plan_text =
  "mcd-dvfs-plan 1\ncontext L+F\nslowdown 0x1.cp2\ntree 0123456789abcdef\n\
   node 1 1000,800,650,1000\nnode 2 700,1000,1000,550\n\
   unit func:3 1000,1000,1000,1000\n\
   hist 1 0 0x1p0,0x0p0,0x1p1\nend\n"

let with_temp_plan f =
  let path = Filename.temp_file "mcd_robust_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc sample_plan_text;
      close_out oc;
      f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_inject_corrupts_and_is_deterministic () =
  List.iter
    (fun fault ->
      match fault with
      | Inject.Runtime _ | Inject.Serve _ -> ()
      | Inject.File ff ->
          let once seed =
            with_temp_plan (fun path ->
                let rng = Rng.split (Rng.create seed) ~label:"t" in
                Inject.corrupt_file ff ~rng ~path;
                read_file path)
          in
          let a = once 5 and b = once 5 in
          Alcotest.(check bool)
            (Inject.name fault ^ " actually corrupts")
            true (a <> sample_plan_text);
          Alcotest.(check string) (Inject.name fault ^ " deterministic") a b)
    Inject.all

let test_inject_dvfs_faults () =
  let rng = Rng.split (Rng.create 9) ~label:"t" in
  (match Inject.dvfs_faults Inject.Stuck_domain ~rng with
  | [ Mcd_domains.Dvfs.Stuck_at (_, mhz) ] ->
      Alcotest.(check bool) "stuck at a legal step" true (Freq.is_step mhz)
  | _ -> Alcotest.fail "expected one stuck-at fault");
  (match Inject.dvfs_faults Inject.Frozen_slew ~rng with
  | [ Mcd_domains.Dvfs.Frozen_slew _ ] -> ()
  | _ -> Alcotest.fail "expected one frozen-slew fault");
  Alcotest.(check bool) "lost writes is a controller fault" true
    (Inject.dvfs_faults Inject.Lost_writes ~rng = [])

let test_inject_lost_writes_drops_some () =
  let emitted = ref 0 in
  let inner =
    {
      Controller.name = "always-write";
      on_marker =
        (fun _ ~now:_ ->
          incr emitted;
          {
            Controller.stall_cycles = 0;
            table_reads = 0;
            set = Some (Reconfig.full_speed ());
          });
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  let rng = Rng.split (Rng.create 3) ~label:"t" in
  let lossy = Inject.harness Inject.Lost_writes ~rng inner in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    let r =
      lossy.Controller.on_marker (Walker.Enter_func { fid = 0; site_id = None })
        ~now:0
    in
    if r.Controller.set <> None then incr delivered
  done;
  Alcotest.(check int) "policy always writes" 200 !emitted;
  Alcotest.(check bool) "some writes dropped" true (!delivered < 200);
  Alcotest.(check bool) "some writes survive" true (!delivered > 0)

(* --- Degrade ---------------------------------------------------------- *)

let marker = Walker.Enter_func { fid = 0; site_id = None }

let constant_controller set =
  {
    Controller.name = "constant";
    on_marker =
      (fun _ ~now:_ -> { Controller.stall_cycles = 0; table_reads = 0; set });
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }

let test_guard_clamps_off_grid () =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(2) <- 313;
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c (constant_controller (Some s)) in
  let r = guarded.Controller.on_marker marker ~now:0 in
  (match r.Controller.set with
  | Some repaired ->
      Array.iter
        (fun mhz ->
          Alcotest.(check bool) "on grid" true (Freq.is_step mhz))
        repaired
  | None -> Alcotest.fail "clamped setting should still be delivered");
  Alcotest.(check int) "clamp counted" 1 c.Degrade.clamped

let test_guard_suppresses_corrupt () =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(0) <- 999_999;
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c (constant_controller (Some s)) in
  let r = guarded.Controller.on_marker marker ~now:0 in
  Alcotest.(check bool) "corrupt setting suppressed" true
    (r.Controller.set = None);
  Alcotest.(check int) "suppression counted" 1 c.Degrade.suppressed

let test_guard_swallows_exceptions () =
  let raising =
    {
      Controller.name = "raising";
      on_marker = (fun _ ~now:_ -> failwith "boom");
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c raising in
  let r = guarded.Controller.on_marker marker ~now:0 in
  (match r.Controller.set with
  | Some s ->
      Alcotest.(check bool) "fallback is full speed" true
        (Reconfig.equal s (Reconfig.full_speed ()))
  | None -> Alcotest.fail "expected fallback write");
  Alcotest.(check bool) "fell back" true (Degrade.fallen_back c);
  Alcotest.(check int) "fault counted" 1 c.Degrade.controller_faults;
  (* degraded: the policy is disabled, not consulted again *)
  let r2 = guarded.Controller.on_marker marker ~now:1 in
  Alcotest.(check bool) "policy disabled" true (r2.Controller.set = None);
  Alcotest.(check int) "no further faults" 1 c.Degrade.controller_faults

let sample_admitting target =
  {
    Controller.elapsed_cycles = Degrade.default_watchdog_interval_cycles;
    avg_occupancy = Array.make Domain.count 0.0;
    retired = 1_000;
    total_retired = 1_000;
    l1d_misses = 0;
    l2_misses = 0;
    target_mhz = Array.copy target;
    current_mhz = Array.map float_of_int target;
  }

let test_guard_watchdog_reissues_then_falls_back () =
  let want = Array.make Domain.count 500 in
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c (constant_controller (Some want)) in
  (* the policy commands 500 MHz everywhere... *)
  (match (guarded.Controller.on_marker marker ~now:0).Controller.set with
  | Some _ -> ()
  | None -> Alcotest.fail "expected initial write");
  (* ...but the hardware keeps admitting full speed (write lost) *)
  let deaf = Array.make Domain.count Freq.fmax_mhz in
  for i = 1 to Degrade.default_max_reissues do
    match guarded.Controller.on_sample (sample_admitting deaf) ~now:i with
    | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "reissue %d repeats the command" i)
          true
          (Array.for_all2 ( = ) s want)
    | None -> Alcotest.fail "expected a reissue"
  done;
  Alcotest.(check int) "reissues counted" Degrade.default_max_reissues
    c.Degrade.reissues;
  (* still deaf: give up and fall back to full speed *)
  (match
     guarded.Controller.on_sample (sample_admitting deaf)
       ~now:(Degrade.default_max_reissues + 1)
   with
  | Some s ->
      Alcotest.(check bool) "fallback is full speed" true
        (Reconfig.equal s (Reconfig.full_speed ()))
  | None -> Alcotest.fail "expected fallback");
  Alcotest.(check bool) "fell back" true (Degrade.fallen_back c)

let test_guard_watchdog_accepts_honest_hardware () =
  let want = Array.make Domain.count 500 in
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c (constant_controller (Some want)) in
  ignore (guarded.Controller.on_marker marker ~now:0);
  (* hardware admits exactly what was commanded: no interventions *)
  for i = 1 to 10 do
    match guarded.Controller.on_sample (sample_admitting want) ~now:i with
    | None -> ()
    | Some _ -> Alcotest.fail "watchdog intervened on honest hardware"
  done;
  Alcotest.(check int) "no interventions" 0 (Degrade.interventions c)

let test_guard_watchdog_detects_frozen_slew () =
  let want = Array.make Domain.count 500 in
  let c = Degrade.counters () in
  let guarded = Degrade.guard ~counters:c (constant_controller (Some want)) in
  ignore (guarded.Controller.on_marker marker ~now:0);
  (* hardware admits the target but the operating point never moves *)
  let frozen =
    {
      (sample_admitting want) with
      Controller.current_mhz =
        Array.make Domain.count (float_of_int Freq.fmax_mhz);
    }
  in
  let fell = ref false in
  for i = 1 to Degrade.stall_streak_limit + 1 do
    match guarded.Controller.on_sample frozen ~now:i with
    | Some s when Reconfig.equal s (Reconfig.full_speed ()) -> fell := true
    | _ -> ()
  done;
  Alcotest.(check bool) "frozen slew triggers fallback" true !fell;
  Alcotest.(check bool) "fallback counted" true (Degrade.fallen_back c)

(* --- end-to-end: fallback stays within the synchronous bound ----------- *)

let test_fallback_run_within_sync_bound () =
  let module Runner = Mcd_experiments.Runner in
  let module Metrics = Mcd_power.Metrics in
  let module Suite = Mcd_workloads.Suite in
  let module Workload = Mcd_workloads.Workload in
  let w = Suite.by_name "adpcm decode" in
  let baseline = Runner.baseline w in
  let sync_floor = Runner.single_clock w ~mhz:Freq.fmin_mhz in
  let raising =
    {
      Controller.name = "raising";
      on_marker = (fun _ ~now:_ -> failwith "corrupt policy");
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  let c = Degrade.counters () in
  let run =
    Mcd_cpu.Pipeline.run
      ~controller:(Degrade.guard ~counters:c raising)
      ~config:Mcd_cpu.Config.alpha21264_like
      ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
      ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
  in
  Alcotest.(check bool) "guard intervened" true (Degrade.fallen_back c);
  let slow = Metrics.perf_degradation_pct ~baseline run in
  let bound = Metrics.perf_degradation_pct ~baseline sync_floor in
  Alcotest.(check bool) "within the synchronous-machine bound" true
    (slow <= bound +. 0.5);
  (* the fallback is full speed, so in fact it should be near-baseline *)
  Alcotest.(check bool) "near baseline" true (Float.abs slow < 5.0)

(* --- the campaign itself ---------------------------------------------- *)

let test_campaign_small () =
  let module Robustness = Mcd_experiments.Robustness in
  let module Suite = Mcd_workloads.Suite in
  let workloads = [ Suite.by_name "adpcm decode" ] in
  let report = Robustness.run ~workloads ~seed:11 () in
  Alcotest.(check int) "one cell per fault class"
    (List.length Inject.all)
    (List.length report.Robustness.outcomes);
  Alcotest.(check int) "no crashes" 0 report.Robustness.crashes;
  Alcotest.(check int) "no bound violations" 0
    report.Robustness.bound_violations;
  Alcotest.(check bool) "clean" true (Robustness.clean report);
  (* deterministic: the same seed reproduces the same outcomes *)
  let report' = Robustness.run ~workloads ~seed:11 () in
  List.iter2
    (fun (a : Robustness.outcome) b ->
      Alcotest.(check string) "same fault" a.Robustness.fault
        b.Robustness.fault;
      Alcotest.(check bool) "same recovery" true
        (a.Robustness.recovery = b.Robustness.recovery);
      Alcotest.(check (float 1e-9)) "same slowdown" a.Robustness.slowdown_pct
        b.Robustness.slowdown_pct)
    report.Robustness.outcomes report'.Robustness.outcomes

let suite =
  [
    ("error exit codes", `Quick, test_error_exit_codes);
    ("error messages name the site", `Quick, test_error_messages_name_the_site);
    ("validate setting arity", `Quick, test_validate_setting_arity);
    ( "validate out-of-range is fatal",
      `Quick,
      test_validate_setting_out_of_range_is_fatal );
    ("validate snaps off-grid", `Quick, test_validate_setting_snaps_off_grid);
    ("validate weight and slowdown", `Quick, test_validate_weight_and_slowdown);
    ("inject names roundtrip", `Quick, test_inject_names_roundtrip);
    ( "inject corrupts deterministically",
      `Quick,
      test_inject_corrupts_and_is_deterministic );
    ("inject dvfs faults", `Quick, test_inject_dvfs_faults);
    ("inject lost writes drops some", `Quick, test_inject_lost_writes_drops_some);
    ("guard clamps off-grid", `Quick, test_guard_clamps_off_grid);
    ("guard suppresses corrupt", `Quick, test_guard_suppresses_corrupt);
    ("guard swallows exceptions", `Quick, test_guard_swallows_exceptions);
    ( "guard watchdog reissues then falls back",
      `Quick,
      test_guard_watchdog_reissues_then_falls_back );
    ( "guard watchdog accepts honest hardware",
      `Quick,
      test_guard_watchdog_accepts_honest_hardware );
    ( "guard watchdog detects frozen slew",
      `Quick,
      test_guard_watchdog_detects_frozen_slew );
    ( "fallback run within sync bound",
      `Slow,
      test_fallback_run_within_sync_bound );
    ("campaign small", `Slow, test_campaign_small);
  ]
