(* Tests for the observability layer: ring buffer, metrics registry,
   time series, sink event plumbing, the JSON round-trip, and the
   exporters. An integration test runs a real profiled workload with a
   sink attached and reconstructs the reconfiguration sequence from the
   Chrome trace. *)

module Ring = Mcd_obs.Ring
module Metrics = Mcd_obs.Metrics
module Series = Mcd_obs.Series
module Sink = Mcd_obs.Sink
module Json = Mcd_obs.Json
module Export = Mcd_obs.Export
module Domain = Mcd_domains.Domain

(* --- Ring ----------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 ~dummy:(-1) in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r)

let test_ring_overwrites_oldest () =
  let r = Ring.create ~capacity:3 ~dummy:0 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "keeps the newest" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "length capped" 3 (Ring.length r);
  Alcotest.(check int) "two dropped" 2 (Ring.dropped r)

let test_ring_clear () =
  let r = Ring.create ~capacity:2 ~dummy:0 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  Alcotest.(check (list int)) "empty after clear" [] (Ring.to_list r);
  Alcotest.(check int) "drop counter survives" 1 (Ring.dropped r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r)

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0 ~dummy:0))

(* --- Metrics -------------------------------------------------------- *)

let test_metrics_counter () =
  let m = Metrics.create () in
  let c = Metrics.counter m "writes" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "accumulated" 5 (Metrics.value c);
  (* registration is idempotent: same instrument comes back *)
  Metrics.incr (Metrics.counter m "writes");
  Alcotest.(check int) "same instrument" 6 (Metrics.value c)

let test_metrics_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "mhz" in
  Metrics.set g 750.0;
  Metrics.set g 500.0;
  Alcotest.(check (float 0.0)) "last write wins" 500.0 (Metrics.peek g)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "residency" ~bins:4 in
  Metrics.observe h ~bin:1 ~weight:2.5;
  Metrics.observe h ~bin:1 ~weight:0.5;
  Metrics.observe h ~bin:3 ~weight:1.0;
  Alcotest.(check (array (float 0.0))) "weights"
    [| 0.0; 3.0; 0.0; 1.0 |] (Metrics.weights h);
  Alcotest.(check bool) "out-of-range bin rejected" true
    (match Metrics.observe h ~bin:4 ~weight:1.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.(check bool) "re-registering as a gauge rejected" true
    (match Metrics.gauge m "x" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_metrics_iteration_order () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "a");
  ignore (Metrics.gauge m "b");
  ignore (Metrics.histogram m "c" ~bins:2);
  ignore (Metrics.counter m "a");
  let names = List.map Metrics.name (Metrics.to_list m) in
  Alcotest.(check (list string)) "registration order, no duplicates"
    [ "a"; "b"; "c" ] names

(* --- Series --------------------------------------------------------- *)

let test_series_append_get () =
  let s = Series.create ~initial_capacity:1 ~domains:2 () in
  for i = 0 to 9 do
    Series.append s ~t_ps:(i * 100) ~cycles:i ~ipc:(float_of_int i)
      ~mhz:[| 1000.0; 500.0 |] ~volt:[| 1.2; 0.9 |] ~occ:[| 3.0; 4.0 |]
      ~pj:[| 1.0; 2.0; 0.5 |]
  done;
  Alcotest.(check int) "grew past initial capacity" 10 (Series.length s);
  let r = Series.get s 7 in
  Alcotest.(check int) "t_ps" 700 r.Series.t_ps;
  Alcotest.(check (float 0.0)) "ipc" 7.0 r.Series.ipc;
  Alcotest.(check (array (float 0.0))) "mhz" [| 1000.0; 500.0 |] r.Series.mhz;
  Alcotest.(check (array (float 0.0))) "pj incl. external"
    [| 1.0; 2.0; 0.5 |] r.Series.pj

let test_series_arity_checked () =
  let s = Series.create ~domains:2 () in
  Alcotest.(check bool) "short mhz rejected" true
    (match
       Series.append s ~t_ps:0 ~cycles:0 ~ipc:0.0 ~mhz:[| 1.0 |]
         ~volt:[| 1.0; 1.0 |] ~occ:[| 0.0; 0.0 |] ~pj:[| 0.0; 0.0; 0.0 |]
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "pj must be domains+1" true
    (match
       Series.append s ~t_ps:0 ~cycles:0 ~ipc:0.0 ~mhz:[| 1.0; 1.0 |]
         ~volt:[| 1.0; 1.0 |] ~occ:[| 0.0; 0.0 |] ~pj:[| 0.0; 0.0 |]
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Sink ----------------------------------------------------------- *)

let mk_sink ?control_capacity ?hot_capacity () =
  Sink.create ?control_capacity ?hot_capacity ~domains:Domain.count ()

let test_sink_event_merge_ordered () =
  let s = mk_sink () in
  (* interleave hot (sync) and control (reconfig/decision) events out of
     ring order; [events] must merge them by timestamp *)
  Sink.sync_penalty s ~t_ps:10 ~domain:1;
  Sink.reconfig_write s ~t_ps:20
    ~before:[| 1000; 1000; 1000; 1000 |]
    ~after:[| 1000; 500; 1000; 1000 |]
    ~noop:false;
  Sink.sync_penalty s ~t_ps:30 ~domain:2;
  Sink.decision s ~t_ps:25 ~source:"test" ~trigger:Sink.Sample
    ~detail:"d" ();
  let times = List.map Sink.event_time (Sink.events s) in
  Alcotest.(check (list int)) "time-ordered" [ 10; 20; 25; 30 ] times

let test_sink_counters_survive_eviction () =
  let s = mk_sink ~hot_capacity:2 () in
  for i = 1 to 100 do
    Sink.sync_penalty s ~t_ps:i ~domain:0
  done;
  let m = Sink.metrics s in
  Alcotest.(check int) "total survives as a counter" 100
    (Metrics.value (Metrics.counter m "obs.sync_penalties"));
  Alcotest.(check int) "ring keeps only the newest" 2
    (List.length (Sink.events s));
  Alcotest.(check int) "dropped accounted" 98 (Sink.dropped_events s)

let test_sink_copies_settings () =
  let s = mk_sink () in
  let setting = [| 1000; 500; 250; 750 |] in
  Sink.reconfig_write s ~t_ps:0
    ~before:[| 1000; 1000; 1000; 1000 |]
    ~after:setting ~noop:false;
  setting.(1) <- 9999;
  (match Sink.events s with
  | [ Sink.Reconfig_write { after; _ } ] ->
      Alcotest.(check int) "event holds a copy" 500 after.(1)
  | _ -> Alcotest.fail "expected exactly one event")

(* --- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "" ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

let test_json_escapes () =
  match Json.of_string "\"a\\u0041\\n\\t\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "escapes decoded" "aA\n\t" s
  | _ -> Alcotest.fail "expected a string"

(* --- Export --------------------------------------------------------- *)

let populated_sink () =
  let s = mk_sink () in
  Sink.reconfig_write s ~t_ps:1_000
    ~before:[| 1000; 1000; 1000; 1000 |]
    ~after:[| 1000; 500; 250; 1000 |]
    ~noop:false;
  Sink.sync_penalty s ~t_ps:1_500 ~domain:2;
  Sink.sample s ~t_ps:2_000 ~cycles:2 ~ipc:1.5
    ~mhz:[| 1000.0; 500.0; 250.0; 1000.0 |]
    ~volt:[| 1.2; 0.9; 0.65; 1.2 |]
    ~occ:[| 1.0; 2.0; 3.0; 4.0 |]
    ~pj:[| 10.0; 20.0; 30.0; 40.0; 5.0 |];
  s

let test_export_metrics_jsonl_parses () =
  let s = populated_sink () in
  let lines =
    Export.metrics_jsonl s |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
          Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.failf "line does not parse: %s" e)
    lines

let test_export_csv_shape () =
  let s = populated_sink () in
  let lines =
    Export.series_csv s |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [ header; row ] ->
      let cols l = List.length (String.split_on_char ',' l) in
      (* t_ps,cycles,ipc + 4 per-domain column families + pj_external *)
      Alcotest.(check int) "header columns" (3 + (4 * Domain.count) + 1)
        (cols header);
      Alcotest.(check int) "row matches header" (cols header) (cols row)
  | _ -> Alcotest.failf "expected header + 1 row, got %d lines"
           (List.length lines)

let test_export_chrome_trace_parses () =
  let s = populated_sink () in
  match Json.of_string (Export.chrome_trace s) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check bool) "has events" true (evs <> []);
          let names =
            List.filter_map
              (fun e ->
                match Json.member "name" e with
                | Some (Json.String n) -> Some n
                | _ -> None)
              evs
          in
          List.iter
            (fun expected ->
              Alcotest.(check bool) expected true (List.mem expected names))
            [ "reconfig"; "sync-penalty"; "thread_name" ]
      | _ -> Alcotest.fail "no traceEvents list")

(* Edge inputs: a sink that never saw an event or sample must still
   export three well-formed documents — the server writes its trace on
   exit even when it served nothing. *)
let test_export_empty_sink () =
  let s = mk_sink () in
  String.split_on_char '\n' (Export.metrics_jsonl s)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.of_string line with
         | Ok (Json.Obj _) -> ()
         | _ -> Alcotest.failf "metrics line malformed: %s" line);
  (match
     Export.series_csv s |> String.split_on_char '\n'
     |> List.filter (fun l -> l <> "")
   with
  | [ header ] ->
      Alcotest.(check bool) "header row" true
        (String.length header > 0 && String.contains header ',')
  | lines -> Alcotest.failf "expected header only, got %d lines"
               (List.length lines));
  match Json.of_string (Export.chrome_trace s) with
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List _) -> ()
      | _ -> Alcotest.fail "empty trace has no traceEvents list")
  | Error e -> Alcotest.failf "empty trace does not parse: %s" e

let test_export_one_sample_series () =
  let s = mk_sink () in
  Sink.sample s ~t_ps:500 ~cycles:1 ~ipc:0.5
    ~mhz:[| 1000.0; 1000.0; 1000.0; 1000.0 |]
    ~volt:[| 1.2; 1.2; 1.2; 1.2 |]
    ~occ:[| 0.0; 0.0; 0.0; 0.0 |]
    ~pj:[| 1.0; 1.0; 1.0; 1.0; 0.0 |];
  match
    Export.series_csv s |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  with
  | [ header; row ] ->
      let cols l = List.length (String.split_on_char ',' l) in
      Alcotest.(check int) "row matches header" (cols header) (cols row)
  | lines -> Alcotest.failf "expected header + 1 row, got %d lines"
               (List.length lines)

let test_export_histogram_arity () =
  let s = mk_sink () in
  let m = Sink.metrics s in
  let h = Metrics.histogram m "serve.latency_ms" ~bins:4 in
  Metrics.observe h ~bin:3 ~weight:2.5;
  (* re-registration with a different arity is a programming error, not
     a silent resize *)
  (match Metrics.histogram m "serve.latency_ms" ~bins:8 with
  | (_ : Metrics.histogram) -> Alcotest.fail "bin-count mismatch accepted"
  | exception Invalid_argument _ -> ());
  let line =
    Export.metrics_jsonl s |> String.split_on_char '\n'
    |> List.find (fun l ->
           String.length l > 0
           &&
           match Json.of_string l with
           | Ok j -> Json.member "name" j = Some (Json.String "serve.latency_ms")
           | Error _ -> false)
  in
  match Json.of_string line with
  | Ok j -> (
      (match Json.member "bins" j with
      | Some (Json.Int 4) -> ()
      | _ -> Alcotest.fail "bins field wrong");
      match Json.member "weights" j with
      | Some (Json.List ws) ->
          Alcotest.(check int) "weights arity = bins" 4 (List.length ws)
      | _ -> Alcotest.fail "no weights list")
  | Error e -> Alcotest.failf "histogram line does not parse: %s" e

(* --- Integration: traced profile run -------------------------------- *)

let test_traced_profile_run () =
  (* Run a real MediaBench workload with a sink attached and check the
     trace reconstructs the run: every non-noop reconfiguration write in
     the event stream chains before -> after, the count agrees with the
     run's own reconfiguration counter, and samples landed. *)
  let sink = Sink.create ~domains:Domain.count () in
  let run =
    Mcd_experiments.Runner.observed_run ~policy:`Profile ~sink
      Mcd_workloads.Mediabench.adpcm_decode
  in
  let m = Sink.metrics sink in
  let counter name = Metrics.value (Metrics.counter m name) in
  Alcotest.(check int) "reconfig counter matches the run"
    run.Mcd_power.Metrics.reconfigurations
    (counter "obs.reconfig_writes");
  Alcotest.(check int) "sync penalties mirrored"
    run.Mcd_power.Metrics.sync_penalties
    (counter "obs.sync_penalties");
  Alcotest.(check bool) "samples recorded" true (counter "obs.samples" > 0);
  Alcotest.(check int) "series rows = samples" (counter "obs.samples")
    (Series.length (Sink.series sink));
  (* the non-noop reconfig events chain: each write starts from the
     previous one's after-setting, the first from full speed *)
  let writes =
    List.filter_map
      (function
        | Sink.Reconfig_write { before; after; noop = false; _ } ->
            Some (before, after)
        | _ -> None)
      (Sink.events sink)
  in
  Alcotest.(check int) "all writes retained by the control ring"
    run.Mcd_power.Metrics.reconfigurations (List.length writes);
  let full = Array.make Domain.count 1000 in
  let _ =
    List.fold_left
      (fun prev (before, after) ->
        Alcotest.(check (array int)) "chained before = previous after"
          prev before;
        after)
      full writes
  in
  ()

let suite =
  [
    ("ring basic", `Quick, test_ring_basic);
    ("ring overwrites oldest", `Quick, test_ring_overwrites_oldest);
    ("ring clear", `Quick, test_ring_clear);
    ("ring rejects bad capacity", `Quick, test_ring_rejects_bad_capacity);
    ("metrics counter", `Quick, test_metrics_counter);
    ("metrics gauge", `Quick, test_metrics_gauge);
    ("metrics histogram", `Quick, test_metrics_histogram);
    ("metrics kind mismatch", `Quick, test_metrics_kind_mismatch);
    ("metrics iteration order", `Quick, test_metrics_iteration_order);
    ("series append/get", `Quick, test_series_append_get);
    ("series arity checked", `Quick, test_series_arity_checked);
    ("sink event merge ordered", `Quick, test_sink_event_merge_ordered);
    ("sink counters survive eviction", `Quick,
     test_sink_counters_survive_eviction);
    ("sink copies settings", `Quick, test_sink_copies_settings);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json rejects garbage", `Quick, test_json_rejects_garbage);
    ("json escapes", `Quick, test_json_escapes);
    ("export metrics jsonl", `Quick, test_export_metrics_jsonl_parses);
    ("export csv shape", `Quick, test_export_csv_shape);
    ("export chrome trace", `Quick, test_export_chrome_trace_parses);
    ("export empty sink", `Quick, test_export_empty_sink);
    ("export one-sample series", `Quick, test_export_one_sample_series);
    ("export histogram arity", `Quick, test_export_histogram_arity);
    ("traced profile run", `Slow, test_traced_profile_run);
  ]
