module Error = Mcd_robust.Error
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_obs.Metrics

type config = {
  socket : string;
  workers : int;
  queue_max : int;
  client_max : int;
  compute_delay_s : float;
  trace_dir : string option;
  drain_grace_s : float;
  drain_deadline_s : float;
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    queue_max = 64;
    client_max = 16;
    compute_delay_s = 0.0;
    trace_dir = None;
    drain_grace_s = 1.0;
    drain_deadline_s = 60.0;
  }

(* --- request resolution ------------------------------------------------ *)

let policy_of_wire = function
  | Protocol.Baseline -> `Baseline
  | Protocol.Offline -> `Offline
  | Protocol.Online -> `Online
  | Protocol.Profile -> `Profile

let resolve (r : Protocol.request) =
  match Mcd_workloads.Suite.find_opt r.workload with
  | None ->
      Result.Error
        (Printf.sprintf "unknown workload %S (valid: %s)" r.workload
           (String.concat ", " Mcd_workloads.Suite.names))
  | Some w -> (
      match Mcd_profiling.Context.of_name r.context with
      | exception Not_found ->
          Result.Error
            (Printf.sprintf "unknown context %S (valid: %s)" r.context
               (String.concat ", "
                  (List.map
                     (fun (c : Mcd_profiling.Context.t) -> c.name)
                     Mcd_profiling.Context.all)))
      | context ->
          if not (Float.is_finite r.slowdown_pct) || r.slowdown_pct < 0.0 then
            Result.Error "slowdown must be a non-negative finite percentage"
          else Ok (w, policy_of_wire r.policy, context))

let request_digest (r : Protocol.request) =
  Result.map
    (fun (w, policy, context) ->
      Mcd_cache.Key.digest
        (Runner.request_key w ~policy ~context ~slowdown_pct:r.slowdown_pct))
    (resolve r)

let compute (r : Protocol.request) =
  match resolve r with
  | Result.Error msg -> invalid_arg ("Server.compute: " ^ msg)
  | Ok (w, policy, context) ->
      Mcd_power.Metrics.encode
        (Runner.run_request w ~policy ~context ~slowdown_pct:r.slowdown_pct)

(* --- socket setup ------------------------------------------------------ *)

let io_error socket message = Error.Server_unavailable { socket; message }

(* A socket file can outlive its server (SIGKILL, crash). Probing
   distinguishes a live server (connect succeeds — refuse to double-bind)
   from a stale corpse (connect refused — unlink and take over). *)
let clear_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close fd;
          Result.Error
            (io_error path "a server is already listening on this socket")
      | exception Unix.Unix_error (_, _, _) ->
          Unix.close fd;
          (try Sys.remove path with Sys_error _ -> ());
          Ok ())
  | _ ->
      Result.Error (io_error path "path exists and is not a socket")
  | exception Unix.Unix_error (_, _, _) ->
      Result.Error (io_error path "cannot stat socket path")

let bind_socket path =
  match clear_stale_socket path with
  | Result.Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Result.Error (io_error path (Unix.error_message e)))

(* --- connections ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  client : string;
  mutable acc : string;  (** bytes received, not yet parsed into lines *)
  mutable waits : int list;  (** job ids this client is parked on *)
}

exception Hung_up

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise Hung_up
  in
  go 0

let send conn reply = write_all conn.fd (Protocol.render_reply reply ^ "\n")

let send_payload conn reply body =
  write_all conn.fd (Protocol.render_reply reply ^ "\n" ^ body ^ "end\n")

(* --- the event loop ---------------------------------------------------- *)

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** self-pipe: completions poke the loop *)
  wake_w : Unix.file_descr;
  sched : Scheduler.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable next_client : int;
  mutable drain_started : float option;
  mutable idle_since : float option;
}

let poke fd =
  (* From a worker domain. The pipe is non-blocking; a full pipe already
     guarantees a pending wakeup, so EAGAIN is success. *)
  try ignore (Unix.write_substring fd "!" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let wire_state : Scheduler.state -> Protocol.state = function
  | Scheduler.Queued -> Protocol.Queued
  | Scheduler.Running -> Protocol.Running
  | Scheduler.Done _ -> Protocol.Done
  | Scheduler.Failed { message; _ } -> Protocol.Failed message

let status_reply (info : Scheduler.info) =
  Protocol.Status_reply { id = info.id; state = wire_state info.state }

(* The warm-restart story lives here: the persistent store's session
   counters are mirrored into the sink registry as [store.*] gauges, so
   a [stats] export shows whether payloads came from recomputation or
   from objects a previous server (or a one-shot CLI run) left behind. *)
let mirror_store_stats t =
  match Mcd_cache.Store.default () with
  | None -> ()
  | Some store ->
      let s = Mcd_cache.Store.stats store in
      Scheduler.with_registry t.sched (fun m ->
          let set name v =
            Metrics.set (Metrics.gauge m name) (float_of_int v)
          in
          set "store.hits" s.hits;
          set "store.misses" s.misses;
          set "store.corrupt" s.corrupt;
          set "store.stores" s.stores;
          set "store.bytes_read" s.bytes_read;
          set "store.bytes_written" s.bytes_written;
          set "store.gc_removed" s.gc_removed;
          set "store.gc_freed_bytes" s.gc_freed_bytes)

let begin_drain t =
  if t.drain_started = None then begin
    t.drain_started <- Some (Unix.gettimeofday ());
    Scheduler.set_draining t.sched
  end

let close_conn t conn =
  Hashtbl.remove t.conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ()

let handle_command t conn ~digest = function
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.Quit -> raise Hung_up
  | Protocol.Drain ->
      begin_drain t;
      send conn Protocol.Draining_reply
  | Protocol.Stats ->
      mirror_store_stats t;
      let body = Scheduler.export_metrics t.sched in
      send_payload conn
        (Protocol.Stats_payload { bytes = String.length body })
        body
  | Protocol.Submit { priority; request } -> (
      match digest request with
      | Result.Error msg ->
          send conn (Protocol.Rejected (Protocol.Bad_request msg))
      | Ok dg -> (
          match
            Scheduler.submit t.sched ~client:conn.client ~priority ~digest:dg
              request
          with
          | Scheduler.Accepted info ->
              send conn
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = false })
          | Scheduler.Coalesced info ->
              send conn
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = true })
          | Scheduler.Rejected reject -> send conn (Protocol.Rejected reject)))
  | Protocol.Status id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> send conn (status_reply info))
  | Protocol.Wait id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done _ | Scheduler.Failed _ -> send conn (status_reply info)
          | Scheduler.Queued | Scheduler.Running ->
              conn.waits <- id :: conn.waits))
  | Protocol.Result id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done payload ->
              send_payload conn
                (Protocol.Payload { id; bytes = String.length payload })
                payload
          | Scheduler.Failed { message; _ } ->
              send conn
                (Protocol.Rejected (Protocol.Job_failed { id; message }))
          | Scheduler.Queued | Scheduler.Running ->
              send conn (Protocol.Rejected (Protocol.Not_done id))))

(* Split complete lines off the connection's accumulator and run them. *)
let handle_input t conn ~digest chunk =
  conn.acc <- conn.acc ^ chunk;
  let rec go () =
    match String.index_opt conn.acc '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub conn.acc 0 i in
        conn.acc <-
          String.sub conn.acc (i + 1) (String.length conn.acc - i - 1);
        (match Protocol.parse_command line with
        | Ok cmd -> handle_command t conn ~digest cmd
        | Result.Error reason ->
            send conn
              (Protocol.Rejected
                 (Protocol.Bad_request
                    (Printf.sprintf "%s (line %S)" reason line))));
        go ()
  in
  go ()

let answer_parked_waits t =
  Hashtbl.iter
    (fun _ conn ->
      match conn.waits with
      | [] -> ()
      | waits ->
          let still_pending =
            List.filter
              (fun id ->
                match Scheduler.find t.sched id with
                | None ->
                    send conn (Protocol.Rejected (Protocol.Unknown_job id));
                    false
                | Some info -> (
                    match info.state with
                    | Scheduler.Done _ | Scheduler.Failed _ ->
                        send conn (status_reply info);
                        false
                    | Scheduler.Queued | Scheduler.Running -> true))
              (List.rev waits)
          in
          conn.waits <- List.rev still_pending)
    t.conns

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      let client = Printf.sprintf "c%d" t.next_client in
      t.next_client <- t.next_client + 1;
      let conn = { fd; client; acc = ""; waits = [] } in
      Hashtbl.replace t.conns fd conn;
      (match
         write_all fd
           (Protocol.render_reply
              (Protocol.Ready
                 {
                   version = Protocol.version;
                   workers = Scheduler.workers t.sched;
                   queue_max = Scheduler.queue_max t.sched;
                 })
           ^ "\n")
       with
      | () -> ()
      | exception Hung_up -> close_conn t conn)
  | exception Unix.Unix_error (_, _, _) -> ()

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let no_parked_waits t =
  Hashtbl.fold (fun _ c acc -> acc && c.waits = []) t.conns true

(* Drain watchdog: [true] once the server should exit. Grace lets a
   client fetch the result of a job that finished during the drain; the
   deadline bounds everything. *)
let drained t =
  match t.drain_started with
  | None -> false
  | Some started ->
      let now = Unix.gettimeofday () in
      if now -. started > t.cfg.drain_deadline_s then true
      else if Scheduler.idle t.sched && no_parked_waits t then begin
        (match t.idle_since with None -> t.idle_since <- Some now | Some _ -> ());
        Hashtbl.length t.conns = 0
        || now -. Option.get t.idle_since > t.cfg.drain_grace_s
      end
      else begin
        t.idle_since <- None;
        false
      end

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let request _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle request)
  with Invalid_argument _ -> ()

let serve_loop t ~digest =
  let buf = Bytes.create 4096 in
  let rec loop () =
    if Atomic.get stop_requested then begin_drain t;
    if drained t then ()
    else begin
      let fds =
        t.listen_fd :: t.wake_r
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns []
      in
      let readable, _, _ =
        match Unix.select fds [] [] 0.1 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = t.listen_fd then accept_conn t
          else if fd = t.wake_r then drain_wake_pipe t
          else
            match Hashtbl.find_opt t.conns fd with
            | None -> ()
            | Some conn -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> close_conn t conn
                | n -> (
                    match
                      handle_input t conn ~digest
                        (Bytes.sub_string buf 0 n)
                    with
                    | () -> ()
                    | exception Hung_up -> close_conn t conn)
                | exception Unix.Unix_error (_, _, _) -> close_conn t conn))
        readable;
      (match answer_parked_waits t with
      | () -> ()
      | exception Hung_up ->
          (* a parked client hung up mid-answer; the per-conn read path
             will reap it on its next event *)
          ());
      loop ()
    end
  in
  loop ()

let run ?(digest = request_digest) ?compute:(compute_fn = compute) cfg =
  match bind_socket cfg.socket with
  | Result.Error _ as e -> e
  | Ok listen_fd ->
      install_signal_handlers ();
      Atomic.set stop_requested false;
      let wake_r, wake_w = Unix.pipe () in
      Unix.set_nonblock wake_w;
      let compute_wrapped req =
        if cfg.compute_delay_s > 0.0 then Unix.sleepf cfg.compute_delay_s;
        compute_fn req
      in
      let sched =
        Scheduler.create ~workers:cfg.workers ~queue_max:cfg.queue_max
          ~client_max:cfg.client_max
          ~on_complete:(fun _ -> poke wake_w)
          ~compute:compute_wrapped ()
      in
      let t =
        {
          cfg;
          listen_fd;
          wake_r;
          wake_w;
          sched;
          conns = Hashtbl.create 16;
          next_client = 1;
          drain_started = None;
          idle_since = None;
        }
      in
      serve_loop t ~digest;
      Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with _ -> ()) t.conns;
      (try Unix.close listen_fd with _ -> ());
      (try Sys.remove cfg.socket with Sys_error _ -> ());
      Scheduler.shutdown sched;
      (try Unix.close wake_r with _ -> ());
      (try Unix.close wake_w with _ -> ());
      (match cfg.trace_dir with
      | None -> ()
      | Some dir ->
          mirror_store_stats t;
          ignore (Mcd_obs.Export.write_dir ~dir (Scheduler.sink sched)));
      Ok ()
