lib/workloads/workload.ml: Char Mcd_isa String
