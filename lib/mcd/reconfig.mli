(** The MCD reconfiguration register.

    The paper assumes a single unprivileged instruction that writes all
    four domain frequencies at once; this module is that register. A
    setting is an array of four frequencies (MHz) indexed by
    {!Domain.index}. *)

type setting = int array

val full_speed : unit -> setting
(** Fresh setting with every domain at 1 GHz. *)

val make :
  front_end:int -> integer:int -> floating:int -> memory:int -> setting
(** Frequencies are snapped to legal steps. *)

val get : setting -> Domain.t -> int
val equal : setting -> setting -> bool
val pp : Format.formatter -> setting -> unit

type t

val create : Dvfs.t -> t

val write :
  ?on_snap:(requested:int -> snapped:int -> unit) ->
  ?sink:Mcd_obs.Sink.t ->
  t ->
  setting ->
  now:Mcd_util.Time.t ->
  unit
(** Program all four domain targets; no idle time is incurred. Off-grid
    frequencies are snapped exactly as {!Dvfs.set_target} does; [on_snap]
    receives each snapped value so callers can emit a validation
    diagnostic instead of losing the discrepancy silently.

    Writing the setting the register already holds is a {e no-op}: the
    reconfiguration counter is untouched (it feeds the paper's
    reconfiguration-count metric). When a [sink] is given, every write
    records a [Reconfig_write] event carrying the old and new settings
    and whether it was a no-op. *)

val writes : t -> int
(** Number of effective register writes so far (reconfigurations
    performed); no-op writes are not counted. *)

val last_setting : t -> setting
