lib/trace/collector.ml: Array Hashtbl List Mcd_cpu Mcd_profiling Mcd_util
