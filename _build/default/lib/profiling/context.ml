type t = { name : string; loops : bool; sites : bool; paths : bool }

let lfcp = { name = "L+F+C+P"; loops = true; sites = true; paths = true }
let lfp = { name = "L+F+P"; loops = true; sites = false; paths = true }
let fcp = { name = "F+C+P"; loops = false; sites = true; paths = true }
let fp = { name = "F+P"; loops = false; sites = false; paths = true }
let lf = { name = "L+F"; loops = true; sites = false; paths = false }
let f = { name = "F"; loops = false; sites = false; paths = false }

let all = [ lfcp; lfp; fcp; fp; lf; f ]

let tree_context t =
  if t.paths then t else if t.loops then lfp else fp

let of_name name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> raise Not_found
