module Time = Mcd_util.Time
module Rng = Mcd_util.Rng
module Agequeue = Mcd_util.Agequeue
module Inst = Mcd_isa.Inst
module Walker = Mcd_isa.Walker
module Domain = Mcd_domains.Domain
module Clock = Mcd_domains.Clock
module Dvfs = Mcd_domains.Dvfs
module Freq = Mcd_domains.Freq
module Sync = Mcd_domains.Sync
module Reconfig = Mcd_domains.Reconfig
module Energy = Mcd_power.Energy
module Metrics = Mcd_power.Metrics
module Sink = Mcd_obs.Sink

type istate = In_fetch_buffer | In_queue | Completed | Retired_inst

type inflight = {
  di : Inst.dyn;
  mutable state : istate;
  fetched_at : Time.t;
  mutable queued_at : Time.t;
  mutable completion : Time.t;
  exec_domain : Domain.t;
  mutable producers : inflight array;
  arrivals : Time.t array; (* cached cross-domain result arrivals, -1 unset *)
  mispredicted : bool;
}

let sentinel =
  {
    di =
      {
        Inst.seq = -1;
        static_id = -1;
        klass = Inst.Int_alu;
        srcs = [||];
        dst = Inst.no_reg;
        addr = Inst.no_reg;
        taken = false;
      };
    state = Completed;
    fetched_at = 0;
    queued_at = 0;
    completion = 0;
    exec_domain = Domain.Front_end;
    producers = [||];
    arrivals = [| 0; 0; 0; 0 |];
    mispredicted = false;
  }

let exec_domain_of (klass : Inst.iclass) =
  match klass with
  | Inst.Int_alu | Inst.Int_mult | Inst.Branch -> Domain.Integer
  | Inst.Fp_alu | Inst.Fp_mult -> Domain.Floating
  | Inst.Load | Inst.Store -> Domain.Memory

type t = {
  cfg : Config.t;
  dvfs : Dvfs.t;
  reconfig : Reconfig.t;
  clocks : Clock.t array; (* indexed by Domain.index; aliased when single *)
  single : bool;
  walker : Walker.t;
  mutable pushback : Walker.event option;
  controller : Controller.t;
  probe : Probe.t option;
  energy : Energy.Accum.t;
  sync_stats : Sync.stats;
  bpred : Branch_pred.t;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  fu_int_alu : Fu.t;
  fu_int_mult : Fu.t;
  fu_fp_alu : Fu.t;
  fu_fp_mult : Fu.t;
  rob : inflight Queue.t;
  mutable rob_count : int;
  fetch_buf : inflight Queue.t;
  mutable fetch_buf_count : int;
  iq_int : inflight Agequeue.t; (* program order, oldest first *)
  iq_fp : inflight Agequeue.t;
  lsq : inflight Agequeue.t;
  mutable dep_scratch : int array; (* reused by dep_seqs_of *)
  reg_src : inflight array; (* logical register -> youngest producer *)
  mutable int_renames : int;
  mutable fp_renames : int;
  mutable fetch_resume : Time.t;
  mutable pending_redirect : inflight option;
  mutable redirect_dep : int; (* seq of the branch that stalled fetch; -1 none *)
  mutable last_fetch_line : int;
  mutable walker_done : bool;
  mutable stream_pos : int; (* dynamic instructions accepted from the stream *)
  mutable retired : int;
  mutable last_retire_time : Time.t;
  max_insts : int; (* measured-window size *)
  warmup_insts : int;
  mutable measuring : bool; (* warm-up complete, statistics armed *)
  mutable base_time : Time.t; (* measurement-window start *)
  mutable base_cycles : int;
  mutable base_reconfigs : int;
  (* controller sampling *)
  mutable next_sample_cycle : int;
  occ_sum : float array;
  mutable occ_ticks : int;
  mutable retired_at_sample : int;
  mutable l1d_misses_at_sample : int;
  mutable l2_misses_at_sample : int;
  (* instrumentation cost accounting *)
  mutable instr_points : int;
  mutable instr_overhead_ps : int;
  (* phase sampling: when [sampler] is present, stable repeated phase
     instances are fast-forwarded and their contribution accumulated
     here analytically instead of being simulated cycle by cycle. The
     accumulators are folded into [metrics] at the end of the run. *)
  sampler : Sampler.t option;
  mutable extrap_ps : int;
  mutable extrap_cycles : int;
  extrap_pj : float array; (* Domain.count + 1; last slot external *)
  mutable extrap_crossings : int;
  mutable extrap_penalties : int;
  mutable extrap_reconfigs : int;
  mutable extrap_instr_points : int;
  mutable extrap_instr_ps : int;
  (* observability: all [obs_*] fields are dead weight when [sink] is
     [None] — every producer site guards on the option first *)
  sink : Sink.t option;
  mutable next_obs_cycle : int; (* max_int when no sink *)
  mutable obs_prev_cycles : int;
  mutable obs_prev_retired : int;
  obs_prev_pj : float array; (* Domain.count + 1; last slot external *)
  obs_mhz : float array; (* per-sample scratch, reused *)
  obs_volt : float array;
  obs_occ : float array;
  obs_pj : float array;
  obs_freq_hist : Mcd_obs.Metrics.histogram array;
}

let fetch_buffer_cap = 16

let create ?probe ?(controller = Controller.nop) ?sink ?sampling
    ?(warmup_insts = 0) ~config ~program ~input ~max_insts () =
  let cfg : Config.t = config in
  let dvfs = Dvfs.create () in
  let rng = Rng.create cfg.seed in
  let jitter_sigma = if cfg.jitter then 110.0 /. 3.0 else 0.0 in
  let mk_clock domain =
    Clock.create ~jitter_sigma_ps:jitter_sigma
      ~rng:(Rng.split rng ~label:(Domain.name domain))
      ~freq_mhz:(fun ~now -> Dvfs.current_mhz dvfs domain ~now)
      ()
  in
  let single, clocks =
    match cfg.clocking with
    | Config.Mcd ->
        (false, Array.of_list (List.map mk_clock Domain.all))
    | Config.Single_clock mhz ->
        (* a different machine, not a transition: start at the point *)
        List.iter (fun d -> Dvfs.force dvfs d ~mhz) Domain.all;
        let c = mk_clock Domain.Front_end in
        (true, Array.make Domain.count c)
  in
  {
    cfg;
    dvfs;
    reconfig = Reconfig.create dvfs;
    clocks;
    single;
    walker = Walker.create program ~input;
    pushback = None;
    controller;
    probe;
    energy = Energy.Accum.create ();
    sync_stats = Sync.create_stats ();
    bpred = Branch_pred.create ();
    l1i = Cache.create cfg.l1i;
    l1d = Cache.create cfg.l1d;
    l2 = Cache.create cfg.l2;
    fu_int_alu =
      Fu.create ~count:cfg.int_alus ~latency_cycles:cfg.int_alu_latency
        ~pipelined:true;
    fu_int_mult =
      Fu.create ~count:cfg.int_mults ~latency_cycles:cfg.int_mult_latency
        ~pipelined:false;
    fu_fp_alu =
      Fu.create ~count:cfg.fp_alus ~latency_cycles:cfg.fp_alu_latency
        ~pipelined:true;
    fu_fp_mult =
      Fu.create ~count:cfg.fp_mults ~latency_cycles:cfg.fp_mult_latency
        ~pipelined:false;
    rob = Queue.create ();
    rob_count = 0;
    fetch_buf = Queue.create ();
    fetch_buf_count = 0;
    iq_int = Agequeue.create ~capacity:cfg.iq_int_size ~dummy:sentinel;
    iq_fp = Agequeue.create ~capacity:cfg.iq_fp_size ~dummy:sentinel;
    lsq = Agequeue.create ~capacity:cfg.lsq_size ~dummy:sentinel;
    dep_scratch = Array.make 8 0;
    reg_src = Array.make Inst.num_logical_regs sentinel;
    int_renames = 0;
    fp_renames = 0;
    fetch_resume = Time.zero;
    pending_redirect = None;
    redirect_dep = -1;
    last_fetch_line = -1;
    walker_done = false;
    stream_pos = 0;
    retired = 0;
    last_retire_time = Time.zero;
    max_insts;
    warmup_insts;
    measuring = warmup_insts = 0;
    base_time = Time.zero;
    base_cycles = 0;
    base_reconfigs = 0;
    next_sample_cycle =
      (if controller.Controller.sample_interval_cycles > 0 then
         controller.Controller.sample_interval_cycles
       else max_int);
    occ_sum = Array.make Domain.count 0.0;
    occ_ticks = 0;
    retired_at_sample = 0;
    l1d_misses_at_sample = 0;
    l2_misses_at_sample = 0;
    instr_points = 0;
    instr_overhead_ps = 0;
    sampler = Option.map Sampler.create sampling;
    extrap_ps = 0;
    extrap_cycles = 0;
    extrap_pj = Array.make (Domain.count + 1) 0.0;
    extrap_crossings = 0;
    extrap_penalties = 0;
    extrap_reconfigs = 0;
    extrap_instr_points = 0;
    extrap_instr_ps = 0;
    sink;
    next_obs_cycle =
      (match sink with Some s -> Sink.stride_cycles s | None -> max_int);
    obs_prev_cycles = 0;
    obs_prev_retired = 0;
    obs_prev_pj =
      (match sink with
      | Some _ -> Array.make (Domain.count + 1) 0.0
      | None -> [||]);
    obs_mhz =
      (match sink with Some _ -> Array.make Domain.count 0.0 | None -> [||]);
    obs_volt =
      (match sink with Some _ -> Array.make Domain.count 0.0 | None -> [||]);
    obs_occ =
      (match sink with Some _ -> Array.make Domain.count 0.0 | None -> [||]);
    obs_pj =
      (match sink with
      | Some _ -> Array.make (Domain.count + 1) 0.0
      | None -> [||]);
    obs_freq_hist =
      (match sink with
      | Some s ->
          Array.init Domain.count (fun i ->
              Mcd_obs.Metrics.histogram (Sink.metrics s)
                (Printf.sprintf "freq_residency.%s"
                   (Domain.name (Domain.of_index i)))
                ~bins:Freq.num_steps)
      | None -> [||]);
  }

let clock t domain = t.clocks.(Domain.index domain)
let period t domain ~now = Clock.period_ps (clock t domain) ~now
let charge t ~now activity = Energy.Accum.charge t.energy t.dvfs ~now activity

(* Arrival time of a value produced at [when_] in [producer] into
   [consumer]'s domain. Within a domain the handoff costs the normal
   pipeline latch: the value is usable at the first edge strictly after
   production (represented as when_ + 1 ps, which pushes consumption to
   the following tick). Across domains the synchronization circuit's
   capture replaces that latch: the value is usable at the capturing
   consumer edge, one consumer cycle later when the edges conflict. *)
let cross_arrival t ~producer ~consumer ~when_ =
  if producer = consumer || t.single then when_ + 1
  else
    match t.sink with
    | None ->
        Sync.arrival ~stats:t.sync_stats ~consumer:(clock t consumer)
          ~producer_period_ps:(period t producer ~now:when_)
          ~t:when_ ()
    | Some sink ->
        let penalties_before = t.sync_stats.Sync.penalties in
        let a =
          Sync.arrival ~stats:t.sync_stats ~consumer:(clock t consumer)
            ~producer_period_ps:(period t producer ~now:when_)
            ~t:when_ ()
        in
        if t.sync_stats.Sync.penalties <> penalties_before then
          Sink.sync_penalty sink ~t_ps:when_ ~domain:(Domain.index consumer);
        a

(* Cached arrival of an instruction's result into [domain]. *)
let result_arrival t inf domain =
  if inf == sentinel then Time.zero
  else begin
    assert (inf.state = Completed || inf.state = Retired_inst);
    let i = Domain.index domain in
    if inf.arrivals.(i) >= 0 then inf.arrivals.(i)
    else begin
      let a =
        cross_arrival t ~producer:inf.exec_domain ~consumer:domain
          ~when_:inf.completion
      in
      inf.arrivals.(i) <- a;
      a
    end
  end

let producers_ready t inf ~domain ~now =
  let n = Array.length inf.producers in
  let rec go i =
    if i >= n then true
    else
      let p = inf.producers.(i) in
      (p == sentinel
      || ((p.state = Completed || p.state = Retired_inst)
         && result_arrival t p domain <= now))
      && go (i + 1)
  in
  go 0

let emit_event t inf stage ~start ~duration ~deps =
  match t.probe with
  | None -> ()
  | Some probe ->
      probe.Probe.on_event
        {
          Probe.seq = inf.di.Inst.seq;
          static_id = inf.di.Inst.static_id;
          klass = inf.di.Inst.klass;
          stage;
          domain =
            (match stage with
            | Probe.Fetch_s | Probe.Dispatch_s | Probe.Retire_s ->
                Domain.Front_end
            | Probe.Execute_s -> inf.exec_domain
            | Probe.Mem_s -> Domain.Memory);
          start;
          duration;
          dep_seqs = deps;
        }

(* Sorted, deduplicated producer seqs, built in a preallocated scratch
   buffer (producer fan-in is tiny, so insertion sort wins). Only the
   probe consumes dependence edges, so call sites gate on its presence
   through [deps_of]. *)
let dep_seqs_of t inf =
  let n = Array.length inf.producers in
  if n = 0 then [||]
  else begin
    if Array.length t.dep_scratch < n then
      t.dep_scratch <- Array.make n 0;
    let scratch = t.dep_scratch in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let p = inf.producers.(i) in
      if p != sentinel then begin
        scratch.(!m) <- p.di.Inst.seq;
        incr m
      end
    done;
    for i = 1 to !m - 1 do
      let v = scratch.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && scratch.(!j) > v do
        scratch.(!j + 1) <- scratch.(!j);
        decr j
      done;
      scratch.(!j + 1) <- v
    done;
    let uniq = ref 0 in
    for i = 0 to !m - 1 do
      if i = 0 || scratch.(i) <> scratch.(!uniq - 1) then begin
        scratch.(!uniq) <- scratch.(i);
        incr uniq
      end
    done;
    Array.sub scratch 0 !uniq
  end

let deps_of t inf =
  match t.probe with None -> [||] | Some _ -> dep_seqs_of t inf

(* ------------------------------------------------------------------ *)
(* Front-end: retire, dispatch, fetch, controller sampling             *)
(* ------------------------------------------------------------------ *)

let retire_stage t ~now =
  let p = period t Domain.Front_end ~now in
  let budget = ref t.cfg.retire_width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && t.retired < t.warmup_insts + t.max_insts
    && not (Queue.is_empty t.rob)
  do
    let head = Queue.peek t.rob in
    if head.state = Completed && result_arrival t head Domain.Front_end <= now
    then begin
      ignore (Queue.pop t.rob);
      t.rob_count <- t.rob_count - 1;
      head.state <- Retired_inst;
      (* consumers hold their own reference to [head]; dropping its
         producer links frees the transitive dependency cone *)
      head.producers <- [||];
      t.retired <- t.retired + 1;
      t.last_retire_time <- now;
      (if head.di.Inst.dst >= 0 then
         if Inst.is_fp_reg head.di.Inst.dst then
           t.fp_renames <- t.fp_renames - 1
         else t.int_renames <- t.int_renames - 1);
      charge t ~now Energy.Retire;
      emit_event t head Probe.Retire_s ~start:now ~duration:p ~deps:[||];
      (* warm-up boundary: arm the measured statistics *)
      if (not t.measuring) && t.retired >= t.warmup_insts then begin
        t.measuring <- true;
        t.base_time <- now;
        t.base_cycles <- Clock.cycles (clock t Domain.Front_end);
        t.base_reconfigs <- Reconfig.writes t.reconfig;
        Energy.Accum.reset t.energy;
        t.sync_stats.Sync.crossings <- 0;
        t.sync_stats.Sync.penalties <- 0;
        t.instr_points <- 0;
        t.instr_overhead_ps <- 0;
        (* the energy accumulator was just reset; realign the sampler's
           per-domain baselines or the next pJ delta clamps to zero *)
        Array.fill t.obs_prev_pj 0 (Array.length t.obs_prev_pj) 0.0;
        (* likewise a sampler recording opened during warm-up would
           difference snapshots across the reset: discard it *)
        (match t.sampler with
        | Some s -> Sampler.abort_record s
        | None -> ())
      end;
      decr budget
    end
    else continue_ := false
  done

let queue_has_space t domain =
  match domain with
  | Domain.Integer -> not (Agequeue.is_full t.iq_int)
  | Domain.Floating -> not (Agequeue.is_full t.iq_fp)
  | Domain.Memory -> not (Agequeue.is_full t.lsq)
  | Domain.Front_end -> assert false

let rename_has_space t inf =
  let dst = inf.di.Inst.dst in
  dst < 0
  || (if Inst.is_fp_reg dst then
        t.fp_renames < t.cfg.fp_phys_regs - 32
      else t.int_renames < t.cfg.int_phys_regs - 32)

let dispatch_stage t ~now =
  let p = period t Domain.Front_end ~now in
  let budget = ref t.cfg.dispatch_width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && not (Queue.is_empty t.fetch_buf) do
    let cand = Queue.peek t.fetch_buf in
    if
      now >= cand.fetched_at + (t.cfg.decode_depth * p)
      && t.rob_count < t.cfg.rob_size
      && rename_has_space t cand
      && queue_has_space t cand.exec_domain
    then begin
      ignore (Queue.pop t.fetch_buf);
      t.fetch_buf_count <- t.fetch_buf_count - 1;
      (* capture producers at rename time *)
      cand.producers <-
        Array.map (fun r -> t.reg_src.(r)) cand.di.Inst.srcs;
      let dst = cand.di.Inst.dst in
      if dst >= 0 then begin
        t.reg_src.(dst) <- cand;
        if Inst.is_fp_reg dst then t.fp_renames <- t.fp_renames + 1
        else t.int_renames <- t.int_renames + 1
      end;
      cand.queued_at <-
        cross_arrival t ~producer:Domain.Front_end
          ~consumer:cand.exec_domain ~when_:now;
      cand.state <- In_queue;
      Queue.push cand t.rob;
      t.rob_count <- t.rob_count + 1;
      (match cand.exec_domain with
      | Domain.Integer ->
          Agequeue.push t.iq_int cand;
          charge t ~now Energy.Iq_write_int
      | Domain.Floating ->
          Agequeue.push t.iq_fp cand;
          charge t ~now Energy.Iq_write_fp
      | Domain.Memory ->
          Agequeue.push t.lsq cand;
          charge t ~now Energy.Lsq_op
      | Domain.Front_end -> assert false);
      charge t ~now Energy.Decode_rename;
      charge t ~now Energy.Rob_write;
      emit_event t cand Probe.Dispatch_s ~start:now ~duration:p ~deps:[||];
      decr budget
    end
    else continue_ := false
  done

let next_stream_event t =
  match t.pushback with
  | Some ev ->
      t.pushback <- None;
      Some ev
  | None -> Walker.next t.walker

(* Handle an I-cache access for a new fetch line. Returns true if the
   line hit; on a miss, fetch resumes once the fill returns from L2 (or
   main memory) through the domain-crossing latches. *)
let icache_access t ~now ~pc =
  let addr = pc * 4 in
  charge t ~now Energy.L1i_access;
  if Cache.access t.l1i ~addr then true
  else begin
    let at_l2 =
      cross_arrival t ~producer:Domain.Front_end ~consumer:Domain.Memory
        ~when_:now
    in
    charge t ~now Energy.L2_access;
    let l2_done =
      at_l2 + (t.cfg.l2.Config.latency_cycles * period t Domain.Memory ~now)
    in
    let fill_done =
      if Cache.access t.l2 ~addr then l2_done
      else begin
        Energy.Accum.charge t.energy t.dvfs ~now Energy.Main_memory_access;
        l2_done + Time.ns t.cfg.main_memory_ns
      end
    in
    let back =
      cross_arrival t ~producer:Domain.Memory ~consumer:Domain.Front_end
        ~when_:fill_done
    in
    t.fetch_resume <- max t.fetch_resume back;
    false
  end

let apply_reaction t ~now (reaction : Controller.reaction) =
  let charged = reaction.stall_cycles > 0 || reaction.table_reads > 0 in
  if charged then begin
    t.instr_points <- t.instr_points + 1;
    let p = period t Domain.Front_end ~now in
    let stall = reaction.stall_cycles * p in
    if stall > 0 then begin
      t.fetch_resume <- max t.fetch_resume (now + stall);
      t.instr_overhead_ps <- t.instr_overhead_ps + stall
    end;
    (* the inserted instructions' own energy: one fetched+executed
       instruction per stall cycle, plus table lookups that miss in L1
       and hit in L2 *)
    for _ = 1 to reaction.stall_cycles do
      charge t ~now Energy.Fetch;
      charge t ~now Energy.Decode_rename;
      charge t ~now Energy.Int_alu_op
    done;
    for _ = 1 to reaction.table_reads do
      charge t ~now Energy.L1d_access;
      charge t ~now Energy.L2_access
    done
  end;
  match reaction.set with
  | None -> ()
  | Some setting ->
      (match t.sink with
      | None -> ()
      | Some sink ->
          Sink.decision sink ~t_ps:now ~source:t.controller.Controller.name
            ~trigger:Sink.Marker ~setting ~detail:"marker reaction" ());
      Reconfig.write ?sink:t.sink t.reconfig setting ~now

(* Process a marker normally: probe callback, controller reaction,
   reaction cost. Returns true when the reaction stalled the front end
   (the fetch loop must stop for this cycle). *)
let process_marker t m ~now =
  (match t.probe with
  | Some probe -> probe.Probe.on_marker m ~seq:t.stream_pos
  | None -> ());
  let reaction = t.controller.Controller.on_marker m ~now in
  apply_reaction t ~now reaction;
  reaction.Controller.stall_cycles > 0

(* Snapshots include the extrapolation accumulators so a recorded span
   that itself contains skips of already-stable inner signatures still
   measures its full cost. *)
let sampler_snapshot t ~now =
  {
    Sampler.now_ps = now + t.extrap_ps;
    cycles_front = Clock.cycles (clock t Domain.Front_end) + t.extrap_cycles;
    pj =
      Array.init (Domain.count + 1) (fun i ->
          t.extrap_pj.(i)
          +.
          if i < Domain.count then
            Energy.Accum.domain_pj t.energy (Domain.of_index i)
          else Energy.Accum.external_pj t.energy);
    crossings = t.sync_stats.Sync.crossings + t.extrap_crossings;
    penalties = t.sync_stats.Sync.penalties + t.extrap_penalties;
    reconfigs = Reconfig.writes t.reconfig + t.extrap_reconfigs;
    instr_points = t.instr_points + t.extrap_instr_points;
    instr_ps = t.instr_overhead_ps + t.extrap_instr_ps;
  }

let current_targets t =
  Array.init Domain.count (fun i -> Dvfs.target_mhz t.dvfs (Domain.of_index i))

(* Fast-forward the walker across the balanced interior of a stable
   instance whose enter marker was just processed. The matching exit
   marker is pushed back so the next fetch round processes it normally
   (controller restore, probe). The recorded measure, scaled to the
   instructions actually swallowed (clamped to what is left of the
   measured window), lands in the extrapolation accumulators; the
   DVFS targets the recorded instance ended with are restored so the
   post-instance machine executes at the frequencies the exact run
   would have left behind. *)
(* Account [skipped] fast-forwarded instructions against the recorded
   measure: scale every delta by the instructions actually counted
   (an exact run would stop mid-instance at the window edge, so the
   extrapolation is clamped to what is left of the measured window)
   and restore the DVFS targets the recorded span ended with. *)
let extrapolate t s (m : Sampler.measure) ~skipped =
  Sampler.note_skipped s ~insts:skipped;
  t.stream_pos <- t.stream_pos + skipped;
  let remaining = t.warmup_insts + t.max_insts - t.retired in
  let counted = min skipped remaining in
  t.retired <- t.retired + counted;
  let scale = float_of_int counted /. float_of_int (max 1 m.Sampler.m_insts) in
  let si v = int_of_float (Float.round (scale *. float_of_int v)) in
  t.extrap_ps <- t.extrap_ps + si m.Sampler.dps;
  t.extrap_cycles <- t.extrap_cycles + si m.Sampler.dcycles;
  Array.iteri
    (fun i v -> t.extrap_pj.(i) <- t.extrap_pj.(i) +. (scale *. v))
    m.Sampler.dpj;
  t.extrap_crossings <- t.extrap_crossings + si m.Sampler.dcrossings;
  t.extrap_penalties <- t.extrap_penalties + si m.Sampler.dpenalties;
  t.extrap_reconfigs <- t.extrap_reconfigs + si m.Sampler.dreconfigs;
  t.extrap_instr_points <- t.extrap_instr_points + si m.Sampler.dinstr_points;
  t.extrap_instr_ps <- t.extrap_instr_ps + si m.Sampler.dinstr_ps;
  Array.iteri
    (fun i mhz ->
      let d = Domain.of_index i in
      if Dvfs.target_mhz t.dvfs d <> mhz then Dvfs.force t.dvfs d ~mhz)
    m.Sampler.exit_targets

(* Functional warming (the SMARTS discipline): a fast-forwarded
   instruction still touches the caches and the branch predictor —
   tags, LRU and history update as the exact run's would, with no
   timing and no energy (the recorded measure's extrapolation covers
   both). Without this, skipped phases stop evicting, the phase that
   follows a skip sees impossibly warm caches, and every measure
   recorded there under-states the machine's steady-state miss cost. *)
let warm_inst t (di : Inst.dyn) =
  let line = di.Inst.static_id lsr 4 in
  if line <> t.last_fetch_line then begin
    t.last_fetch_line <- line;
    let iaddr = di.Inst.static_id * 4 in
    if not (Cache.access t.l1i ~addr:iaddr) then
      ignore (Cache.access t.l2 ~addr:iaddr : bool)
  end;
  match di.Inst.klass with
  | Inst.Load | Inst.Store ->
      if not (Cache.access t.l1d ~addr:di.Inst.addr) then
        ignore (Cache.access t.l2 ~addr:di.Inst.addr : bool)
  | Inst.Branch ->
      ignore
        (Branch_pred.predict_and_update t.bpred ~pc:di.Inst.static_id
           ~taken:di.Inst.taken
          : bool)
  | Inst.Int_alu | Inst.Int_mult | Inst.Fp_alu | Inst.Fp_mult -> ()

let do_skip t s (m : Sampler.measure) =
  let depth = ref 1 in
  let skipped = ref 0 in
  (* the machine is drained, so [retired] is the exact stream position:
     once the swallow reaches the window edge the run is over and the
     stream need not stay consistent — stop rather than expand the rest
     of the program through the walker for nothing *)
  let cap = t.warmup_insts + t.max_insts - t.retired in
  let continue_ = ref true in
  while !continue_ && !depth > 0 && !skipped < cap do
    match Walker.next t.walker with
    | None ->
        t.walker_done <- true;
        continue_ := false
    | Some (Walker.Inst di) ->
        warm_inst t di;
        incr skipped
    | Some (Walker.Marker mk) -> (
        match mk with
        | Walker.Enter_func _ | Walker.Enter_loop _ -> incr depth
        | Walker.Exit_func _ | Walker.Exit_loop _ ->
            decr depth;
            if !depth = 0 then t.pushback <- Some (Walker.Marker mk))
  done;
  extrapolate t s m ~skipped:!skipped

(* Fast-forward from a taken back edge (already pulled off the stream)
   to the loop's final not-taken back edge, which is pushed back so
   the loop's exit runs exactly. Interior markers are balanced — every
   swallowed iteration contains only complete subtrees. *)
let do_skip_iters t s (m : Sampler.measure) ~loop_id ~bound =
  let depth = ref 0 in
  let skipped = ref 1 (* the triggering back edge itself *) in
  let cap = t.warmup_insts + t.max_insts - t.retired in
  let continue_ = ref true in
  while !continue_ && !skipped < cap do
    match Walker.next t.walker with
    | None ->
        t.walker_done <- true;
        continue_ := false
    | Some (Walker.Inst di) -> (
        match Walker.as_loop_branch ~pc:di.Inst.static_id with
        | Some l
          when !depth = 0 && l = loop_id
               && ((not di.Inst.taken) || !skipped >= bound) ->
            (* final back edge (loop over) or bucket edge reached:
               push the boundary branch back and resume exactly *)
            t.pushback <- Some (Walker.Inst di);
            continue_ := false
        | Some _ | None ->
            warm_inst t di;
            incr skipped)
    | Some (Walker.Marker mk) -> (
        match mk with
        | Walker.Enter_func _ | Walker.Enter_loop _ -> incr depth
        | Walker.Exit_func _ | Walker.Exit_loop _ -> decr depth)
  done;
  extrapolate t s m ~skipped:!skipped;
  Sampler.note_iter_boundary s

let fetch_stage t ~now =
  if now >= t.fetch_resume && t.pending_redirect = None then begin
    let p = period t Domain.Front_end ~now in
    let slots = ref t.cfg.fetch_width in
    let continue_ = ref true in
    while !continue_ && !slots > 0 do
      match next_stream_event t with
      | None ->
          t.walker_done <- true;
          continue_ := false
      | Some (Walker.Marker m) -> (
          match t.sampler with
          | None -> if process_marker t m ~now then continue_ := false
          | Some s -> (
              let drained = t.rob_count = 0 && t.fetch_buf_count = 0 in
              match
                Sampler.decide s m ~drained ~measuring:t.measuring
                  ~targets:(fun () -> current_targets t)
              with
              | Sampler.Proceed ->
                  if process_marker t m ~now then continue_ := false
              | Sampler.Wait ->
                  t.pushback <- Some (Walker.Marker m);
                  continue_ := false
              | Sampler.Record ->
                  let stalled = process_marker t m ~now in
                  Sampler.begin_record s ~snapshot:(sampler_snapshot t ~now);
                  if stalled then continue_ := false
              | Sampler.End_record ->
                  Sampler.end_record s ~snapshot:(sampler_snapshot t ~now)
                    ~targets:(current_targets t);
                  if process_marker t m ~now then continue_ := false
              | Sampler.Skip measure ->
                  ignore (process_marker t m ~now : bool);
                  do_skip t s measure;
                  continue_ := false
              | Sampler.Skip_iters _ ->
                  assert false (* only decide_backedge answers this *)))
      | Some (Walker.Inst di) ->
          if t.fetch_buf_count >= fetch_buffer_cap then begin
            (* capacity check first: a pushback here re-presents the
               instruction, so the sampler must not see it yet (its
               boundary accounting is once per event) *)
            t.pushback <- Some (Walker.Inst di);
            continue_ := false
          end
          else begin
          let fetch_it () =
            (* I-cache: access once per new line *)
            let line = di.Inst.static_id lsr 4 in
            let line_hit =
              if line = t.last_fetch_line then true
              else begin
                t.last_fetch_line <- line;
                icache_access t ~now ~pc:di.Inst.static_id
              end
            in
            let mispredicted =
              di.Inst.klass = Inst.Branch
              && not
                   (Branch_pred.predict_and_update t.bpred
                      ~pc:di.Inst.static_id ~taken:di.Inst.taken)
            in
            let inf =
              {
                di;
                state = In_fetch_buffer;
                fetched_at = now;
                queued_at = now;
                completion = max_int;
                exec_domain = exec_domain_of di.Inst.klass;
                producers = [||];
                arrivals = [| -1; -1; -1; -1 |];
                mispredicted;
              }
            in
            Queue.push inf t.fetch_buf;
            t.fetch_buf_count <- t.fetch_buf_count + 1;
            t.stream_pos <- t.stream_pos + 1;
            (match t.sampler with
            | Some s -> Sampler.note_inst s
            | None -> ());
            charge t ~now Energy.Fetch;
            (* control dependence: the first fetch after a mispredict
               recovery depends on the resolving branch; an I-cache miss
               extends the fetch event across the fill *)
            let fetch_deps =
              if t.redirect_dep >= 0 then begin
                let d = [| t.redirect_dep |] in
                t.redirect_dep <- -1;
                d
              end
              else [||]
            in
            let fetch_dur =
              if line_hit then p else max p (t.fetch_resume - now)
            in
            emit_event t inf Probe.Fetch_s ~start:now ~duration:fetch_dur
              ~deps:fetch_deps;
            if mispredicted then begin
              t.pending_redirect <- Some inf;
              continue_ := false
            end
            else if not line_hit then continue_ := false
            else decr slots
          in
          match t.sampler with
          | None -> fetch_it ()
          | Some s -> (
              match Walker.as_loop_branch ~pc:di.Inst.static_id with
              | None -> fetch_it ()
              | Some loop_id -> (
                  let drained = t.rob_count = 0 && t.fetch_buf_count = 0 in
                  match
                    Sampler.decide_backedge s ~loop_id ~taken:di.Inst.taken
                      ~drained ~measuring:t.measuring
                      ~targets:(fun () -> current_targets t)
                  with
                  | Sampler.Proceed -> fetch_it ()
                  | Sampler.Wait ->
                      t.pushback <- Some (Walker.Inst di);
                      continue_ := false
                  | Sampler.Record ->
                      Sampler.begin_record s
                        ~snapshot:(sampler_snapshot t ~now);
                      fetch_it ()
                  | Sampler.End_record ->
                      Sampler.end_record s ~snapshot:(sampler_snapshot t ~now)
                        ~targets:(current_targets t);
                      fetch_it ()
                  | Sampler.Skip _ ->
                      assert false (* only decide (markers) answers this *)
                  | Sampler.Skip_iters (measure, bound) ->
                      do_skip_iters t s measure ~loop_id ~bound;
                      continue_ := false))
          end
    done
  end

let sample_stage t ~now =
  if t.controller.Controller.sample_interval_cycles > 0 then begin
    (* The occupancy signal counts the backlog the domain itself owns:
       entries ready to issue, plus entries waiting on a producer that
       executes in this same domain. Entries stalled on another domain's
       results say nothing about this domain's speed. *)
    let ready domain queue =
      let owned inf =
        inf.queued_at <= now
        &&
        let n = Array.length inf.producers in
        let rec go i all_ready =
          if i >= n then all_ready
          else
            let p = inf.producers.(i) in
            if
              p == sentinel
              || ((p.state = Completed || p.state = Retired_inst)
                 && result_arrival t p domain <= now)
            then go (i + 1) all_ready
            else if p.exec_domain = domain then true
            else go (i + 1) false
        in
        go 0 true
      in
      Agequeue.fold (fun acc inf -> if owned inf then acc + 1 else acc) 0 queue
    in
    t.occ_sum.(Domain.index Domain.Front_end) <-
      t.occ_sum.(Domain.index Domain.Front_end)
      +. float_of_int t.fetch_buf_count;
    t.occ_sum.(Domain.index Domain.Integer) <-
      t.occ_sum.(Domain.index Domain.Integer)
      +. float_of_int (ready Domain.Integer t.iq_int);
    t.occ_sum.(Domain.index Domain.Floating) <-
      t.occ_sum.(Domain.index Domain.Floating)
      +. float_of_int (ready Domain.Floating t.iq_fp);
    t.occ_sum.(Domain.index Domain.Memory) <-
      t.occ_sum.(Domain.index Domain.Memory)
      +. float_of_int (ready Domain.Memory t.lsq);
    t.occ_ticks <- t.occ_ticks + 1;
    let front_cycles = Clock.cycles (clock t Domain.Front_end) in
    if front_cycles >= t.next_sample_cycle then begin
      let interval = t.controller.Controller.sample_interval_cycles in
      let ticks = float_of_int (max 1 t.occ_ticks) in
      let sample =
        {
          Controller.elapsed_cycles = interval;
          avg_occupancy = Array.map (fun s -> s /. ticks) t.occ_sum;
          retired = t.retired - t.retired_at_sample;
          total_retired = t.retired;
          l1d_misses = Cache.misses t.l1d - t.l1d_misses_at_sample;
          l2_misses = Cache.misses t.l2 - t.l2_misses_at_sample;
          target_mhz =
            Array.init Domain.count (fun i ->
                Dvfs.target_mhz t.dvfs (Domain.of_index i));
          current_mhz =
            Array.init Domain.count (fun i ->
                Dvfs.current_mhz t.dvfs (Domain.of_index i) ~now);
        }
      in
      (match t.controller.Controller.on_sample sample ~now with
      | None -> ()
      | Some setting ->
          (match t.sink with
          | None -> ()
          | Some sink ->
              Sink.decision sink ~t_ps:now ~source:t.controller.Controller.name
                ~trigger:Sink.Sample ~setting ~detail:"sample reaction" ());
          Reconfig.write ?sink:t.sink t.reconfig setting ~now);
      Array.fill t.occ_sum 0 Domain.count 0.0;
      t.occ_ticks <- 0;
      t.retired_at_sample <- t.retired;
      t.l1d_misses_at_sample <- Cache.misses t.l1d;
      t.l2_misses_at_sample <- Cache.misses t.l2;
      t.next_sample_cycle <- front_cycles + interval
    end
  end

(* Interval sampler for the observability sink: every [stride_cycles]
   front-end cycles, capture per-domain frequency/voltage, raw queue
   occupancy, IPC over the interval, and the per-domain energy delta.
   All scratch arrays are preallocated in [create], so a sample costs a
   few loads per domain plus one Series row append. *)
let obs_stage t ~now =
  match t.sink with
  | None -> ()
  | Some sink ->
      let cycles = Clock.cycles (clock t Domain.Front_end) in
      if cycles >= t.next_obs_cycle then begin
        let dcycles = cycles - t.obs_prev_cycles in
        let ipc =
          float_of_int (t.retired - t.obs_prev_retired)
          /. float_of_int (max 1 dcycles)
        in
        for i = 0 to Domain.count - 1 do
          let d = Domain.of_index i in
          let f = Dvfs.current_mhz t.dvfs d ~now in
          t.obs_mhz.(i) <- f;
          t.obs_volt.(i) <- Freq.voltage_f f;
          (* residency weighted by the cycles spent since the previous
             sample; the operating point is snapped to its nearest
             legal step to pick the bin *)
          Mcd_obs.Metrics.observe t.obs_freq_hist.(i)
            ~bin:(Freq.index_of (Freq.clamp (int_of_float (Float.round f))))
            ~weight:(float_of_int dcycles)
        done;
        t.obs_occ.(Domain.index Domain.Front_end) <-
          float_of_int t.fetch_buf_count;
        t.obs_occ.(Domain.index Domain.Integer) <-
          float_of_int (Agequeue.length t.iq_int);
        t.obs_occ.(Domain.index Domain.Floating) <-
          float_of_int (Agequeue.length t.iq_fp);
        t.obs_occ.(Domain.index Domain.Memory) <-
          float_of_int (Agequeue.length t.lsq);
        for i = 0 to Domain.count do
          let pj =
            if i < Domain.count then
              Energy.Accum.domain_pj t.energy (Domain.of_index i)
            else Energy.Accum.external_pj t.energy
          in
          (* the accumulator is reset at the warm-up boundary, so clamp
             the delta against a higher previous reading *)
          t.obs_pj.(i) <- Float.max 0.0 (pj -. t.obs_prev_pj.(i));
          t.obs_prev_pj.(i) <- pj
        done;
        Sink.sample sink ~t_ps:now ~cycles ~ipc ~mhz:t.obs_mhz ~volt:t.obs_volt
          ~occ:t.obs_occ ~pj:t.obs_pj;
        t.obs_prev_cycles <- cycles;
        t.obs_prev_retired <- t.retired;
        t.next_obs_cycle <- cycles + Sink.stride_cycles sink
      end

let tick_front t ~now =
  retire_stage t ~now;
  dispatch_stage t ~now;
  fetch_stage t ~now;
  sample_stage t ~now;
  obs_stage t ~now

(* ------------------------------------------------------------------ *)
(* Execution domains                                                   *)
(* ------------------------------------------------------------------ *)

let complete_branch t inf ~now =
  if inf.mispredicted then begin
    let back =
      cross_arrival t ~producer:Domain.Integer ~consumer:Domain.Front_end
        ~when_:inf.completion
    in
    let fp = period t Domain.Front_end ~now in
    t.fetch_resume <-
      max t.fetch_resume (back + (t.cfg.branch_penalty_cycles * fp));
    match t.pending_redirect with
    | Some b when b == inf ->
        t.pending_redirect <- None;
        t.redirect_dep <- inf.di.Inst.seq
    | Some _ | None -> ()
  end

let tick_exec t domain ~now =
  let p = period t domain ~now in
  let budget = ref t.cfg.issue_per_domain in
  let try_one inf =
    if !budget = 0 || inf.queued_at > now then true (* keep *)
    else if not (producers_ready t inf ~domain ~now) then true
    else begin
      let pool =
        match inf.di.Inst.klass with
        | Inst.Int_alu | Inst.Branch -> t.fu_int_alu
        | Inst.Int_mult -> t.fu_int_mult
        | Inst.Fp_alu -> t.fu_fp_alu
        | Inst.Fp_mult -> t.fu_fp_mult
        | Inst.Load | Inst.Store -> assert false
      in
      match Fu.try_issue pool ~now ~period_ps:p with
      | None -> true
      | Some completion ->
          inf.completion <- completion;
          inf.state <- Completed;
          decr budget;
          (match domain with
          | Domain.Integer ->
              charge t ~now Energy.Issue_int;
              charge t ~now Energy.Regfile_int;
              charge t ~now
                (match inf.di.Inst.klass with
                | Inst.Int_mult -> Energy.Int_mult_op
                | Inst.Int_alu | Inst.Branch | Inst.Fp_alu | Inst.Fp_mult
                | Inst.Load | Inst.Store ->
                    Energy.Int_alu_op)
          | Domain.Floating ->
              charge t ~now Energy.Issue_fp;
              charge t ~now Energy.Regfile_fp;
              charge t ~now
                (match inf.di.Inst.klass with
                | Inst.Fp_mult -> Energy.Fp_mult_op
                | Inst.Fp_alu | Inst.Int_alu | Inst.Int_mult | Inst.Branch
                | Inst.Load | Inst.Store ->
                    Energy.Fp_alu_op)
          | Domain.Memory | Domain.Front_end -> assert false);
          emit_event t inf Probe.Execute_s ~start:now
            ~duration:(completion - now) ~deps:(deps_of t inf);
          if inf.di.Inst.klass = Inst.Branch then complete_branch t inf ~now;
          false (* remove from queue *)
    end
  in
  match domain with
  | Domain.Integer -> Agequeue.filter_in_place try_one t.iq_int
  | Domain.Floating -> Agequeue.filter_in_place try_one t.iq_fp
  | Domain.Memory | Domain.Front_end -> assert false

(* ------------------------------------------------------------------ *)
(* Memory domain                                                       *)
(* ------------------------------------------------------------------ *)

let tick_mem t ~now =
  let p = period t Domain.Memory ~now in
  let ports = ref t.cfg.mem_ports in
  let try_one inf =
    if !ports = 0 || inf.queued_at > now then true
    else if not (producers_ready t inf ~domain:Domain.Memory ~now) then true
    else begin
      decr ports;
      let addr = inf.di.Inst.addr in
      assert (addr >= 0);
      charge t ~now Energy.Lsq_op;
      charge t ~now Energy.L1d_access;
      let completion =
        if Cache.access t.l1d ~addr then
          now + (t.cfg.l1d.Config.latency_cycles * p)
        else begin
          charge t ~now Energy.L2_access;
          let l2_done =
            now
            + ((t.cfg.l1d.Config.latency_cycles
               + t.cfg.l2.Config.latency_cycles)
              * p)
          in
          if Cache.access t.l2 ~addr then l2_done
          else begin
            charge t ~now Energy.Main_memory_access;
            l2_done + Time.ns t.cfg.main_memory_ns
          end
        end
      in
      inf.completion <- completion;
      inf.state <- Completed;
      emit_event t inf Probe.Mem_s ~start:now ~duration:(completion - now)
        ~deps:(deps_of t inf);
      false
    end
  in
  Agequeue.filter_in_place try_one t.lsq

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let finished t =
  t.retired >= t.warmup_insts + t.max_insts
  || (t.walker_done && t.rob_count = 0 && t.fetch_buf_count = 0
     && t.pushback = None)

let metrics t ~now =
  let per_domain =
    Array.init (Domain.count + 1) (fun i ->
        if i < Domain.count then
          Energy.Accum.domain_pj t.energy (Domain.of_index i)
        else Energy.Accum.external_pj t.energy)
  in
  let end_time = if t.retired > 0 then t.last_retire_time else now in
  (* skipped phase instances contribute analytically, from the
     extrapolation accumulators (all zero without a sampler) *)
  {
    Metrics.runtime_ps = max 0 (end_time - t.base_time) + t.extrap_ps;
    energy_pj =
      Energy.Accum.total_pj t.energy
      +. Array.fold_left ( +. ) 0.0 t.extrap_pj;
    per_domain_pj = Array.mapi (fun i v -> v +. t.extrap_pj.(i)) per_domain;
    instructions = max 0 (t.retired - min t.retired t.warmup_insts);
    cycles_front =
      Clock.cycles (clock t Domain.Front_end) - t.base_cycles
      + t.extrap_cycles;
    sync_crossings = t.sync_stats.Sync.crossings + t.extrap_crossings;
    sync_penalties = t.sync_stats.Sync.penalties + t.extrap_penalties;
    reconfigurations =
      Reconfig.writes t.reconfig - t.base_reconfigs + t.extrap_reconfigs;
    instr_points = t.instr_points + t.extrap_instr_points;
    instr_overhead_ps = t.instr_overhead_ps + t.extrap_instr_ps;
  }

let deadlock_horizon = Time.us 100_000 (* 100 ms of simulated time *)

let run ?probe ?controller ?sink ?sampling ?sampler_report ?warmup_insts
    ?(dvfs_faults = []) ~config ~program ~input ~max_insts () =
  let t =
    create ?probe ?controller ?sink ?sampling ?warmup_insts ~config ~program
      ~input ~max_insts ()
  in
  List.iter (Dvfs.inject t.dvfs) dvfs_faults;
  let now = ref Time.zero in
  let last_progress_time = ref Time.zero in
  let last_progress_count = ref 0 in
  while not (finished t) do
    if t.single then begin
      let c = t.clocks.(0) in
      let edge = Clock.next_edge c in
      now := edge;
      tick_front t ~now:edge;
      tick_exec t Domain.Integer ~now:edge;
      tick_exec t Domain.Floating ~now:edge;
      tick_mem t ~now:edge;
      Clock.advance c;
      List.iter
        (fun d -> Energy.Accum.charge_clock_tick t.energy t.dvfs ~now:edge d)
        Domain.all
    end
    else begin
      (* earliest pending edge among the four domain clocks *)
      let best = ref 0 in
      for i = 1 to Domain.count - 1 do
        if Clock.next_edge t.clocks.(i) < Clock.next_edge t.clocks.(!best)
        then best := i
      done;
      let c = t.clocks.(!best) in
      let edge = Clock.next_edge c in
      now := edge;
      (match Domain.of_index !best with
      | Domain.Front_end -> tick_front t ~now:edge
      | Domain.Integer -> tick_exec t Domain.Integer ~now:edge
      | Domain.Floating -> tick_exec t Domain.Floating ~now:edge
      | Domain.Memory -> tick_mem t ~now:edge);
      Clock.advance c;
      Energy.Accum.charge_clock_tick t.energy t.dvfs ~now:edge
        (Domain.of_index !best)
    end;
    (* deadlock detection: no retirement progress across a long horizon *)
    if t.retired > !last_progress_count then begin
      last_progress_count := t.retired;
      last_progress_time := !now
    end
    else if !now - !last_progress_time > deadlock_horizon then
      failwith
        (Printf.sprintf
           "Pipeline.run: no retirement progress for %d ps (retired=%d)"
           (!now - !last_progress_time) t.retired)
  done;
  (match (sampler_report, t.sampler) with
  | Some cell, Some s -> cell := Some (Sampler.report s)
  | (Some _ | None), _ -> ());
  metrics t ~now:!now
