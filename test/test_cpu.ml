(* Tests for the CPU substrate: caches, branch predictor, functional
   units, and the pipeline end-to-end. *)

module Config = Mcd_cpu.Config
module Cache = Mcd_cpu.Cache
module Branch_pred = Mcd_cpu.Branch_pred
module Fu = Mcd_cpu.Fu
module Pipeline = Mcd_cpu.Pipeline
module Controller = Mcd_cpu.Controller
module Probe = Mcd_cpu.Probe
module Metrics = Mcd_power.Metrics
module Domain = Mcd_domains.Domain

let qcheck ?(seed = 0xc9a) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
module Reconfig = Mcd_domains.Reconfig
module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Walker = Mcd_isa.Walker
module Inst = Mcd_isa.Inst

let small_cache =
  { Config.sets = 4; ways = 2; line_bytes = 64; latency_cycles = 1 }

(* --- Cache ---------------------------------------------------------- *)

let test_cache_cold_miss_then_hit () =
  let c = Cache.create small_cache in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0);
  Alcotest.(check bool) "hit" true (Cache.access c ~addr:0);
  Alcotest.(check bool) "same line hit" true (Cache.access c ~addr:63);
  Alcotest.(check bool) "next line miss" false (Cache.access c ~addr:64);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create small_cache in
  (* three lines mapping to set 0: line = addr/64; set = line mod 4 *)
  let a0 = 0 and a1 = 4 * 64 and a2 = 8 * 64 in
  ignore (Cache.access c ~addr:a0);
  ignore (Cache.access c ~addr:a1);
  (* touch a0 so a1 is LRU *)
  ignore (Cache.access c ~addr:a0);
  ignore (Cache.access c ~addr:a2);
  (* evicts a1 *)
  Alcotest.(check bool) "a0 still present" true (Cache.access c ~addr:a0);
  Alcotest.(check bool) "a1 evicted" false (Cache.access c ~addr:a1)

let test_cache_probe_no_side_effect () =
  let c = Cache.create small_cache in
  Alcotest.(check bool) "probe miss" false (Cache.probe c ~addr:0);
  Alcotest.(check bool) "probe did not fill" false (Cache.probe c ~addr:0);
  ignore (Cache.access c ~addr:0);
  Alcotest.(check bool) "probe hit" true (Cache.probe c ~addr:0);
  let h = Cache.hits c and m = Cache.misses c in
  ignore (Cache.probe c ~addr:0);
  Alcotest.(check int) "probe no hit count" h (Cache.hits c);
  Alcotest.(check int) "probe no miss count" m (Cache.misses c)

let test_cache_reset_stats () =
  let c = Cache.create small_cache in
  ignore (Cache.access c ~addr:0);
  Cache.reset_stats c;
  Alcotest.(check int) "hits reset" 0 (Cache.hits c);
  Alcotest.(check int) "misses reset" 0 (Cache.misses c)

let test_cache_direct_mapped_conflict () =
  let c =
    Cache.create { Config.sets = 2; ways = 1; line_bytes = 64; latency_cycles = 1 }
  in
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:(2 * 64));
  (* conflicts with addr 0 *)
  Alcotest.(check bool) "conflict evicted" false (Cache.access c ~addr:0)

(* --- Branch predictor ----------------------------------------------- *)

let test_bpred_learns_periodic () =
  let bp = Branch_pred.create () in
  (* pattern of period 4 is learnable by the 10-bit PAg history *)
  let pattern = [| true; true; true; false |] in
  for i = 0 to 399 do
    ignore (Branch_pred.predict_and_update bp ~pc:64 ~taken:pattern.(i mod 4))
  done;
  let correct = ref 0 in
  for i = 400 to 499 do
    if Branch_pred.predict_and_update bp ~pc:64 ~taken:pattern.(i mod 4) then
      incr correct
  done;
  Alcotest.(check bool) "learned pattern" true (!correct >= 95)

let test_bpred_biased_accuracy () =
  let bp = Branch_pred.create () in
  for _ = 1 to 200 do
    ignore (Branch_pred.predict_and_update bp ~pc:128 ~taken:true)
  done;
  Alcotest.(check bool) "always-taken accuracy" true
    (Branch_pred.accuracy bp > 0.9)

let test_bpred_btb_first_taken_misses () =
  let bp = Branch_pred.create () in
  (* warm the direction predictor on a different pc *)
  (* first taken encounter of a branch cannot have a BTB entry *)
  let first = Branch_pred.predict_and_update bp ~pc:4096 ~taken:true in
  Alcotest.(check bool) "first taken mispredicts" false first

let test_bpred_not_taken_needs_no_btb () =
  let bp = Branch_pred.create () in
  (* bias counters start weakly not-taken: after a few not-taken updates
     the direction alone suffices *)
  for _ = 1 to 4 do
    ignore (Branch_pred.predict_and_update bp ~pc:5000 ~taken:false)
  done;
  Alcotest.(check bool) "not-taken predicted without btb" true
    (Branch_pred.predict_and_update bp ~pc:5000 ~taken:false)

let test_bpred_counts () =
  let bp = Branch_pred.create () in
  for _ = 1 to 10 do
    ignore (Branch_pred.predict_and_update bp ~pc:1 ~taken:true)
  done;
  Alcotest.(check int) "lookups" 10 (Branch_pred.lookups bp);
  Alcotest.(check bool) "mispredicts bounded" true
    (Branch_pred.mispredictions bp <= 3)

(* --- Fu ------------------------------------------------------------- *)

let test_fu_pipelined () =
  let fu = Fu.create ~count:1 ~latency_cycles:3 ~pipelined:true in
  (match Fu.try_issue fu ~now:0 ~period_ps:1000 with
  | Some c -> Alcotest.(check int) "latency" 3000 c
  | None -> Alcotest.fail "issue failed");
  (* pipelined: can accept again next cycle *)
  Alcotest.(check bool) "busy same cycle" true
    (Fu.try_issue fu ~now:0 ~period_ps:1000 = None);
  Alcotest.(check bool) "free next cycle" true
    (Fu.try_issue fu ~now:1000 ~period_ps:1000 <> None)

let test_fu_unpipelined () =
  let fu = Fu.create ~count:1 ~latency_cycles:4 ~pipelined:false in
  ignore (Fu.try_issue fu ~now:0 ~period_ps:1000);
  Alcotest.(check bool) "busy mid-op" true
    (Fu.try_issue fu ~now:3000 ~period_ps:1000 = None);
  Alcotest.(check bool) "free after" true
    (Fu.try_issue fu ~now:4000 ~period_ps:1000 <> None);
  Alcotest.(check int) "ops" 2 (Fu.operations fu)

let test_fu_pool () =
  let fu = Fu.create ~count:2 ~latency_cycles:2 ~pipelined:false in
  Alcotest.(check bool) "unit 1" true (Fu.try_issue fu ~now:0 ~period_ps:1000 <> None);
  Alcotest.(check bool) "unit 2" true (Fu.try_issue fu ~now:0 ~period_ps:1000 <> None);
  Alcotest.(check bool) "pool exhausted" true
    (Fu.try_issue fu ~now:0 ~period_ps:1000 = None)

(* --- Pipeline -------------------------------------------------------- *)

let tiny_program ?(fp = false) ?(trips = 10) () =
  B.program ~name:"tiny" @@ fun b ->
  B.func b "kernel"
    [
      B.loop b (P.Const trips)
        [
          (if fp then
             B.straight b ~length:40 ~frac_fp_alu:0.3 ~frac_load:0.2 ()
           else B.straight b ~length:40 ~frac_load:0.2 ());
        ];
    ];
  B.func b "main" [ B.call b "kernel" ];
  "main"

let test_input = { P.input_name = "t"; scale = 1; divergence = 0.0; seed = 77 }

let run_tiny ?probe ?controller ?warmup_insts ?(max_insts = 10_000)
    ?(config = Config.alpha21264_like) ?(fp = false) ?(trips = 10) () =
  Pipeline.run ?probe ?controller ?warmup_insts ~config
    ~program:(tiny_program ~fp ~trips ())
    ~input:test_input ~max_insts ()

let test_pipeline_runs_to_completion () =
  let m = run_tiny () in
  (* program is ~430 instructions; everything retires *)
  Alcotest.(check bool) "all instructions retired" true
    (m.Metrics.instructions > 400 && m.Metrics.instructions < 500);
  Alcotest.(check bool) "time advanced" true (m.Metrics.runtime_ps > 0);
  Alcotest.(check bool) "energy accrued" true (m.Metrics.energy_pj > 0.0)

let test_pipeline_respects_window () =
  let m = run_tiny ~max_insts:100 () in
  Alcotest.(check int) "stops at window" 100 m.Metrics.instructions

let test_pipeline_deterministic () =
  let a = run_tiny () and b = run_tiny () in
  Alcotest.(check int) "same runtime" a.Metrics.runtime_ps b.Metrics.runtime_ps;
  Alcotest.(check (float 1e-9)) "same energy" a.Metrics.energy_pj
    b.Metrics.energy_pj

let test_pipeline_single_clock_no_sync () =
  let m = run_tiny ~config:(Config.single_clock ~mhz:1000) () in
  Alcotest.(check int) "no crossings" 0 m.Metrics.sync_crossings

let test_pipeline_mcd_has_sync () =
  let m = run_tiny () in
  Alcotest.(check bool) "crossings happen" true (m.Metrics.sync_crossings > 0)

let test_pipeline_half_speed_single_clock () =
  (* compute-bound program: no memory accesses, so runtime tracks the
     clock (memory-bound code would not — main memory is external) *)
  let prog =
    B.program ~name:"compute" @@ fun b ->
    B.func b "main"
      [ B.loop b (P.Const 200) [ B.straight b ~length:40 () ] ];
    "main"
  in
  let run mhz =
    Pipeline.run ~config:(Config.single_clock ~mhz) ~program:prog
      ~input:test_input ~max_insts:10_000 ()
  in
  let fast = run 1000 and slow = run 500 in
  let ratio =
    float_of_int slow.Metrics.runtime_ps /. float_of_int fast.Metrics.runtime_ps
  in
  Alcotest.(check bool) "roughly half speed" true (ratio > 1.7 && ratio < 2.3)

let test_pipeline_ipc_sane () =
  let m = run_tiny ~max_insts:5_000 () in
  let ipc = Metrics.ipc m in
  Alcotest.(check bool) "ipc positive and below width" true
    (ipc > 0.05 && ipc < 4.0)

let fixed_controller setting =
  let armed = ref true in
  {
    Controller.name = "fixed-test";
    on_marker =
      (fun _ ~now:_ ->
        if !armed then begin
          armed := false;
          { Controller.stall_cycles = 0; table_reads = 0; set = Some setting }
        end
        else Controller.no_reaction);
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }

let test_pipeline_scaling_idle_domain_free () =
  let base = run_tiny ~trips:2500 ~max_insts:100_000 () in
  let scaled =
    run_tiny ~trips:2500 ~max_insts:100_000
      ~controller:
        (fixed_controller
           (Reconfig.make ~front_end:1000 ~integer:1000 ~floating:250
              ~memory:1000))
      ()
  in
  (* integer-only code: scaling the fp domain saves energy at almost no
     performance cost *)
  Alcotest.(check bool) "energy saved" true
    (scaled.Metrics.energy_pj < base.Metrics.energy_pj);
  let degr = Metrics.perf_degradation_pct ~baseline:base scaled in
  Alcotest.(check bool) "cheap" true (degr < 2.0)

let test_pipeline_scaling_busy_domain_slows () =
  let base = run_tiny ~trips:2500 ~max_insts:100_000 () in
  let scaled =
    run_tiny ~trips:2500 ~max_insts:100_000
      ~controller:
        (fixed_controller
           (Reconfig.make ~front_end:250 ~integer:250 ~floating:1000
              ~memory:250))
      ()
  in
  let degr = Metrics.perf_degradation_pct ~baseline:base scaled in
  Alcotest.(check bool) "substantially slower" true (degr > 30.0)

let test_pipeline_reconfig_counted () =
  let m =
    run_tiny
      ~controller:
        (fixed_controller
           (Reconfig.make ~front_end:1000 ~integer:500 ~floating:500
              ~memory:1000))
      ()
  in
  Alcotest.(check int) "one reconfiguration" 1 m.Metrics.reconfigurations

let test_pipeline_instrumentation_charged () =
  let every_marker =
    {
      Controller.name = "instr-test";
      on_marker =
        (fun _ ~now:_ ->
          { Controller.stall_cycles = 9; table_reads = 1; set = None });
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  let base = run_tiny () in
  let m = run_tiny ~controller:every_marker () in
  Alcotest.(check bool) "points counted" true (m.Metrics.instr_points > 0);
  Alcotest.(check bool) "overhead charged" true
    (m.Metrics.instr_overhead_ps > 0);
  Alcotest.(check bool) "runtime grows" true
    (m.Metrics.runtime_ps > base.Metrics.runtime_ps)

let test_pipeline_sampling_hook () =
  let samples = ref 0 in
  let sampler =
    {
      Controller.name = "sampler";
      on_marker = (fun _ ~now:_ -> Controller.no_reaction);
      on_sample =
        (fun s ~now:_ ->
          incr samples;
          Alcotest.(check int) "occupancy vector sized" Domain.count
            (Array.length s.Controller.avg_occupancy);
          None);
      sample_interval_cycles = 500;
    }
  in
  let _ = run_tiny ~trips:100 ~controller:sampler ~max_insts:5_000 () in
  Alcotest.(check bool) "sampled repeatedly" true (!samples > 3)

let test_pipeline_probe_events () =
  let events = ref [] in
  let marker_seqs = ref [] in
  let probe =
    {
      Probe.on_event = (fun e -> events := e :: !events);
      on_marker = (fun _ ~seq -> marker_seqs := seq :: !marker_seqs);
    }
  in
  let m = run_tiny ~probe ~max_insts:500 () in
  let evs = !events in
  Alcotest.(check bool) "events recorded" true (List.length evs > 0);
  (* every retired instruction has a fetch and a retire event *)
  let count stage =
    List.length (List.filter (fun e -> e.Probe.stage = stage) evs)
  in
  Alcotest.(check int) "fetch events" m.Metrics.instructions (count Probe.Fetch_s);
  Alcotest.(check int) "retire events" m.Metrics.instructions
    (count Probe.Retire_s);
  List.iter
    (fun e ->
      if e.Probe.duration <= 0 then Alcotest.fail "non-positive duration";
      if e.Probe.start < 0 then Alcotest.fail "negative start")
    evs;
  Alcotest.(check bool) "markers positioned" true (List.length !marker_seqs > 0)

let test_pipeline_fp_work_uses_fp_domain () =
  let events = ref [] in
  let probe =
    {
      Probe.on_event = (fun e -> events := e :: !events);
      on_marker = (fun _ ~seq:_ -> ());
    }
  in
  let _ = run_tiny ~trips:50 ~probe ~fp:true ~max_insts:2000 () in
  let fp_events =
    List.filter
      (fun e ->
        e.Probe.stage = Probe.Execute_s && e.Probe.domain = Domain.Floating)
      !events
  in
  Alcotest.(check bool) "fp execute events exist" true
    (List.length fp_events > 100)

let test_pipeline_mem_instructions_have_mem_events () =
  let events = ref [] in
  let probe =
    {
      Probe.on_event = (fun e -> events := e :: !events);
      on_marker = (fun _ ~seq:_ -> ());
    }
  in
  let _ = run_tiny ~trips:50 ~probe ~max_insts:2000 () in
  let mem_events =
    List.filter (fun e -> e.Probe.stage = Probe.Mem_s) !events
  in
  Alcotest.(check bool) "mem events exist" true (List.length mem_events > 50);
  List.iter
    (fun e ->
      match e.Probe.klass with
      | Inst.Load | Inst.Store -> ()
      | Inst.Int_alu | Inst.Int_mult | Inst.Fp_alu | Inst.Fp_mult
      | Inst.Branch ->
          Alcotest.fail "non-memory class in mem stage")
    mem_events

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pipeline_warmup_window () =
  let full = run_tiny ~trips:200 ~max_insts:8_000 () in
  let windowed = run_tiny ~trips:200 ~warmup_insts:2_000 ~max_insts:4_000 () in
  Alcotest.(check int) "measured instructions" 4_000
    windowed.Metrics.instructions;
  Alcotest.(check bool) "windowed run shorter" true
    (windowed.Metrics.runtime_ps < full.Metrics.runtime_ps);
  Alcotest.(check bool) "windowed energy smaller" true
    (windowed.Metrics.energy_pj < full.Metrics.energy_pj);
  (* a warmed-up window has better cache behaviour than a cold start of
     the same length, so it must not cost more time per instruction *)
  let cold = run_tiny ~trips:200 ~max_insts:4_000 () in
  Alcotest.(check bool) "warm window not slower than cold" true
    (windowed.Metrics.runtime_ps <= cold.Metrics.runtime_ps)

let test_config_table_renders () =
  let s = Format.asprintf "%a" Config.pp_table Config.alpha21264_like in
  Alcotest.(check bool) "mentions ROB" true
    (String.length s > 200 && contains ~needle:"Reorder buffer" s)

(* --- qcheck: pipeline invariants over random small programs ---------- *)

let prop_pipeline_energy_positive =
  QCheck.Test.make ~name:"pipeline energy positive on random mixes" ~count:20
    QCheck.(
      triple (float_range 0.0 0.4) (float_range 0.0 0.3) (int_range 1 1000))
    (fun (fl, ff, seed) ->
      let prog =
        B.program ~name:"q" @@ fun b ->
        B.func b "main"
          [
            B.loop b (P.Const 5)
              [ B.straight b ~length:60 ~frac_load:fl ~frac_fp_alu:ff () ];
          ];
        "main"
      in
      let m =
        Pipeline.run ~config:Config.alpha21264_like ~program:prog
          ~input:{ P.input_name = "q"; scale = 1; divergence = 0.0; seed }
          ~max_insts:400 ()
      in
      m.Metrics.energy_pj > 0.0 && m.Metrics.runtime_ps > 0
      && m.Metrics.instructions > 0)

let suite =
  [
    ("cache cold miss then hit", `Quick, test_cache_cold_miss_then_hit);
    ("cache lru eviction", `Quick, test_cache_lru_eviction);
    ("cache probe no side effect", `Quick, test_cache_probe_no_side_effect);
    ("cache reset stats", `Quick, test_cache_reset_stats);
    ("cache direct-mapped conflict", `Quick, test_cache_direct_mapped_conflict);
    ("bpred learns periodic", `Quick, test_bpred_learns_periodic);
    ("bpred biased accuracy", `Quick, test_bpred_biased_accuracy);
    ("bpred first taken misses", `Quick, test_bpred_btb_first_taken_misses);
    ("bpred not-taken no btb", `Quick, test_bpred_not_taken_needs_no_btb);
    ("bpred counts", `Quick, test_bpred_counts);
    ("fu pipelined", `Quick, test_fu_pipelined);
    ("fu unpipelined", `Quick, test_fu_unpipelined);
    ("fu pool", `Quick, test_fu_pool);
    ("pipeline runs to completion", `Quick, test_pipeline_runs_to_completion);
    ("pipeline respects window", `Quick, test_pipeline_respects_window);
    ("pipeline deterministic", `Quick, test_pipeline_deterministic);
    ("pipeline single clock no sync", `Quick, test_pipeline_single_clock_no_sync);
    ("pipeline mcd has sync", `Quick, test_pipeline_mcd_has_sync);
    ("pipeline half-speed ratio", `Quick, test_pipeline_half_speed_single_clock);
    ("pipeline ipc sane", `Quick, test_pipeline_ipc_sane);
    ("pipeline idle-domain scaling free", `Quick,
     test_pipeline_scaling_idle_domain_free);
    ("pipeline busy-domain scaling slows", `Quick,
     test_pipeline_scaling_busy_domain_slows);
    ("pipeline reconfig counted", `Quick, test_pipeline_reconfig_counted);
    ("pipeline instrumentation charged", `Quick,
     test_pipeline_instrumentation_charged);
    ("pipeline sampling hook", `Quick, test_pipeline_sampling_hook);
    ("pipeline probe events", `Quick, test_pipeline_probe_events);
    ("pipeline fp domain events", `Quick, test_pipeline_fp_work_uses_fp_domain);
    ("pipeline mem events", `Quick, test_pipeline_mem_instructions_have_mem_events);
    ("pipeline warmup window", `Quick, test_pipeline_warmup_window);
    ("config table renders", `Quick, test_config_table_renders);
    qcheck prop_pipeline_energy_positive;
  ]
