(** The MediaBench half of the suite: adpcm, epic, g721, gsm, jpeg and
    mpeg2, each with encode/decode (compress/decompress) variants —
    twelve workloads mirroring the paper's Table 2 selection. *)

val adpcm_decode : Workload.t
val adpcm_encode : Workload.t
val epic_decode : Workload.t
val epic_encode : Workload.t
val g721_decode : Workload.t
val g721_encode : Workload.t
val gsm_decode : Workload.t
val gsm_encode : Workload.t
val jpeg_compress : Workload.t
val jpeg_decompress : Workload.t
val mpeg2_decode : Workload.t
val mpeg2_encode : Workload.t

val all : Workload.t list
(** In the paper's Table 2 order. *)
