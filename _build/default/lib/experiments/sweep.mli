(** Sensitivity to the slowdown threshold: Figures 10 and 11.

    The off-line and profile-based curves re-threshold retained shaker
    histograms at each delta (the expensive shaking is done once); the
    on-line curve varies the controller's aggressiveness (its IPC
    guard). Each point is (achieved slowdown, energy savings,
    energy x delay improvement) averaged across the chosen
    benchmarks. *)

type point = { slowdown : float; savings : float; ed : float }

val default_deltas : float list
(** 2, 4, 6, 8, 10, 12, 14 percent. *)

val offline_curve :
  ?workloads:Mcd_workloads.Workload.t list ->
  ?deltas:float list ->
  unit ->
  point list

val profile_curve :
  ?workloads:Mcd_workloads.Workload.t list ->
  ?deltas:float list ->
  unit ->
  point list
(** L+F, trained on the training input. *)

val online_curve :
  ?workloads:Mcd_workloads.Workload.t list ->
  ?guards:float list ->
  unit ->
  point list

val default_workloads : Mcd_workloads.Workload.t list
(** An eight-benchmark cross-section of the suite. *)

val fig10 : offline:point list -> online:point list -> profile:point list -> string
(** Energy savings vs slowdown. *)

val fig11 : offline:point list -> online:point list -> profile:point list -> string
(** Energy x delay improvement vs slowdown. *)
