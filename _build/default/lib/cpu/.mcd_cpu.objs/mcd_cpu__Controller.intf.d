lib/cpu/controller.mli: Mcd_domains Mcd_isa Mcd_util
