let all = Mediabench.all @ Spec.all

let names = List.map (fun w -> w.Workload.name) all

(* Dynamically registered workloads (generated programs). Guarded by a
   mutex because campaign sweeps register from `Mcd_util.Par` worker
   domains. *)
let registry : (string, Workload.t) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register w =
  let name = w.Workload.name in
  if List.mem name names then
    invalid_arg
      (Printf.sprintf "Suite.register: %S shadows a built-in benchmark" name);
  locked registry_mu (fun () -> Hashtbl.replace registry name w)

let registered () =
  locked registry_mu (fun () ->
      Hashtbl.fold (fun _ w acc -> w :: acc) registry []
      |> List.sort (fun a b -> compare a.Workload.name b.Workload.name))

let find_opt name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some _ as hit -> hit
  | None -> locked registry_mu (fun () -> Hashtbl.find_opt registry name)

let by_name name =
  match find_opt name with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.by_name: unknown benchmark %S (valid: %s)"
           name
           (String.concat ", " names))

let of_kind k = List.filter (fun w -> w.Workload.kind = k) all
let media = of_kind Workload.Media
let spec_int = of_kind Workload.Spec_int
let spec_fp = of_kind Workload.Spec_fp
