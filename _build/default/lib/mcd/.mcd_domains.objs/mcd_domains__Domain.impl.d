lib/mcd/domain.ml: Format Printf
