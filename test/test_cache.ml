(* Tests for the persistent content-addressed result cache: canonical
   codec round-trips (qcheck), pinned key/digest stability, store
   behaviour under corruption and concurrent writers, and the Runner
   integration (warm results byte-identical to cold). *)

module Key = Mcd_cache.Key
module Store = Mcd_cache.Store
module Metrics = Mcd_power.Metrics
module Oracle = Mcd_core.Oracle
module Path_model = Mcd_core.Path_model
module Plan_io = Mcd_core.Plan_io
module Histogram = Mcd_util.Histogram
module Runner = Mcd_experiments.Runner
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context

let qcheck ?(seed = 0xcac4e) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

(* --- temp stores ----------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let with_temp_store f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-cache-test.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.create ~dir))

let rec object_files path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.to_list (Sys.readdir path)
      |> List.concat_map (fun e -> object_files (Filename.concat path e))
  | _ -> [ path ]
  | exception Unix.Unix_error _ -> []

(* --- codec round-trips ------------------------------------------------ *)

let run_gen =
  QCheck.Gen.(
    let pos_float = float_range 0.0 1e12 in
    let* runtime_ps = int_range 0 max_int in
    let* energy_pj = pos_float in
    (* at least one domain: the codec renders the array as a comma list,
       which has no representation for zero entries (real runs always
       carry five) *)
    let* per_domain_pj = array_size (int_range 1 6) pos_float in
    let* instructions = nat in
    let* cycles_front = nat in
    let* sync_crossings = nat in
    let* sync_penalties = nat in
    let* reconfigurations = nat in
    let* instr_points = nat in
    let+ instr_overhead_ps = nat in
    {
      Metrics.runtime_ps;
      energy_pj;
      per_domain_pj;
      instructions;
      cycles_front;
      sync_crossings;
      sync_penalties;
      reconfigurations;
      instr_points;
      instr_overhead_ps;
    })

let prop_metrics_roundtrip =
  QCheck.Test.make ~name:"Metrics.run codec round-trips bit-exactly"
    ~count:200
    (QCheck.make ~print:Metrics.encode run_gen)
    (fun run ->
      match Metrics.decode (Metrics.encode run) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok run' ->
          (* Structural equality is bit-level for ints and the float
             payloads (%h is lossless); encode equality seals the
             byte-stability contract the cache depends on. *)
          run = run' && String.equal (Metrics.encode run) (Metrics.encode run'))

let analysis_gen =
  QCheck.Gen.(
    let pos_float = float_range 0.0 1e9 in
    let histogram_gen =
      let* bins = int_range 1 8 in
      let+ weights = list_size (return bins) (float_range 0.0 100.0) in
      let h = Histogram.create ~bins in
      List.iteri (fun bin weight -> Histogram.add h ~bin ~weight) weights;
      h
    in
    let segment_gen =
      let* base_ps = pos_float in
      let+ signatures =
        list_size (int_range 0 3) (array_size (int_range 1 4) pos_float)
      in
      { Path_model.base_ps; signatures }
    in
    let interval_gen =
      let* duration_ps = pos_float in
      let* histograms = option (array_size (int_range 1 3) histogram_gen) in
      let+ segments = list_size (int_range 0 3) segment_gen in
      { Oracle.duration_ps; histograms; paths = { Path_model.segments } }
    in
    let* interval_insts = int_range 1 1_000_000 in
    let+ intervals = array_size (int_range 0 4) interval_gen in
    { Oracle.interval_insts; intervals })

let prop_oracle_roundtrip =
  QCheck.Test.make ~name:"Oracle.analysis codec round-trips bit-exactly"
    ~count:50
    (QCheck.make ~print:Oracle.encode_analysis analysis_gen)
    (fun a ->
      let bytes = Oracle.encode_analysis a in
      match Oracle.decode_analysis bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok a' -> String.equal bytes (Oracle.encode_analysis a'))

(* --- key model -------------------------------------------------------- *)

(* Pinned golden key: if this test ever fails, the canonical rendering
   or digest changed and every existing cache object is silently
   unreachable — bump Key.format_version instead of repinning. The
   model segment is pinned at 2 (the attack/decay idle-streak fix): a
   pre-fix object must miss cleanly rather than serve stale numbers. *)
let test_golden_key () =
  let key =
    Key.make ~kind:"run" ~parts:[ ("policy", "baseline"); ("note", "x y") ]
  in
  Alcotest.(check string)
    "canonical" "mcd-dvfs-cache/1 model/2 kind=run policy=baseline note=x%20y"
    (Key.canonical key);
  Alcotest.(check string)
    "digest" "765ea1de1b452a5f2b587189e86322f3" (Key.digest key);
  let tricky = Key.make ~kind:"run" ~parts:[ ("v", "a%b\nc d") ] in
  Alcotest.(check string)
    "percent-encoding" "mcd-dvfs-cache/1 model/2 kind=run v=a%25b%0ac%20d"
    (Key.canonical tricky)

(* --- store ------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_temp_store @@ fun store ->
  let key = Key.make ~kind:"test" ~parts:[ ("n", "1") ] in
  Alcotest.(check bool) "empty store misses" true (Store.find store key = None);
  Store.add store key "payload bytes\n";
  Alcotest.(check (option string))
    "payload round-trips" (Some "payload bytes\n") (Store.find store key);
  let s = Store.stats store in
  Alcotest.(check int) "one store" 1 s.Store.stores;
  Alcotest.(check int) "one hit" 1 s.Store.hits;
  Alcotest.(check int) "one miss" 1 s.Store.misses

let test_store_corrupt_recomputes_and_heals () =
  with_temp_store @@ fun store ->
  let key = Key.make ~kind:"test" ~parts:[ ("n", "2") ] in
  let calls = ref 0 in
  let compute () =
    incr calls;
    "deterministic result"
  in
  let cached () =
    Store.cached store ~key ~encode:Fun.id
      ~decode:(fun s -> Ok s)
      compute
  in
  Alcotest.(check string) "cold" "deterministic result" (cached ());
  Alcotest.(check string) "warm" "deterministic result" (cached ());
  Alcotest.(check int) "computed once" 1 !calls;
  (* truncate the object: the next read must detect, recompute, heal *)
  (match object_files (Filename.concat (Store.dir store) "objects") with
  | [ path ] ->
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len / 2)
  | files -> Alcotest.failf "expected one object, found %d" (List.length files));
  Alcotest.(check string) "corrupt falls back" "deterministic result" (cached ());
  Alcotest.(check int) "recomputed" 2 !calls;
  let s = Store.stats store in
  Alcotest.(check int) "corruption counted" 1 s.Store.corrupt;
  Alcotest.(check string) "healed" "deterministic result" (cached ());
  Alcotest.(check int) "no third compute" 2 !calls

let test_store_detects_wrong_key () =
  (* An object whose embedded canonical key disagrees with the lookup
     key (digest collision, or a corrupted shard layout) must read as
     corrupt, not as a wrong answer. *)
  with_temp_store @@ fun store ->
  let a = Key.make ~kind:"test" ~parts:[ ("n", "a") ] in
  let b = Key.make ~kind:"test" ~parts:[ ("n", "b") ] in
  Store.add store a "a's payload";
  let path_of key =
    let d = Key.digest key in
    Filename.concat
      (Filename.concat (Filename.concat (Store.dir store) "objects")
         (String.sub d 0 2))
      (String.sub d 2 (String.length d - 2))
  in
  let content = In_channel.with_open_bin (path_of a) In_channel.input_all in
  let dir = Filename.dirname (path_of b) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_bin (path_of b)
    (fun oc -> Out_channel.output_string oc content);
  Alcotest.(check (option string)) "mismatched key reads as absent" None
    (Store.find store b);
  Alcotest.(check bool) "counted as corrupt" true
    ((Store.stats store).Store.corrupt >= 1);
  Alcotest.(check (option string)) "honest object still reads" (Some "a's payload")
    (Store.find store a)

let test_store_concurrent_writers () =
  with_temp_store @@ fun store ->
  let key = Key.make ~kind:"test" ~parts:[ ("n", "parallel") ] in
  let payload = String.concat "," (List.init 100 string_of_int) in
  let worker () =
    Store.cached store ~key ~encode:Fun.id
      ~decode:(fun s -> Ok s)
      (fun () -> payload)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  List.iter
    (fun r -> Alcotest.(check string) "same payload from every domain" payload r)
    results;
  Alcotest.(check (option string)) "object intact afterwards" (Some payload)
    (Store.find store key)

let test_store_gc () =
  with_temp_store @@ fun store ->
  List.iter
    (fun i ->
      Store.add store
        (Key.make ~kind:"test" ~parts:[ ("n", string_of_int i) ])
        (String.make 100 'x'))
    [ 1; 2; 3 ];
  let objects, bytes = Store.disk_usage store in
  Alcotest.(check int) "three objects" 3 objects;
  Alcotest.(check bool) "non-empty" true (bytes > 0);
  let removed, freed = Store.gc store in
  Alcotest.(check int) "gc removes all" 3 removed;
  Alcotest.(check int) "gc frees all bytes" bytes freed;
  Alcotest.(check (pair int int)) "store empty" (0, 0) (Store.disk_usage store);
  (* the sweep lands in the session counters (and therefore in exports) *)
  let s = Store.stats store in
  Alcotest.(check int) "gc_removed counted" removed s.Store.gc_removed;
  Alcotest.(check int) "gc_freed_bytes counted" freed s.Store.gc_freed_bytes;
  let m = Store.metrics store in
  Alcotest.(check int) "cache.gc_removed instrument" removed
    (Mcd_obs.Metrics.value (Mcd_obs.Metrics.counter m "cache.gc_removed"))

(* --- Runner integration ----------------------------------------------- *)

let test_runner_warm_results_byte_identical () =
  with_temp_store @@ fun store ->
  Fun.protect
    ~finally:(fun () -> Store.set_default None)
    (fun () ->
      Store.set_default (Some store);
      let w = Suite.by_name "adpcm decode" in
      Runner.clear_caches ();
      let cold_run = Runner.baseline w in
      let cold_plan = Runner.plan_for w ~context:Context.lf ~train:`Train in
      let s0 = Store.stats store in
      Alcotest.(check bool) "cold pass stores objects" true
        (s0.Store.stores >= 2);
      Runner.clear_caches ();
      let warm_run = Runner.baseline w in
      let warm_plan = Runner.plan_for w ~context:Context.lf ~train:`Train in
      let s1 = Store.stats store in
      Alcotest.(check bool) "warm pass hits the disk" true
        (s1.Store.hits - s0.Store.hits >= 2);
      Alcotest.(check string) "runs byte-identical"
        (Metrics.encode cold_run) (Metrics.encode warm_run);
      Alcotest.(check string) "plans byte-identical"
        (Plan_io.to_string cold_plan)
        (Plan_io.to_string warm_plan))

let suite =
  [
    qcheck prop_metrics_roundtrip;
    qcheck prop_oracle_roundtrip;
    ("golden key and digest pinned", `Quick, test_golden_key);
    ("store round-trip", `Quick, test_store_roundtrip);
    ( "corrupt object recomputes and heals",
      `Quick,
      test_store_corrupt_recomputes_and_heals );
    ("wrong embedded key reads as corrupt", `Quick, test_store_detects_wrong_key);
    ("concurrent writers agree", `Quick, test_store_concurrent_writers);
    ("gc clears the store", `Quick, test_store_gc);
    ( "runner warm results byte-identical",
      `Slow,
      test_runner_warm_results_byte_identical );
  ]
