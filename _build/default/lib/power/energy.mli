(** Wattch-style event-based energy accounting.

    Every microarchitectural activity is charged a base energy (pJ at
    full voltage) against the domain that performs it, scaled by
    [(V/Vmax)^2] at the domain's instantaneous operating point. Each
    domain additionally pays a per-cycle clock-tree energy (V^2-scaled;
    paying per cycle means total clock energy tracks work, as in Wattch's
    conditional-clocking mode) and a leakage energy proportional to wall
    time and voltage. Accesses to external main memory are never
    scaled. *)

(** Chargeable activities. *)
type activity =
  | Fetch  (** per fetched instruction, front-end *)
  | Decode_rename  (** per dispatched instruction, front-end *)
  | Rob_write  (** ROB allocate, front-end *)
  | Retire  (** commit, front-end *)
  | Iq_write_int  (** integer issue-queue insert *)
  | Iq_write_fp
  | Issue_int  (** wakeup/select, integer domain *)
  | Issue_fp
  | Int_alu_op
  | Int_mult_op
  | Fp_alu_op
  | Fp_mult_op
  | Regfile_int  (** integer register file access *)
  | Regfile_fp
  | L1i_access  (** front-end domain *)
  | L1d_access  (** memory domain *)
  | L2_access  (** memory domain *)
  | Lsq_op  (** load/store queue operation *)
  | Main_memory_access  (** external, unscaled *)

val base_pj : activity -> float
(** Energy at 1.2 V, in picojoules. *)

val domain_of : activity -> Mcd_domains.Domain.t option
(** Owning domain; [None] for external main memory. *)

val clock_tree_pj_per_cycle : Mcd_domains.Domain.t -> float
val leakage_pj_per_ns : Mcd_domains.Domain.t -> float

(** Accumulates energy per domain (plus external). *)
module Accum : sig
  type t

  val create : unit -> t

  val charge :
    t -> Mcd_domains.Dvfs.t -> now:Mcd_util.Time.t -> activity -> unit
  (** Charge one activity at the owning domain's current voltage. *)

  val charge_clock_tick :
    t -> Mcd_domains.Dvfs.t -> now:Mcd_util.Time.t -> Mcd_domains.Domain.t -> unit
  (** Per-cycle clock-tree energy plus leakage for one period at the
      current operating point. *)

  val charge_raw : t -> Mcd_domains.Domain.t option -> pj:float -> unit
  (** Unscaled charge (used for fixed instrumentation-point penalties). *)

  val domain_pj : t -> Mcd_domains.Domain.t -> float
  val external_pj : t -> float
  val total_pj : t -> float

  val reset : t -> unit
  (** Zero all accumulators (start of a measurement window). *)
end
