lib/workloads/suite.ml: List Mediabench Spec Workload
