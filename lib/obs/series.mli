(** Interval time-series storage for the sampler.

    Struct-of-arrays layout: one flat float array per column family, so
    appending a sample copies a handful of floats and never boxes.
    Capacity doubles on demand; rows are never removed. Per-domain
    columns ([mhz], [volt], [occ]) hold [domains] entries per row; the
    energy column holds [domains + 1] (the extra slot is
    external/off-domain energy). *)

type t

type row = {
  t_ps : int;
  cycles : int;
  ipc : float;
  mhz : float array;
  volt : float array;
  occ : float array;
  pj : float array; (* length domains + 1; last entry is external energy *)
}

val create : ?initial_capacity:int -> domains:int -> unit -> t
val domains : t -> int
val length : t -> int

val append :
  t ->
  t_ps:int ->
  cycles:int ->
  ipc:float ->
  mhz:float array ->
  volt:float array ->
  occ:float array ->
  pj:float array ->
  unit
(** Copies the caller's scratch arrays into the columns. [mhz], [volt]
    and [occ] must have length [domains]; [pj] must have
    [domains + 1]. Raises [Invalid_argument] otherwise. *)

val get : t -> int -> row
(** Materialises row [i] (fresh arrays); intended for export, not the
    hot path. *)

val iter : (row -> unit) -> t -> unit
