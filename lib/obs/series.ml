type t = {
  domains : int;
  mutable cap : int;
  mutable len : int;
  mutable t_ps : int array;
  mutable cycles : int array;
  mutable ipc : float array;
  mutable mhz : float array; (* cap * domains *)
  mutable volt : float array; (* cap * domains *)
  mutable occ : float array; (* cap * domains *)
  mutable pj : float array; (* cap * (domains + 1) *)
}

type row = {
  t_ps : int;
  cycles : int;
  ipc : float;
  mhz : float array;
  volt : float array;
  occ : float array;
  pj : float array;
}

let create ?(initial_capacity = 256) ~domains () =
  if domains <= 0 then invalid_arg "Series.create: domains must be positive";
  let cap = max 1 initial_capacity in
  {
    domains;
    cap;
    len = 0;
    t_ps = Array.make cap 0;
    cycles = Array.make cap 0;
    ipc = Array.make cap 0.0;
    mhz = Array.make (cap * domains) 0.0;
    volt = Array.make (cap * domains) 0.0;
    occ = Array.make (cap * domains) 0.0;
    pj = Array.make (cap * (domains + 1)) 0.0;
  }

let domains t = t.domains
let length t = t.len

let grow_float old cap' =
  let fresh = Array.make cap' 0.0 in
  Array.blit old 0 fresh 0 (Array.length old);
  fresh

let grow t =
  let cap' = t.cap * 2 in
  let ints old =
    let fresh = Array.make cap' 0 in
    Array.blit old 0 fresh 0 (Array.length old);
    fresh
  in
  t.t_ps <- ints t.t_ps;
  t.cycles <- ints t.cycles;
  t.ipc <- grow_float t.ipc cap';
  t.mhz <- grow_float t.mhz (cap' * t.domains);
  t.volt <- grow_float t.volt (cap' * t.domains);
  t.occ <- grow_float t.occ (cap' * t.domains);
  t.pj <- grow_float t.pj (cap' * (t.domains + 1));
  t.cap <- cap'

let append t ~t_ps ~cycles ~ipc ~mhz ~volt ~occ ~pj =
  if
    Array.length mhz <> t.domains
    || Array.length volt <> t.domains
    || Array.length occ <> t.domains
    || Array.length pj <> t.domains + 1
  then invalid_arg "Series.append: column arity mismatch";
  if t.len = t.cap then grow t;
  let i = t.len in
  t.t_ps.(i) <- t_ps;
  t.cycles.(i) <- cycles;
  t.ipc.(i) <- ipc;
  Array.blit mhz 0 t.mhz (i * t.domains) t.domains;
  Array.blit volt 0 t.volt (i * t.domains) t.domains;
  Array.blit occ 0 t.occ (i * t.domains) t.domains;
  Array.blit pj 0 t.pj (i * (t.domains + 1)) (t.domains + 1);
  t.len <- i + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  {
    t_ps = t.t_ps.(i);
    cycles = t.cycles.(i);
    ipc = t.ipc.(i);
    mhz = Array.sub t.mhz (i * t.domains) t.domains;
    volt = Array.sub t.volt (i * t.domains) t.domains;
    occ = Array.sub t.occ (i * t.domains) t.domains;
    pj = Array.sub t.pj (i * (t.domains + 1)) (t.domains + 1);
  }

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done
