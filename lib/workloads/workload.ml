type kind = Media | Spec_int | Spec_fp | Generated

type t = {
  name : string;
  program : Mcd_isa.Program.t;
  train : Mcd_isa.Program.input;
  reference : Mcd_isa.Program.input;
  train_window : int;
  ref_window : int;
  ref_offset : int;
  kind : kind;
  trait : string;
}

let seed_of_string s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  !h land 0x3FFFFFFF

let make ~name ~program ?(train_scale = 8) ?(ref_scale = 24)
    ?(train_divergence = 0.0) ?(ref_divergence = 0.0)
    ?(train_window = 60_000) ?(ref_window = 150_000) ?(ref_offset = 0) ~kind
    ~trait () =
  {
    name;
    program;
    train =
      {
        Mcd_isa.Program.input_name = "train";
        scale = train_scale;
        divergence = train_divergence;
        seed = seed_of_string (name ^ ":train");
      };
    reference =
      {
        Mcd_isa.Program.input_name = "ref";
        scale = ref_scale;
        divergence = ref_divergence;
        seed = seed_of_string (name ^ ":ref");
      };
    train_window;
    ref_window;
    ref_offset;
    kind;
    trait;
  }

let kind_name = function
  | Media -> "MediaBench"
  | Spec_int -> "SPECint"
  | Spec_fp -> "SPECfp"
  | Generated -> "generated"
