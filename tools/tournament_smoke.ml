(* Tournament smoke test for the @verify alias.

   Runs the real CLI — `mcd-dvfs tournament --quick --json FILE` — and
   asserts the contract the docs promise: the command exits 0, every
   policy registered in Mcd_control.Policies appears in the ranked
   table, the rank column counts 1..N in order, and the JSON report
   parses with one well-formed entry per contender across the quick
   workload subset.

   The CLI executable path arrives as argv(1) from the dune rule, so
   the test always runs the binary built from this tree. A dedicated
   warm cache directory keeps repeat verifies cheap without sharing
   state with the bench rule (which GCs its own directory).

   Exits 0 on success, 1 with a message on the first violation. *)

module Policies = Mcd_control.Policies
module Policy = Mcd_control.Policy
module Json = Mcd_obs.Json

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "tournament_smoke: FAIL %s\n%!" msg
      end)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let cli =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else failwith "usage: tournament_smoke MCD_DVFS_CLI"
  in
  let out = Filename.temp_file "mcd-tournament" ".out" in
  let json_path = Filename.temp_file "mcd-tournament" ".json" in
  let cmd =
    Printf.sprintf
      "%s tournament --quick --jobs 0 --json %s --cache-dir \
       /tmp/mcd-tournament-cache.verify > %s"
      (Filename.quote cli) (Filename.quote json_path) (Filename.quote out)
  in
  let rc = Sys.command cmd in
  check (rc = 0) "exit code %d from %s" rc cmd;
  let table = read_file out in
  let contenders = Policies.contenders () in
  check
    (List.length contenders >= 6)
    "registry has %d contenders, want >= 6"
    (List.length contenders);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun p ->
      check
        (contains table p.Policy.label)
        "policy %S missing from the ranked table" p.Policy.label)
    contenders;
  (* the rank column must count 1..N in order: each table body row is
     "  <rank>  <label>  ..." after the header and separator lines *)
  let body_ranks =
    String.split_on_char '\n' table
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | first :: _ -> int_of_string_opt first
           | [] -> None)
  in
  check
    (body_ranks = List.init (List.length contenders) (fun i -> i + 1))
    "rank column is %s, want 1..%d"
    (String.concat "," (List.map string_of_int body_ranks))
    (List.length contenders);
  (match Json.of_string (read_file json_path) with
  | Error e -> check false "JSON report does not parse: %s" e
  | Ok j ->
      check
        (Option.bind (Json.member "schema" j) Json.to_string_opt
        = Some "mcd-dvfs-tournament/1")
        "bad or missing schema";
      let workloads =
        Option.bind (Json.member "workloads" j) Json.to_list_opt
        |> Option.value ~default:[]
      in
      check
        (List.length workloads = 5)
        "JSON lists %d workloads, want the 5 quick ones"
        (List.length workloads);
      let entries =
        Option.bind (Json.member "entries" j) Json.to_list_opt
        |> Option.value ~default:[]
      in
      check
        (List.length entries = List.length contenders)
        "JSON has %d entries, want %d" (List.length entries)
        (List.length contenders);
      List.iter
        (fun e ->
          let str k = Option.bind (Json.member k e) Json.to_string_opt in
          let num k = Option.bind (Json.member k e) Json.to_float_opt in
          check (str "policy" <> None) "entry without a policy label";
          check
            (Option.bind (Json.member "rank" e) Json.to_int_opt <> None)
            "entry without a rank";
          List.iter
            (fun axis ->
              check (num axis <> None) "entry %s without %s"
                (Option.value ~default:"?" (str "policy"))
                axis)
            [ "degradation_pct"; "savings_pct"; "ed_improvement_pct" ])
        entries);
  Sys.remove out;
  Sys.remove json_path;
  if !failures > 0 then exit 1;
  print_endline "tournament_smoke: OK"
