(** Interface between the pipeline and a run-time reconfiguration policy.

    The pipeline delivers two kinds of hooks. Phase markers (function and
    loop boundaries, exactly where edited binaries carry instrumentation)
    reach [on_marker]; the policy's reaction says what the inserted code
    would have cost (front-end stall cycles and table lookups, per the
    paper's fixed-penalty emulation) and whether the reconfiguration
    register is written. Periodic hardware samples reach [on_sample];
    the on-line attack/decay controller lives there. *)

type sample = {
  elapsed_cycles : int;  (** front-end cycles since the previous sample *)
  avg_occupancy : float array;
      (** mean domain-owned queue backlog per
          {!Mcd_domains.Domain.index} (entries ready to issue or waiting
          on a same-domain producer); front-end entry is the
          fetch-buffer occupancy *)
  retired : int;  (** instructions retired during the interval *)
  total_retired : int;  (** instructions retired since the run began *)
  l1d_misses : int;
      (** L1 D-cache misses during the interval — the memory-boundedness
          signal cache-aware policies react to *)
  l2_misses : int;
      (** unified-L2 misses during the interval (each one is a trip to
          external memory) *)
  target_mhz : int array;
      (** programmed DVFS target per {!Mcd_domains.Domain.index} — what
          the hardware {e admits} it was asked for, which a watchdog can
          compare against what the policy {e believes} it asked for
          (a lost or ignored reconfiguration write shows up here) *)
  current_mhz : float array;
      (** instantaneous operating point per domain; together with
          [target_mhz] this exposes slews that never complete *)
}

type reaction = {
  stall_cycles : int;
      (** front-end cycles charged for the inserted instrumentation *)
  table_reads : int;
      (** label/frequency table lookups, charged as L2 accesses *)
  set : Mcd_domains.Reconfig.setting option;
      (** write the reconfiguration register *)
}

val no_reaction : reaction

type t = {
  name : string;
  on_marker : Mcd_isa.Walker.marker -> now:Mcd_util.Time.t -> reaction;
  on_sample :
    sample -> now:Mcd_util.Time.t -> Mcd_domains.Reconfig.setting option;
  sample_interval_cycles : int;
      (** front-end cycles between [on_sample] calls; 0 disables
          sampling *)
}

val nop : t
(** The MCD baseline: never reacts, never samples. *)
