lib/experiments/sweep.ml: List Mcd_control Mcd_profiling Mcd_util Mcd_workloads Runner
