test/test_experiments.ml: Alcotest Float List Mcd_domains Mcd_experiments Mcd_power Mcd_profiling Mcd_workloads String
