lib/cpu/config.mli: Format
