module Error = Mcd_robust.Error

type t = {
  socket : string;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  version : int;
  workers : int;
  queue_max : int;
}

let version t = t.version
let workers t = t.workers
let queue_max t = t.queue_max

let transport_error t message =
  Error.Server_unavailable { socket = t.socket; message }

let ( let* ) = Result.bind

(* --- wire primitives --------------------------------------------------- *)

let read_reply_line socket ic =
  match input_line ic with
  | line -> (
      match Protocol.parse_reply line with
      | Ok reply -> Ok reply
      | Result.Error reason -> Result.Error (Error.Protocol_violation { line; reason }))
  | exception (End_of_file | Sys_error _) ->
      Result.Error
        (Error.Server_unavailable
           { socket; message = "connection closed by server" })

let roundtrip t cmd =
  match
    output_string t.oc (Protocol.render_command cmd ^ "\n");
    flush t.oc
  with
  | () -> read_reply_line t.socket t.ic
  | exception Sys_error _ ->
      Result.Error (transport_error t "connection closed by server")

(* After a [Payload]/[Stats_payload] header: exactly [bytes] bytes of
   body, then the ["end"] trailer line. *)
let read_body t bytes =
  match
    let buf = Bytes.create bytes in
    really_input t.ic buf 0 bytes;
    (Bytes.unsafe_to_string buf, input_line t.ic)
  with
  | body, "end" -> Ok body
  | _, trailer ->
      Result.Error
        (Error.Protocol_violation
           { line = trailer; reason = "expected payload trailer \"end\"" })
  | exception (End_of_file | Sys_error _) ->
      Result.Error (transport_error t "connection closed mid-payload")

let unexpected reply reason =
  Result.Error
    (Error.Protocol_violation { line = Protocol.render_reply reply; reason })

(* --- connection lifecycle ---------------------------------------------- *)

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Result.Error
        (Error.Server_unavailable { socket; message = Unix.error_message e })
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let fail e =
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Result.Error e
      in
      match read_reply_line socket ic with
      | Result.Error e -> fail e
      | Ok (Protocol.Ready { version; workers; queue_max }) ->
          if version <> Protocol.version then
            fail
              (Error.Protocol_violation
                 {
                   line = Printf.sprintf "mcd-serve/%d" version;
                   reason =
                     Printf.sprintf "unsupported protocol version (want %d)"
                       Protocol.version;
                 })
          else Ok { socket; fd; ic; oc; version; workers; queue_max }
      | Ok reply -> fail (Result.get_error (unexpected reply "expected greeting")))

let close t =
  (try
     output_string t.oc (Protocol.render_command Protocol.Quit ^ "\n");
     flush t.oc
   with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

(* --- commands ----------------------------------------------------------- *)

let ping t =
  let* reply = roundtrip t Protocol.Ping in
  match reply with
  | Protocol.Pong -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected pong"

type ticket = { id : int; digest : string; coalesced : bool }

let submit ?(priority = Protocol.Normal) t request =
  let* reply = roundtrip t (Protocol.Submit { priority; request }) in
  match reply with
  | Protocol.Queued_reply { id; digest; coalesced } ->
      Ok { id; digest; coalesced }
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected queued"

let state_of_reply ~verb reply =
  match reply with
  | Protocol.Status_reply { state; _ } -> Ok state
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply (Printf.sprintf "expected status for %s" verb)

let status t id =
  let* reply = roundtrip t (Protocol.Status id) in
  state_of_reply ~verb:"status" reply

let wait t id =
  let* reply = roundtrip t (Protocol.Wait id) in
  state_of_reply ~verb:"wait" reply

let result t id =
  let* reply = roundtrip t (Protocol.Result id) in
  match reply with
  | Protocol.Payload { bytes; _ } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected payload"

let run ?priority t request =
  let* ticket = submit ?priority t request in
  let* state = wait t ticket.id in
  match state with
  | Protocol.Failed message ->
      Result.Error
        (Error.Runtime_fault
           { where = Printf.sprintf "job %d" ticket.id; detail = message })
  | Protocol.Done | Protocol.Queued | Protocol.Running -> result t ticket.id

let stats t =
  let* reply = roundtrip t Protocol.Stats in
  match reply with
  | Protocol.Stats_payload { bytes } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected stats-payload"

let drain t =
  let* reply = roundtrip t Protocol.Drain in
  match reply with
  | Protocol.Draining_reply -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected draining"
