module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

type segment = { base_ps : float; signatures : float array list }
type t = { segments : segment list }

let empty = { segments = [] }
let add_segment t s = { segments = s :: t.segments }
let union a b = { segments = a.segments @ b.segments }

let fmax = float_of_int Freq.fmax_mhz

(* Signatures carry per-domain scaling time in the first Domain.count
   entries and a frequency-independent constant in the last. *)
let segment_time seg (setting : Reconfig.setting) =
  List.fold_left
    (fun acc signature ->
      let len = ref 0.0 in
      Array.iteri
        (fun d w ->
          if d < Domain.count then
            len := !len +. (w *. (fmax /. float_of_int setting.(d)))
          else len := !len +. w)
        signature;
      Float.max acc !len)
    0.0 seg.signatures

let estimated_slowdown_pct t setting =
  let scaled, base =
    List.fold_left
      (fun (s, b) seg -> (s +. segment_time seg setting, b +. seg.base_ps))
      (0.0, 0.0) t.segments
  in
  if base <= 0.0 then 0.0 else 100.0 *. ((scaled /. base) -. 1.0)

(* Slight overshoot allowance: the estimate is a max over sampled paths
   (the paper's own delay calculation is "by necessity approximate"). *)
let tolerance_factor = 1.0

let refine t setting ~slowdown_pct =
  let setting = Array.copy setting in
  let budget = slowdown_pct *. tolerance_factor in
  let bumpable () =
    List.filter (fun d -> setting.(Domain.index d) < Freq.fmax_mhz) Domain.all
  in
  let continue_ = ref true in
  while !continue_ && estimated_slowdown_pct t setting > budget do
    match bumpable () with
    | [] -> continue_ := false
    | candidates ->
        (* bump the domain whose single-step raise helps most *)
        let best =
          List.fold_left
            (fun best d ->
              let i = Domain.index d in
              let saved = setting.(i) in
              setting.(i) <- Freq.clamp (saved + Freq.step_mhz);
              let est = estimated_slowdown_pct t setting in
              setting.(i) <- saved;
              match best with
              | Some (_, best_est) when best_est <= est -> best
              | Some _ | None -> Some (d, est))
            None candidates
        in
        (match best with
        | Some (d, _) ->
            let i = Domain.index d in
            setting.(i) <- Freq.clamp (setting.(i) + Freq.step_mhz)
        | None -> continue_ := false)
  done;
  setting
