lib/cpu/cache.mli: Config
