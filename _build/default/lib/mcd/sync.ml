module Time = Mcd_util.Time

let window_fraction = 0.30

type stats = { mutable crossings : int; mutable penalties : int }

let create_stats () = { crossings = 0; penalties = 0 }

let arrival ?stats ~consumer ~producer_period_ps ~t () =
  let edge = Clock.project_edge consumer ~at_or_after:t in
  let consumer_period = Clock.period_ps consumer ~now:t in
  let faster_period = min producer_period_ps consumer_period in
  let window = int_of_float (window_fraction *. float_of_int faster_period) in
  let distance = edge - t in
  (match stats with Some s -> s.crossings <- s.crossings + 1 | None -> ());
  (* The producing edge is unsafe when it falls within the window of
     either surrounding consumer edge (setup violation against the
     capturing edge, or hold violation against the edge just missed). *)
  if distance < window || consumer_period - distance < window then begin
    (match stats with Some s -> s.penalties <- s.penalties + 1 | None -> ());
    edge + consumer_period
  end
  else edge
