(** Combining branch predictor per Table 1.

    A bimodal predictor (1024 two-bit counters) and a two-level PAg
    predictor (1024-entry per-address history of 10 bits indexing a
    1024-entry pattern table) are arbitrated by a 4096-entry meta
    predictor. A 4096-set 2-way BTB supplies targets: a taken branch that
    misses in the BTB is treated as a misprediction even if its direction
    was predicted correctly. *)

type t

val create : unit -> t

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** Run the full prediction for the branch at [pc] whose resolved
    outcome is [taken], update all tables, and return whether the
    prediction (direction and, for taken branches, target) was
    correct. *)

val lookups : t -> int
val mispredictions : t -> int

val accuracy : t -> float
(** Fraction of correct predictions; 1.0 when no lookups were made. *)
