module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq

let frequency ~where mhz =
  let snapped = Freq.clamp mhz in
  if snapped = mhz then (mhz, None)
  else
    ( snapped,
      Some (Error.Illegal_frequency { where; requested_mhz = mhz; snapped_mhz = snapped })
    )

let frequency_fatal mhz = mhz < Freq.fmin_mhz || mhz > Freq.fmax_mhz

let setting ~where s =
  if Array.length s <> Domain.count then
    Result.Error
      (Error.Bad_setting_arity
         { where; expected = Domain.count; found = Array.length s })
  else
    match Array.to_list s |> List.find_opt frequency_fatal with
    | Some bad ->
        Result.Error
          (Error.Illegal_frequency
             { where; requested_mhz = bad; snapped_mhz = Freq.clamp bad })
    | None ->
        let errors = ref [] in
        let repaired =
          Array.map
            (fun mhz ->
              let mhz', err = frequency ~where mhz in
              Option.iter (fun e -> errors := e :: !errors) err;
              mhz')
            s
        in
        Result.Ok (repaired, List.rev !errors)

let weight ~node ~domain ~bin w =
  if Float.is_nan w || w < 0.0 then
    (0.0, Some (Error.Bad_histogram_weight { node; domain; bin; weight = w }))
  else (w, None)

let slowdown_pct v =
  if Float.is_nan v || v < 0.0 then (0.0, Some (Error.Bad_slowdown { value = v }))
  else (v, None)
