test/test_util.ml: Alcotest Float Format Gen List Mcd_util QCheck QCheck_alcotest String
