let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      (* a real guard, not [assert]: release builds compile assertions
         away and log-of-nonpositive garbage would flow silently into
         the headline tables *)
      if not (List.for_all (fun x -> x > 0.0) xs) then
        invalid_arg "Stats.geomean: nonpositive element";
      let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let ratio_percent_change ~baseline ~value =
  if baseline = 0.0 then 0.0 else 100.0 *. (value -. baseline) /. baseline
