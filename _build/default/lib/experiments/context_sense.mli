(** Calling-context sensitivity and instrumentation cost: Figures 8, 9
    and 12, and Table 4.

    Each of the six context definitions is trained on the training input
    and evaluated on the reference input. Figures 8/9 report the
    applications whose behaviour varies with context; Figure 12 compares
    static point counts and run-time overhead across definitions,
    normalised to L+F+C+P; Table 4 details the L+F+C+P costs per
    benchmark. *)

type row = {
  workload : Mcd_workloads.Workload.t;
  context : Mcd_profiling.Context.t;
  cmp : Runner.comparison;
  static_reconfig : int;
  static_instr : int;  (** includes reconfiguration points *)
  dyn_reconfig : int;
  dyn_instr : int;  (** instrumentation-only executions *)
  overhead_pct : float;  (** instrumentation time / total runtime *)
  table_bytes : int;
      (** estimated size of the edited binary's lookup tables: the
          2-D node-label table plus the per-node frequency table
          (Section 4.4 of the paper); 0 for contexts that track no
          paths *)
}

val rows :
  ?workloads:Mcd_workloads.Workload.t list ->
  ?contexts:Mcd_profiling.Context.t list ->
  unit ->
  row list

val default_workloads : Mcd_workloads.Workload.t list
(** The applications the paper's Figures 8/9 discuss: mpeg2 decode,
    epic encode, the adpcm and gsm codecs, mpeg2 encode, applu, art. *)

val fig8 : row list -> string
(** Performance degradation by context definition. *)

val fig9 : row list -> string
(** Energy savings by context definition. *)

val fig12 : row list -> string
(** Static reconfiguration / instrumentation points and run-time
    overhead, averaged over benchmarks, normalised to L+F+C+P. *)

val table4 : row list -> string
(** Per-benchmark static & dynamic points and overhead for L+F+C+P. *)
