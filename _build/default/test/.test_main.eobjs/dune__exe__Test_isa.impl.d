test/test_isa.ml: Alcotest Array Fun List Mcd_isa QCheck QCheck_alcotest
