(** Structured program representation.

    Workloads are written in a small structured IR rather than as native
    binaries: a program is a set of functions whose bodies are statement
    lists — straight-line instruction blocks, counted loops, call sites,
    and input-dependent path choices. The IR preserves exactly the
    structure the paper's ATOM-based profiler recovers from Alpha
    binaries (subroutines, loops as strongly connected components, call
    sites), so the profiling and binary-editing phases operate on
    faithful inputs.

    Static entities (functions, loops, call sites, blocks) carry unique
    integer ids assigned by {!Build}; the profiler and editor key their
    tables on these ids. *)

type input = {
  input_name : string;  (** e.g. ["train"] or ["ref"] *)
  scale : int;  (** input-size parameter consulted by loop trip counts *)
  divergence : float;
      (** 0..1 knob consulted by {!stmt.Choose} nodes; lets reference
          inputs exercise paths the training input never takes *)
  seed : int;  (** master seed for the input's random streams *)
}

(** Memory reference behaviour of a block's loads and stores. *)
type mem_pattern =
  | Seq_stride of { stride : int; region : int }
      (** streaming access: consecutive references advance by [stride]
          bytes, wrapping within a [region]-byte working set *)
  | Rand_in of { region : int }
      (** uniformly random references within a [region]-byte working set *)
  | Chase of { region : int }
      (** dependent pointer chasing: each load's address register is the
          destination of the previous load in the stream *)

(** Branch outcome behaviour of a block's internal branches. *)
type branch_pattern =
  | Periodic of bool array  (** repeating outcome pattern; predictable *)
  | Biased of float  (** taken with the given probability, random *)

type block = {
  block_id : int;
  length : int;  (** dynamic instructions emitted per execution *)
  frac_int_mult : float;
  frac_fp_alu : float;
  frac_fp_mult : float;
  frac_load : float;
  frac_store : float;
  frac_branch : float;
      (** remaining fraction is [Int_alu]; fractions must sum to <= 1 *)
  mem : mem_pattern;
  branch : branch_pattern;
  dep_chain : float;
      (** mean register-dependence distance; 1.0 is fully serial, larger
          values expose more instruction-level parallelism *)
}

type trips =
  | Const of int
  | Scaled of { base : int; per_scale : int }
      (** [base + per_scale * input.scale] iterations *)
  | Arg_scaled of { base : int; per_arg : int }
      (** [base + per_arg * arg] iterations, where [arg] is the integer
          argument passed at the current function's call site — the
          mechanism by which the same subroutine behaves differently
          when called from different places *)

type stmt =
  | Straight of block
  | Loop of { loop_id : int; trips : trips; body : stmt list }
  | Call of { site_id : int; callee : string; arg : int }
  | Choose of {
      choose_id : int;
      prob : input -> float;
          (** probability of taking [on_true], evaluated per execution *)
      on_true : stmt list;
      on_false : stmt list;
    }

type func = { fname : string; fid : int; body : stmt list }

type t = {
  pname : string;
  funcs : (string * func) list;  (** association list, unique names *)
  main : string;
}

val find_func : t -> string -> func
(** Raises [Not_found] if the function is not defined. *)

val trip_count : trips -> input -> arg:int -> int

val static_instructions : t -> int
(** Number of static instruction slots across all blocks (an upper bound
    on distinct synthetic PCs), used for table sizing. *)

val iter_stmts : t -> f:(stmt -> unit) -> unit
(** Depth-first visit of every statement in every function. *)

val canonical : t -> input:input -> string
(** Deterministic rendering of the whole program structure for content
    addressing (see {!Mcd_cache}): every behaviour-relevant field in a
    fixed traversal order, floats in lossless [%h] form. [Choose]
    probabilities are closures, so they are rendered by {i evaluating}
    them at [input] — the rendering is canonical per (program, input)
    pair, which is exactly the granularity cached simulation results
    need. The rendering does not include the input's own fields; combine
    it with a separate input fragment when keying. *)

val validate : t -> unit
(** Check structural invariants: main exists, callees resolve, fractions
    within bounds, unique ids. Raises [Invalid_argument] on violation. *)
