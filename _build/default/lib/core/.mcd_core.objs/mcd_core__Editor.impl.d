lib/core/editor.ml: Hashtbl List Mcd_cpu Mcd_domains Mcd_isa Mcd_profiling Option Plan
