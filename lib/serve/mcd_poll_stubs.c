/* poll(2) binding for the serve event loop.

   Unix.select caps at FD_SETSIZE (1024) file descriptors; a pipelined
   server holding thousands of connections needs poll. The binding is
   deliberately minimal: the caller passes parallel arrays of fds and
   interest bits (1 = read, 2 = write) plus a revents array the stub
   fills in (same bit vocabulary; POLLHUP/POLLERR surface as readable
   *and* writable so the caller's read/write path discovers the error
   and closes the fd).

   Returns the number of ready descriptors, 0 on timeout, -1 on EINTR,
   -2 on any other poll error (the OCaml side degrades gracefully
   instead of raising from C). */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>

CAMLprim value mcd_serve_poll(value v_fds, value v_events, value v_revents,
                              value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int rc, saved_errno;
  mlsize_t i;

  if (Wosize_val(v_events) != n || Wosize_val(v_revents) != n)
    caml_invalid_argument("mcd_serve_poll: array length mismatch");

  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      int bits = Int_val(Field(v_events, i));
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = (short)(((bits & 1) ? POLLIN : 0) |
                               ((bits & 2) ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)n, timeout);
  saved_errno = errno;
  caml_acquire_runtime_system();

  if (rc >= 0) {
    for (i = 0; i < n; i++) {
      short re = pfds[i].revents;
      int bits = 0;
      if (re & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) bits |= 1;
      if (re & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) bits |= 2;
      /* immediates need no write barrier */
      Field(v_revents, i) = Val_int(bits);
    }
  }
  if (pfds != NULL) free(pfds);
  if (rc < 0) CAMLreturn(Val_int(saved_errno == EINTR ? -1 : -2));
  CAMLreturn(Val_int(rc));
}
