(** Durable job journal: the serve path's write-ahead log.

    Every job the server {e acknowledges} is appended here before the
    [queued] reply goes out, and marked again when it turns terminal —
    so a server that dies with admitted work in flight can be
    restarted and {e replay} exactly the jobs it owed answers for,
    serving byte-identical results (the computes are deterministic and
    the persistent store already holds any payload that finished).

    {b Record framing.} The journal reuses {!Mcd_cache.Store}'s
    framing discipline — every record announces its byte count and
    carries an ["end\n"] trailer, so a torn append (crash or
    {!Mcd_robust.Inject} fault mid-write) is always detectable:

    {v
    record ::= "rec <kind> bytes=<n>\n" <n body bytes> "end\n"
    kind   ::= "admit" | "done" | "fail" | "next"
    v}

    An [admit] body is one line of percent-encoded [key=value] tokens
    (the {!Protocol} token grammar): job id, owning client, priority,
    digest, and the full request. [done]/[fail] bodies carry the job
    id (and failure message).

    {b Recovery.} {!open_journal} scans the log front to back. A
    record that fails to frame at the tail is a torn append: the good
    prefix wins, the tail is dropped. A record that fails to parse
    {e before} the tail is corruption: recovery keeps everything up to
    it, reports a typed {!Mcd_robust.Error.Journal_corrupt}, and drops
    the rest — the same salvage-the-prefix policy the plan loader
    applies to truncated plans. Jobs admitted but never marked
    terminal are returned for replay, in admission order. The file is
    then {e compacted} — rewritten atomically (tmp+rename, the
    {!Mcd_cache.Store} discipline) to hold a [next] record carrying the
    high-water job id plus the incomplete admits — and reopened for
    appending. The [next] record is what keeps completed-then-compacted
    ids from being reissued: the restarted scheduler must allocate
    fresh ids above {!recovery.next_id}, or a client polling an id it
    was acked with before the crash could be handed another job's
    payload.

    Appends are serialized by an internal mutex (the scheduler's
    workers and the server loop both write); [admit] records are
    fsynced before {!admit} returns, because the acknowledged-implies-
    served invariant is only as strong as the record's durability. *)

type entry = {
  id : int;
  client : string;
  priority : Protocol.priority;
  digest : string;
  request : Protocol.request;
}

type recovery = {
  replay : entry list;  (** admitted, never terminal — in id order *)
  completed : int;  (** jobs with a [done] record *)
  failed : int;  (** jobs with a [fail] record *)
  next_id : int;
      (** 1 + the highest id ever admitted, including ids only
          remembered by a compacted log's [next] record — the floor for
          fresh allocations; feed it to {!Scheduler.restore} *)
  torn : bool;  (** a torn record was dropped from the tail *)
  corrupt : Mcd_robust.Error.t option;
      (** a mid-file record failed to parse; the suffix was dropped *)
}

type t

val open_journal :
  ?fsync:bool -> path:string -> unit -> (t * recovery, Mcd_robust.Error.t) result
(** Recover (scan + salvage), compact, and open for appending. A
    missing file is an empty journal, not an error. [fsync] (default
    [true]) syncs every [admit] append; tests disable it for speed.
    [Error] only when the path cannot be created or rewritten. *)

val admit : t -> entry -> unit
(** Append (and fsync) an admission record. Must happen before the
    client sees its [queued] ack — the write-ahead discipline. *)

val mark_done : t -> id:int -> unit
val mark_failed : t -> id:int -> msg:string -> unit
(** Append a completion record. Best-effort (no fsync): losing one
    costs a redundant replay, never an answer. *)

val path : t -> string

type stats = {
  admitted : int;  (** admit records appended this session *)
  finished : int;  (** done + fail records appended this session *)
  replayed : int;  (** jobs handed back for replay at recovery *)
  recovered_torn : int;  (** 1 if recovery dropped a torn tail *)
  recovered_corrupt : int;  (** 1 if recovery dropped a corrupt suffix *)
}

val stats : t -> stats

val close : t -> unit

(** {2 Testing seams} *)

val render_entry : entry -> string
(** The admit record's body line (without framing). *)

val parse_entry : string -> (entry, string) result
