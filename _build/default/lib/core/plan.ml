module Call_tree = Mcd_profiling.Call_tree
module Context = Mcd_profiling.Context
module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

type t = {
  tree : Call_tree.t;
  context : Context.t;
  slowdown_pct : float;
  node_settings : (int, Reconfig.setting) Hashtbl.t;
  unit_settings : (Call_tree.static_unit, Reconfig.setting) Hashtbl.t;
  node_histograms : (int, Histogram.t array) Hashtbl.t;
  node_paths : (int, Path_model.t) Hashtbl.t;
}

let fresh_histograms () =
  Array.init Domain.count (fun _ -> Histogram.create ~bins:Freq.num_steps)

(* Fraction of a node's duration that may be lost to an entry ramp. *)
let ramp_budget = 0.06

let swing_allowance_mhz ~duration_ps ~f_target_mhz =
  if duration_ps <= 0.0 then 0
  else begin
    let duration_ns = duration_ps /. 1000.0 in
    let slew = Mcd_domains.Dvfs.slew_ns_per_mhz in
    (* ramp loss ~ delta^2 * (slew/2) / f  <=  ramp_budget * duration *)
    let delta =
      sqrt
        (ramp_budget *. duration_ns *. float_of_int f_target_mhz
        /. (slew /. 2.0))
    in
    int_of_float delta
  end

let avg_duration_ps (pm : Path_model.t) =
  match pm.Path_model.segments with
  | [] -> 0.0
  | segs ->
      List.fold_left (fun a s -> a +. s.Path_model.base_ps) 0.0 segs
      /. float_of_int (List.length segs)

(* Clamp every setting to within the swing allowance of the per-domain
   maximum across the given settings, so that no reconfiguration demands
   a ramp the destination cannot amortize. [duration_of] supplies each
   key's average duration (0 disables scaling for that key entirely,
   falling back to the maximum). *)
let clamp_swings settings ~duration_of ~contributes =
  let domain_max = Array.make Domain.count Freq.fmin_mhz in
  Hashtbl.iter
    (fun key (s : Reconfig.setting) ->
      if contributes key then
        Array.iteri
          (fun i f -> if f > domain_max.(i) then domain_max.(i) <- f)
          s)
    settings;
  let clamped = Hashtbl.create (Hashtbl.length settings) in
  Hashtbl.iter
    (fun key (s : Reconfig.setting) ->
      let duration_ps = duration_of key in
      let s' =
        Array.mapi
          (fun i f ->
            let allowance =
              swing_allowance_mhz ~duration_ps
                ~f_target_mhz:domain_max.(i)
            in
            Freq.clamp (max f (domain_max.(i) - allowance)))
          s
      in
      Hashtbl.replace clamped key s')
    settings;
  clamped

let make ~tree ~context ~slowdown_pct ~node_histograms ?(node_paths = []) () =
  let hist_tbl = Hashtbl.create 32 in
  List.iter (fun (id, h) -> Hashtbl.replace hist_tbl id h) node_histograms;
  let paths_tbl = Hashtbl.create 32 in
  List.iter (fun (id, p) -> Hashtbl.replace paths_tbl id p) node_paths;
  let node_settings = Hashtbl.create 32 in
  let unit_hists = Hashtbl.create 32 in
  let unit_paths = Hashtbl.create 32 in
  List.iter
    (fun (n : Call_tree.node) ->
      let setting =
        match Hashtbl.find_opt hist_tbl n.Call_tree.id with
        | None -> Reconfig.full_speed ()
        | Some hists ->
            let s = Threshold.setting_of_histograms hists ~slowdown_pct in
            (* validate against the node's recorded critical paths *)
            (match Hashtbl.find_opt paths_tbl n.Call_tree.id with
            | Some pm -> Path_model.refine pm s ~slowdown_pct
            | None -> s)
      in
      Hashtbl.replace node_settings n.Call_tree.id setting;
      (* accumulate per-static-unit merged histograms and path models *)
      match Call_tree.static_unit_of n.Call_tree.kind with
      | None -> ()
      | Some u ->
          (match Hashtbl.find_opt hist_tbl n.Call_tree.id with
          | None -> ()
          | Some hists ->
              let acc =
                match Hashtbl.find_opt unit_hists u with
                | Some a -> a
                | None ->
                    let a = fresh_histograms () in
                    Hashtbl.add unit_hists u a;
                    a
              in
              Array.iteri
                (fun i h -> Histogram.merge_into ~dst:acc.(i) ~src:h)
                hists);
          (match Hashtbl.find_opt paths_tbl n.Call_tree.id with
          | None -> ()
          | Some pm ->
              let merged =
                match Hashtbl.find_opt unit_paths u with
                | Some existing -> Path_model.union existing pm
                | None -> pm
              in
              Hashtbl.replace unit_paths u merged))
    (Call_tree.long_nodes tree);
  let unit_settings = Hashtbl.create 32 in
  List.iter
    (fun u ->
      let setting =
        match Hashtbl.find_opt unit_hists u with
        | None -> Reconfig.full_speed ()
        | Some hists ->
            let s = Threshold.setting_of_histograms hists ~slowdown_pct in
            (match Hashtbl.find_opt unit_paths u with
            | Some pm -> Path_model.refine pm s ~slowdown_pct
            | None -> s)
      in
      Hashtbl.replace unit_settings u setting)
    (Call_tree.long_static_units tree);
  (* transition-aware swing clamping; nodes that never produced data
     (full speed by default, typically rarely executed) neither scale
     nor define the per-domain maxima *)
  let node_settings =
    clamp_swings node_settings
      ~duration_of:(fun id ->
        match Hashtbl.find_opt paths_tbl id with
        | Some pm -> avg_duration_ps pm
        | None -> 0.0)
      ~contributes:(fun id -> Hashtbl.mem hist_tbl id)
  in
  let unit_settings =
    clamp_swings unit_settings
      ~duration_of:(fun u ->
        match Hashtbl.find_opt unit_paths u with
        | Some pm -> avg_duration_ps pm
        | None -> 0.0)
      ~contributes:(fun u -> Hashtbl.mem unit_hists u)
  in
  { tree; context; slowdown_pct; node_settings; unit_settings;
    node_histograms = hist_tbl; node_paths = paths_tbl }

let setting_for_node t id = Hashtbl.find_opt t.node_settings id
let setting_for_unit t u = Hashtbl.find_opt t.unit_settings u

let with_slowdown t ~slowdown_pct =
  make ~tree:t.tree ~context:t.context ~slowdown_pct
    ~node_histograms:
      (Hashtbl.fold (fun id h acc -> (id, h) :: acc) t.node_histograms [])
    ~node_paths:(Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.node_paths [])
    ()

let static_reconfig_points t =
  List.length (Call_tree.long_static_units t.tree)

let static_instr_points t =
  if not t.context.Context.paths then static_reconfig_points t
  else begin
    let units = List.length (Call_tree.instrumented_static_units t.tree) in
    let sites =
      if not t.context.Context.sites then 0
      else begin
        let tbl = Hashtbl.create 16 in
        Call_tree.iter t.tree ~f:(fun n ->
            if n.Call_tree.reaches_long then
              match n.Call_tree.kind with
              | Call_tree.Func_node { site; _ } when site >= 0 ->
                  Hashtbl.replace tbl site ()
              | Call_tree.Func_node _ | Call_tree.Loop_node _
              | Call_tree.Root ->
                  ());
        Hashtbl.length tbl
      end
    in
    units + sites
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>plan (%s, delta=%.1f%%):@,"
    t.context.Context.name t.slowdown_pct;
  List.iter
    (fun (n : Call_tree.node) ->
      match setting_for_node t n.Call_tree.id with
      | Some s ->
          Format.fprintf fmt "  node %d: %a@," n.Call_tree.id Reconfig.pp s
      | None -> ())
    (Call_tree.long_nodes t.tree);
  Format.fprintf fmt "@]"
