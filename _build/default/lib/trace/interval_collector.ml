module Vec = Mcd_util.Vec
module Probe = Mcd_cpu.Probe

type t = {
  interval : int;
  max_events : int;
  buckets : Probe.event Vec.t Vec.t;
}

let create ?(interval_insts = 10_000) ?(max_events_per_interval = 80_000) () =
  {
    interval = interval_insts;
    max_events = max_events_per_interval;
    buckets = Vec.create ();
  }

let bucket_for t seq =
  let idx = seq / t.interval in
  while Vec.length t.buckets <= idx do
    Vec.push t.buckets (Vec.create ())
  done;
  Vec.get t.buckets idx

let on_event t (ev : Probe.event) =
  let bucket = bucket_for t ev.Probe.seq in
  if Vec.length bucket < t.max_events then Vec.push bucket ev

let probe t =
  { Probe.on_event = on_event t; on_marker = (fun _ ~seq:_ -> ()) }

let stage_rank = function
  | Probe.Fetch_s -> 0
  | Probe.Dispatch_s -> 1
  | Probe.Execute_s -> 2
  | Probe.Mem_s -> 2
  | Probe.Retire_s -> 3

let intervals t =
  Vec.to_list t.buckets
  |> List.map (fun bucket ->
         let arr = Array.of_list (Vec.to_list bucket) in
         Array.sort
           (fun (a : Probe.event) (b : Probe.event) ->
             compare
               (a.Probe.seq, stage_rank a.Probe.stage)
               (b.Probe.seq, stage_rank b.Probe.stage))
           arr;
         arr)

let interval_insts t = t.interval
