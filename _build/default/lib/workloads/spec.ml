module B = Mcd_isa.Build
module P = Mcd_isa.Program

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* --- gzip: large call tree, recursion, data-dependent paths --------- *)

let gzip_prog =
  B.program ~name:"gzip" @@ fun b ->
  let hash_block len =
    B.straight b ~length:len ~frac_load:0.28 ~frac_store:0.08
      ~frac_branch:0.12 ~frac_int_mult:0.01
      ~mem:(P.Rand_in { region = kb 256 })
      ~branch:(P.Biased 0.72) ~dep_chain:3.0 ()
  in
  B.func b "fill_window"
    [
      B.loop b (P.Const 40)
        [
          B.straight b ~length:90 ~frac_load:0.20 ~frac_store:0.25
            ~frac_branch:0.05
            ~mem:(P.Seq_stride { stride = 8; region = kb 512 })
            ~dep_chain:6.0 ();
        ];
    ];
  (* hot in both deflate variants — two long contexts of one unit *)
  B.func b "longest_match"
    [ B.loop b (P.Const 118) [ hash_block 95 ] ];
  B.func b "insert_string" [ hash_block 70 ];
  B.func b "deflate_fast"
    [
      B.loop b (P.Const 14)
        [ B.call b "longest_match"; B.call b "insert_string"; hash_block 60 ];
    ];
  B.func b "deflate_slow"
    [
      B.loop b (P.Const 8)
        [
          B.call b "longest_match";
          B.call b "longest_match";
          B.call b "insert_string";
          hash_block 50;
        ];
    ];
  (* recursive Huffman tree construction: folded into one node *)
  B.func b "build_tree"
    [
      hash_block 120;
      B.choose b
        ~prob:(fun _ -> 0.55)
        [ B.call b "build_tree" ]
        [ hash_block 80 ];
    ];
  B.func b "send_bits" [ hash_block 40 ];
  B.func b "compress_block"
    [
      B.call b "build_tree";
      B.call b "build_tree";
      B.loop b (P.Const 95) [ hash_block 85; B.call b "send_bits" ];
    ];
  B.func b "flush_block"
    [ B.call b "compress_block"; B.call b "send_bits" ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [
          B.call b "fill_window";
          B.choose b
            ~prob:(fun inp -> 0.75 -. inp.P.divergence)
            [ B.call b "deflate_fast" ]
            [ B.call b "deflate_slow" ];
          B.call b "flush_block";
        ];
    ];
  "main"

let gzip =
  Workload.make ~name:"gzip" ~program:gzip_prog ~train_divergence:0.05
    ~ref_divergence:0.25 ~train_window:80_000 ~ref_window:170_000 ~ref_offset:20_000
    ~kind:Workload.Spec_int
    ~trait:"large call tree with recursion and data-dependent deflate paths"
    ()

(* --- vpr: training exercises placement, production exercises routing;
   almost no common paths (the paper's 0.08 coverage) ----------------- *)

let vpr_prog =
  B.program ~name:"vpr" @@ fun b ->
  let annealing_block len =
    B.straight b ~length:len ~frac_load:0.26 ~frac_store:0.10
      ~frac_branch:0.11 ~frac_int_mult:0.02
      ~mem:(P.Rand_in { region = mb 1 })
      ~branch:(P.Biased 0.68) ~dep_chain:3.0 ()
  in
  let maze_block len =
    B.straight b ~length:len ~frac_load:0.32 ~frac_store:0.07
      ~frac_branch:0.09
      ~mem:(P.Chase { region = mb 2 })
      ~branch:(P.Biased 0.74) ~dep_chain:2.2 ()
  in
  (* place and route share the timing updater — the only hot code the
     two phases have in common, and the only reconfiguration point the
     profile-based schemes can carry from training into production *)
  B.func b "shared_timing_update"
    [ B.loop b (P.Const 150) [ annealing_block 75 ] ];
  B.func b "try_swap" [ B.loop b (P.Const 60) [ annealing_block 95 ] ];
  B.func b "update_costs" [ B.loop b (P.Const 55) [ annealing_block 80 ] ];
  B.func b "place_inner"
    [
      B.call b "try_swap";
      B.call b "update_costs";
      B.call b "shared_timing_update";
    ];
  B.func b "place" [ B.loop b (P.Const 18) [ B.call b "place_inner" ] ];
  B.func b "expand_wavefront" [ B.loop b (P.Const 70) [ maze_block 90 ] ];
  B.func b "rip_up_and_reroute" [ B.loop b (P.Const 60) [ maze_block 85 ] ];
  B.func b "route_net"
    [
      B.call b "expand_wavefront";
      B.call b "rip_up_and_reroute";
      B.call b "shared_timing_update";
    ];
  B.func b "route" [ B.loop b (P.Const 16) [ B.call b "route_net" ] ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 1; per_scale = 1 })
        [
          B.choose b
            ~prob:(fun inp -> 1.0 -. inp.P.divergence)
            [ B.call b "place" ]
            [ B.call b "route" ];
        ];
    ];
  "main"

let vpr =
  Workload.make ~name:"vpr" ~program:vpr_prog ~train_divergence:0.03
    ~ref_divergence:0.97 ~train_window:80_000 ~ref_window:160_000 ~ref_offset:20_000
    ~kind:Workload.Spec_int
    ~trait:"training sees placement, production sees routing (coverage ~0.1)"
    ()

(* --- mcf: memory-bound pointer chasing ------------------------------ *)

let mcf_prog =
  B.program ~name:"mcf" @@ fun b ->
  let chase_block len =
    B.straight b ~length:len ~frac_load:0.36 ~frac_store:0.05
      ~frac_branch:0.08 ~frac_int_mult:0.01
      ~mem:(P.Chase { region = mb 8 })
      ~branch:(P.Biased 0.80) ~dep_chain:2.0 ()
  in
  B.func b "refresh_potential" [ B.loop b (P.Const 105) [ chase_block 100 ] ];
  B.func b "price_out_impl" [ B.loop b (P.Const 110) [ chase_block 110 ] ];
  B.func b "primal_bea_mpp"
    [
      B.loop b (P.Const 90)
        [
          chase_block 80;
          B.straight b ~length:40 ~frac_load:0.15 ~frac_branch:0.10
            ~mem:(P.Seq_stride { stride = 8; region = kb 64 })
            ~dep_chain:4.0 ();
        ];
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [
          B.call b "refresh_potential";
          B.call b "price_out_impl";
          B.call b "primal_bea_mpp";
        ];
    ];
  "main"

let mcf =
  Workload.make ~name:"mcf" ~program:mcf_prog ~train_window:60_000
    ~ref_window:140_000 ~ref_offset:15_000 ~kind:Workload.Spec_int
    ~trait:"memory-bound pointer chasing over an 8 MB working set" ()

(* --- swim: loops cross the long-running threshold only at ref scale - *)

let swim_prog =
  B.program ~name:"swim" @@ fun b ->
  let stencil len region =
    B.straight b ~length:len ~frac_fp_alu:0.30 ~frac_fp_mult:0.10
      ~frac_load:0.26 ~frac_store:0.09 ~frac_branch:0.02
      ~mem:(P.Seq_stride { stride = 8; region })
      ~branch:(P.Periodic [| true; true; true; true; false |])
      ~dep_chain:6.0 ()
  in
  B.func b "calc1"
    [ B.loop b (P.Scaled { base = 60; per_scale = 6 }) [ stencil 120 (mb 2) ] ];
  B.func b "calc2"
    [ B.loop b (P.Scaled { base = 55; per_scale = 6 }) [ stencil 110 (mb 2) ] ];
  (* shorter loops: below 10k instructions per instance on the training
     input, above it on the reference input *)
  B.func b "calc3"
    [ B.loop b (P.Scaled { base = 10; per_scale = 4 }) [ stencil 95 (mb 1) ] ];
  B.func b "smooth"
    [ B.loop b (P.Scaled { base = 8; per_scale = 5 }) [ stencil 80 (mb 1) ] ];
  B.func b "main"
    [
      B.loop b (P.Const 40)
        [
          B.call b "calc1";
          B.call b "calc2";
          B.call b "calc3";
          B.call b "smooth";
        ];
    ];
  "main"

let swim =
  Workload.make ~name:"swim" ~program:swim_prog ~train_scale:8 ~ref_scale:28
    ~train_window:70_000 ~ref_window:160_000 ~ref_offset:20_000 ~kind:Workload.Spec_fp
    ~trait:"stencil loops cross the 10k threshold only at reference scale"
    ()

(* --- applu: nested fp loop nests; loop reconfiguration costs a bit of
   performance for a little energy ------------------------------------ *)

let applu_prog =
  B.program ~name:"applu" @@ fun b ->
  let solver len =
    B.straight b ~length:len ~frac_fp_alu:0.26 ~frac_fp_mult:0.14
      ~frac_load:0.24 ~frac_store:0.08 ~frac_branch:0.03
      ~mem:(P.Seq_stride { stride = 8; region = mb 2 })
      ~dep_chain:5.0 ()
  in
  B.func b "jacld" [ B.loop b (P.Const 95) [ solver 130 ] ];
  B.func b "blts" [ B.loop b (P.Const 95) [ solver 120 ] ];
  B.func b "jacu" [ B.loop b (P.Const 90) [ solver 125 ] ];
  B.func b "buts" [ B.loop b (P.Const 95) [ solver 115 ] ];
  B.func b "rhs"
    [
      B.loop b (P.Const 115) [ solver 95 ];
      B.loop b (P.Const 110) [ solver 90 ];
      B.loop b (P.Const 105) [ solver 85 ];
    ];
  B.func b "ssor_iteration"
    [
      B.call b "jacld";
      B.call b "blts";
      B.call b "jacu";
      B.call b "buts";
      B.call b "rhs";
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "ssor_iteration" ];
    ];
  "main"

let applu =
  Workload.make ~name:"applu" ~program:applu_prog ~train_window:80_000
    ~ref_window:170_000 ~ref_offset:20_000 ~kind:Workload.Spec_fp
    ~trait:"SSOR solver with many fp loop nests per subroutine" ()

(* --- art: the core computation is a loop with seven sub-loops ------- *)

let art_prog =
  B.program ~name:"art" @@ fun b ->
  let neural len ~fp =
    if fp then
      B.straight b ~length:len ~frac_fp_alu:0.32 ~frac_fp_mult:0.10
        ~frac_load:0.24 ~frac_store:0.06 ~frac_branch:0.03
        ~mem:(P.Seq_stride { stride = 8; region = mb 1 })
        ~dep_chain:5.5 ()
    else
      B.straight b ~length:len ~frac_load:0.28 ~frac_store:0.08
        ~frac_branch:0.07
        ~mem:(P.Seq_stride { stride = 8; region = mb 1 })
        ~dep_chain:4.0 ()
  in
  B.func b "match_f1"
    [
      B.loop b (P.Const 130) [ neural 85 ~fp:true ];
      B.loop b (P.Const 128) [ neural 80 ~fp:true ];
      B.loop b (P.Const 135) [ neural 75 ~fp:true ];
      B.loop b (P.Const 145) [ neural 70 ~fp:false ];
      B.loop b (P.Const 145) [ neural 70 ~fp:true ];
      B.loop b (P.Const 155) [ neural 65 ~fp:true ];
      B.loop b (P.Const 155) [ neural 65 ~fp:false ];
    ];
  B.func b "compute_train_match"
    [ B.loop b (P.Const 140) [ neural 80 ~fp:true ] ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 3 })
        [ B.call b "match_f1"; B.call b "compute_train_match" ];
    ];
  "main"

let art =
  Workload.make ~name:"art" ~program:art_prog ~train_window:70_000
    ~ref_window:160_000 ~ref_offset:15_000 ~kind:Workload.Spec_fp
    ~trait:"core loop contains seven sub-loops (fp neural matching)" ()

(* --- equake: stable fp sparse solver -------------------------------- *)

let equake_prog =
  B.program ~name:"equake" @@ fun b ->
  let smvp len =
    B.straight b ~length:len ~frac_fp_alu:0.28 ~frac_fp_mult:0.12
      ~frac_load:0.28 ~frac_store:0.06 ~frac_branch:0.03
      ~mem:(P.Rand_in { region = mb 4 })
      ~dep_chain:4.5 ()
  in
  B.func b "smvp_product" [ B.loop b (P.Const 95) [ smvp 130 ] ];
  B.func b "time_integration"
    [
      B.loop b (P.Const 115)
        [
          B.straight b ~length:90 ~frac_fp_alu:0.34 ~frac_fp_mult:0.08
            ~frac_load:0.22 ~frac_store:0.10 ~frac_branch:0.02
            ~mem:(P.Seq_stride { stride = 8; region = mb 2 })
            ~dep_chain:6.0 ();
        ];
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "smvp_product"; B.call b "time_integration" ];
    ];
  "main"

let equake =
  Workload.make ~name:"equake" ~program:equake_prog ~train_window:65_000
    ~ref_window:150_000 ~ref_offset:15_000 ~kind:Workload.Spec_fp
    ~trait:"sparse matrix-vector product plus regular time integration" ()

let all = [ gzip; vpr; mcf; swim; applu; art; equake ]
