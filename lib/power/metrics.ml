type run = {
  runtime_ps : int;
  energy_pj : float;
  per_domain_pj : float array;
  instructions : int;
  cycles_front : int;
  sync_crossings : int;
  sync_penalties : int;
  reconfigurations : int;
  instr_points : int;
  instr_overhead_ps : int;
}

let ipc run =
  if run.cycles_front = 0 then 0.0
  else float_of_int run.instructions /. float_of_int run.cycles_front

let energy_delay run = run.energy_pj *. Mcd_util.Time.to_s run.runtime_ps

let perf_degradation_pct ~baseline run =
  Mcd_util.Stats.ratio_percent_change
    ~baseline:(float_of_int baseline.runtime_ps)
    ~value:(float_of_int run.runtime_ps)

let energy_savings_pct ~baseline run =
  -.Mcd_util.Stats.ratio_percent_change ~baseline:baseline.energy_pj
      ~value:run.energy_pj

let ed_improvement_pct ~baseline run =
  -.Mcd_util.Stats.ratio_percent_change
      ~baseline:(energy_delay baseline)
      ~value:(energy_delay run)

(* Canonical codec for cached runs. Line-based like Plan_io, floats in
   lossless %h form, so decode (encode r) = r bit for bit — the property
   the result cache's byte-identical-tables contract rests on. *)
let encode run =
  let floats arr =
    String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") arr))
  in
  Printf.sprintf
    "run 1\n\
     runtime_ps %d\n\
     energy_pj %h\n\
     per_domain %s\n\
     instructions %d\n\
     cycles_front %d\n\
     sync_crossings %d\n\
     sync_penalties %d\n\
     reconfigurations %d\n\
     instr_points %d\n\
     instr_overhead_ps %d\n\
     end\n"
    run.runtime_ps run.energy_pj (floats run.per_domain_pj) run.instructions
    run.cycles_front run.sync_crossings run.sync_penalties
    run.reconfigurations run.instr_points run.instr_overhead_ps

let decode s =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let field name conv line =
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = name -> (
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        match conv v with
        | Some v -> Result.Ok v
        | None -> Result.Error (Printf.sprintf "bad %s value %S" name v))
    | _ -> Result.Error (Printf.sprintf "expected %S line, got %S" name line)
  in
  let int = int_of_string_opt in
  let float = float_of_string_opt in
  let floats v =
    let parts = String.split_on_char ',' v in
    let parsed = List.filter_map float_of_string_opt parts in
    if List.length parsed = List.length parts then
      Some (Array.of_list parsed)
    else None
  in
  match lines with
  | [ header; l1; l2; l3; l4; l5; l6; l7; l8; l9; l10; trailer ] ->
      if header <> "run 1" then
        Result.Error (Printf.sprintf "bad run header %S" header)
      else if trailer <> "end" then
        Result.Error "missing end-of-run marker (truncated?)"
      else
        let* runtime_ps = field "runtime_ps" int l1 in
        let* energy_pj = field "energy_pj" float l2 in
        let* per_domain_pj = field "per_domain" floats l3 in
        let* instructions = field "instructions" int l4 in
        let* cycles_front = field "cycles_front" int l5 in
        let* sync_crossings = field "sync_crossings" int l6 in
        let* sync_penalties = field "sync_penalties" int l7 in
        let* reconfigurations = field "reconfigurations" int l8 in
        let* instr_points = field "instr_points" int l9 in
        let* instr_overhead_ps = field "instr_overhead_ps" int l10 in
        Result.Ok
          {
            runtime_ps;
            energy_pj;
            per_domain_pj;
            instructions;
            cycles_front;
            sync_crossings;
            sync_penalties;
            reconfigurations;
            instr_points;
            instr_overhead_ps;
          }
  | _ -> Result.Error (Printf.sprintf "run payload has %d lines, expected 12"
                         (List.length lines))

let pp fmt run =
  Format.fprintf fmt
    "@[<v>runtime=%a energy=%.1f nJ insts=%d ipc=%.2f sync=%d/%d reconf=%d@]"
    Mcd_util.Time.pp run.runtime_ps (run.energy_pj /. 1000.0)
    run.instructions (ipc run) run.sync_penalties run.sync_crossings
    run.reconfigurations
