module Walker = Mcd_isa.Walker

type position = Known of int | Unknown
type change = Entered of position | Exited of { restored : position } | Ignored

type entry = { pos : position }

type t = {
  tree : Call_tree.t;
  ctx : Context.t;
  mutable stack : entry list; (* never empty: bottom is the root *)
}

let create tree =
  {
    tree;
    ctx = Call_tree.context tree;
    stack = [ { pos = Known (Call_tree.root tree) } ];
  }

let current t =
  match t.stack with
  | { pos } :: _ -> pos
  | [] -> assert false

let depth t = List.length t.stack - 1

let fid_of_known t = function
  | Unknown -> None
  | Known id -> (
      match (Call_tree.node t.tree id).Call_tree.kind with
      | Call_tree.Func_node { fid; _ } -> Some fid
      | Call_tree.Root | Call_tree.Loop_node _ -> None)

let folded_target t fid =
  List.find_map
    (fun e ->
      match fid_of_known t e.pos with
      | Some f when f = fid -> Some e.pos
      | Some _ | None -> None)
    t.stack

let push t pos =
  t.stack <- { pos } :: t.stack;
  Entered pos

let pop t =
  match t.stack with
  | [ _ ] | [] -> Ignored (* malformed stream: never pop the root *)
  | _ :: rest ->
      t.stack <- rest;
      Exited { restored = current t }

let enter_kind t kind =
  match current t with
  | Unknown -> push t Unknown
  | Known id -> (
      match Call_tree.child t.tree id kind with
      | Some cid -> push t (Known cid)
      | None -> push t Unknown)

let on_marker t marker =
  match marker with
  | Walker.Enter_func { fid; site_id } -> (
      (* recursion folds onto the ancestor's node, as during training *)
      match folded_target t fid with
      | Some pos -> push t pos
      | None ->
          let site =
            if t.ctx.Context.sites then Option.value site_id ~default:(-1)
            else -1
          in
          enter_kind t (Call_tree.Func_node { fid; site }))
  | Walker.Exit_func _ -> pop t
  | Walker.Enter_loop { loop_id } ->
      if t.ctx.Context.loops then
        enter_kind t (Call_tree.Loop_node { loop_id })
      else Ignored
  | Walker.Exit_loop _ -> if t.ctx.Context.loops then pop t else Ignored
