lib/cpu/probe.ml: Mcd_domains Mcd_isa Mcd_util
