lib/mcd/dvfs.mli: Domain Mcd_util
