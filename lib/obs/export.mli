(** Exporters over a populated {!Sink.t}.

    Three formats: JSON-lines for the metrics registry (one instrument
    per line), CSV for the interval time series, and Chrome
    trace-event JSON ([chrome://tracing] / Perfetto) with one thread
    track per clock domain carrying its frequency counter plus instant
    events for reconfigurations, retargets, sync penalties,
    decisions and degradations. *)

val metrics_jsonl : Sink.t -> string
(** One JSON object per line:
    [{"name":...,"kind":"counter"|"gauge"|"histogram",...}]. *)

val series_csv : ?domain_names:string array -> Sink.t -> string
(** Header then one row per sample. Per-domain columns are suffixed
    with the domain name (or [d<i>] when names are not supplied). *)

val chrome_trace : ?domain_names:string array -> Sink.t -> string
(** A [{"traceEvents":[...]}] document; timestamps are microseconds. *)

val write_dir : ?domain_names:string array -> dir:string -> Sink.t -> string list
(** Writes [metrics.jsonl], [series.csv] and [trace.json] under [dir]
    (created, along with parents, if missing) and returns the paths
    written. *)
