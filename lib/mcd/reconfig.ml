type setting = int array

let full_speed () = Array.make Domain.count Freq.fmax_mhz

let make ~front_end ~integer ~floating ~memory =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(Domain.index Domain.Front_end) <- Freq.clamp front_end;
  s.(Domain.index Domain.Integer) <- Freq.clamp integer;
  s.(Domain.index Domain.Floating) <- Freq.clamp floating;
  s.(Domain.index Domain.Memory) <- Freq.clamp memory;
  s

let get s domain = s.(Domain.index domain)
let equal a b = a = b

let pp fmt s =
  Format.fprintf fmt "{fe=%d int=%d fp=%d mem=%d}"
    (get s Domain.Front_end) (get s Domain.Integer) (get s Domain.Floating)
    (get s Domain.Memory)

type t = {
  dvfs : Dvfs.t;
  mutable count : int;
  mutable last : setting;
}

let create dvfs = { dvfs; count = 0; last = full_speed () }

let write ?on_snap t setting ~now =
  List.iter
    (fun d ->
      Dvfs.set_target ?on_snap t.dvfs d ~now ~mhz:setting.(Domain.index d))
    Domain.all;
  t.count <- t.count + 1;
  t.last <- Array.copy setting

let writes t = t.count
let last_setting t = t.last
