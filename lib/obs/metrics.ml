type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }
type histogram = { h_name : string; h_weights : float array }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  by_name : (string, instrument) Hashtbl.t;
  mutable order : instrument list; (* reverse registration order *)
}

let create () = { by_name = Hashtbl.create 32; order = [] }

let register t inst_name make =
  match Hashtbl.find_opt t.by_name inst_name with
  | Some existing -> existing
  | None ->
      let inst = make () in
      Hashtbl.replace t.by_name inst_name inst;
      t.order <- inst :: t.order;
      inst

let kind_error inst_name want =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a different kind than %s"
       inst_name want)

let counter t inst_name =
  match register t inst_name (fun () -> Counter { c_name = inst_name; c_value = 0 }) with
  | Counter c -> c
  | _ -> kind_error inst_name "counter"

let gauge t inst_name =
  match register t inst_name (fun () -> Gauge { g_name = inst_name; g_value = 0.0 }) with
  | Gauge g -> g
  | _ -> kind_error inst_name "gauge"

let histogram t inst_name ~bins =
  if bins <= 0 then invalid_arg "Metrics.histogram: bins must be positive";
  match
    register t inst_name (fun () ->
        Histogram { h_name = inst_name; h_weights = Array.make bins 0.0 })
  with
  | Histogram h ->
      if Array.length h.h_weights <> bins then
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S has %d bins, asked for %d"
             inst_name (Array.length h.h_weights) bins);
      h
  | _ -> kind_error inst_name "histogram"

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let set g v = g.g_value <- v
let peek g = g.g_value

let observe h ~bin ~weight =
  if bin < 0 || bin >= Array.length h.h_weights then
    invalid_arg
      (Printf.sprintf "Metrics.observe: bin %d out of range for %S" bin h.h_name);
  h.h_weights.(bin) <- h.h_weights.(bin) +. weight

let bins h = Array.length h.h_weights
let weights h = Array.copy h.h_weights

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let to_list t = List.rev t.order
let iter f t = List.iter f (to_list t)
