(** Horizontal ASCII bar charts for the benchmark harness.

    The paper's evaluation figures are grouped bar charts (one group per
    benchmark, one bar per reconfiguration method) and scatter lines
    (figures 10/11). These helpers render both as text so the harness
    output reads like the figures it reproduces. *)

val bars :
  ?width:int ->
  ?unit_label:string ->
  groups:(string * (string * float) list) list ->
  unit ->
  string
(** [bars ~groups] renders one bar per (group, series) pair, scaled to
    the largest absolute value. Negative values render leftward with a
    distinct fill. [width] is the bar field width in characters
    (default 40). *)

val scatter :
  ?width:int ->
  ?height:int ->
  xlabel:string ->
  ylabel:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** Character-grid scatter plot; each series is drawn with its own
    glyph. Axes are scaled to the data's bounding box (origin included
    when close). *)
