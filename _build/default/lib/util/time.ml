type t = int

let zero = 0
let ps x = x
let ns x = x * 1_000
let us x = x * 1_000_000
let of_ns_float x = int_of_float (Float.round (x *. 1_000.))
let to_ns x = float_of_int x /. 1_000.
let to_us x = float_of_int x /. 1_000_000.
let to_s x = float_of_int x /. 1e12

let pp fmt x =
  let fx = float_of_int x in
  if x < 10_000 then Format.fprintf fmt "%d ps" x
  else if x < 10_000_000 then Format.fprintf fmt "%.2f ns" (fx /. 1e3)
  else if x < 10_000_000_000 then Format.fprintf fmt "%.2f us" (fx /. 1e6)
  else Format.fprintf fmt "%.3f ms" (fx /. 1e9)
