(* On-line attack/decay versus profile-based reconfiguration.

   The on-line controller only knows the recent past; on workloads with
   abrupt phase alternation its attack lags every transition, while the
   profile-driven policy switches frequencies exactly at the phase
   boundary because the boundary is a reconfiguration point. This
   example runs both on a phase-alternating workload (jpeg compress:
   fp DCT vs integer Huffman) and a stable one (g721), showing the
   stability gap the paper reports in Figure 7.

     dune exec examples/online_vs_profile.exe *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Runner = Mcd_experiments.Runner
module Table = Mcd_util.Table

let describe w =
  let baseline = Runner.baseline w in
  let online = Runner.online_run w in
  let profile =
    (Runner.profile_run w ~context:Context.lf ~train:`Train).Runner.run
  in
  let c_on = Runner.compare_runs ~baseline online in
  let c_pr = Runner.compare_runs ~baseline profile in
  [
    [
      w.Workload.name ^ " / on-line";
      Table.fmt_pct c_on.Runner.degradation_pct;
      Table.fmt_pct c_on.Runner.savings_pct;
      Table.fmt_pct c_on.Runner.ed_improvement_pct;
      string_of_int online.Mcd_power.Metrics.reconfigurations;
    ];
    [
      w.Workload.name ^ " / profile L+F";
      Table.fmt_pct c_pr.Runner.degradation_pct;
      Table.fmt_pct c_pr.Runner.savings_pct;
      Table.fmt_pct c_pr.Runner.ed_improvement_pct;
      string_of_int profile.Mcd_power.Metrics.reconfigurations;
    ];
  ]

let () =
  let rows =
    List.concat_map describe
      [ Suite.by_name "jpeg compress"; Suite.by_name "g721 decode" ]
  in
  print_string
    (Table.render
       ~header:[ "run"; "slowdown"; "energy saved"; "ExD"; "reconfigs" ]
       ~rows ());
  print_newline ();
  print_endline
    "jpeg alternates fp and integer phases: the on-line controller pays for\n\
     every transition it did not anticipate, while training told the\n\
     profile-based policy where the boundaries are. On the stable g721\n\
     kernel the two are much closer."
