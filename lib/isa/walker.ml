module Rng = Mcd_util.Rng

type marker =
  | Enter_func of { fid : int; site_id : int option }
  | Exit_func of { fid : int }
  | Enter_loop of { loop_id : int }
  | Exit_loop of { loop_id : int }

type event = Marker of marker | Inst of Inst.dyn

let pp_marker fmt = function
  | Enter_func { fid; site_id } ->
      Format.fprintf fmt "enter_func(%d%s)" fid
        (match site_id with None -> "" | Some s -> Printf.sprintf "@%d" s)
  | Exit_func { fid } -> Format.fprintf fmt "exit_func(%d)" fid
  | Enter_loop { loop_id } -> Format.fprintf fmt "enter_loop(%d)" loop_id
  | Exit_loop { loop_id } -> Format.fprintf fmt "exit_loop(%d)" loop_id

(* Synthetic PC spaces: block slots, loop back-edges, call and return
   branches each live in a distinct region so predictor tables see
   realistic, non-colliding addresses. *)
let pc_of_block_slot ~block_id ~slot = (block_id * 4096) + slot
let pc_of_loop_branch ~loop_id = 0x4000_0000 + loop_id
let pc_of_call ~site_id = 0x5000_0000 + site_id
let pc_of_return ~fid = 0x6000_0000 + fid

let as_loop_branch ~pc =
  if pc >= 0x4000_0000 && pc < 0x5000_0000 then Some (pc - 0x4000_0000)
  else None

(* Persistent per-static-block expansion state. Streams (memory position,
   branch-pattern position, register rings) survive across executions of
   the block, so a block streaming through memory keeps streaming. *)
type bstate = {
  rng : Rng.t;
  mutable mem_pos : int;
  mutable br_pos : int;
  int_ring : int array;
  mutable int_count : int;
  fp_ring : int array;
  mutable fp_count : int;
  mutable last_load_dst : int;
}

type loop_frame = {
  loop_id : int;
  body : Program.stmt list;
  mutable remaining : int;
  mutable in_iteration : bool;
}

type frame =
  | F_stmts of Program.stmt list
  | F_block of Program.block * int (* remaining instruction count *)
  | F_loop of loop_frame
  | F_funcret of int (* fid: emit return branch + exit marker *)
  | F_mainexit of int (* fid of main: exit marker only *)

type t = {
  program : Program.t;
  input : Program.input;
  choice_rng : Rng.t;
  mutable stack : frame list;
  mutable pending : event list;
  mutable emitted : int;
  mutable done_ : bool;
  mutable arg_stack : int list; (* call arguments; head = current *)
  blocks : (int, bstate) Hashtbl.t;
}

let ring_size = 16

let create program ~input =
  let master = Rng.create input.Program.seed in
  let main_fn = Program.find_func program program.Program.main in
  {
    program;
    input;
    choice_rng = Rng.split master ~label:"choices";
    stack = [ F_stmts main_fn.Program.body; F_mainexit main_fn.Program.fid ];
    pending = [ Marker (Enter_func { fid = main_fn.Program.fid; site_id = None }) ];
    emitted = 0;
    done_ = false;
    arg_stack = [ 0 ];
    blocks = Hashtbl.create 64;
  }

let block_state t (b : Program.block) =
  match Hashtbl.find_opt t.blocks b.Program.block_id with
  | Some st -> st
  | None ->
      let master = Rng.create t.input.Program.seed in
      let st =
        {
          rng = Rng.split master ~label:(Printf.sprintf "block-%d" b.Program.block_id);
          mem_pos = 0;
          br_pos = 0;
          int_ring = Array.make ring_size 1;
          int_count = 0;
          fp_ring = Array.make ring_size 33;
          fp_count = 0;
          last_load_dst = Inst.no_reg;
        }
      in
      Hashtbl.add t.blocks b.Program.block_id st;
      st

(* Pick a source register [distance] definitions back in a ring; fall
   back to a stable architectural register when the ring is still cold. *)
let ring_src ring count distance cold_reg =
  if count = 0 then cold_reg
  else
    let d = min distance (min count ring_size) in
    ring.((count - d) mod ring_size)

let ring_push ring count v =
  ring.(count mod ring_size) <- v

(* Base byte address of a block's working set; distinct per block. *)
let block_region_base block_id = block_id * (1 lsl 24)

(* Degenerate working sets (zero or sub-word regions, which generated
   programs can request) would divide by zero or draw from an empty
   range; clamp to one 8-byte word so every well-typed block walks. *)
let effective_region region = max 8 region

let gen_addr st (b : Program.block) =
  let base = block_region_base b.Program.block_id in
  match b.Program.mem with
  | Program.Seq_stride { stride; region } ->
      let a = base + st.mem_pos in
      st.mem_pos <- (st.mem_pos + stride) mod effective_region region;
      a
  | Program.Rand_in { region } | Program.Chase { region } ->
      base + (Rng.int st.rng (effective_region region / 8) * 8)

let gen_branch_outcome st (b : Program.block) =
  match b.Program.branch with
  | Program.Periodic pattern when Array.length pattern = 0 ->
      (* an empty pattern has no outcomes to repeat; read it as the
         maximally predictable always-taken stream *)
      true
  | Program.Periodic pattern ->
      let v = pattern.(st.br_pos mod Array.length pattern) in
      st.br_pos <- st.br_pos + 1;
      v
  | Program.Biased p -> Rng.bool st.rng p

(* Expand one dynamic instruction of block [b]. *)
let expand_inst t (b : Program.block) ~slot =
  let st = block_state t b in
  let u = Rng.float st.rng 1.0 in
  let c1 = b.Program.frac_int_mult in
  let c2 = c1 +. b.Program.frac_fp_alu in
  let c3 = c2 +. b.Program.frac_fp_mult in
  let c4 = c3 +. b.Program.frac_load in
  let c5 = c4 +. b.Program.frac_store in
  let c6 = c5 +. b.Program.frac_branch in
  let klass : Inst.iclass =
    if u < c1 then Int_mult
    else if u < c2 then Fp_alu
    else if u < c3 then Fp_mult
    else if u < c4 then Load
    else if u < c5 then Store
    else if u < c6 then Branch
    else Int_alu
  in
  let dep () = Rng.geometric st.rng ~mean:b.Program.dep_chain in
  let int_src () = ring_src st.int_ring st.int_count (dep ()) 1 in
  let fp_src () = ring_src st.fp_ring st.fp_count (dep ()) 33 in
  let fresh_int () =
    let r = 4 + (st.int_count mod 24) in
    ring_push st.int_ring st.int_count r;
    st.int_count <- st.int_count + 1;
    r
  in
  let fresh_fp () =
    let r = 36 + (st.fp_count mod 24) in
    ring_push st.fp_ring st.fp_count r;
    st.fp_count <- st.fp_count + 1;
    r
  in
  let pc = pc_of_block_slot ~block_id:b.Program.block_id ~slot in
  let seq = t.emitted in
  let mk ~srcs ~dst ~addr ~taken : Inst.dyn =
    { seq; static_id = pc; klass; srcs; dst; addr; taken }
  in
  let inst =
    match klass with
    | Int_alu | Int_mult ->
        let s1 = int_src () and s2 = int_src () in
        mk ~srcs:[| s1; s2 |] ~dst:(fresh_int ()) ~addr:Inst.no_reg ~taken:false
    | Fp_alu | Fp_mult ->
        let s1 = fp_src () and s2 = fp_src () in
        mk ~srcs:[| s1; s2 |] ~dst:(fresh_fp ()) ~addr:Inst.no_reg ~taken:false
    | Load ->
        let addr = gen_addr st b in
        let addr_src =
          match b.Program.mem with
          | Program.Chase _ when st.last_load_dst <> Inst.no_reg ->
              st.last_load_dst
          | Program.Chase _ | Program.Seq_stride _ | Program.Rand_in _ ->
              int_src ()
        in
        (* Loads feed the fp ring in blocks with fp work, modelling
           memory-to-fp data flow; otherwise they feed integer work. *)
        let wants_fp =
          b.Program.frac_fp_alu +. b.Program.frac_fp_mult > 0.0
          && st.fp_count land 1 = 0
        in
        let dst = if wants_fp then fresh_fp () else fresh_int () in
        if not wants_fp then st.last_load_dst <- dst;
        mk ~srcs:[| addr_src |] ~dst ~addr ~taken:false
    | Store ->
        let addr = gen_addr st b in
        let data =
          if b.Program.frac_fp_alu +. b.Program.frac_fp_mult > 0.0 then fp_src ()
          else int_src ()
        in
        mk ~srcs:[| int_src (); data |] ~dst:Inst.no_reg ~addr ~taken:false
    | Branch ->
        let taken = gen_branch_outcome st b in
        mk ~srcs:[| int_src () |] ~dst:Inst.no_reg ~addr:Inst.no_reg ~taken
  in
  t.emitted <- t.emitted + 1;
  inst

let control_branch t ~pc ~taken : Inst.dyn =
  let seq = t.emitted in
  t.emitted <- t.emitted + 1;
  { seq; static_id = pc; klass = Branch; srcs = [| 1 |]; dst = Inst.no_reg;
    addr = Inst.no_reg; taken }

let instructions_emitted t = t.emitted

(* Process frames until at least one event is pending or the walk ends. *)
let rec refill t =
  match t.stack with
  | [] -> t.done_ <- true
  | frame :: rest -> (
      match frame with
      | F_stmts [] ->
          t.stack <- rest;
          refill t
      | F_stmts (stmt :: more) -> (
          t.stack <- F_stmts more :: rest;
          match stmt with
          | Program.Straight b ->
              t.stack <- F_block (b, b.Program.length) :: t.stack;
              refill t
          | Program.Loop { loop_id; trips; body } ->
              let arg = match t.arg_stack with a :: _ -> a | [] -> 0 in
              let n = Program.trip_count trips t.input ~arg in
              if n <= 0 then refill t
              else begin
                t.pending <- [ Marker (Enter_loop { loop_id }) ];
                t.stack <-
                  F_loop { loop_id; body; remaining = n; in_iteration = false }
                  :: t.stack
              end
          | Program.Call { site_id; callee; arg } ->
              let fn = Program.find_func t.program callee in
              t.arg_stack <- arg :: t.arg_stack;
              t.pending <-
                [
                  Inst (control_branch t ~pc:(pc_of_call ~site_id) ~taken:true);
                  Marker (Enter_func { fid = fn.Program.fid; site_id = Some site_id });
                ];
              t.stack <-
                F_stmts fn.Program.body :: F_funcret fn.Program.fid :: t.stack
          | Program.Choose { prob; on_true; on_false; choose_id = _ } ->
              let p = prob t.input in
              let branch = Rng.bool t.choice_rng p in
              t.stack <- F_stmts (if branch then on_true else on_false) :: t.stack;
              refill t)
      | F_block (_, 0) ->
          t.stack <- rest;
          refill t
      | F_block (b, k) ->
          t.stack <- F_block (b, k - 1) :: rest;
          t.pending <- [ Inst (expand_inst t b ~slot:(b.Program.length - k)) ]
      | F_loop lf ->
          if lf.in_iteration then begin
            (* an iteration's body just finished: emit the back edge *)
            lf.in_iteration <- false;
            lf.remaining <- lf.remaining - 1;
            t.pending <-
              [
                Inst
                  (control_branch t
                     ~pc:(pc_of_loop_branch ~loop_id:lf.loop_id)
                     ~taken:(lf.remaining > 0));
              ]
          end
          else if lf.remaining = 0 then begin
            t.stack <- rest;
            t.pending <- [ Marker (Exit_loop { loop_id = lf.loop_id }) ]
          end
          else begin
            lf.in_iteration <- true;
            t.stack <- F_stmts lf.body :: t.stack;
            refill t
          end
      | F_funcret fid ->
          t.stack <- rest;
          (match t.arg_stack with
          | _ :: (_ :: _ as outer) -> t.arg_stack <- outer
          | [ _ ] | [] -> ());
          t.pending <-
            [
              Inst (control_branch t ~pc:(pc_of_return ~fid) ~taken:true);
              Marker (Exit_func { fid });
            ]
      | F_mainexit fid ->
          t.stack <- rest;
          t.pending <- [ Marker (Exit_func { fid }) ])

let next t =
  match t.pending with
  | ev :: more ->
      t.pending <- more;
      Some ev
  | [] ->
      if t.done_ then None
      else begin
        refill t;
        match t.pending with
        | ev :: more ->
            t.pending <- more;
            Some ev
        | [] ->
            assert t.done_;
            None
      end
