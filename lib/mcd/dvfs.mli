(** Per-domain dynamic voltage and frequency scaling state.

    Modelled on the Intel XScale behaviour assumed by the paper: a
    reconfiguration write incurs no idle time — the domain keeps
    executing through the change — but frequency slews toward the target
    at 73.3 ns per MHz, so traversing the full 750 MHz range takes 55 us.
    Voltage tracks the instantaneous frequency.

    The module also hosts the hardware half of the fault-injection
    story ({!fault}): a domain can be pinned at a frequency (ignoring
    all subsequent writes) or have its ramp frozen mid-slew, modelling
    a broken voltage regulator. Faults are injected by the robustness
    harness through {!Mcd_cpu.Pipeline.run}'s [dvfs_faults] argument. *)

type t

val create : unit -> t
(** All domains at full speed (1 GHz, 1.2 V). *)

val slew_ns_per_mhz : float
(** 73.3 ns/MHz. *)

type fault =
  | Stuck_at of Domain.t * int
      (** the domain is forced to the given frequency (snapped to a
          legal step) and every later {!set_target} is ignored *)
  | Frozen_slew of Domain.t
      (** {!set_target} still updates the target, but the operating
          point never moves toward it — the slew never completes *)

val inject : t -> fault -> unit
(** Apply a hardware fault. Irreversible for the life of the value. *)

val set_target :
  ?on_snap:(requested:int -> snapped:int -> unit) ->
  ?sink:Mcd_obs.Sink.t ->
  t ->
  Domain.t ->
  now:Mcd_util.Time.t ->
  mhz:int ->
  unit
(** Begin slewing the domain toward [mhz].

    When a [sink] is supplied, a [Dvfs_retarget] event is recorded
    whenever the write actually moves the (snapped) target — no-op
    retargets and writes to a stuck domain stay silent.

    Off-grid requests are {e silently snapped} to the nearest legal
    step of the {!Freq} grid ([Freq.clamp]): the register behaves like
    real hardware, which implements only the legal operating points.
    Callers that need to surface the discrepancy — validation and the
    robustness watchdog — pass [on_snap], which is invoked with the
    requested and substituted values whenever snapping changed the
    request. A domain with an injected {!Stuck_at} fault ignores the
    write entirely (the [on_snap] diagnostic still fires). *)

val force : t -> Domain.t -> mhz:int -> unit
(** Set the domain's operating point instantaneously (no slew). Used to
    initialise alternative machine configurations — e.g. a globally
    synchronous core at a lower frequency — not to model transitions. *)

val target_mhz : t -> Domain.t -> int

val current_mhz : t -> Domain.t -> now:Mcd_util.Time.t -> float
(** Instantaneous frequency, advancing the internal ramp to [now].
    Queries at times before the previous observation answer with the
    current operating point (the ramp is never rewound). *)

val voltage : t -> Domain.t -> now:Mcd_util.Time.t -> float

val energy_scale : t -> Domain.t -> now:Mcd_util.Time.t -> float
(** [(v/vmax)^2] at the instantaneous operating point. *)

val in_transition : t -> Domain.t -> now:Mcd_util.Time.t -> bool
