lib/power/energy.mli: Mcd_domains Mcd_util
