type interest = { fd : Unix.file_descr; read : bool; write : bool }
type event = { fd : Unix.file_descr; readable : bool; writable : bool }

(* Parallel arrays in, revents bits out. Bit 0 = read, bit 1 = write.
   Returns ready count, -1 on EINTR, -2 on other errors. *)
external poll_raw :
  Unix.file_descr array -> int array -> int array -> int -> int
  = "mcd_serve_poll"

let wait interests ~timeout_ms =
  let n = List.length interests in
  let fds = Array.make n Unix.stdin in
  let events = Array.make n 0 in
  let revents = Array.make n 0 in
  List.iteri
    (fun i { fd; read; write } ->
      fds.(i) <- fd;
      events.(i) <- (if read then 1 else 0) lor (if write then 2 else 0))
    interests;
  match poll_raw fds events revents timeout_ms with
  | 0 | -1 -> []
  | -2 ->
      (* poll itself failed (e.g. EBADF somewhere in the set, which
         poll reports per-fd but a broken runtime state might not).
         Report everything ready: the caller's read/write paths hit the
         bad descriptor's error and close it, healing the set. *)
      List.map (fun { fd; read; write } -> { fd; readable = read; writable = write })
        interests
  | _ ->
      let ready = ref [] in
      for i = n - 1 downto 0 do
        if revents.(i) land events.(i) <> 0 then
          ready :=
            {
              fd = fds.(i);
              readable = revents.(i) land events.(i) land 1 <> 0;
              writable = revents.(i) land events.(i) land 2 <> 0;
            }
            :: !ready
      done;
      !ready

let wait_fd fd ~read ~write ~timeout_ms =
  match wait [ { fd; read; write } ] ~timeout_ms with
  | [] -> None
  | ev :: _ -> Some ev

module Outbuf = struct
  type t = {
    q : string Queue.t;
    mutable head_off : int;  (** bytes of [Queue.peek q] already written *)
    mutable len : int;  (** total unwritten bytes *)
  }

  let create () = { q = Queue.create (); head_off = 0; len = 0 }

  let add t s =
    if String.length s > 0 then begin
      Queue.push s t.q;
      t.len <- t.len + String.length s
    end

  let length t = t.len
  let is_empty t = t.len = 0

  let flush t fd =
    let rec go () =
      match Queue.peek_opt t.q with
      | None -> `All
      | Some head -> (
          let remaining = String.length head - t.head_off in
          match Unix.write_substring fd head t.head_off remaining with
          | written ->
              t.len <- t.len - written;
              if written = remaining then begin
                ignore (Queue.pop t.q);
                t.head_off <- 0;
                go ()
              end
              else begin
                t.head_off <- t.head_off + written;
                `Partial
              end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              `Partial
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (_, _, _) -> `Closed)
    in
    go ()
end
