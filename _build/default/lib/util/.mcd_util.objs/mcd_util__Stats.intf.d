lib/util/stats.mli:
