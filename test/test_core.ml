(* Tests for the paper's analysis pipeline: dependence DAGs, the shaker,
   slowdown thresholding, the path model, plans, and the editor. *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Inst = Mcd_isa.Inst
module Walker = Mcd_isa.Walker
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Probe = Mcd_cpu.Probe
module Controller = Mcd_cpu.Controller

let qcheck ?(seed = 0xc03e) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Histogram = Mcd_util.Histogram
module Dag = Mcd_core.Dag
module Shaker = Mcd_core.Shaker
module Threshold = Mcd_core.Threshold
module Path_model = Mcd_core.Path_model
module Plan = Mcd_core.Plan
module Editor = Mcd_core.Editor
module Analyze = Mcd_core.Analyze

let check_float = Alcotest.(check (float 1e-6))

(* Hand-built event streams: a chain of [n] instructions, each with
   fetch/execute/retire events; instruction i's execute depends on
   instruction i-1's. [gap_cycles] inserts slack between dependent
   executes. *)
let chain_events ?(domain = Domain.Integer) ?(gap_cycles = 0) n =
  let events = ref [] in
  let cycle = 1000 in
  for i = 0 to n - 1 do
    let fetch_start = i * cycle in
    let exec_start = (i * (1 + gap_cycles) * cycle) + (2 * cycle) in
    let retire_start = exec_start + (2 * cycle) in
    events :=
      {
        Probe.seq = i;
        static_id = i;
        klass = Inst.Int_alu;
        stage = Probe.Retire_s;
        domain = Domain.Front_end;
        start = retire_start;
        duration = cycle;
        dep_seqs = [||];
      }
      :: {
           Probe.seq = i;
           static_id = i;
           klass = Inst.Int_alu;
           stage = Probe.Execute_s;
           domain;
           start = exec_start;
           duration = cycle;
           dep_seqs = (if i > 0 then [| i - 1 |] else [||]);
         }
      :: {
           Probe.seq = i;
           static_id = i;
           klass = Inst.Int_alu;
           stage = Probe.Fetch_s;
           domain = Domain.Front_end;
           start = fetch_start;
           duration = cycle;
           dep_seqs = [||];
         }
      :: !events
  done;
  let arr = Array.of_list !events in
  Array.sort
    (fun (a : Probe.event) b ->
      compare
        (a.Probe.seq, a.Probe.stage = Probe.Retire_s, a.Probe.stage = Probe.Execute_s)
        (b.Probe.seq, b.Probe.stage = Probe.Retire_s, b.Probe.stage = Probe.Execute_s))
    arr;
  arr

(* --- Dag ------------------------------------------------------------- *)

let test_dag_build_counts () =
  let dag = Dag.build (chain_events 10) in
  Alcotest.(check int) "events" 30 (Dag.size dag);
  Alcotest.(check bool) "has edges" true (Dag.edge_count dag > 30);
  Dag.validate dag

let test_dag_empty () =
  let dag = Dag.build [||] in
  Alcotest.(check int) "empty" 0 (Dag.size dag)

let test_dag_slack_nonnegative () =
  let dag = Dag.build (chain_events ~gap_cycles:3 10) in
  for i = 0 to Dag.size dag - 1 do
    if Dag.slack dag i < 0.0 then Alcotest.fail "negative slack"
  done

let test_dag_base_path_is_makespan () =
  let dag = Dag.build (chain_events ~gap_cycles:2 20) in
  let signature = Dag.longest_path_signature dag ~slow:(fun _ -> 1.0) in
  let total = Array.fold_left ( +. ) 0.0 signature in
  check_float "base path equals recorded makespan"
    (dag.Dag.t_max -. dag.Dag.t_min) total

let test_dag_signature_senses_domain () =
  let dag = Dag.build (chain_events ~domain:Domain.Integer 20) in
  let sig4 =
    Dag.longest_path_signature dag ~slow:(fun d ->
        if d = Domain.Integer then 4.0 else 1.0)
  in
  Alcotest.(check bool) "integer time on the binding path" true
    (sig4.(Domain.index Domain.Integer) > 0.0)

let test_dag_path_signatures_probe_set () =
  let dag = Dag.build (chain_events 10) in
  let seg = Dag.path_signatures dag in
  Alcotest.(check bool) "base positive" true (seg.Path_model.base_ps > 0.0);
  Alcotest.(check bool) "several probes" true
    (List.length seg.Path_model.signatures >= 4)

(* --- Shaker ----------------------------------------------------------- *)

let test_shaker_no_slack_no_stretch () =
  (* a dense serial chain in one domain has no slack to distribute *)
  let dag = Dag.build (chain_events ~gap_cycles:0 30) in
  let r = Shaker.run dag in
  (* everything the critical chain owns stays at (or near) full speed:
     total work is conserved in the histograms *)
  let total =
    Array.fold_left (fun acc h -> acc +. Histogram.total h) 0.0 r.Shaker.histograms
  in
  let expected =
    Array.fold_left (fun acc (e : Dag.event) -> acc +. (e.Dag.duration /. 1000.0))
      0.0 dag.Dag.events
  in
  check_float "work conserved" expected total

let test_shaker_slack_gets_stretched () =
  let dag = Dag.build (chain_events ~gap_cycles:4 30) in
  let r = Shaker.run dag in
  Alcotest.(check bool) "some events stretched" true
    (r.Shaker.stretched_events > 0);
  Alcotest.(check bool) "passes ran" true (r.Shaker.passes >= 1)

let test_shaker_histogram_bins_valid () =
  let dag = Dag.build (chain_events ~gap_cycles:4 30) in
  let r = Shaker.run dag in
  Array.iter
    (fun h -> Alcotest.(check int) "bins" Freq.num_steps (Histogram.bins h))
    r.Shaker.histograms

let test_shaker_more_passes_more_stretch () =
  let dag = Dag.build (chain_events ~gap_cycles:4 40) in
  let one = Shaker.run ~max_passes:1 dag in
  let many = Shaker.run ~max_passes:24 dag in
  Alcotest.(check bool) "monotone in passes" true
    (many.Shaker.stretched_events >= one.Shaker.stretched_events)

let test_shaker_frequencies_of_durations () =
  let orig = [| 1000.0; 1000.0; 1000.0 |] in
  let stretched = [| 1000.0; 2000.0; 4000.0 |] in
  let fs = Shaker.frequencies_of_durations ~orig ~stretched in
  Alcotest.(check (array int)) "implied steps" [| 1000; 500; 250 |] fs

(* --- Threshold -------------------------------------------------------- *)

let hist_of assocs =
  let h = Histogram.create ~bins:Freq.num_steps in
  List.iter
    (fun (mhz, cycles) -> Histogram.add h ~bin:(Freq.index_of mhz) ~weight:cycles)
    assocs;
  h

let test_threshold_empty_floor () =
  Alcotest.(check int) "no work -> floor" Freq.fmin_mhz
    (Threshold.choose (Histogram.create ~bins:Freq.num_steps) ~slowdown_pct:7.0)

let test_threshold_all_full_speed_zero_budget () =
  let h = hist_of [ (1000, 100.0) ] in
  Alcotest.(check int) "no budget keeps fmax" Freq.fmax_mhz
    (Threshold.choose h ~slowdown_pct:0.0)

let test_threshold_all_slow_events () =
  let h = hist_of [ (250, 100.0) ] in
  Alcotest.(check int) "all work already slow" 250
    (Threshold.choose h ~slowdown_pct:1.0)

let test_threshold_budget_math () =
  (* 90 cycles ideally at 500 MHz and 10 at 1000: running everything at
     500 costs the 10 fast cycles an extra (2-1) x 10 = 10 time units on
     an ideal total of 190 -> 5.26% *)
  let h = hist_of [ (500, 90.0); (1000, 10.0) ] in
  check_float "expected slowdown at 500" (100.0 *. 10.0 /. 190.0)
    (Threshold.expected_slowdown h ~freq_mhz:500);
  Alcotest.(check int) "6% budget admits 500" 500
    (Threshold.choose h ~slowdown_pct:6.0);
  Alcotest.(check bool) "4% budget needs more speed" true
    (Threshold.choose h ~slowdown_pct:4.0 > 500)

let test_threshold_monotone_in_budget () =
  let h = hist_of [ (250, 20.0); (500, 30.0); (1000, 50.0) ] in
  let prev = ref Freq.fmax_mhz in
  List.iter
    (fun delta ->
      let f = Threshold.choose h ~slowdown_pct:delta in
      if f > !prev then Alcotest.fail "frequency rose with a looser budget";
      prev := f)
    [ 0.0; 2.0; 5.0; 10.0; 20.0; 50.0 ]

let test_threshold_negative_budget_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Threshold.choose: negative slowdown") (fun () ->
      ignore (Threshold.choose (hist_of [ (1000, 1.0) ]) ~slowdown_pct:(-1.0)))

let test_threshold_setting_of_histograms () =
  let hists =
    Array.init Domain.count (fun i ->
        if i = Domain.index Domain.Floating then
          Histogram.create ~bins:Freq.num_steps
        else hist_of [ (1000, 100.0) ])
  in
  let s = Threshold.setting_of_histograms hists ~slowdown_pct:0.0 in
  Alcotest.(check int) "idle fp at floor" Freq.fmin_mhz
    (Reconfig.get s Domain.Floating);
  Alcotest.(check int) "busy int at fmax" Freq.fmax_mhz
    (Reconfig.get s Domain.Integer)

(* --- Path model ------------------------------------------------------- *)

let segment ~base signatures = { Path_model.base_ps = base; signatures }

let test_path_model_estimate () =
  (* one path: 60% integer time, 40% constant *)
  let pm =
    Path_model.add_segment Path_model.empty
      (segment ~base:1000.0 [ [| 0.0; 600.0; 0.0; 0.0; 400.0 |] ])
  in
  let s = Reconfig.make ~front_end:1000 ~integer:500 ~floating:1000 ~memory:1000 in
  (* integer stretches 2x: 600 -> 1200; total 1600 vs 1000 -> +60% *)
  check_float "estimate" 60.0 (Path_model.estimated_slowdown_pct pm s);
  check_float "full speed is zero" 0.0
    (Path_model.estimated_slowdown_pct pm (Reconfig.full_speed ()))

let test_path_model_max_over_signatures () =
  let pm =
    Path_model.add_segment Path_model.empty
      (segment ~base:1000.0
         [ [| 0.0; 1000.0; 0.0; 0.0; 0.0 |]; [| 0.0; 0.0; 1000.0; 0.0; 0.0 |] ])
  in
  let s = Reconfig.make ~front_end:1000 ~integer:1000 ~floating:500 ~memory:1000 in
  check_float "worst signature binds" 100.0
    (Path_model.estimated_slowdown_pct pm s)

let test_path_model_refine_raises_frequencies () =
  let pm =
    Path_model.add_segment Path_model.empty
      (segment ~base:1000.0 [ [| 0.0; 900.0; 0.0; 0.0; 100.0 |] ])
  in
  let aggressive =
    Reconfig.make ~front_end:1000 ~integer:250 ~floating:250 ~memory:1000
  in
  let refined = Path_model.refine pm aggressive ~slowdown_pct:7.0 in
  Alcotest.(check bool) "integer raised" true
    (Reconfig.get refined Domain.Integer > 250);
  (* the floating domain is off the path: no reason to raise it *)
  Alcotest.(check int) "floating untouched" 250
    (Reconfig.get refined Domain.Floating);
  Alcotest.(check bool) "estimate within tolerance" true
    (Path_model.estimated_slowdown_pct pm refined <= 7.0 *. 1.20)

let test_path_model_refine_empty_noop () =
  let s = Reconfig.make ~front_end:500 ~integer:500 ~floating:500 ~memory:500 in
  let refined = Path_model.refine Path_model.empty s ~slowdown_pct:1.0 in
  Alcotest.(check bool) "unchanged" true (Reconfig.equal refined s)

let test_path_model_union () =
  let a =
    Path_model.add_segment Path_model.empty
      (segment ~base:500.0 [ [| 500.0; 0.0; 0.0; 0.0; 0.0 |] ])
  in
  let b =
    Path_model.add_segment Path_model.empty
      (segment ~base:500.0 [ [| 0.0; 500.0; 0.0; 0.0; 0.0 |] ])
  in
  let u = Path_model.union a b in
  let s = Reconfig.make ~front_end:500 ~integer:1000 ~floating:1000 ~memory:1000 in
  (* only the front-end segment stretches: +500 on a base of 1000 *)
  check_float "weighted across segments" 50.0
    (Path_model.estimated_slowdown_pct u s)

let test_swing_allowance_math () =
  (* zero duration: no swing allowed *)
  Alcotest.(check int) "zero duration" 0
    (Plan.swing_allowance_mhz ~duration_ps:0.0 ~f_target_mhz:1000);
  (* longer nodes tolerate bigger swings, monotonically *)
  let a = Plan.swing_allowance_mhz ~duration_ps:10_000_000.0 ~f_target_mhz:1000 in
  let b = Plan.swing_allowance_mhz ~duration_ps:40_000_000.0 ~f_target_mhz:1000 in
  Alcotest.(check bool) "positive" true (a > 0);
  (* quadratic ramp cost: 4x duration allows 2x swing *)
  Alcotest.(check bool) "sqrt growth" true
    (abs (b - (2 * a)) <= 2);
  (* a multi-millisecond phase (the paper's regime) tolerates the full
     750 MHz range *)
  let huge =
    Plan.swing_allowance_mhz ~duration_ps:5_000_000_000.0 ~f_target_mhz:1000
  in
  Alcotest.(check bool) "paper-scale phases unconstrained" true (huge >= 750)

(* --- Plan / Editor / Analyze ----------------------------------------- *)

let two_phase_program () =
  B.program ~name:"twophase" @@ fun b ->
  B.func b "int_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 () ] ];
  B.func b "fp_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 ~frac_fp_alu:0.35 () ] ];
  B.func b "main"
    [ B.loop b (P.Const 15) [ B.call b "int_phase"; B.call b "fp_phase" ] ];
  "main"

let test_input = { P.input_name = "t"; scale = 1; divergence = 0.0; seed = 33 }

let analyze_two_phase ?(context = Context.lf) () =
  Analyze.analyze ~program:(two_phase_program ()) ~train:test_input ~context
    ~threshold_insts:1_500 ~profile_insts:80_000 ~trace_insts:40_000 ()

let test_analyze_finds_long_nodes () =
  let plan, stats = analyze_two_phase () in
  Alcotest.(check bool) "long nodes found" true (stats.Analyze.long_nodes > 0);
  Alcotest.(check bool) "segments shaken" true (stats.Analyze.segments_shaken > 0);
  Alcotest.(check bool) "settings produced" true
    (Hashtbl.length plan.Plan.node_settings > 0)

let test_analyze_int_phase_scales_fp () =
  (* a purely integer program: every phase agrees the fp domain is idle,
     so nothing stops the plan from flooring it *)
  let prog =
    B.program ~name:"intonly" @@ fun b ->
    B.func b "kernel"
      [ B.loop b (P.Const 80) [ B.straight b ~length:40 () ] ];
    B.func b "main" [ B.loop b (P.Const 20) [ B.call b "kernel" ] ];
    "main"
  in
  let plan, _ =
    Analyze.analyze ~program:prog ~train:test_input ~context:Context.lf
      ~threshold_insts:1_500 ~profile_insts:60_000 ~trace_insts:40_000 ()
  in
  let fp_choices =
    List.filter_map
      (fun (n : Call_tree.node) ->
        match Plan.setting_for_node plan n.Call_tree.id with
        | Some s -> Some (Reconfig.get s Domain.Floating)
        | None -> None)
      (Call_tree.long_nodes plan.Plan.tree)
  in
  Alcotest.(check bool) "some node floors fp" true
    (List.exists (fun f -> f = Freq.fmin_mhz) fp_choices);
  (* in the two-phase program, swing clamping keeps the int phase's fp
     within ramping distance of the fp phase's requirement — scaled, but
     not floored *)
  let plan2, _ = analyze_two_phase () in
  let fp2 =
    List.filter_map
      (fun (n : Call_tree.node) ->
        match Plan.setting_for_node plan2 n.Call_tree.id with
        | Some s -> Some (Reconfig.get s Domain.Floating)
        | None -> None)
      (Call_tree.long_nodes plan2.Plan.tree)
  in
  Alcotest.(check bool) "two-phase fp scaled but above floor" true
    (List.exists (fun f -> f < Freq.fmax_mhz) fp2)

let test_plan_with_slowdown_monotone () =
  let plan, _ = analyze_two_phase () in
  let tight = Plan.with_slowdown plan ~slowdown_pct:1.0 in
  let loose = Plan.with_slowdown plan ~slowdown_pct:20.0 in
  List.iter
    (fun (n : Call_tree.node) ->
      match
        ( Plan.setting_for_node tight n.Call_tree.id,
          Plan.setting_for_node loose n.Call_tree.id )
      with
      | Some ts, Some ls ->
          List.iter
            (fun d ->
              if Reconfig.get ls d > Reconfig.get ts d then
                Alcotest.fail "looser budget chose a higher frequency")
            Domain.all
      | (Some _ | None), _ -> ())
    (Call_tree.long_nodes plan.Plan.tree)

let test_plan_static_points () =
  let plan, _ = analyze_two_phase ~context:Context.lfcp () in
  let r = Plan.static_reconfig_points plan in
  let i = Plan.static_instr_points plan in
  Alcotest.(check bool) "reconfig points positive" true (r > 0);
  Alcotest.(check bool) "reconfig subset of instrumentation" true (i >= r)

let test_plan_static_points_no_paths () =
  let plan, _ = analyze_two_phase ~context:Context.lf () in
  Alcotest.(check int) "L+F instruments only reconfig points"
    (Plan.static_reconfig_points plan)
    (Plan.static_instr_points plan)

(* Drive an edited controller directly with a synthetic marker stream. *)
let test_editor_static_save_restore () =
  let plan, _ = analyze_two_phase ~context:Context.lf () in
  let prog = two_phase_program () in
  let int_fid = (P.find_func prog "int_phase").P.fid in
  let edited = Editor.edit plan in
  let ctl = edited.Editor.controller in
  (* find a long unit to enter: int_phase itself may not be long (its
     loop is); drive enter/exit of the loop instead via unit lookup *)
  let unit_setting =
    Plan.setting_for_unit plan (Call_tree.Func_unit int_fid)
  in
  match unit_setting with
  | Some s ->
      let r1 =
        ctl.Controller.on_marker
          (Walker.Enter_func { fid = int_fid; site_id = Some 0 })
          ~now:0
      in
      Alcotest.(check bool) "enter reconfigures" true
        (r1.Controller.set = Some s);
      let r2 =
        ctl.Controller.on_marker (Walker.Exit_func { fid = int_fid }) ~now:10
      in
      (match r2.Controller.set with
      | Some restored ->
          Alcotest.(check bool) "exit restores full speed" true
            (Reconfig.equal restored (Reconfig.full_speed ()))
      | None -> Alcotest.fail "exit should reconfigure");
      Alcotest.(check int) "two reconfig executions" 2
        edited.Editor.counters.Editor.reconfig_execs
  | None -> (
      (* the long unit is the loop: same protocol through loop markers *)
      let loop_unit =
        List.find_map
          (fun u ->
            match u with
            | Call_tree.Loop_unit _ -> Plan.setting_for_unit plan u |> Option.map (fun s -> (u, s))
            | Call_tree.Func_unit _ -> None)
          (Call_tree.long_static_units plan.Plan.tree)
      in
      match loop_unit with
      | Some (Call_tree.Loop_unit loop_id, s) ->
          let _ =
            ctl.Controller.on_marker
              (Walker.Enter_func { fid = int_fid; site_id = Some 0 })
              ~now:0
          in
          let r1 =
            ctl.Controller.on_marker (Walker.Enter_loop { loop_id }) ~now:1
          in
          Alcotest.(check bool) "loop entry reconfigures" true
            (r1.Controller.set = Some s);
          let r2 =
            ctl.Controller.on_marker (Walker.Exit_loop { loop_id }) ~now:2
          in
          Alcotest.(check bool) "loop exit restores" true
            (match r2.Controller.set with
            | Some restored -> Reconfig.equal restored (Reconfig.full_speed ())
            | None -> false)
      | Some (Call_tree.Func_unit _, _) | None ->
          Alcotest.fail "no long unit found")

let test_editor_paths_unknown_no_reconfig () =
  (* train without divergence, run markers for an untrained path *)
  let prog =
    B.program ~name:"unk" @@ fun b ->
    B.func b "hot" [ B.loop b (P.Const 100) [ B.straight b ~length:30 () ] ];
    B.func b "cold" [ B.call b "hot" ];
    B.func b "main"
      [
        B.loop b (P.Const 10)
          [
            B.choose b
              ~prob:(fun inp -> inp.P.divergence)
              [ B.call b "cold" ]
              [ B.call b "hot" ];
          ];
      ];
    "main"
  in
  let plan, _ =
    Analyze.analyze ~program:prog ~train:test_input ~context:Context.lfcp
      ~threshold_insts:1_000 ~profile_insts:60_000 ~trace_insts:30_000 ()
  in
  let edited = Editor.edit plan in
  let ctl = edited.Editor.controller in
  let main_fid = (P.find_func prog "main").P.fid in
  let cold_fid = (P.find_func prog "cold").P.fid in
  let hot_fid = (P.find_func prog "hot").P.fid in
  let _ =
    ctl.Controller.on_marker (Walker.Enter_func { fid = main_fid; site_id = None }) ~now:0
  in
  (* the call chain main -> cold -> hot never occurred in training: the
     tracker is on label 0 and must not reconfigure *)
  let cold_site = 999 (* a site id that was never trained *) in
  let _ =
    ctl.Controller.on_marker
      (Walker.Enter_func { fid = cold_fid; site_id = Some cold_site })
      ~now:1
  in
  let r =
    ctl.Controller.on_marker
      (Walker.Enter_func { fid = hot_fid; site_id = Some 998 })
      ~now:2
  in
  Alcotest.(check bool) "no reconfiguration on unknown path" true
    (r.Controller.set = None)

let test_analyze_offline_equals_profile_when_same_input () =
  let plan_a, _ = analyze_two_phase () in
  let plan_b, _ = analyze_two_phase () in
  (* analysis is deterministic *)
  let settings p =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.Plan.node_settings []
    |> List.sort compare
  in
  Alcotest.(check bool) "deterministic" true (settings plan_a = settings plan_b)

(* --- Oracle ------------------------------------------------------------ *)

let test_oracle_schedule_shape () =
  let prog = two_phase_program () in
  let analysis =
    Mcd_core.Oracle.analyze ~program:prog ~input:test_input
      ~interval_insts:5_000 ~trace_insts:40_000 ()
  in
  let schedule = Mcd_core.Oracle.schedule_of analysis ~slowdown_pct:7.0 in
  Alcotest.(check int) "interval size" 5_000
    schedule.Mcd_core.Oracle.interval_insts;
  Alcotest.(check bool) "covers the trace" true
    (Array.length schedule.Mcd_core.Oracle.settings >= 7);
  (* at least one interval scales something *)
  Alcotest.(check bool) "some scaling" true
    (Array.exists
       (fun s -> Array.exists (fun f -> f < Freq.fmax_mhz) s)
       schedule.Mcd_core.Oracle.settings)

let test_oracle_tighter_budget_higher_freqs () =
  let prog = two_phase_program () in
  let analysis =
    Mcd_core.Oracle.analyze ~program:prog ~input:test_input
      ~interval_insts:5_000 ~trace_insts:40_000 ()
  in
  let tight = Mcd_core.Oracle.schedule_of analysis ~slowdown_pct:1.0 in
  let loose = Mcd_core.Oracle.schedule_of analysis ~slowdown_pct:20.0 in
  Array.iteri
    (fun i ts ->
      let ls = loose.Mcd_core.Oracle.settings.(i) in
      Array.iteri
        (fun d tf ->
          if ls.(d) > tf then
            Alcotest.fail "looser budget chose a higher frequency")
        ts)
    tight.Mcd_core.Oracle.settings

let test_oracle_policy_playback () =
  let settings =
    [|
      Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:1000;
      Reconfig.make ~front_end:1000 ~integer:1000 ~floating:250 ~memory:500;
    |]
  in
  let schedule = { Mcd_core.Oracle.interval_insts = 1_000; settings } in
  let ctl = Mcd_core.Oracle.policy schedule in
  let sample total =
    {
      Controller.elapsed_cycles = 100;
      avg_occupancy = Array.make Domain.count 0.0;
      retired = 0;
      total_retired = total;
      l1d_misses = 0;
      l2_misses = 0;
      target_mhz = Array.make Domain.count Freq.fmax_mhz;
      current_mhz = Array.make Domain.count (float_of_int Freq.fmax_mhz);
    }
  in
  (match ctl.Controller.on_sample (sample 10) ~now:0 with
  | Some s -> Alcotest.(check bool) "interval 0" true (Reconfig.equal s settings.(0))
  | None -> Alcotest.fail "expected first write");
  Alcotest.(check bool) "no repeat within interval" true
    (ctl.Controller.on_sample (sample 500) ~now:1 = None);
  (match ctl.Controller.on_sample (sample 1_500) ~now:2 with
  | Some s -> Alcotest.(check bool) "interval 1" true (Reconfig.equal s settings.(1))
  | None -> Alcotest.fail "expected second write");
  (* beyond the schedule: stays at the last setting *)
  Alcotest.(check bool) "clamped to last" true
    (ctl.Controller.on_sample (sample 99_000) ~now:3 = None)

(* --- Plan_io ----------------------------------------------------------- *)

let test_plan_io_roundtrip () =
  let plan, _ = analyze_two_phase () in
  let path = Filename.temp_file "mcd_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mcd_core.Plan_io.save plan ~path;
      let loaded = Mcd_core.Plan_io.load ~path ~tree:plan.Plan.tree in
      Alcotest.(check string) "context preserved"
        plan.Plan.context.Context.name loaded.Plan.context.Context.name;
      Alcotest.(check (float 1e-9)) "slowdown preserved"
        plan.Plan.slowdown_pct loaded.Plan.slowdown_pct;
      (* settings identical *)
      Hashtbl.iter
        (fun id s ->
          match Plan.setting_for_node loaded id with
          | Some s' ->
              Alcotest.(check bool) "node setting" true (Reconfig.equal s s')
          | None -> Alcotest.fail "missing node setting after load")
        plan.Plan.node_settings;
      Hashtbl.iter
        (fun u s ->
          match Plan.setting_for_unit loaded u with
          | Some s' ->
              Alcotest.(check bool) "unit setting" true (Reconfig.equal s s')
          | None -> Alcotest.fail "missing unit setting after load")
        plan.Plan.unit_settings;
      (* retained analysis data survives: re-thresholding still works *)
      let retightened = Plan.with_slowdown loaded ~slowdown_pct:2.0 in
      Alcotest.(check bool) "re-threshold after load" true
        (Hashtbl.length retightened.Plan.node_settings > 0))

let test_plan_io_fingerprint_mismatch () =
  let plan, _ = analyze_two_phase () in
  let other_program =
    B.program ~name:"other" @@ fun b ->
    B.func b "k" [ B.loop b (P.Const 50) [ B.straight b ~length:30 () ] ];
    B.func b "main" [ B.call b "k"; B.call b "k" ];
    "main"
  in
  let other_tree =
    Call_tree.build other_program ~input:test_input ~context:Context.lf
      ~threshold:400 ~max_insts:20_000 ()
  in
  let path = Filename.temp_file "mcd_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mcd_core.Plan_io.save plan ~path;
      match Mcd_core.Plan_io.load ~path ~tree:other_tree with
      | _ -> Alcotest.fail "expected fingerprint mismatch"
      | exception Failure _ -> ())

let test_plan_io_rejects_garbage () =
  let path = Filename.temp_file "mcd_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a plan\n";
      close_out oc;
      let plan, _ = analyze_two_phase () in
      match Mcd_core.Plan_io.load ~path ~tree:plan.Plan.tree with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

(* typed-error loading: corruption yields diagnostics, not exceptions *)

module RError = Mcd_robust.Error

let saved_two_phase f =
  let plan, _ = analyze_two_phase () in
  let path = Filename.temp_file "mcd_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mcd_core.Plan_io.save plan ~path;
      f plan path)

let map_plan_lines path ~f =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let oc = open_out path in
  List.iter (fun l -> output_string oc (f l ^ "\n")) (List.rev !lines);
  close_out oc

let test_load_result_truncated_file () =
  saved_two_phase (fun plan path ->
      let s =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin path in
      output_string oc (String.sub s 0 (String.length s * 3 / 5));
      close_out oc;
      match Mcd_core.Plan_io.load_result ~path ~tree:plan.Plan.tree with
      | Ok _ -> Alcotest.fail "truncated plan loaded"
      | Error errors ->
          Alcotest.(check bool) "diagnostics produced" true (errors <> []);
          Alcotest.(check int) "validation exit code" 2
            (RError.exit_code_of_list errors))

let test_load_result_flipped_frequency () =
  saved_two_phase (fun plan path ->
      (* out of range: the whole plan is rejected with a typed error *)
      let flipped = ref false in
      map_plan_lines path ~f:(fun l ->
          if (not !flipped) && String.length l > 5 && String.sub l 0 5 = "node "
          then begin
            flipped := true;
            match String.rindex_opt l ',' with
            | Some i -> String.sub l 0 (i + 1) ^ "999999"
            | None -> l
          end
          else l);
      Alcotest.(check bool) "a setting was flipped" true !flipped;
      match Mcd_core.Plan_io.load_result ~path ~tree:plan.Plan.tree with
      | Ok _ -> Alcotest.fail "out-of-range frequency accepted"
      | Error errors ->
          Alcotest.(check bool) "illegal frequency reported" true
            (List.exists
               (function RError.Illegal_frequency _ -> true | _ -> false)
               errors))

let test_load_result_off_grid_snapped () =
  saved_two_phase (fun plan path ->
      (* in range but off the 50 MHz grid: snapped with a warning *)
      let flipped = ref false in
      map_plan_lines path ~f:(fun l ->
          if (not !flipped) && String.length l > 5 && String.sub l 0 5 = "node "
          then begin
            flipped := true;
            match String.rindex_opt l ',' with
            | Some i -> String.sub l 0 (i + 1) ^ "313"
            | None -> l
          end
          else l);
      Alcotest.(check bool) "a setting was flipped" true !flipped;
      match Mcd_core.Plan_io.load_result ~path ~tree:plan.Plan.tree with
      | Error _ -> Alcotest.fail "recoverable off-grid value rejected"
      | Ok { Mcd_core.Plan_io.plan = loaded; warnings } ->
          Alcotest.(check bool) "warning emitted" true
            (List.exists
               (function RError.Illegal_frequency _ -> true | _ -> false)
               warnings);
          Hashtbl.iter
            (fun _ s ->
              Array.iter
                (fun mhz ->
                  Alcotest.(check bool) "every loaded setting on grid" true
                    (Freq.is_step mhz))
                s)
            loaded.Plan.node_settings)

let test_load_result_fingerprint_mismatch () =
  saved_two_phase (fun plan path ->
      let other_program =
        B.program ~name:"other2" @@ fun b ->
        B.func b "k" [ B.loop b (P.Const 50) [ B.straight b ~length:30 () ] ];
        B.func b "main" [ B.call b "k"; B.call b "k" ];
        "main"
      in
      let other_tree =
        Call_tree.build other_program ~input:test_input ~context:Context.lf
          ~threshold:400 ~max_insts:20_000 ()
      in
      ignore plan;
      match Mcd_core.Plan_io.load_result ~path ~tree:other_tree with
      | Ok _ -> Alcotest.fail "stale plan accepted"
      | Error errors ->
          Alcotest.(check bool) "typed fingerprint mismatch" true
            (List.exists
               (function RError.Fingerprint_mismatch _ -> true | _ -> false)
               errors))

let test_load_result_missing_headers_warn () =
  (* Regression: a plan with its context/slowdown header lines stripped
     used to load silently on the defaults. The defaults still apply,
     but each absent field must now surface a warning. *)
  saved_two_phase (fun plan path ->
      map_plan_lines path ~f:(fun l ->
          let starts p =
            String.length l >= String.length p
            && String.sub l 0 (String.length p) = p
          in
          if starts "context " || starts "slowdown " then "" else l);
      match Mcd_core.Plan_io.load_result ~path ~tree:plan.Plan.tree with
      | Error errors ->
          Alcotest.failf "headerless plan rejected: %s"
            (String.concat "; " (List.map RError.to_string errors))
      | Ok { Mcd_core.Plan_io.plan = loaded; warnings } ->
          let missing =
            List.filter_map
              (function
                | RError.Missing_header_field { field; _ } -> Some field
                | _ -> None)
              warnings
          in
          Alcotest.(check (list string)) "both fields flagged"
            [ "context"; "slowdown" ] missing;
          Alcotest.(check string) "context defaulted"
            Context.lf.Context.name loaded.Plan.context.Context.name;
          Alcotest.(check (float 1e-9)) "slowdown defaulted" 7.0
            loaded.Plan.slowdown_pct)

let test_load_result_bad_hist_arity () =
  (* Regression: histogram lines whose weight vector is shorter than the
     frequency grid used to be accepted, leaving partially-filled
     histograms. Any arity other than Freq.num_steps is now fatal. *)
  saved_two_phase (fun plan path ->
      map_plan_lines path ~f:(fun l ->
          if l = "end" then "hist 0 0 1.0,2.0\nend" else l);
      match Mcd_core.Plan_io.load_result ~path ~tree:plan.Plan.tree with
      | Ok _ -> Alcotest.fail "short histogram line accepted"
      | Error errors ->
          Alcotest.(check bool) "malformed-line diagnostic" true
            (List.exists
               (function RError.Malformed_line _ -> true | _ -> false)
               errors))

let test_load_result_missing_file () =
  let plan, _ = analyze_two_phase () in
  match
    Mcd_core.Plan_io.load_result ~path:"/nonexistent/dir/plan.txt"
      ~tree:plan.Plan.tree
  with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error errors ->
      Alcotest.(check int) "io exit code" 3 (RError.exit_code_of_list errors)

let test_plan_validate_clean_and_dirty () =
  let plan, _ = analyze_two_phase () in
  Alcotest.(check int) "fresh plan validates clean" 0
    (List.length (Mcd_core.Plan_io.validate plan));
  let bad = Array.make Domain.count 313 in
  Hashtbl.replace plan.Plan.node_settings 1 bad;
  Alcotest.(check bool) "off-grid setting reported" true
    (Mcd_core.Plan_io.validate plan <> [])

let test_call_tree_dot () =
  let plan, _ = analyze_two_phase () in
  let dot = Call_tree.to_dot plan.Plan.tree in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 50 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "long nodes shaded" true
    (let rec contains i =
       i + 8 <= String.length dot
       && (String.sub dot i 8 = "fillcolo" || contains (i + 1))
     in
     contains 0)

(* --- qcheck ----------------------------------------------------------- *)

let prop_threshold_choice_meets_budget =
  QCheck.Test.make ~name:"threshold choice meets its budget" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8)
           (pair (int_range 0 (Freq.num_steps - 1)) (float_range 1.0 1000.0)))
        (float_range 0.5 30.0))
    (fun (bins, delta) ->
      let h = Histogram.create ~bins:Freq.num_steps in
      List.iter (fun (bin, weight) -> Histogram.add h ~bin ~weight) bins;
      let f = Threshold.choose h ~slowdown_pct:delta in
      Threshold.expected_slowdown h ~freq_mhz:f <= delta +. 1e-6)

let prop_refine_never_lowers =
  QCheck.Test.make ~name:"path-model refine never lowers a frequency"
    ~count:100
    QCheck.(
      pair
        (quad (int_range 0 15) (int_range 0 15) (int_range 0 15)
           (int_range 0 15))
        (pair (float_range 100.0 10_000_000.0) (float_range 1.0 20.0)))
    (fun ((a, b, c, d), (base, delta)) ->
      let s =
        [|
          Freq.of_index a; Freq.of_index b; Freq.of_index c; Freq.of_index d;
        |]
      in
      let pm =
        Path_model.add_segment Path_model.empty
          (segment ~base
             [ [| base /. 4.; base /. 4.; base /. 4.; base /. 4.; 0.0 |] ])
      in
      let refined = Path_model.refine pm s ~slowdown_pct:delta in
      Array.for_all2 (fun before after -> after >= before) s refined)

let prop_editor_reconfigs_balanced =
  QCheck.Test.make ~name:"editor reconfigurations balance over a full walk"
    ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let prog = two_phase_program () in
      let plan, _ =
        Analyze.analyze ~program:prog
          ~train:{ P.input_name = "t"; scale = 1; divergence = 0.0; seed }
          ~context:Context.lf ~threshold_insts:1_500 ~profile_insts:60_000
          ~trace_insts:30_000 ()
      in
      let edited = Editor.edit plan in
      let walker =
        Walker.create prog
          ~input:{ P.input_name = "t"; scale = 1; divergence = 0.0; seed }
      in
      let writes = ref [] in
      let rec go () =
        match Walker.next walker with
        | None -> ()
        | Some (Walker.Inst _) -> go ()
        | Some (Walker.Marker m) ->
            (match
               (edited.Editor.controller.Controller.on_marker m ~now:0)
                 .Controller.set
             with
            | Some s -> writes := Array.copy s :: !writes
            | None -> ());
            go ()
      in
      go ();
      match !writes with
      | [] -> true
      | ws ->
          (* reconfigurations pair up: the final write restores the
             full-speed ambient the program started with *)
          List.length ws mod 2 = 0
          && List.hd ws = Mcd_domains.Reconfig.full_speed ())

let prop_shaker_conserves_work =
  QCheck.Test.make ~name:"shaker conserves work across histograms" ~count:30
    QCheck.(pair (int_range 5 40) (int_range 0 5))
    (fun (n, gap) ->
      let dag = Dag.build (chain_events ~gap_cycles:gap n) in
      let r = Shaker.run dag in
      let total =
        Array.fold_left (fun acc h -> acc +. Histogram.total h) 0.0
          r.Shaker.histograms
      in
      let expected =
        Array.fold_left
          (fun acc (e : Dag.event) -> acc +. (e.Dag.duration /. 1000.0))
          0.0 dag.Dag.events
      in
      Float.abs (total -. expected) < 1e-3)

let suite =
  [
    ("dag build counts", `Quick, test_dag_build_counts);
    ("dag empty", `Quick, test_dag_empty);
    ("dag slack nonnegative", `Quick, test_dag_slack_nonnegative);
    ("dag base path is makespan", `Quick, test_dag_base_path_is_makespan);
    ("dag signature senses domain", `Quick, test_dag_signature_senses_domain);
    ("dag path signature probes", `Quick, test_dag_path_signatures_probe_set);
    ("shaker no slack no stretch", `Quick, test_shaker_no_slack_no_stretch);
    ("shaker stretches slack", `Quick, test_shaker_slack_gets_stretched);
    ("shaker histogram bins", `Quick, test_shaker_histogram_bins_valid);
    ("shaker monotone in passes", `Quick, test_shaker_more_passes_more_stretch);
    ("shaker implied frequencies", `Quick, test_shaker_frequencies_of_durations);
    ("threshold empty -> floor", `Quick, test_threshold_empty_floor);
    ("threshold zero budget", `Quick, test_threshold_all_full_speed_zero_budget);
    ("threshold already slow", `Quick, test_threshold_all_slow_events);
    ("threshold budget math", `Quick, test_threshold_budget_math);
    ("threshold monotone", `Quick, test_threshold_monotone_in_budget);
    ("threshold rejects negative", `Quick, test_threshold_negative_budget_rejected);
    ("threshold setting per domain", `Quick, test_threshold_setting_of_histograms);
    ("path model estimate", `Quick, test_path_model_estimate);
    ("path model max of signatures", `Quick, test_path_model_max_over_signatures);
    ("path model refine", `Quick, test_path_model_refine_raises_frequencies);
    ("path model refine empty", `Quick, test_path_model_refine_empty_noop);
    ("path model union", `Quick, test_path_model_union);
    ("swing allowance math", `Quick, test_swing_allowance_math);
    ("analyze finds long nodes", `Quick, test_analyze_finds_long_nodes);
    ("analyze floors idle fp", `Quick, test_analyze_int_phase_scales_fp);
    ("plan with_slowdown monotone", `Quick, test_plan_with_slowdown_monotone);
    ("plan static points", `Quick, test_plan_static_points);
    ("plan static points L+F", `Quick, test_plan_static_points_no_paths);
    ("editor save/restore", `Quick, test_editor_static_save_restore);
    ("editor unknown path", `Quick, test_editor_paths_unknown_no_reconfig);
    ("analyze deterministic", `Quick, test_analyze_offline_equals_profile_when_same_input);
    ("oracle schedule shape", `Quick, test_oracle_schedule_shape);
    ("oracle budget monotone", `Quick, test_oracle_tighter_budget_higher_freqs);
    ("oracle policy playback", `Quick, test_oracle_policy_playback);
    ("plan_io roundtrip", `Quick, test_plan_io_roundtrip);
    ("plan_io fingerprint mismatch", `Quick, test_plan_io_fingerprint_mismatch);
    ("plan_io rejects garbage", `Quick, test_plan_io_rejects_garbage);
    ("load_result truncated file", `Quick, test_load_result_truncated_file);
    ("load_result flipped frequency", `Quick, test_load_result_flipped_frequency);
    ("load_result off-grid snapped", `Quick, test_load_result_off_grid_snapped);
    ( "load_result fingerprint mismatch",
      `Quick,
      test_load_result_fingerprint_mismatch );
    ( "load_result missing headers warn",
      `Quick,
      test_load_result_missing_headers_warn );
    ("load_result bad hist arity", `Quick, test_load_result_bad_hist_arity);
    ("load_result missing file", `Quick, test_load_result_missing_file);
    ("plan validate", `Quick, test_plan_validate_clean_and_dirty);
    ("call tree dot export", `Quick, test_call_tree_dot);
    qcheck prop_threshold_choice_meets_budget;
    qcheck prop_shaker_conserves_work;
    qcheck prop_refine_never_lowers;
    qcheck prop_editor_reconfigs_balanced;
  ]
