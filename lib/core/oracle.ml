module Interval_collector = Mcd_trace.Interval_collector
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Controller = Mcd_cpu.Controller
module Histogram = Mcd_util.Histogram
module Reconfig = Mcd_domains.Reconfig
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq

type interval_data = {
  histograms : Histogram.t array option; (* None: too little data *)
  paths : Path_model.t;
  duration_ps : float;
}

type analysis = { interval_insts : int; intervals : interval_data array }

type schedule = { interval_insts : int; settings : Reconfig.setting array }

let min_interval_events = 50
let default_interval_insts = 10_000

(* Canonical codec for cached analyses. Same conventions as Plan_io /
   Metrics: line-based, floats in lossless %h form, `end` trailer so a
   truncated payload is detected. List orders (segments, signatures) are
   preserved exactly so decode (encode a) rebuilds a bit for bit. *)
let encode_analysis (a : analysis) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let floats arr =
    String.concat ","
      (List.map (Printf.sprintf "%h") (Array.to_list arr))
  in
  add "oracle-analysis 1\n";
  add "interval_insts %d\n" a.interval_insts;
  add "intervals %d\n" (Array.length a.intervals);
  Array.iter
    (fun iv ->
      add "interval %h\n" iv.duration_ps;
      (match iv.histograms with
      | None -> add "hists none\n"
      | Some hs ->
          add "hists %d\n" (Array.length hs);
          Array.iter
            (fun h ->
              let ws =
                List.rev
                  (Histogram.fold h ~init:[] ~f:(fun acc ~bin:_ ~weight ->
                       weight :: acc))
              in
              add "hist %d %s\n" (Histogram.bins h)
                (String.concat "," (List.map (Printf.sprintf "%h") ws)))
            hs);
      add "paths %d\n" (List.length iv.paths.Path_model.segments);
      List.iter
        (fun (seg : Path_model.segment) ->
          add "seg %h %d\n" seg.base_ps (List.length seg.signatures);
          List.iter (fun s -> add "sig %s\n" (floats s)) seg.signatures)
        iv.paths.Path_model.segments)
    a.intervals;
  add "end\n";
  Buffer.contents buf

exception Corrupt of string

let decode_analysis s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let lines = String.split_on_char '\n' s in
  let lines =
    Array.of_list
      (match List.rev lines with "" :: rest -> List.rev rest | _ -> lines)
  in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length lines then fail "truncated oracle payload"
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let int what v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "bad %s %S" what v
  in
  let float what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail "bad %s %S" what v
  in
  let float_list what v =
    List.map (float what) (String.split_on_char ',' v)
  in
  let field name =
    let l = next () in
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = name ->
        String.sub l (i + 1) (String.length l - i - 1)
    | _ -> fail "expected %S line, got %S" name l
  in
  try
    let header = next () in
    if header <> "oracle-analysis 1" then
      fail "bad oracle header %S" header;
    let interval_insts = int "interval_insts" (field "interval_insts") in
    let n_intervals = int "interval count" (field "intervals") in
    let intervals =
      Array.init n_intervals (fun _ ->
          let duration_ps = float "duration" (field "interval") in
          let histograms =
            match field "hists" with
            | "none" -> None
            | n ->
                let n = int "histogram count" n in
                Some
                  (Array.init n (fun _ ->
                       match String.split_on_char ' ' (field "hist") with
                       | [ bins; ws ] ->
                           let bins = int "histogram bins" bins in
                           let ws = float_list "histogram weight" ws in
                           if List.length ws <> bins then
                             fail "histogram bin count mismatch";
                           let h = Histogram.create ~bins in
                           List.iteri
                             (fun bin weight -> Histogram.add h ~bin ~weight)
                             ws;
                           h
                       | _ -> fail "malformed hist line"))
          in
          let n_segs = int "segment count" (field "paths") in
          let segments =
            List.init n_segs (fun _ ->
                match String.split_on_char ' ' (field "seg") with
                | [ base; n_sigs ] ->
                    let base_ps = float "segment base" base in
                    let n_sigs = int "signature count" n_sigs in
                    let signatures =
                      List.init n_sigs (fun _ ->
                          Array.of_list
                            (float_list "signature" (field "sig")))
                    in
                    { Path_model.base_ps; signatures }
                | _ -> fail "malformed seg line")
          in
          { duration_ps; histograms; paths = { Path_model.segments } })
    in
    let trailer = next () in
    if trailer <> "end" then fail "missing end-of-analysis marker";
    if !pos <> Array.length lines then fail "content after end marker";
    Result.Ok ({ interval_insts; intervals } : analysis)
  with
  | Corrupt m -> Result.Error m
  (* Histogram.create/add validate bins and weights; a corrupted payload
     can trip those checks before ours. *)
  | Invalid_argument m -> Result.Error m

let analyze ~program ~input ?(interval_insts = 10_000)
    ?(trace_insts = 120_000) ?(config = Config.alpha21264_like) () =
  let collector = Interval_collector.create ~interval_insts () in
  let _ =
    Pipeline.run
      ~probe:(Interval_collector.probe collector)
      ~config ~program ~input ~max_insts:trace_insts ()
  in
  let intervals =
    List.map
      (fun events ->
        if Array.length events < min_interval_events then
          { histograms = None; paths = Path_model.empty; duration_ps = 0.0 }
        else begin
          let dag = Dag.build ~rob_size:config.Config.rob_size events in
          let result = Shaker.run dag in
          {
            histograms = Some result.Shaker.histograms;
            paths =
              Path_model.add_segment Path_model.empty
                (Dag.path_signatures dag);
            duration_ps = dag.Dag.t_max -. dag.Dag.t_min;
          }
        end)
      (Interval_collector.intervals collector)
  in
  { interval_insts; intervals = Array.of_list intervals }

let schedule_of (a : analysis) ~slowdown_pct =
  let settings =
    Array.map
      (fun iv ->
        match iv.histograms with
        | None -> Reconfig.full_speed ()
        | Some hists ->
            let s = Threshold.setting_of_histograms hists ~slowdown_pct in
            Path_model.refine iv.paths s ~slowdown_pct)
      a.intervals
  in
  (* transition-aware swing clamping across the schedule *)
  let domain_max = Array.make Domain.count Freq.fmin_mhz in
  Array.iteri
    (fun i s ->
      if a.intervals.(i).duration_ps > 0.0 then
        Array.iteri
          (fun d f -> if f > domain_max.(d) then domain_max.(d) <- f)
          s)
    settings;
  let clamped =
    Array.mapi
      (fun i s ->
        Array.mapi
          (fun d f ->
            let allowance =
              Plan.swing_allowance_mhz
                ~duration_ps:a.intervals.(i).duration_ps
                ~f_target_mhz:domain_max.(d)
            in
            Freq.clamp (max f (domain_max.(d) - allowance)))
          s)
      settings
  in
  { interval_insts = a.interval_insts; settings = clamped }

let policy schedule =
  let current = ref (-1) in
  let on_sample (s : Controller.sample) ~now:_ =
    let n = Array.length schedule.settings in
    if n = 0 then None
    else begin
      let idx =
        min (n - 1) (s.Controller.total_retired / schedule.interval_insts)
      in
      if idx <> !current then begin
        current := idx;
        Some schedule.settings.(idx)
      end
      else None
    end
  in
  {
    Controller.name = "off-line (interval oracle)";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = 1_000;
  }
