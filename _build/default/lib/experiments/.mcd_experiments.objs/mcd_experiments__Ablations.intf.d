lib/experiments/ablations.mli: Mcd_workloads
