type t = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array; (* sets * ways; -1 = invalid *)
  stamps : int array; (* LRU stamps, parallel to tags *)
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Config.cache_geometry) =
  assert (g.sets > 0 && g.ways > 0 && g.line_bytes > 0);
  {
    sets = g.sets;
    ways = g.ways;
    line_shift = log2 g.line_bytes;
    tags = Array.make (g.sets * g.ways) (-1);
    stamps = Array.make (g.sets * g.ways) 0;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
  }

let locate t ~addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let tag = line / t.sets in
  (set, tag)

let find_way t set tag =
  let base = set * t.ways in
  let rec go w =
    if w >= t.ways then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let access t ~addr =
  let set, tag = locate t ~addr in
  t.tick <- t.tick + 1;
  match find_way t set tag with
  | Some idx ->
      t.stamps.(idx) <- t.tick;
      t.hit_count <- t.hit_count + 1;
      true
  | None ->
      t.miss_count <- t.miss_count + 1;
      (* fill: evict the LRU way *)
      let base = set * t.ways in
      let victim = ref base in
      for w = 1 to t.ways - 1 do
        if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
      done;
      t.tags.(!victim) <- tag;
      t.stamps.(!victim) <- t.tick;
      false

let probe t ~addr =
  let set, tag = locate t ~addr in
  Option.is_some (find_way t set tag)

let hits t = t.hit_count
let misses t = t.miss_count

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
