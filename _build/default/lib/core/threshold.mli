(** Slowdown thresholding (Section 3.3 of the paper).

    Individual events cannot be scaled in hardware — a whole domain must
    run at one frequency for the duration of a tree node. Given the
    shaker's per-domain histogram (work by ideal frequency step) and a
    tolerated slowdown of delta percent, this picks the minimum domain
    frequency such that the extra time needed to execute all
    faster-than-chosen events at the chosen frequency stays within
    delta percent of the node's ideal total time. *)

val choose : Mcd_util.Histogram.t -> slowdown_pct:float -> int
(** Minimum frequency (MHz, a legal step) meeting the bound. A histogram
    with no weight yields the floor frequency (the domain did no work in
    this node). [slowdown_pct] must be non-negative. *)

val expected_slowdown : Mcd_util.Histogram.t -> freq_mhz:int -> float
(** The slowdown estimate (percent) the thresholding computes for
    running the domain at [freq_mhz]: extra time over ideal, as a
    fraction of ideal total time. *)

val setting_of_histograms :
  Mcd_util.Histogram.t array ->
  slowdown_pct:float ->
  Mcd_domains.Reconfig.setting
(** Apply {!choose} to each domain's histogram (indexed by
    {!Mcd_domains.Domain.index}). *)
