(** Program walker: turns a structured program plus an input set into the
    dynamic event stream consumed by the pipeline simulator and by the
    profiler.

    The stream interleaves two kinds of events. [Inst] events are dynamic
    instructions with concrete registers, addresses, and branch outcomes;
    the pipeline executes these. [Marker] events announce phase-structure
    boundaries (function entry/exit, loop entry/exit) exactly where
    ATOM-inserted instrumentation would observe them; the profiler and
    the run-time reconfiguration policies consume these. Markers carry no
    cost by themselves — when a control policy reacts to one, the
    simulator charges the paper's per-instrumentation-point penalty.

    All randomness derives from the input's seed, so a walk is a pure
    function of (program, input). *)

type marker =
  | Enter_func of { fid : int; site_id : int option }
      (** [site_id] identifies the call site, [None] for the program
          entry point *)
  | Exit_func of { fid : int }
  | Enter_loop of { loop_id : int }
  | Exit_loop of { loop_id : int }

type event = Marker of marker | Inst of Inst.dyn

type t

val create : Program.t -> input:Program.input -> t

val next : t -> event option
(** The next event, or [None] once the program's main function has
    returned. *)

val instructions_emitted : t -> int
(** Dynamic instructions produced so far (markers excluded). *)

val pp_marker : Format.formatter -> marker -> unit

(** Synthetic static-PC encoding, shared with the branch predictor and
    profiler tables. *)

val pc_of_block_slot : block_id:int -> slot:int -> int
val pc_of_loop_branch : loop_id:int -> int
val pc_of_call : site_id:int -> int
val pc_of_return : fid:int -> int

val as_loop_branch : pc:int -> int option
(** [Some loop_id] when [pc] is a loop back-edge branch
    ({!pc_of_loop_branch}). A taken back edge marks an iteration
    boundary of that loop; the final, not-taken one precedes its
    [Exit_loop] marker. The phase sampler keys iteration-level
    sampling on these. *)
