module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Coverage = Mcd_profiling.Coverage
module Config = Mcd_cpu.Config
module Table = Mcd_util.Table

let table1 () =
  "Table 1: simulated processor configuration\n"
  ^ Format.asprintf "%a" Config.pp_table Config.alpha21264_like

let table2 () =
  let header =
    [
      "benchmark"; "suite"; "train scale"; "ref scale"; "train window";
      "ref window"; "behavioural trait";
    ]
  in
  let align =
    [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
      Table.Right; Table.Left ]
  in
  let body =
    List.map
      (fun (w : Workload.t) ->
        [
          w.Workload.name;
          Workload.kind_name w.Workload.kind;
          string_of_int w.Workload.train.Mcd_isa.Program.scale;
          string_of_int w.Workload.reference.Mcd_isa.Program.scale;
          Printf.sprintf "0 - %d" w.Workload.train_window;
          Printf.sprintf "%d - %d" w.Workload.ref_offset
            (w.Workload.ref_offset + w.Workload.ref_window);
          w.Workload.trait;
        ])
      Suite.all
  in
  "Table 2: benchmarks, input scales and instruction windows\n"
  ^ Table.render ~align ~header ~rows:body ()

let profile_window = Runner.analysis_profile_insts

let table3 ?(workloads = Suite.all) () =
  let header =
    [
      "benchmark"; "train long"; "train total"; "ref long"; "ref total";
      "common long"; "common total"; "cov long"; "cov total";
    ]
  in
  let body =
    Runner.map_workloads
      (fun (w : Workload.t) ->
        let build input =
          Call_tree.build w.Workload.program ~input ~context:Context.lfcp
            ~max_insts:profile_window ()
        in
        let train = build w.Workload.train in
        let reference = build w.Workload.reference in
        let c = Coverage.compare ~train ~reference in
        [
          w.Workload.name;
          string_of_int c.Coverage.train_long;
          string_of_int c.Coverage.train_total;
          string_of_int c.Coverage.ref_long;
          string_of_int c.Coverage.ref_total;
          string_of_int c.Coverage.common_long;
          string_of_int c.Coverage.common_total;
          Table.fmt_f2 c.Coverage.long_coverage;
          Table.fmt_f2 c.Coverage.total_coverage;
        ])
      workloads
  in
  "Table 3: call-tree nodes for training and reference inputs (L+F+C+P)\n"
  ^ Table.render ~header ~rows:body ()
