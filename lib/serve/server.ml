module Error = Mcd_robust.Error
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_obs.Metrics

type config = {
  socket : string;
  workers : int;
  queue_max : int;
  client_max : int;
  compute_delay_s : float;
  trace_dir : string option;
  drain_grace_s : float;
  drain_deadline_s : float;
  journal : string option;
  deadline_s : float option;
  retry_after_cap_ms : int;
}

(* The journal lives beside the payloads it protects: a restart that can
   see the cache can also see which acknowledged jobs still owe answers. *)
let default_journal_path () =
  Option.map
    (fun store -> Filename.concat (Mcd_cache.Store.dir store) "serve.journal")
    (Mcd_cache.Store.default ())

let default_config ~socket =
  {
    socket;
    workers = 2;
    queue_max = 64;
    client_max = 16;
    compute_delay_s = 0.0;
    trace_dir = None;
    drain_grace_s = 1.0;
    drain_deadline_s = 60.0;
    journal = default_journal_path ();
    deadline_s = None;
    retry_after_cap_ms = 10_000;
  }

(* --- request resolution ------------------------------------------------ *)

let policy_of_wire = function
  | Protocol.Baseline -> `Baseline
  | Protocol.Offline -> `Offline
  | Protocol.Online -> `Online
  | Protocol.Profile -> `Profile

let resolve (r : Protocol.request) =
  match Mcd_workloads.Suite.find_opt r.workload with
  | None ->
      Result.Error
        (Printf.sprintf "unknown workload %S (valid: %s)" r.workload
           (String.concat ", " Mcd_workloads.Suite.names))
  | Some w -> (
      match Mcd_profiling.Context.of_name r.context with
      | exception Not_found ->
          Result.Error
            (Printf.sprintf "unknown context %S (valid: %s)" r.context
               (String.concat ", "
                  (List.map
                     (fun (c : Mcd_profiling.Context.t) -> c.name)
                     Mcd_profiling.Context.all)))
      | context ->
          if not (Float.is_finite r.slowdown_pct) || r.slowdown_pct < 0.0 then
            Result.Error "slowdown must be a non-negative finite percentage"
          else Ok (w, policy_of_wire r.policy, context))

let request_digest (r : Protocol.request) =
  Result.map
    (fun (w, policy, context) ->
      Mcd_cache.Key.digest
        (Runner.request_key w ~policy ~context ~slowdown_pct:r.slowdown_pct))
    (resolve r)

let compute (r : Protocol.request) =
  match resolve r with
  | Result.Error msg -> invalid_arg ("Server.compute: " ^ msg)
  | Ok (w, policy, context) ->
      Mcd_power.Metrics.encode
        (Runner.run_request w ~policy ~context ~slowdown_pct:r.slowdown_pct)

(* --- socket setup ------------------------------------------------------ *)

let io_error socket message = Error.Server_unavailable { socket; message }

(* A socket file can outlive its server (SIGKILL, crash). Probing
   distinguishes a live server (connect succeeds — refuse to double-bind)
   from a stale corpse (connect refused — unlink and take over). *)
let clear_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close fd;
          Result.Error
            (io_error path "a server is already listening on this socket")
      | exception Unix.Unix_error (_, _, _) ->
          Unix.close fd;
          (try Sys.remove path with Sys_error _ -> ());
          Ok ())
  | _ ->
      Result.Error (io_error path "path exists and is not a socket")
  | exception Unix.Unix_error (_, _, _) ->
      Result.Error (io_error path "cannot stat socket path")

(* Two servers racing to start see the same stale socket and both decide
   to unlink-and-rebind; the second silently steals the first's bound
   socket file. An exclusive lock file serializes the whole
   probe→unlink→bind sequence: the loser reports Server_unavailable
   instead of corrupting the winner. The lock is held (fd open) for the
   server's lifetime and released by close on exit; the file itself is
   never unlinked — unlinking would reopen the race it exists to close. *)
let acquire_start_lock socket =
  let path = socket ^ ".lock" in
  match Unix.openfile path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (io_error socket (Unix.error_message e))
  | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () -> Ok fd
      | exception Unix.Unix_error (_, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Result.Error
            (io_error socket
               "another server is starting or running (start lock held)"))

let bind_socket path =
  match clear_stale_socket path with
  | Result.Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Result.Error (io_error path (Unix.error_message e)))

(* --- connections ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  client : string;
  mutable acc : string;  (** bytes received, not yet parsed into lines *)
  mutable waits : int list;  (** job ids this client is parked on *)
}

exception Hung_up

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise Hung_up
  in
  go 0

let send conn reply = write_all conn.fd (Protocol.render_reply reply ^ "\n")

let send_payload conn reply body =
  write_all conn.fd (Protocol.render_reply reply ^ "\n" ^ body ^ "end\n")

(* --- the event loop ---------------------------------------------------- *)

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** self-pipe: completions poke the loop *)
  wake_w : Unix.file_descr;
  sched : Scheduler.t;
  journal : Journal.t option;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable next_client : int;
  mutable drain_started : float option;
  mutable idle_since : float option;
}

let poke fd =
  (* From a worker domain. The pipe is non-blocking; a full pipe already
     guarantees a pending wakeup, so EAGAIN is success. *)
  try ignore (Unix.write_substring fd "!" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let wire_state : Scheduler.state -> Protocol.state = function
  | Scheduler.Queued -> Protocol.Queued
  | Scheduler.Running -> Protocol.Running
  | Scheduler.Done _ -> Protocol.Done
  | Scheduler.Failed { message; _ } -> Protocol.Failed message

let status_reply (info : Scheduler.info) =
  Protocol.Status_reply { id = info.id; state = wire_state info.state }

(* The warm-restart story lives here: the persistent store's session
   counters are mirrored into the sink registry as [store.*] gauges, so
   a [stats] export shows whether payloads came from recomputation or
   from objects a previous server (or a one-shot CLI run) left behind. *)
let mirror_store_stats t =
  match Mcd_cache.Store.default () with
  | None -> ()
  | Some store ->
      let s = Mcd_cache.Store.stats store in
      Scheduler.with_registry t.sched (fun m ->
          let set name v =
            Metrics.set (Metrics.gauge m name) (float_of_int v)
          in
          set "store.hits" s.hits;
          set "store.misses" s.misses;
          set "store.corrupt" s.corrupt;
          set "store.stores" s.stores;
          set "store.bytes_read" s.bytes_read;
          set "store.bytes_written" s.bytes_written;
          set "store.gc_removed" s.gc_removed;
          set "store.gc_freed_bytes" s.gc_freed_bytes)

(* Journal counters surface as [journal.*] gauges, so `mcd-dvfs status`
   (a [stats] command under the hood) shows whether this server replayed
   work or recovered from a torn/corrupt log. *)
let mirror_journal_stats t =
  match t.journal with
  | None -> ()
  | Some j ->
      let s = Journal.stats j in
      Scheduler.with_registry t.sched (fun m ->
          let set name v =
            Metrics.set (Metrics.gauge m name) (float_of_int v)
          in
          set "journal.admitted" s.Journal.admitted;
          set "journal.finished" s.Journal.finished;
          set "journal.replayed" s.Journal.replayed;
          set "journal.recovered_torn" s.Journal.recovered_torn;
          set "journal.recovered_corrupt" s.Journal.recovered_corrupt)

let begin_drain t =
  if t.drain_started = None then begin
    t.drain_started <- Some (Unix.gettimeofday ());
    Scheduler.set_draining t.sched
  end

let close_conn t conn =
  Hashtbl.remove t.conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ()

let handle_command t conn ~digest = function
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.Quit -> raise Hung_up
  | Protocol.Drain ->
      begin_drain t;
      send conn Protocol.Draining_reply
  | Protocol.Stats ->
      mirror_store_stats t;
      mirror_journal_stats t;
      let body = Scheduler.export_metrics t.sched in
      send_payload conn
        (Protocol.Stats_payload { bytes = String.length body })
        body
  | Protocol.Submit { priority; request } -> (
      match digest request with
      | Result.Error msg ->
          send conn (Protocol.Rejected (Protocol.Bad_request msg))
      | Ok dg -> (
          match
            Scheduler.submit t.sched ~client:conn.client ~priority ~digest:dg
              request
          with
          | Scheduler.Accepted info ->
              (* Write-ahead: the admit record is durable (fsynced)
                 before the ack leaves this process, so an acknowledged
                 job survives any later crash. *)
              (match t.journal with
              | Some j ->
                  Journal.admit j
                    {
                      Journal.id = info.id;
                      client = conn.client;
                      priority;
                      digest = dg;
                      request;
                    }
              | None -> ());
              send conn
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = false })
          | Scheduler.Coalesced info ->
              send conn
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = true })
          | Scheduler.Rejected reject -> send conn (Protocol.Rejected reject)))
  | Protocol.Status id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> send conn (status_reply info))
  | Protocol.Wait id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done _ | Scheduler.Failed _ -> send conn (status_reply info)
          | Scheduler.Queued | Scheduler.Running ->
              conn.waits <- id :: conn.waits))
  | Protocol.Result id -> (
      match Scheduler.find t.sched id with
      | None -> send conn (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done payload ->
              send_payload conn
                (Protocol.Payload { id; bytes = String.length payload })
                payload
          | Scheduler.Failed { message; _ } ->
              let reject =
                if info.timed_out then
                  Protocol.Deadline
                    {
                      id;
                      deadline_ms =
                        int_of_float
                          (1000.0 *. Option.value ~default:0.0 t.cfg.deadline_s);
                    }
                else Protocol.Job_failed { id; message }
              in
              send conn (Protocol.Rejected reject)
          | Scheduler.Queued | Scheduler.Running ->
              send conn (Protocol.Rejected (Protocol.Not_done id))))

(* Split complete lines off the connection's accumulator and run them. *)
let handle_input t conn ~digest chunk =
  conn.acc <- conn.acc ^ chunk;
  let rec go () =
    match String.index_opt conn.acc '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub conn.acc 0 i in
        conn.acc <-
          String.sub conn.acc (i + 1) (String.length conn.acc - i - 1);
        (match Protocol.parse_command line with
        | Ok cmd -> handle_command t conn ~digest cmd
        | Result.Error reason ->
            send conn
              (Protocol.Rejected
                 (Protocol.Bad_request
                    (Printf.sprintf "%s (line %S)" reason line))));
        go ()
  in
  go ()

let answer_parked_waits t =
  Hashtbl.iter
    (fun _ conn ->
      match conn.waits with
      | [] -> ()
      | waits ->
          let still_pending =
            List.filter
              (fun id ->
                match Scheduler.find t.sched id with
                | None ->
                    send conn (Protocol.Rejected (Protocol.Unknown_job id));
                    false
                | Some info -> (
                    match info.state with
                    | Scheduler.Done _ | Scheduler.Failed _ ->
                        send conn (status_reply info);
                        false
                    | Scheduler.Queued | Scheduler.Running -> true))
              (List.rev waits)
          in
          conn.waits <- List.rev still_pending)
    t.conns

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      let client = Printf.sprintf "c%d" t.next_client in
      t.next_client <- t.next_client + 1;
      let conn = { fd; client; acc = ""; waits = [] } in
      Hashtbl.replace t.conns fd conn;
      (match
         write_all fd
           (Protocol.render_reply
              (Protocol.Ready
                 {
                   version = Protocol.version;
                   workers = Scheduler.workers t.sched;
                   queue_max = Scheduler.queue_max t.sched;
                 })
           ^ "\n")
       with
      | () -> ()
      | exception Hung_up -> close_conn t conn)
  | exception Unix.Unix_error (_, _, _) -> ()

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let no_parked_waits t =
  Hashtbl.fold (fun _ c acc -> acc && c.waits = []) t.conns true

(* Drain watchdog: [true] once the server should exit. Grace lets a
   client fetch the result of a job that finished during the drain; the
   deadline bounds everything. *)
let drained t =
  match t.drain_started with
  | None -> false
  | Some started ->
      let now = Unix.gettimeofday () in
      if now -. started > t.cfg.drain_deadline_s then true
      else if Scheduler.idle t.sched && no_parked_waits t then begin
        (match t.idle_since with None -> t.idle_since <- Some now | Some _ -> ());
        Hashtbl.length t.conns = 0
        || now -. Option.get t.idle_since > t.cfg.drain_grace_s
      end
      else begin
        t.idle_since <- None;
        false
      end

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let request _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle request)
  with Invalid_argument _ -> ()

let serve_loop t ~digest =
  let buf = Bytes.create 4096 in
  let rec loop () =
    if Atomic.get stop_requested then begin_drain t;
    if drained t then ()
    else begin
      let fds =
        t.listen_fd :: t.wake_r
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns []
      in
      let readable, _, _ =
        match Unix.select fds [] [] 0.1 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = t.listen_fd then accept_conn t
          else if fd = t.wake_r then drain_wake_pipe t
          else
            match Hashtbl.find_opt t.conns fd with
            | None -> ()
            | Some conn -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> close_conn t conn
                | n -> (
                    match
                      handle_input t conn ~digest
                        (Bytes.sub_string buf 0 n)
                    with
                    | () -> ()
                    | exception Hung_up -> close_conn t conn)
                | exception Unix.Unix_error (_, _, _) -> close_conn t conn))
        readable;
      (match answer_parked_waits t with
      | () -> ()
      | exception Hung_up ->
          (* a parked client hung up mid-answer; the per-conn read path
             will reap it on its next event *)
          ());
      loop ()
    end
  in
  loop ()

(* A drain that hit its deadline can exit with clients still parked on
   waits for jobs that never finished. They are answered [Draining] —
   a typed "retry elsewhere/later", not a silent hang until TCP notices
   the close. *)
let answer_parked_with_draining t =
  Hashtbl.iter
    (fun _ conn ->
      match conn.waits with
      | [] -> ()
      | waits -> (
          conn.waits <- [];
          match
            List.iter
              (fun _ -> send conn (Protocol.Rejected Protocol.Draining))
              waits
          with
          | () -> ()
          | exception Hung_up -> ()))
    t.conns

let run ?(digest = request_digest) ?compute:(compute_fn = compute) cfg =
  match acquire_start_lock cfg.socket with
  | Result.Error _ as e -> e
  | Ok lock_fd -> (
      let release_lock () =
        try Unix.close lock_fd with Unix.Unix_error (_, _, _) -> ()
      in
      match bind_socket cfg.socket with
      | Result.Error _ as e ->
          release_lock ();
          e
      | Ok listen_fd ->
          install_signal_handlers ();
          Atomic.set stop_requested false;
          let journal, replay, next_id =
            match cfg.journal with
            | None -> (None, [], 1)
            | Some path -> (
                match Journal.open_journal ~path () with
                | Ok (j, recovery) ->
                    (match recovery.Journal.corrupt with
                    | Some err ->
                        Printf.eprintf "mcd-dvfs: %s\n%!" (Error.to_string err)
                    | None -> ());
                    (Some j, recovery.Journal.replay, recovery.Journal.next_id)
                | Result.Error err ->
                    (* journal-less serving beats not serving: replay
                       protection is lost, answers stay correct *)
                    Printf.eprintf "mcd-dvfs: %s\n%!" (Error.to_string err);
                    (None, [], 1))
          in
          let wake_r, wake_w = Unix.pipe () in
          Unix.set_nonblock wake_w;
          let compute_wrapped req =
            if cfg.compute_delay_s > 0.0 then Unix.sleepf cfg.compute_delay_s;
            compute_fn req
          in
          (* on_complete runs in a worker (or watchdog) domain before the
             self-pipe poke; Journal.append serializes under its own
             mutex. The scheduler ref breaks the create-order knot: the
             callback needs the scheduler the call is constructing. *)
          let sched_cell = ref None in
          let on_complete id =
            (match (journal, !sched_cell) with
            | Some j, Some sched -> (
                match Scheduler.find sched id with
                | Some { Scheduler.state = Scheduler.Done _; _ } ->
                    Journal.mark_done j ~id
                | Some { Scheduler.state = Scheduler.Failed { message; _ }; _ }
                  ->
                    Journal.mark_failed j ~id ~msg:message
                | Some _ | None -> ())
            | _ -> ());
            poke wake_w
          in
          let sched =
            Scheduler.create ~workers:cfg.workers ~queue_max:cfg.queue_max
              ~client_max:cfg.client_max ?deadline_s:cfg.deadline_s
              ~retry_after_cap_ms:cfg.retry_after_cap_ms ~on_complete
              ~compute:compute_wrapped ()
          in
          sched_cell := Some sched;
          ignore (Scheduler.restore sched ~next_id replay);
          let t =
            {
              cfg;
              listen_fd;
              wake_r;
              wake_w;
              sched;
              journal;
              conns = Hashtbl.create 16;
              next_client = 1;
              drain_started = None;
              idle_since = None;
            }
          in
          serve_loop t ~digest;
          answer_parked_with_draining t;
          Hashtbl.iter
            (fun _ conn -> try Unix.close conn.fd with _ -> ())
            t.conns;
          (try Unix.close listen_fd with _ -> ());
          (try Sys.remove cfg.socket with Sys_error _ -> ());
          Scheduler.shutdown sched;
          (match journal with Some j -> Journal.close j | None -> ());
          (try Unix.close wake_r with _ -> ());
          (try Unix.close wake_w with _ -> ());
          (match cfg.trace_dir with
          | None -> ()
          | Some dir ->
              mirror_store_stats t;
              mirror_journal_stats t;
              ignore (Mcd_obs.Export.write_dir ~dir (Scheduler.sink sched)));
          release_lock ();
          Ok ())
