(** The interval-based off-line oracle (the paper's "off-line" bars,
    after its reference [30]).

    Unlike profile-driven reconfiguration, the oracle ignores program
    structure: it divides the production run into fixed instruction
    intervals, analyses each interval's dependence DAG with perfect
    knowledge (shaker + slowdown thresholding + critical-path
    validation), and plays the resulting per-interval schedule back
    during the measured run, reconfiguring at interval boundaries. *)

type analysis
(** Retained per-interval shaker output (histograms, path models,
    durations), so schedules at different slowdown budgets are cheap. *)

val analyze :
  program:Mcd_isa.Program.t ->
  input:Mcd_isa.Program.input ->
  ?interval_insts:int ->
  ?trace_insts:int ->
  ?config:Mcd_cpu.Config.t ->
  unit ->
  analysis
(** Run the input at full speed and analyse each interval. Defaults:
    10_000-instruction intervals, 120_000 traced instructions. For a
    production run with a warm-up, trace warm-up plus window (instruction
    numbering counts from the start of the run). *)

type schedule = {
  interval_insts : int;
  settings : Mcd_domains.Reconfig.setting array;  (** per interval *)
}

val schedule_of : analysis -> slowdown_pct:float -> schedule
(** Threshold + critical-path validation per interval, then
    transition-aware swing clamping across the schedule (consecutive
    intervals are exactly the back-to-back phases that ramp into each
    other). *)

val policy : schedule -> Mcd_cpu.Controller.t
(** Play the schedule back: at each sampling point the controller writes
    the setting of the interval containing the current instruction.
    Instructions beyond the schedule run at the last setting. *)
