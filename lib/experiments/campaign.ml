module Rng = Mcd_util.Rng
module Spec = Mcd_gen.Spec
module Assert = Mcd_gen.Assert
module Suite = Mcd_workloads.Suite
module Policy = Mcd_control.Policy
module Policies = Mcd_control.Policies
module Context = Mcd_profiling.Context
module Metrics = Mcd_power.Metrics
module Domain = Mcd_domains.Domain
module Sink = Mcd_obs.Sink
module Json = Mcd_obs.Json

type params = {
  count : int;
  seed : int;
  slowdown_pct : float;
  epsilon_pct : float;
  margin_pct : float;
  minimize : int;
  observe : bool;
  train_insts : int;
  ref_insts : int;
}

let default_params =
  {
    count = 100;
    seed = 7;
    slowdown_pct = Runner.default_slowdown_pct;
    epsilon_pct = 1.0;
    margin_pct = 0.5;
    minimize = 8;
    observe = true;
    train_insts = 12_000;
    ref_insts = 30_000;
  }

type kind =
  | Assertion of Assert.violation
  | Profile_loses of {
      rival : string;
      profile_ed_pct : float;
      rival_ed_pct : float;
    }

let kind_key = function
  | Assertion v -> "assert:" ^ v.Assert.check
  | Profile_loses { rival; _ } -> "loses:" ^ rival

let describe_kind = function
  | Assertion v -> Printf.sprintf "%s: %s" v.Assert.check v.Assert.detail
  | Profile_loses { rival; profile_ed_pct; rival_ed_pct } ->
      Printf.sprintf
        "profile loses to %s on ED improvement (%.2f%% vs %.2f%%)" rival
        profile_ed_pct rival_ed_pct

type hit = { spec : Spec.t; kind : kind }

type finding = {
  hit : hit;
  minimized : Spec.t;
  shrink_steps : int;
  minimized_kind : kind;
}

type report = {
  params : params;
  total : int;
  hits : hit list;
  findings : finding list;
  skipped_minimize : int;
}

(* ------------------------------------------------------------------ *)
(* Evaluation: one spec through the full check battery. *)

let evaluate ~params spec =
  let w = Spec.workload spec in
  Suite.register w;
  let findings = ref [] in
  let add vs = List.iter (fun v -> findings := Assertion v :: !findings) vs in
  let baseline = Runner.baseline w in
  add (Assert.run_sane ~label:"baseline" baseline);
  let pr =
    Runner.profile_run ~slowdown_pct:params.slowdown_pct w ~context:Context.lf
      ~train:`Train
  in
  add (Assert.run_sane ~label:"profile" pr.Runner.run);
  add
    (Assert.degradation_bounded ~label:"profile"
       ~slowdown_pct:params.slowdown_pct ~epsilon_pct:params.epsilon_pct
       ~baseline pr.Runner.run);
  let cp = Runner.compare_runs ~baseline pr.Runner.run in
  List.iter
    (fun policy ->
      let rrun = Runner.policy_run policy w in
      add (Assert.run_sane ~label:policy.Policy.label rrun);
      let cr = Runner.compare_runs ~baseline rrun in
      if cr.Runner.ed_improvement_pct > cp.Runner.ed_improvement_pct +. params.margin_pct
      then
        findings :=
          Profile_loses
            {
              rival = policy.Policy.label;
              profile_ed_pct = cp.Runner.ed_improvement_pct;
              rival_ed_pct = cr.Runner.ed_improvement_pct;
            }
          :: !findings)
    (Policies.adversaries ());
  if params.observe then begin
    (* Observed profile run at the default slowdown (observed_run's
       operating point): interval series feed the plan-floor check. *)
    let sink = Sink.create ~domains:Domain.count () in
    let orun = Runner.observed_run ~policy:`Profile ~context:Context.lf ~sink w in
    add (Assert.run_sane ~label:"profile-observed" orun);
    let plan = Runner.plan_for w ~context:Context.lf ~train:`Train in
    let floor = Assert.plan_floor_mhz plan in
    let ipc_threshold = 0.5 *. Metrics.ipc baseline in
    add (Assert.floor_respected ~label:"profile-observed" ~floor_mhz:floor ~ipc_threshold sink);
    (* Observed attack/decay run: its combined-target decision events
       feed the frequency-grid check. *)
    let sink2 = Sink.create ~domains:Domain.count () in
    let _ = Runner.observed_run ~policy:`Online ~sink:sink2 w in
    add (Assert.decisions_on_grid ~label:"online-observed" sink2)
  end;
  List.rev !findings

let replay ?(params = default_params) spec = evaluate ~params spec

(* ------------------------------------------------------------------ *)
(* Minimization: qcheck shrinking toward the smallest spec whose
   evaluation still contains the find's class. *)

let reproduces ~params ~key spec =
  List.exists (fun k -> kind_key k = key) (evaluate ~params spec)

let minimize ~params h =
  let key = kind_key h.kind in
  let arb =
    QCheck.make ~print:Spec.canonical
      ~shrink:(fun s -> QCheck.Iter.of_list (Spec.shrink s))
      (QCheck.Gen.return h.spec)
  in
  let cell =
    QCheck.Test.make_cell ~count:1 ~name:("minimize " ^ key) arb (fun s ->
        not (reproduces ~params ~key s))
  in
  let res =
    QCheck.Test.check_cell ~rand:(Random.State.make [| params.seed |]) cell
  in
  let minimized, shrink_steps =
    match QCheck.TestResult.get_state res with
    | QCheck.TestResult.Failed { instances = ce :: _ } ->
        (ce.QCheck.TestResult.instance, ce.QCheck.TestResult.shrink_steps)
    | _ ->
        (* evaluation is deterministic, so the original must fail the
           property; this branch is unreachable but harmless *)
        (h.spec, 0)
  in
  let minimized_kind =
    match
      List.find_opt (fun k -> kind_key k = key) (evaluate ~params minimized)
    with
    | Some k -> k
    | None -> h.kind
  in
  { hit = h; minimized; shrink_steps; minimized_kind }

(* ------------------------------------------------------------------ *)

let drawn_specs params =
  let master = Rng.create params.seed in
  (* per-spec seeds are split (not drawn sequentially) so they are a
     pure function of (campaign seed, index) — independent of any
     evaluation order *)
  List.init params.count (fun i ->
      let r = Rng.split master ~label:(Printf.sprintf "spec-%d" i) in
      let seed = Int64.to_int (Rng.int64 r) land max_int in
      Spec.draw ~train_insts:params.train_insts ~ref_insts:params.ref_insts
        ~seed ())

let run ?(params = default_params) () =
  let specs = drawn_specs params in
  let results =
    Runner.par_map (fun spec -> (spec, evaluate ~params spec)) specs
  in
  let hits =
    List.concat_map
      (fun (spec, ks) -> List.map (fun kind -> { spec; kind }) ks)
      results
  in
  (* first hit of each distinct class, sweep order *)
  let seen = Hashtbl.create 16 in
  let classes =
    List.filter
      (fun h ->
        let key = kind_key h.kind in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      hits
  in
  let to_minimize, skipped =
    let rec take n = function
      | [] -> ([], [])
      | x :: tl when n > 0 ->
          let keep, drop = take (n - 1) tl in
          (x :: keep, drop)
      | rest -> ([], rest)
    in
    take params.minimize classes
  in
  let findings = List.map (minimize ~params) to_minimize in
  {
    params;
    total = List.length specs;
    hits;
    findings;
    skipped_minimize = List.length skipped;
  }

(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "campaign: %d specs (seed %d), %d hit(s) in %d class(es)%s\n" r.total
       r.params.seed (List.length r.hits)
       (List.length r.findings + r.skipped_minimize)
       (if r.skipped_minimize > 0 then
          Printf.sprintf " (%d class(es) beyond the minimize cap)"
            r.skipped_minimize
        else ""));
  if r.hits = [] then Buffer.add_string buf "no violations found\n"
  else begin
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "\n[%s]\n  found on : %s\n  minimized: %s (%d shrink step(s))\n  %s\n"
             (kind_key f.minimized_kind)
             (Spec.summary f.hit.spec)
             (Spec.summary f.minimized)
             f.shrink_steps
             (describe_kind f.minimized_kind)))
      r.findings;
    let counts = Hashtbl.create 16 in
    List.iter
      (fun h ->
        let key = kind_key h.kind in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
      r.hits;
    Buffer.add_string buf "\nhits per class:\n";
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
    |> List.sort compare
    |> List.iter (fun (k, n) ->
           Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k n))
  end;
  Buffer.contents buf

let kind_to_json = function
  | Assertion v ->
      Json.Obj
        [
          ("type", Json.String "assertion");
          ("check", Json.String v.Assert.check);
          ("detail", Json.String v.Assert.detail);
        ]
  | Profile_loses { rival; profile_ed_pct; rival_ed_pct } ->
      Json.Obj
        [
          ("type", Json.String "profile-loses");
          ("rival", Json.String rival);
          ("profile_ed_pct", Json.Float profile_ed_pct);
          ("rival_ed_pct", Json.Float rival_ed_pct);
        ]

let hit_to_json h =
  Json.Obj [ ("spec", Spec.to_json h.spec); ("kind", kind_to_json h.kind) ]

let finding_to_json f =
  Json.Obj
    [
      ("spec", Spec.to_json f.hit.spec);
      ("minimized", Spec.to_json f.minimized);
      ("shrink_steps", Json.Int f.shrink_steps);
      ("kind", kind_to_json f.minimized_kind);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "mcd-dvfs-campaign/1");
      ( "params",
        Json.Obj
          [
            ("count", Json.Int r.params.count);
            ("seed", Json.Int r.params.seed);
            ("slowdown_pct", Json.Float r.params.slowdown_pct);
            ("epsilon_pct", Json.Float r.params.epsilon_pct);
            ("margin_pct", Json.Float r.params.margin_pct);
            ("minimize", Json.Int r.params.minimize);
            ("observe", Json.Bool r.params.observe);
            ("train_insts", Json.Int r.params.train_insts);
            ("ref_insts", Json.Int r.params.ref_insts);
          ] );
      ("total", Json.Int r.total);
      ("hits", Json.List (List.map hit_to_json r.hits));
      ("findings", Json.List (List.map finding_to_json r.findings));
      ("skipped_minimize", Json.Int r.skipped_minimize);
    ]

let spec_of_replay_json j =
  let direct = Spec.of_json j in
  if Result.is_ok direct then direct
  else
    match Json.member "minimized" j with
    | Some m -> Spec.of_json m
    | None -> (
        match Json.member "spec" j with
        | Some s -> Spec.of_json s
        | None -> (
            match Option.bind (Json.member "findings" j) Json.to_list_opt with
            | Some (f :: _) -> (
                match Json.member "minimized" f with
                | Some m -> Spec.of_json m
                | None -> Error "campaign json: finding without minimized spec")
            | Some [] -> Error "campaign json: no findings to replay"
            | None -> direct))
