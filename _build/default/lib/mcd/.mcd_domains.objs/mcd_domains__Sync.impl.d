lib/mcd/sync.ml: Clock Mcd_util
