type t = {
  name : string;
  label : string;
  doc : string;
  params : string list;
  feedback : bool;
  cooldown_intervals : int;
  create : ?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t;
}

let make ~name ?label ?(doc = "") ?(params = []) ?(feedback = true)
    ?(cooldown_intervals = 0) create =
  {
    name;
    label = Option.value label ~default:name;
    doc;
    params;
    feedback;
    cooldown_intervals;
    create;
  }

let key_fragment t =
  Mcd_cache.Key.policy_fragment ~name:t.name ~params:t.params

let id t =
  t.label
  ^
  if t.params = [] then ""
  else
    "/"
    ^ String.sub
        (Digest.to_hex (Digest.string (String.concat ":" t.params)))
        0 8

module Domain = Mcd_domains.Domain

let scaled_domains = [ Domain.Integer; Domain.Floating; Domain.Memory ]

let queue_capacity = function
  | Domain.Integer -> 20.0
  | Domain.Floating -> 15.0
  | Domain.Memory -> 64.0
  | Domain.Front_end -> 16.0

let utilization (s : Mcd_cpu.Controller.sample) d =
  s.Mcd_cpu.Controller.avg_occupancy.(Domain.index d) /. queue_capacity d

module Cooldown = struct
  type timers = { intervals : int; left : int array }

  let create ~intervals =
    { intervals; left = Array.make Mcd_domains.Domain.count 0 }

  let tick t =
    Array.iteri (fun i v -> if v > 0 then t.left.(i) <- v - 1) t.left

  let ready t i = t.left.(i) = 0
  let arm t i = t.left.(i) <- t.intervals
end
