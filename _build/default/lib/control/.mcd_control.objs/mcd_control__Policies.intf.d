lib/control/policies.mli: Mcd_cpu Mcd_domains
