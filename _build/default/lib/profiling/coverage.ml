type counts = {
  train_long : int;
  train_total : int;
  ref_long : int;
  ref_total : int;
  common_long : int;
  common_total : int;
  long_coverage : float;
  total_coverage : float;
}

let count_tree t =
  let long = ref 0 and total = ref 0 in
  Call_tree.iter t ~f:(fun n ->
      match n.Call_tree.kind with
      | Call_tree.Root -> ()
      | Call_tree.Func_node _ | Call_tree.Loop_node _ ->
          incr total;
          if n.Call_tree.long then incr long);
  (!long, !total)

let compare ~train ~reference =
  if
    (Call_tree.context train).Context.name
    <> (Call_tree.context reference).Context.name
  then invalid_arg "Coverage.compare: trees built under different contexts";
  let train_long, train_total = count_tree train in
  let ref_long, ref_total = count_tree reference in
  let common_long = ref 0 and common_total = ref 0 in
  let rec walk tid rid =
    let tn = Call_tree.node train tid in
    let rn = Call_tree.node reference rid in
    (match tn.Call_tree.kind with
    | Call_tree.Root -> ()
    | Call_tree.Func_node _ | Call_tree.Loop_node _ ->
        incr common_total;
        if tn.Call_tree.long && rn.Call_tree.long then incr common_long);
    List.iter
      (fun (kind, tcid) ->
        match Call_tree.child reference rid kind with
        | Some rcid -> walk tcid rcid
        | None -> ())
      tn.Call_tree.children
  in
  walk (Call_tree.root train) (Call_tree.root reference);
  {
    train_long;
    train_total;
    ref_long;
    ref_total;
    common_long = !common_long;
    common_total = !common_total;
    long_coverage =
      (if ref_long = 0 then 1.0
       else float_of_int !common_long /. float_of_int ref_long);
    total_coverage =
      (if ref_total = 0 then 1.0
       else float_of_int !common_total /. float_of_int ref_total);
  }
