lib/core/dag.ml: Array Float Hashtbl List Mcd_cpu Mcd_domains Path_model Printf
