let () =
  Alcotest.run "mcd_dvfs"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("isa", Test_isa.suite);
      ("mcd", Test_mcd.suite);
      ("cpu", Test_cpu.suite);
      ("sampling", Test_sampling.suite);
      ("power", Test_power.suite);
      ("profiling", Test_profiling.suite);
      ("trace", Test_trace.suite);
      ("core", Test_core.suite);
      ("robust", Test_robust.suite);
      ("control", Test_control.suite);
      ("workloads", Test_workloads.suite);
      ("gen", Test_gen.suite);
      ("experiments", Test_experiments.suite);
      ("cache", Test_cache.suite);
      ("serve", Test_serve.suite);
      ("cli", Test_cli.suite);
    ]
