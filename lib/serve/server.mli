(** The experiment daemon: a Unix-domain stream socket speaking
    {!Protocol} version {!Protocol.version}, fed by a {!Scheduler}.

    One single-threaded readiness-driven event loop (poll(2), so the
    connection count is not bounded by [FD_SETSIZE]) owns every socket;
    worker domains never touch a file descriptor — a completing job
    pokes the loop through a self-pipe, and the loop answers any
    connection parked on a [wait] for that job. That split keeps the
    wire code free of locking entirely: the only shared state is the
    scheduler, behind its own mutex.

    {b Non-blocking throughout.} Sockets are non-blocking; reads
    accumulate into a per-connection line buffer, replies accumulate
    into a per-connection output buffer flushed as the socket accepts
    bytes ({!Evloop.Outbuf}), so a slow peer never stalls the loop — it
    is disconnected once {!config.outbuf_max_bytes} of output backs up.
    The poll timeout is deadline-driven (the next drain grace/deadline
    expiry, with a 60s idle backstop), not a fixed tick: an idle server
    burns no CPU, and a completion wakes a parked [wait] in
    single-digit milliseconds. Pipelined commands carrying [seq] tags
    are answered with the tag echoed, in whatever order their jobs
    finish; a connection may park at most
    {!config.conn_inflight_max} waits before further [wait]s are
    refused [Overloaded]. Loop health is exported as [serve.loop.*]
    instruments (poll dwell and iteration histograms, wakeup /
    partial-write / slow-reader-close counters, a connection gauge).

    {b Lifecycle.} [SIGTERM]/[SIGINT] (or a client's [drain] command)
    close admission: queued and running jobs complete, parked waiters
    are answered, and the server exits once idle and clients have hung
    up — after a short grace so a client can still fetch the result of
    a job that finished during the drain. A deadline watchdog bounds
    the whole drain ({!config.drain_deadline_s}): like
    {!Mcd_robust.Degrade}'s fallback, a stuck drain degrades to a
    prompt exit rather than a hang, because the persistent store
    already holds every completed payload — a warm restart re-serves
    the same bytes.

    {b Stale sockets.} A leftover socket file from a killed server is
    detected by probing it: connection-refused means stale, so it is
    unlinked and rebound; an answering socket means another server is
    live, reported as {!Mcd_robust.Error.Server_unavailable}. Two
    servers racing through that probe are serialized by an exclusive
    lock on [socket.lock] held for the server's lifetime — the loser
    gets [Server_unavailable], never a stolen socket file.

    {b Crash safety.} With {!config.journal} set, every accepted submit
    is appended (fsynced) to a write-ahead job journal {e before} the
    [queued] ack is sent, and completions append [done]/[fail] records.
    A restarted server replays the journal's incomplete jobs — original
    ids preserved — before accepting connections, so an acknowledged
    job is eventually served (byte-identically, via the
    content-addressed store) even across [SIGKILL]. The journal
    compacts on open and degrades to journal-less serving (with a typed
    diagnostic on stderr) rather than refusing to start. *)

type config = {
  socket : string;
  workers : int;  (** worker domains (default 2) *)
  queue_max : int;  (** global queued-job bound (default 64) *)
  client_max : int;  (** per-client queued-job bound (default 16) *)
  conn_inflight_max : int;
      (** per-connection parked-[wait] bound: a pipelined client may
          keep at most this many waits in flight on one socket before
          further [wait]s are refused [Overloaded] (default 128) *)
  outbuf_max_bytes : int;
      (** slow-reader bound: a connection whose unflushed output
          exceeds this is disconnected (default 16 MiB) *)
  compute_delay_s : float;
      (** artificial pre-compute sleep, a testing aid that makes
          overload and drain timing deterministic (default 0) *)
  trace_dir : string option;
      (** when set, {!Mcd_obs.Export.write_dir} the sink there on
          exit *)
  drain_grace_s : float;
      (** after the last job finishes, how long to keep answering
          connected clients before closing (default 1s) *)
  drain_deadline_s : float;
      (** hard bound on the whole drain (default 60s) *)
  journal : string option;
      (** write-ahead job journal path; [None] disables journaling
          (defaults to [serve.journal] in the default store's
          directory, or [None] when no store is configured) *)
  deadline_s : float option;
      (** per-job compute deadline — see {!Scheduler.create}
          (default [None]: no watchdog) *)
  retry_after_cap_ms : int;
      (** ceiling on the EWMA retry-after hint (default 10000) *)
}

val default_journal_path : unit -> string option
(** [serve.journal] inside {!Mcd_cache.Store.default}'s directory —
    the journal lives beside the payloads it protects — or [None] when
    no default store is configured. *)

val default_config : socket:string -> config

val resolve :
  Protocol.request ->
  ( Mcd_workloads.Workload.t
    * [ `Baseline | `Offline | `Online | `Profile ]
    * Mcd_profiling.Context.t,
    string )
  result
(** Validate a wire request against the workload suite and context
    table. [Error reason] becomes a [Bad_request] rejection. *)

val request_digest : Protocol.request -> (string, string) result
(** Digest of {!Mcd_experiments.Runner.request_key} for a resolvable
    request — the coalescing identity, equal to the persistent-store
    address of the run's payload. *)

val compute : Protocol.request -> string
(** Run the request via {!Mcd_experiments.Runner.run_request} and
    return {!Mcd_power.Metrics.encode} of the result — the same bytes
    a one-shot CLI run caches. Raises on unresolvable requests (the
    server rejects those before they reach a worker). *)

val run :
  ?digest:(Protocol.request -> (string, string) result) ->
  ?compute:(Protocol.request -> string) ->
  config ->
  (unit, Mcd_robust.Error.t) result
(** Bind, serve until drained, clean up (socket unlinked, scheduler
    shut down, trace exported). [digest] and [compute] default to
    {!request_digest} and {!compute}; tests override them to inject
    faults or canned payloads. Returns typed errors for bind/listen
    failures. *)
