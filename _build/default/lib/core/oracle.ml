module Interval_collector = Mcd_trace.Interval_collector
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Controller = Mcd_cpu.Controller
module Histogram = Mcd_util.Histogram
module Reconfig = Mcd_domains.Reconfig
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq

type interval_data = {
  histograms : Histogram.t array option; (* None: too little data *)
  paths : Path_model.t;
  duration_ps : float;
}

type analysis = { interval_insts : int; intervals : interval_data array }

type schedule = { interval_insts : int; settings : Reconfig.setting array }

let min_interval_events = 50

let analyze ~program ~input ?(interval_insts = 10_000)
    ?(trace_insts = 120_000) ?(config = Config.alpha21264_like) () =
  let collector = Interval_collector.create ~interval_insts () in
  let _ =
    Pipeline.run
      ~probe:(Interval_collector.probe collector)
      ~config ~program ~input ~max_insts:trace_insts ()
  in
  let intervals =
    List.map
      (fun events ->
        if Array.length events < min_interval_events then
          { histograms = None; paths = Path_model.empty; duration_ps = 0.0 }
        else begin
          let dag = Dag.build ~rob_size:config.Config.rob_size events in
          let result = Shaker.run dag in
          {
            histograms = Some result.Shaker.histograms;
            paths =
              Path_model.add_segment Path_model.empty
                (Dag.path_signatures dag);
            duration_ps = dag.Dag.t_max -. dag.Dag.t_min;
          }
        end)
      (Interval_collector.intervals collector)
  in
  { interval_insts; intervals = Array.of_list intervals }

let schedule_of (a : analysis) ~slowdown_pct =
  let settings =
    Array.map
      (fun iv ->
        match iv.histograms with
        | None -> Reconfig.full_speed ()
        | Some hists ->
            let s = Threshold.setting_of_histograms hists ~slowdown_pct in
            Path_model.refine iv.paths s ~slowdown_pct)
      a.intervals
  in
  (* transition-aware swing clamping across the schedule *)
  let domain_max = Array.make Domain.count Freq.fmin_mhz in
  Array.iteri
    (fun i s ->
      if a.intervals.(i).duration_ps > 0.0 then
        Array.iteri
          (fun d f -> if f > domain_max.(d) then domain_max.(d) <- f)
          s)
    settings;
  let clamped =
    Array.mapi
      (fun i s ->
        Array.mapi
          (fun d f ->
            let allowance =
              Plan.swing_allowance_mhz
                ~duration_ps:a.intervals.(i).duration_ps
                ~f_target_mhz:domain_max.(d)
            in
            Freq.clamp (max f (domain_max.(d) - allowance)))
          s)
      settings
  in
  { interval_insts = a.interval_insts; settings = clamped }

let policy schedule =
  let current = ref (-1) in
  let on_sample (s : Controller.sample) ~now:_ =
    let n = Array.length schedule.settings in
    if n = 0 then None
    else begin
      let idx =
        min (n - 1) (s.Controller.total_retired / schedule.interval_insts)
      in
      if idx <> !current then begin
        current := idx;
        Some schedule.settings.(idx)
      end
      else None
    end
  in
  {
    Controller.name = "off-line (interval oracle)";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = 1_000;
  }
