module Workload = Mcd_workloads.Workload
module Metrics = Mcd_power.Metrics
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Editor = Mcd_core.Editor
module Analyze = Mcd_core.Analyze
module Attack_decay = Mcd_control.Attack_decay
module Freq = Mcd_domains.Freq

type comparison = {
  degradation_pct : float;
  savings_pct : float;
  ed_improvement_pct : float;
}

let compare_runs ~baseline run =
  {
    degradation_pct = Metrics.perf_degradation_pct ~baseline run;
    savings_pct = Metrics.energy_savings_pct ~baseline run;
    ed_improvement_pct = Metrics.ed_improvement_pct ~baseline run;
  }

let default_slowdown_pct = 7.0

let config = Config.alpha21264_like

type profiled_run = {
  run : Metrics.run;
  plan : Plan.t;
  counters : Editor.counters;
}

(* Memo tables are domain-local: experiment sweeps fan out across OCaml
   domains (see [map_workloads]) and [Hashtbl] is not safe under
   concurrent mutation. Each domain lazily builds its own table, so a
   worker keeps full memoization within its share of a sweep while the
   main domain retains its cache across experiments, exactly as the old
   global tables did in sequential runs. Results are deterministic per
   key, so duplicated computation across domains cannot change output. *)
let dls_table () = Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let memo_key : (string, Metrics.run) Hashtbl.t Domain.DLS.key = dls_table ()
let plan_memo_key : (string, Plan.t) Hashtbl.t Domain.DLS.key = dls_table ()

let oracle_memo_key : (string, Mcd_core.Oracle.analysis) Hashtbl.t Domain.DLS.key =
  dls_table ()

(* full profiled runs (with counters) at the default slowdown *)
let profiled_memo_key : (string, profiled_run) Hashtbl.t Domain.DLS.key =
  dls_table ()

let memo () = Domain.DLS.get memo_key
let plan_memo () = Domain.DLS.get plan_memo_key
let oracle_memo () = Domain.DLS.get oracle_memo_key
let profiled_memo () = Domain.DLS.get profiled_memo_key

let clear_caches () =
  Hashtbl.reset (memo ());
  Hashtbl.reset (plan_memo ());
  Hashtbl.reset (oracle_memo ());
  Hashtbl.reset (profiled_memo ())

let memoize tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.add tbl key v;
      v

(* Concurrency of the experiment fan-out. Mutable configuration rather
   than a parameter so every figure/table module inherits it without
   threading [?jobs] through each signature; set once at startup by the
   bench/CLI drivers. *)
let jobs = ref 1
let set_jobs n = jobs := max 1 n
let get_jobs () = !jobs

let par_map f xs = Mcd_util.Par.map ~jobs:!jobs f xs
let map_workloads f ws = par_map f ws

let baseline (w : Workload.t) =
  memoize (memo ()) (w.Workload.name ^ "/baseline") @@ fun () ->
  Pipeline.run ~config ~warmup_insts:w.Workload.ref_offset
    ~program:w.Workload.program ~input:w.Workload.reference
    ~max_insts:w.Workload.ref_window ()

let single_clock (w : Workload.t) ~mhz =
  memoize (memo ()) (Printf.sprintf "%s/single/%d" w.Workload.name mhz)
  @@ fun () ->
  Pipeline.run ~config:(Config.single_clock ~mhz)
    ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
    ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()

let input_tag = function `Train -> "train" | `Reference -> "ref"

let plan_for (w : Workload.t) ~context ~train =
  let key =
    Printf.sprintf "%s/%s/%s" w.Workload.name context.Context.name
      (input_tag train)
  in
  memoize (plan_memo ()) key @@ fun () ->
  let input, window =
    match train with
    | `Train -> (w.Workload.train, w.Workload.train_window)
    | `Reference -> (w.Workload.reference, w.Workload.ref_window)
  in
  let trace_insts = min window 120_000 in
  let plan, _stats =
    Analyze.analyze ~program:w.Workload.program ~train:input ~context
      ~slowdown_pct:default_slowdown_pct ~trace_insts ~config ()
  in
  plan

(* The result path for shipped plans: rebuild the training tree exactly
   as Analyze does (same context, same default windows), then load with
   typed diagnostics instead of exceptions. *)
let load_plan (w : Workload.t) ~context ~path =
  let tree =
    Mcd_profiling.Call_tree.build w.Workload.program ~input:w.Workload.train
      ~context ~max_insts:400_000 ()
  in
  Mcd_core.Plan_io.load_result ~path ~tree

let oracle_analysis (w : Workload.t) =
  memoize (oracle_memo ()) (w.Workload.name ^ "/oracle") @@ fun () ->
  Mcd_core.Oracle.analyze ~program:w.Workload.program
    ~input:w.Workload.reference
    ~trace_insts:(w.Workload.ref_offset + w.Workload.ref_window)
    ~config ()

let offline_run ?(slowdown_pct = default_slowdown_pct) (w : Workload.t) =
  let go () =
    let schedule =
      Mcd_core.Oracle.schedule_of (oracle_analysis w) ~slowdown_pct
    in
    Pipeline.run
      ~controller:(Mcd_core.Oracle.policy schedule)
      ~config ~warmup_insts:w.Workload.ref_offset
      ~program:w.Workload.program ~input:w.Workload.reference
      ~max_insts:w.Workload.ref_window ()
  in
  if slowdown_pct = default_slowdown_pct then
    memoize (memo ()) (w.Workload.name ^ "/offline") go
  else go ()

let profile_run_uncached (w : Workload.t) ~plan =
  let edited = Editor.edit plan in
  let run =
    Pipeline.run ~controller:edited.Editor.controller ~config
      ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
      ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
  in
  { run; plan; counters = edited.Editor.counters }

let profile_run ?(slowdown_pct = default_slowdown_pct) (w : Workload.t)
    ~context ~train =
  let base_plan = plan_for w ~context ~train in
  if slowdown_pct = default_slowdown_pct then
    memoize (profiled_memo ())
      (Printf.sprintf "%s/%s/%s/run" w.Workload.name context.Context.name
         (input_tag train))
      (fun () -> profile_run_uncached w ~plan:base_plan)
  else
    let plan = Plan.with_slowdown base_plan ~slowdown_pct in
    profile_run_uncached w ~plan

let online_run ?params (w : Workload.t) =
  let run () =
    Pipeline.run
      ~controller:(Attack_decay.controller ?params ())
      ~config ~warmup_insts:w.Workload.ref_offset
      ~program:w.Workload.program ~input:w.Workload.reference
      ~max_insts:w.Workload.ref_window ()
  in
  match params with
  | Some _ -> run ()
  | None -> memoize (memo ()) (w.Workload.name ^ "/online") run

(* Traced variant of the per-policy runs: never memoized (the sink is a
   side channel — a cached Metrics.run would leave it empty), and the
   end-of-run aggregates are mirrored into the sink's registry as
   gauges so an exported metrics.jsonl is self-contained. *)
let observed_run ?(policy = `Profile) ?(context = Context.lf) ~sink
    (w : Workload.t) =
  let controller =
    match policy with
    | `Baseline -> None
    | `Online -> Some (Attack_decay.controller ~sink ())
    | `Offline ->
        let schedule =
          Mcd_core.Oracle.schedule_of (oracle_analysis w)
            ~slowdown_pct:default_slowdown_pct
        in
        Some (Mcd_core.Oracle.policy schedule)
    | `Profile ->
        let plan = plan_for w ~context ~train:`Train in
        Some (Editor.edit plan).Editor.controller
  in
  let run =
    Pipeline.run ?controller ~sink ~config
      ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
      ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
  in
  let m = Mcd_obs.Sink.metrics sink in
  let g name v = Mcd_obs.Metrics.set (Mcd_obs.Metrics.gauge m name) v in
  g "run.runtime_ps" (float_of_int run.Metrics.runtime_ps);
  g "run.energy_pj" run.Metrics.energy_pj;
  g "run.instructions" (float_of_int run.Metrics.instructions);
  g "run.cycles_front" (float_of_int run.Metrics.cycles_front);
  g "run.sync_crossings" (float_of_int run.Metrics.sync_crossings);
  g "run.sync_penalties" (float_of_int run.Metrics.sync_penalties);
  g "run.reconfigurations" (float_of_int run.Metrics.reconfigurations);
  run

(* The paper's "global" bar: a single-clock processor scaled so that its
   total runtime matches the off-line algorithm's. A first-order 1/f
   estimate is refined by direct simulation of neighbouring steps. *)
let global_dvs_run (w : Workload.t) ~target_runtime_ps =
  let full = single_clock w ~mhz:Freq.fmax_mhz in
  let estimate =
    float_of_int Freq.fmax_mhz
    *. float_of_int full.Metrics.runtime_ps
    /. float_of_int (max 1 target_runtime_ps)
  in
  let start_mhz = Freq.clamp (int_of_float estimate) in
  let run_at mhz = single_clock w ~mhz in
  (* walk toward the target: prefer the slowest frequency whose runtime
     does not exceed the target by more than half a step's worth *)
  let rec refine mhz =
    let r = run_at mhz in
    if r.Metrics.runtime_ps > target_runtime_ps && mhz < Freq.fmax_mhz then
      refine (Freq.clamp (mhz + Freq.step_mhz))
    else r.Metrics.runtime_ps, mhz
  in
  let _, mhz0 = refine start_mhz in
  (* try one step lower if it still meets the target *)
  let final_mhz =
    if mhz0 > Freq.fmin_mhz then begin
      let lower = Freq.clamp (mhz0 - Freq.step_mhz) in
      let r = run_at lower in
      if r.Metrics.runtime_ps <= target_runtime_ps then lower else mhz0
    end
    else mhz0
  in
  (run_at final_mhz, final_mhz)
