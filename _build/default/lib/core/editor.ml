module Controller = Mcd_cpu.Controller
module Call_tree = Mcd_profiling.Call_tree
module Context = Mcd_profiling.Context
module Tracker = Mcd_profiling.Tracker
module Reconfig = Mcd_domains.Reconfig
module Walker = Mcd_isa.Walker

type counters = { mutable reconfig_execs : int; mutable instr_execs : int }
type edited = { controller : Controller.t; counters : counters }

let instr_stall_cycles = 9
let reconfig_stall_cycles = 17
let offset_stall_cycles = 2
let static_reconfig_stall_cycles = 1

let no_reaction = Controller.no_reaction

type frame = {
  was_long : bool;
  saved : Reconfig.setting;
  instrumented : bool;
  is_loop : bool;
}

let unit_of_marker = function
  | Walker.Enter_func { fid; _ } | Walker.Exit_func { fid } ->
      Some (Call_tree.Func_unit fid)
  | Walker.Enter_loop { loop_id } | Walker.Exit_loop { loop_id } ->
      Some (Call_tree.Loop_unit loop_id)

let is_loop_marker = function
  | Walker.Enter_loop _ | Walker.Exit_loop _ -> true
  | Walker.Enter_func _ | Walker.Exit_func _ -> false

(* Run-time behaviour for the path-tracking contexts: prologues and
   epilogues of instrumented units maintain the tree label; entering a
   long-running node writes its setting, exiting restores the saved
   one. *)
let edit_paths (plan : Plan.t) counters =
  let tree = plan.Plan.tree in
  let tracker = Tracker.create tree in
  let instrumented = Hashtbl.create 32 in
  List.iter
    (fun u -> Hashtbl.replace instrumented u ())
    (Call_tree.instrumented_static_units tree);
  let cur = ref (Reconfig.full_speed ()) in
  let frames = ref [] in
  let on_marker m ~now:_ =
    match Tracker.on_marker tracker m with
    | Tracker.Ignored -> no_reaction
    | Tracker.Entered pos ->
        let unit_instrumented =
          match unit_of_marker m with
          | Some u -> Hashtbl.mem instrumented u
          | None -> false
        in
        let is_loop = is_loop_marker m in
        let long_node =
          match pos with
          | Tracker.Unknown -> None
          | Tracker.Known id ->
              if (Call_tree.node tree id).Call_tree.long then Some id
              else None
        in
        let frame =
          {
            was_long = Option.is_some long_node;
            saved = !cur;
            instrumented = unit_instrumented;
            is_loop;
          }
        in
        frames := frame :: !frames;
        (match long_node with
        | Some id ->
            counters.reconfig_execs <- counters.reconfig_execs + 1;
            let s =
              match Plan.setting_for_node plan id with
              | Some s -> s
              | None -> Reconfig.full_speed ()
            in
            cur := s;
            {
              Controller.stall_cycles = reconfig_stall_cycles;
              table_reads = 1;
              set = Some s;
            }
        | None ->
            if unit_instrumented then begin
              counters.instr_execs <- counters.instr_execs + 1;
              if is_loop then
                {
                  Controller.stall_cycles = offset_stall_cycles;
                  table_reads = 0;
                  set = None;
                }
              else
                {
                  Controller.stall_cycles = instr_stall_cycles;
                  table_reads = 1;
                  set = None;
                }
            end
            else no_reaction)
    | Tracker.Exited _ -> (
        match !frames with
        | [] -> no_reaction (* malformed stream *)
        | f :: rest ->
            frames := rest;
            if f.was_long then begin
              counters.reconfig_execs <- counters.reconfig_execs + 1;
              cur := f.saved;
              {
                Controller.stall_cycles = reconfig_stall_cycles;
                table_reads = 1;
                set = Some f.saved;
              }
            end
            else if f.instrumented then begin
              counters.instr_execs <- counters.instr_execs + 1;
              if f.is_loop then
                {
                  Controller.stall_cycles = offset_stall_cycles;
                  table_reads = 0;
                  set = None;
                }
              else
                {
                  Controller.stall_cycles = instr_stall_cycles;
                  table_reads = 1;
                  set = None;
                }
            end
            else no_reaction)
  in
  {
    Controller.name = "profile:" ^ plan.Plan.context.Context.name;
    on_marker;
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }

(* Run-time behaviour for L+F and F: no label tracking at all. Statically
   known settings are written at the boundaries of long-running units;
   prologues save the current setting and epilogues restore it. *)
let edit_static (plan : Plan.t) counters =
  let ctx = plan.Plan.context in
  let cur = ref (Reconfig.full_speed ()) in
  let frames = ref [] in
  let enter u =
    match Plan.setting_for_unit plan u with
    | Some s ->
        counters.reconfig_execs <- counters.reconfig_execs + 1;
        frames := Some !cur :: !frames;
        cur := s;
        {
          Controller.stall_cycles = static_reconfig_stall_cycles;
          table_reads = 0;
          set = Some s;
        }
    | None ->
        frames := None :: !frames;
        no_reaction
  in
  let exit_ () =
    match !frames with
    | [] -> no_reaction
    | f :: rest -> (
        frames := rest;
        match f with
        | Some saved ->
            counters.reconfig_execs <- counters.reconfig_execs + 1;
            cur := saved;
            {
              Controller.stall_cycles = static_reconfig_stall_cycles;
              table_reads = 0;
              set = Some saved;
            }
        | None -> no_reaction)
  in
  let on_marker m ~now:_ =
    match m with
    | Walker.Enter_func { fid; _ } -> enter (Call_tree.Func_unit fid)
    | Walker.Exit_func _ -> exit_ ()
    | Walker.Enter_loop { loop_id } ->
        if ctx.Context.loops then enter (Call_tree.Loop_unit loop_id)
        else no_reaction
    | Walker.Exit_loop _ ->
        if ctx.Context.loops then exit_ () else no_reaction
  in
  {
    Controller.name = "profile:" ^ ctx.Context.name;
    on_marker;
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }

let edit plan =
  let counters = { reconfig_execs = 0; instr_execs = 0 } in
  let controller =
    if plan.Plan.context.Context.paths then edit_paths plan counters
    else edit_static plan counters
  in
  { controller; counters }
