(** Tables 1, 2 and 3. *)

val table1 : unit -> string
(** The simulated configuration (Table 1). *)

val table2 : unit -> string
(** The suite with input scales and instruction windows (the analogue of
    the paper's Table 2; windows are scaled down from the paper's 200M,
    see DESIGN.md). *)

val table3 : ?workloads:Mcd_workloads.Workload.t list -> unit -> string
(** Long-running / total call-tree nodes for training and reference
    inputs under L+F+C+P, common nodes, and coverage (Table 3). *)
