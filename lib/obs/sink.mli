(** Observability sink: one handle bundling the metrics registry, the
    interval time-series, and the structured event tracer.

    Producers (pipeline, DVFS plumbing, controllers, the robustness
    guard) hold a [Sink.t option]; the disabled path is a single branch
    on [None]. Domains are identified by their integer index and
    frequency settings travel as plain [int array]s so this library
    stays below [mcd_domains] in the dependency order.

    Events land in two preallocated rings: a {e control} ring for the
    rare, high-value events (reconfiguration writes, DVFS retargets,
    controller decisions, degradations) and a {e hot} ring for sync
    penalties, which occur a few hundred thousand times per run and
    would otherwise evict everything else. Totals survive ring
    eviction as registry counters. *)

type trigger = Marker | Sample | Watchdog

val trigger_name : trigger -> string

type event =
  | Reconfig_write of {
      t_ps : int;
      before : int array; (* per-domain MHz, domain-index order *)
      after : int array;
      noop : bool; (* write equalled the live setting; not counted *)
    }
  | Dvfs_retarget of { t_ps : int; domain : int; before : int; after : int }
  | Sync_penalty of { t_ps : int; domain : int (* consumer domain *) }
  | Decision of {
      t_ps : int;
      source : string; (* controller / policy name *)
      trigger : trigger;
      setting : int array option;
      detail : string;
    }
  | Degraded of { t_ps : int; source : string; detail : string }

val event_time : event -> int

type t

val create :
  ?stride_cycles:int ->
  ?control_capacity:int ->
  ?hot_capacity:int ->
  domains:int ->
  unit ->
  t
(** [stride_cycles] (default 2048) is the sampling interval consumed by
    the pipeline; [control_capacity] defaults to 4096 events,
    [hot_capacity] to 1024. *)

val metrics : t -> Metrics.t
val series : t -> Series.t
val stride_cycles : t -> int
val domains : t -> int

(** {2 Recording} — all O(1); events allocate one block, counters none. *)

val reconfig_write :
  t -> t_ps:int -> before:int array -> after:int array -> noop:bool -> unit

val dvfs_retarget : t -> t_ps:int -> domain:int -> before:int -> after:int -> unit
val sync_penalty : t -> t_ps:int -> domain:int -> unit

val decision :
  t ->
  t_ps:int ->
  source:string ->
  trigger:trigger ->
  ?setting:int array ->
  detail:string ->
  unit ->
  unit

val degraded : t -> t_ps:int -> source:string -> detail:string -> unit

val sample :
  t ->
  t_ps:int ->
  cycles:int ->
  ipc:float ->
  mhz:float array ->
  volt:float array ->
  occ:float array ->
  pj:float array ->
  unit

(** {2 Reading} *)

val events : t -> event list
(** Both rings merged into one timestamp-ordered list. *)

val dropped_events : t -> int
(** Total events evicted from either ring. *)
