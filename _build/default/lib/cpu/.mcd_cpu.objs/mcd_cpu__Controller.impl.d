lib/cpu/controller.ml: Mcd_domains Mcd_isa Mcd_util
