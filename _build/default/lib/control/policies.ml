module Controller = Mcd_cpu.Controller

let fixed setting =
  let armed = ref true in
  {
    Controller.name = "fixed";
    on_marker =
      (fun _ ~now:_ ->
        if !armed then begin
          armed := false;
          { Controller.no_reaction with set = Some setting }
        end
        else Controller.no_reaction);
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }

let baseline = Controller.nop
