module Error = Mcd_robust.Error

let version = 1

(* --- token encoding ---------------------------------------------------- *)

(* Tokens are space-separated, messages newline-terminated, so values
   percent-encode exactly those two characters plus '%' itself — the
   same escaping Mcd_cache.Key uses for canonical key lines. *)
let encode_value v =
  let plain =
    String.for_all (fun c -> c <> ' ' && c <> '%' && c <> '\n') v
  in
  if plain then v
  else begin
    let buf = Buffer.create (String.length v + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  end

let decode_value v =
  if not (String.contains v '%') then Ok v
  else begin
    let n = String.length v in
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if v.[i] <> '%' then begin
        Buffer.add_char buf v.[i];
        go (i + 1)
      end
      else if i + 2 >= n then Error (Printf.sprintf "truncated escape in %S" v)
      else
        match String.sub v (i + 1) 2 with
        | "20" -> Buffer.add_char buf ' '; go (i + 3)
        | "25" -> Buffer.add_char buf '%'; go (i + 3)
        | "0a" -> Buffer.add_char buf '\n'; go (i + 3)
        | esc -> Error (Printf.sprintf "bad escape %%%s in %S" esc v)
    in
    go 0
  end

(* --- request vocabulary ------------------------------------------------ *)

type priority = High | Normal | Low

let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_name = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_level = function High -> 0 | Normal -> 1 | Low -> 2

type policy = Baseline | Offline | Online | Profile

let policy_name = function
  | Baseline -> "baseline"
  | Offline -> "offline"
  | Online -> "online"
  | Profile -> "profile"

let policy_of_name = function
  | "baseline" -> Some Baseline
  | "offline" -> Some Offline
  | "online" -> Some Online
  | "profile" -> Some Profile
  | _ -> None

type request = {
  workload : string;
  policy : policy;
  context : string;
  slowdown_pct : float;
}

let request ?(policy = Profile) ?(context = "L+F") ?(slowdown_pct = 7.0)
    workload =
  { workload; policy; context; slowdown_pct }

(* --- messages ---------------------------------------------------------- *)

type command =
  | Ping
  | Submit of { priority : priority; request : request }
  | Status of int
  | Wait of int
  | Result of int
  | Stats
  | Drain
  | Quit

type state = Queued | Running | Done | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

type reject =
  | Overloaded of { queue_depth : int; limit : int; retry_after_ms : int }
  | Draining
  | Bad_request of string
  | Unknown_job of int
  | Job_failed of { id : int; message : string }
  | Deadline of { id : int; deadline_ms : int }
  | Not_done of int

type reply =
  | Ready of { version : int; workers : int; queue_max : int }
  | Pong
  | Queued_reply of { id : int; digest : string; coalesced : bool }
  | Status_reply of { id : int; state : state }
  | Payload of { id : int; bytes : int }
  | Stats_payload of { bytes : int }
  | Draining_reply
  | Rejected of reject

(* --- rendering --------------------------------------------------------- *)

let kv k v = Printf.sprintf "%s=%s" k (encode_value v)
let kvi k v = Printf.sprintf "%s=%d" k v

let render_command = function
  | Ping -> "ping"
  | Submit { priority; request = r } ->
      String.concat " "
        [
          "submit";
          kv "pri" (priority_name priority);
          kv "workload" r.workload;
          kv "policy" (policy_name r.policy);
          kv "context" r.context;
          kv "slowdown" (Mcd_cache.Key.float_param r.slowdown_pct);
        ]
  | Status id -> "status " ^ kvi "id" id
  | Wait id -> "wait " ^ kvi "id" id
  | Result id -> "result " ^ kvi "id" id
  | Stats -> "stats"
  | Drain -> "drain"
  | Quit -> "quit"

let render_reply = function
  | Ready { version; workers; queue_max } ->
      Printf.sprintf "mcd-serve/%d ready %s %s" version
        (kvi "workers" workers)
        (kvi "queue-max" queue_max)
  | Pong -> "pong"
  | Queued_reply { id; digest; coalesced } ->
      String.concat " "
        [
          "queued"; kvi "id" id; kv "digest" digest;
          kvi "coalesced" (if coalesced then 1 else 0);
        ]
  | Status_reply { id; state } -> (
      let base =
        String.concat " " [ "status"; kvi "id" id; kv "state" (state_name state) ]
      in
      match state with
      | Failed message -> base ^ " " ^ kv "msg" message
      | Queued | Running | Done -> base)
  | Payload { id; bytes } -> String.concat " " [ "payload"; kvi "id" id; kvi "bytes" bytes ]
  | Stats_payload { bytes } -> "stats-payload " ^ kvi "bytes" bytes
  | Draining_reply -> "draining"
  | Rejected reject -> (
      match reject with
      | Overloaded { queue_depth; limit; retry_after_ms } ->
          String.concat " "
            [
              "error"; kv "code" "overloaded"; kvi "depth" queue_depth;
              kvi "limit" limit; kvi "retry-after-ms" retry_after_ms;
            ]
      | Draining -> "error code=draining"
      | Bad_request msg ->
          String.concat " " [ "error"; kv "code" "bad-request"; kv "msg" msg ]
      | Unknown_job id ->
          String.concat " " [ "error"; kv "code" "unknown-job"; kvi "id" id ]
      | Job_failed { id; message } ->
          String.concat " "
            [ "error"; kv "code" "failed"; kvi "id" id; kv "msg" message ]
      | Deadline { id; deadline_ms } ->
          String.concat " "
            [
              "error"; kv "code" "deadline"; kvi "id" id;
              kvi "deadline-ms" deadline_ms;
            ]
      | Not_done id ->
          String.concat " " [ "error"; kv "code" "not-done"; kvi "id" id ])

(* --- parsing ----------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Tokenize a line into its verb and key=value fields. Unknown keys are
   ignored (forward compatibility within a protocol version); duplicate
   keys keep the first occurrence. *)
let fields tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> None
      | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
    tokens

let field key fs =
  match List.assoc_opt key fs with
  | Some v -> decode_value v
  | None -> Error (Printf.sprintf "missing %s field" key)

let int_field key fs =
  let* v = field key fs in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s value %S" key v)

let float_field key fs =
  let* v = field key fs in
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "bad %s value %S" key v)

let split line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_command line =
  match split line with
  | [] -> Error "empty command"
  | verb :: rest -> (
      let fs = fields rest in
      match verb with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "drain" -> Ok Drain
      | "quit" -> Ok Quit
      | "status" ->
          let* id = int_field "id" fs in
          Ok (Status id)
      | "wait" ->
          let* id = int_field "id" fs in
          Ok (Wait id)
      | "result" ->
          let* id = int_field "id" fs in
          Ok (Result id)
      | "submit" ->
          let* pri = field "pri" fs in
          let* priority =
            match priority_of_name pri with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown priority %S" pri)
          in
          let* workload = field "workload" fs in
          let* pol = field "policy" fs in
          let* policy =
            match policy_of_name pol with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown policy %S" pol)
          in
          let* context = field "context" fs in
          let* slowdown_pct = float_field "slowdown" fs in
          Ok (Submit { priority; request = { workload; policy; context; slowdown_pct } })
      | verb -> Error (Printf.sprintf "unknown command %S" verb))

let parse_state fs =
  let* s = field "state" fs in
  match s with
  | "queued" -> Ok Queued
  | "running" -> Ok Running
  | "done" -> Ok Done
  | "failed" ->
      let* msg = field "msg" fs in
      Ok (Failed msg)
  | s -> Error (Printf.sprintf "unknown state %S" s)

let parse_reply line =
  match split line with
  | [] -> Error "empty reply"
  | verb :: rest -> (
      let fs = fields rest in
      match verb with
      | "pong" -> Ok Pong
      | "draining" -> Ok Draining_reply
      | "queued" ->
          let* id = int_field "id" fs in
          let* digest = field "digest" fs in
          let* coalesced = int_field "coalesced" fs in
          Ok (Queued_reply { id; digest; coalesced = coalesced <> 0 })
      | "status" ->
          let* id = int_field "id" fs in
          let* state = parse_state fs in
          Ok (Status_reply { id; state })
      | "payload" ->
          let* id = int_field "id" fs in
          let* bytes = int_field "bytes" fs in
          Ok (Payload { id; bytes })
      | "stats-payload" ->
          let* bytes = int_field "bytes" fs in
          Ok (Stats_payload { bytes })
      | "error" -> (
          let* code = field "code" fs in
          match code with
          | "overloaded" ->
              let* queue_depth = int_field "depth" fs in
              let* limit = int_field "limit" fs in
              let* retry_after_ms = int_field "retry-after-ms" fs in
              Ok (Rejected (Overloaded { queue_depth; limit; retry_after_ms }))
          | "draining" -> Ok (Rejected Draining)
          | "bad-request" ->
              let* msg = field "msg" fs in
              Ok (Rejected (Bad_request msg))
          | "unknown-job" ->
              let* id = int_field "id" fs in
              Ok (Rejected (Unknown_job id))
          | "failed" ->
              let* id = int_field "id" fs in
              let* message = field "msg" fs in
              Ok (Rejected (Job_failed { id; message }))
          | "deadline" ->
              let* id = int_field "id" fs in
              let* deadline_ms = int_field "deadline-ms" fs in
              Ok (Rejected (Deadline { id; deadline_ms }))
          | "not-done" ->
              let* id = int_field "id" fs in
              Ok (Rejected (Not_done id))
          | code -> Error (Printf.sprintf "unknown error code %S" code))
      | verb -> (
          (* the greeting: "mcd-serve/<v> ready ..." *)
          match String.split_on_char '/' verb with
          | [ "mcd-serve"; v ] -> (
              match (int_of_string_opt v, rest) with
              | Some version, "ready" :: _ ->
                  let* workers = int_field "workers" fs in
                  let* queue_max = int_field "queue-max" fs in
                  Ok (Ready { version; workers; queue_max })
              | _ -> Error (Printf.sprintf "malformed greeting %S" line))
          | _ -> Error (Printf.sprintf "unknown reply %S" verb)))

let error_of_reject = function
  | Overloaded { queue_depth; limit; retry_after_ms } ->
      Error.Overloaded { queue_depth; limit; retry_after_ms }
  | Draining -> Error.Draining { detail = "server shutting down" }
  | Bad_request msg ->
      Error.Protocol_violation { line = msg; reason = "rejected by server" }
  | Unknown_job id -> Error.Unknown_job { id }
  | Job_failed { id; message } ->
      Error.Runtime_fault
        { where = Printf.sprintf "job %d" id; detail = message }
  | Deadline { id; deadline_ms } -> Error.Deadline_exceeded { id; deadline_ms }
  | Not_done id ->
      Error.Protocol_violation
        { line = Printf.sprintf "id=%d" id; reason = "job not finished" }
