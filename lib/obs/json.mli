(** Minimal JSON value type with a writer and a parser.

    Just enough for the exporters and the @verify smoke test to
    round-trip their own output; not a general-purpose JSON library
    (no streaming, surrogate pairs decode to U+FFFD). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Errors carry a character offset and a short description. Trailing
    whitespace is allowed; trailing garbage is an error. *)

(** {2 Accessors} — shallow helpers for the smoke test. *)

val member : string -> t -> t option
(** [member key (Obj _)]; [None] on missing key or non-object. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
