lib/control/policies.ml: Mcd_cpu
