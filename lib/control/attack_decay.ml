module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

type params = {
  interval_cycles : int;
  attack_threshold : float;
  attack_step_mhz : int;
  decay_step_mhz : int;
  ipc_guard : float;
}

let default_params =
  {
    interval_cycles = 10_000;
    attack_threshold = 0.04;
    attack_step_mhz = 150;
    decay_step_mhz = 50;
    ipc_guard = 0.965;
  }

(* queue capacities used to normalise the domain-owned backlog *)
let capacity = Policy.queue_capacity
let scaled_domains = Policy.scaled_domains

let revert_cooldown = 6

let controller ?(params = default_params) ?sink () =
  let prev_util = Array.make Domain.count (-1.0) in
  let cur_freq = Array.make Domain.count Freq.fmax_mhz in
  let cooldown = Array.make Domain.count 0 in
  let pending_check = Array.make Domain.count 0 in
  let ipc_before = Array.make Domain.count 0.0 in
  let pre_decay = Array.make Domain.count Freq.fmax_mhz in
  let idle_streak = Array.make Domain.count 0 in
  let smooth_ipc = ref (-1.0) in
  let on_sample (s : Controller.sample) ~now =
    let raw_ipc =
      float_of_int s.Controller.retired
      /. float_of_int (max 1 s.Controller.elapsed_cycles)
    in
    (* exponential smoothing tames interval-to-interval IPC noise for
       the guard decision *)
    let ipc =
      if !smooth_ipc < 0.0 then raw_ipc
      else (0.4 *. raw_ipc) +. (0.6 *. !smooth_ipc)
    in
    smooth_ipc := ipc;
    let changed = ref false in
    let set d f' why =
      let i = Domain.index d in
      let f' = Freq.clamp f' in
      if f' <> cur_freq.(i) then begin
        (match sink with
        | None -> ()
        | Some snk ->
            Mcd_obs.Sink.decision snk ~t_ps:now ~source:"on-line"
              ~trigger:Mcd_obs.Sink.Sample
              ~detail:
                (Printf.sprintf "%s %s %d->%d MHz" why (Domain.name d)
                   cur_freq.(i) f')
              ());
        cur_freq.(i) <- f';
        changed := true
      end
    in
    List.iter
      (fun d ->
        let i = Domain.index d in
        if cooldown.(i) > 0 then cooldown.(i) <- cooldown.(i) - 1;
        (* guard: a few intervals after this domain decayed, check the
           smoothed IPC; if performance dropped, undo the decay and
           leave the domain alone for a while *)
        if pending_check.(i) > 0 then begin
          pending_check.(i) <- pending_check.(i) - 1;
          if pending_check.(i) = 0 && ipc < params.ipc_guard *. ipc_before.(i)
          then begin
            (* undo the decay exactly: restore the frequency recorded
               just before it, not cur + attack_step (150 MHz up for a
               50 MHz decay would overshoot the pre-decay point) *)
            set d pre_decay.(i) "revert";
            cooldown.(i) <- revert_cooldown;
            (* the plunge branch ignores [cooldown], so any idle streak
               accumulated during the pending window would plunge the
               domain by attack_step_mhz immediately after the revert —
               undoing the guard it just enforced. The revert is
               evidence the domain is not really idle: restart the
               streak from zero. *)
            idle_streak.(i) <- 0
          end
        end;
        let util = s.Controller.avg_occupancy.(i) /. capacity d in
        if util < 0.02 then idle_streak.(i) <- idle_streak.(i) + 1
        else idle_streak.(i) <- 0;
        if prev_util.(i) >= 0.0 then begin
          let delta = util -. prev_util.(i) in
          if util > 0.85 then begin
            (* deep backlog: a phase change caught the domain far too
               slow — jump straight back to full speed. Any decay still
               under guard observation is superseded. *)
            set d Freq.fmax_mhz "surge";
            pending_check.(i) <- 0
          end
          else if delta > params.attack_threshold || util > 0.45 then begin
            set d (cur_freq.(i) + params.attack_step_mhz) "attack";
            pending_check.(i) <- 0
          end
          else if idle_streak.(i) >= 2 then begin
            (* persistently idle: plunge without consulting the guard *)
            set d (cur_freq.(i) - params.attack_step_mhz) "plunge";
            pending_check.(i) <- 0
          end
          else if
            util >= 0.02 && util < 0.20 && cooldown.(i) = 0
            && pending_check.(i) = 0
            && cur_freq.(i) > Freq.fmin_mhz
          then begin
            pre_decay.(i) <- cur_freq.(i);
            set d (cur_freq.(i) - params.decay_step_mhz) "decay";
            pending_check.(i) <- 3;
            ipc_before.(i) <- ipc
          end
        end;
        prev_util.(i) <- util)
      scaled_domains;
    if !changed then begin
      let setting =
        Reconfig.make
          ~front_end:Freq.fmax_mhz
          ~integer:cur_freq.(Domain.index Domain.Integer)
          ~floating:cur_freq.(Domain.index Domain.Floating)
          ~memory:cur_freq.(Domain.index Domain.Memory)
      in
      (* One combined-target event per reacting interval, carrying the
         full setting: the assertion layer checks these against the
         legal frequency grid. The per-domain events above keep the
         why; this one keeps the what. *)
      (match sink with
      | None -> ()
      | Some snk ->
          Mcd_obs.Sink.decision snk ~t_ps:now ~source:"on-line"
            ~trigger:Mcd_obs.Sink.Sample ~setting ~detail:"interval target" ());
      Some setting
    end
    else None
  in
  {
    Controller.name = "on-line";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = params.interval_cycles;
  }

(* Canonical parameter rendering: the exact strings (and order) the
   runner has always keyed on-line runs under, now owned by the policy
   itself so the key can never drift from the knobs. *)
let params_id p =
  [
    string_of_int p.interval_cycles;
    Mcd_cache.Key.float_param p.attack_threshold;
    string_of_int p.attack_step_mhz;
    string_of_int p.decay_step_mhz;
    Mcd_cache.Key.float_param p.ipc_guard;
  ]

let policy ?label ?(params = default_params) () =
  Policy.make ~name:"online" ?label
    ~doc:"attack/decay occupancy controller (Semeraro et al.)"
    ~params:(params_id params) ~feedback:true ~cooldown_intervals:0
    (fun ?sink () -> controller ~params ?sink ())

