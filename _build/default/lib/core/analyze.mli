(** The end-to-end off-line analysis driver: phases 1–3 of the paper.

    1. Profile the training run (an instrumented walk, no timing) and
       build the call tree; identify long-running nodes.
    2. Re-run the training input through the full-speed pipeline with a
       trace probe; collect each long-running node's primitive-event
       segments and shake their dependence DAGs into per-domain
       frequency histograms.
    3. Threshold the histograms at the tolerated slowdown into a
       {!Plan.t}.

    Phase 4 — editing — is {!Editor.edit}. Running the plan with
    training input = production input is exactly the paper's "off-line
    (perfect future knowledge)" configuration. *)

type stats = {
  profiled_insts : int;
  traced_insts : int;
  long_nodes : int;
  segments_shaken : int;
  events_shaken : int;
  shaker_passes_total : int;
}

val analyze :
  program:Mcd_isa.Program.t ->
  train:Mcd_isa.Program.input ->
  context:Mcd_profiling.Context.t ->
  ?slowdown_pct:float ->
  ?threshold_insts:int ->
  ?profile_insts:int ->
  ?trace_insts:int ->
  ?shaker_passes:int ->
  ?config:Mcd_cpu.Config.t ->
  unit ->
  Plan.t * stats
(** Defaults: slowdown 7%, long-running threshold 10_000 instructions,
    profile window 400_000 instructions, trace window 120_000, the
    Table-1 MCD configuration. Segments shorter than 50 events are
    skipped (too short for a meaningful DAG). *)
