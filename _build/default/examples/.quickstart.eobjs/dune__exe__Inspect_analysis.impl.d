examples/inspect_analysis.ml: Array Format Hashtbl List Mcd_core Mcd_domains Mcd_profiling Mcd_util Mcd_workloads
