(** Readiness primitives for the serve event loop and pipelined client.

    A thin wrapper over [poll(2)]: unlike [Unix.select], it has no
    [FD_SETSIZE] (1024) ceiling, so a server holding thousands of
    pipelined connections keeps working. Timeouts are deadline-driven —
    the caller computes how long it may sleep and passes exactly that,
    [-1] meaning "until an event".

    [EINTR] (a signal landed) and timeouts both surface as an empty
    event list: the caller's loop re-evaluates its world either way.
    Any other poll-level failure degrades to reporting {e every}
    watched descriptor readable and writable, so the per-fd read/write
    paths discover the broken descriptor (EBADF) and close it, instead
    of the whole loop crashing. *)

type interest = {
  fd : Unix.file_descr;
  read : bool;
  write : bool;
}

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
}

val wait : interest list -> timeout_ms:int -> event list
(** Block until at least one interest is ready, the timeout elapses, or
    a signal interrupts. [timeout_ms < 0] waits indefinitely; [0] polls.
    Returns only descriptors with at least one ready direction. *)

val wait_fd :
  Unix.file_descr -> read:bool -> write:bool -> timeout_ms:int -> event option
(** {!wait} specialised to one descriptor — the pipelined client's
    pump. *)

(** Per-connection output queue with partial-write bookkeeping.

    Replies are appended as whole frames (strings); [flush] writes as
    much as a non-blocking descriptor accepts and keeps the rest —
    frame bytes are never reordered or dropped, and a slow reader costs
    memory (bounded by the caller) instead of blocking the loop. *)
module Outbuf : sig
  type t

  val create : unit -> t
  val add : t -> string -> unit
  val length : t -> int
  (** Bytes not yet written. *)

  val is_empty : t -> bool

  val flush : t -> Unix.file_descr -> [ `All | `Partial | `Closed ]
  (** Write until empty, [EAGAIN], or peer loss. [`All]: everything
      went out. [`Partial]: the descriptor stopped accepting; retry on
      writability. [`Closed]: EPIPE/ECONNRESET/EBADF — the connection
      is gone. *)
end
