lib/workloads/spec.ml: Mcd_isa Workload
