type t = {
  bimodal : int array; (* 1024 x 2-bit *)
  history : int array; (* 1024 x 10-bit per-address history *)
  pattern : int array; (* 1024 x 2-bit *)
  meta : int array; (* 4096 x 2-bit: >=2 selects PAg *)
  btb_tags : int array; (* 4096 sets x 2 ways *)
  btb_stamps : int array;
  mutable btb_tick : int;
  mutable lookup_count : int;
  mutable mispredict_count : int;
}

let bimodal_size = 1024
let history_size = 1024
let history_bits = 10
let pattern_size = 1024
let meta_size = 4096
let btb_sets = 4096
let btb_ways = 2

let create () =
  {
    bimodal = Array.make bimodal_size 1;
    history = Array.make history_size 0;
    pattern = Array.make pattern_size 1;
    meta = Array.make meta_size 1;
    btb_tags = Array.make (btb_sets * btb_ways) (-1);
    btb_stamps = Array.make (btb_sets * btb_ways) 0;
    btb_tick = 0;
    lookup_count = 0;
    mispredict_count = 0;
  }

let counter_update c taken =
  if taken then min 3 (c + 1) else max 0 (c - 1)

let btb_lookup_update t ~pc ~taken =
  let set = pc land (btb_sets - 1) in
  let tag = pc lsr 12 in
  let base = set * btb_ways in
  let way =
    if t.btb_tags.(base) = tag then Some base
    else if t.btb_tags.(base + 1) = tag then Some (base + 1)
    else None
  in
  t.btb_tick <- t.btb_tick + 1;
  match way with
  | Some idx ->
      t.btb_stamps.(idx) <- t.btb_tick;
      true
  | None ->
      if taken then begin
        let victim =
          if t.btb_stamps.(base) <= t.btb_stamps.(base + 1) then base
          else base + 1
        in
        t.btb_tags.(victim) <- tag;
        t.btb_stamps.(victim) <- t.btb_tick
      end;
      false

let predict_and_update t ~pc ~taken =
  t.lookup_count <- t.lookup_count + 1;
  let bi_idx = pc land (bimodal_size - 1) in
  let bi_pred = t.bimodal.(bi_idx) >= 2 in
  let h_idx = pc land (history_size - 1) in
  let hist = t.history.(h_idx) in
  let p_idx = hist land (pattern_size - 1) in
  let pag_pred = t.pattern.(p_idx) >= 2 in
  let m_idx = pc land (meta_size - 1) in
  let use_pag = t.meta.(m_idx) >= 2 in
  let dir_pred = if use_pag then pag_pred else bi_pred in
  let btb_hit = btb_lookup_update t ~pc ~taken in
  (* Direction correct and, if the branch is taken, the BTB must supply
     the target for fetch to follow it. *)
  let correct = dir_pred = taken && ((not taken) || btb_hit) in
  (* updates *)
  t.bimodal.(bi_idx) <- counter_update t.bimodal.(bi_idx) taken;
  t.pattern.(p_idx) <- counter_update t.pattern.(p_idx) taken;
  t.history.(h_idx) <-
    ((hist lsl 1) lor Bool.to_int taken) land ((1 lsl history_bits) - 1);
  (if pag_pred <> bi_pred then
     let pag_correct = pag_pred = taken in
     t.meta.(m_idx) <- counter_update t.meta.(m_idx) pag_correct);
  if not correct then t.mispredict_count <- t.mispredict_count + 1;
  correct

let lookups t = t.lookup_count
let mispredictions t = t.mispredict_count

let accuracy t =
  if t.lookup_count = 0 then 1.0
  else
    1.0
    -. (float_of_int t.mispredict_count /. float_of_int t.lookup_count)
