lib/workloads/workload.mli: Mcd_isa
