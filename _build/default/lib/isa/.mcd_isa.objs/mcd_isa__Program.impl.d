lib/isa/program.ml: Hashtbl List Printf String
