lib/profiling/tracker.ml: Call_tree Context List Mcd_isa Option
