module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Attack_decay = Mcd_control.Attack_decay
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats

type point = { slowdown : float; savings : float; ed : float }

let default_deltas = [ 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0 ]

let default_workloads =
  List.map Suite.by_name
    [
      "adpcm decode";
      "epic encode";
      "gsm encode";
      "jpeg compress";
      "mpeg2 decode";
      "mcf";
      "applu";
      "art";
    ]

let average_point comparisons =
  {
    slowdown =
      Stats.mean (List.map (fun c -> c.Runner.degradation_pct) comparisons);
    savings =
      Stats.mean (List.map (fun c -> c.Runner.savings_pct) comparisons);
    ed =
      Stats.mean
        (List.map (fun c -> c.Runner.ed_improvement_pct) comparisons);
  }

(* Each curve fans out per workload — one worker domain computes every
   point of a workload's column, so the expensive shared prefix
   (baseline run, off-line analysis) is memoized once per worker — then
   transposes back to per-delta averages in the sequential caller. A
   single pass over each column fills a point-major matrix (the old
   List.nth walk re-scanned every column per point, quadratic in curve
   length); comparisons stay in workload order, so the averages are
   bit-identical to the delta-major loop. *)
let transpose_average ~points per_workload =
  let n_points = List.length points in
  let rows = Array.make n_points [] in
  (* consing column-by-column builds each row reversed; reverse the
     column order up front so rows come out in workload order *)
  List.iter
    (fun column ->
      if List.length column <> n_points then
        invalid_arg "Sweep.transpose_average: ragged sweep results";
      List.iteri (fun i c -> rows.(i) <- c :: rows.(i)) column)
    (List.rev per_workload);
  Array.to_list (Array.map average_point rows)

let profile_curve ?(workloads = default_workloads)
    ?(deltas = default_deltas) () =
  let per_workload =
    Runner.map_workloads
      (fun w ->
        let baseline = Runner.baseline w in
        List.map
          (fun delta ->
            let pr =
              Runner.profile_run ~slowdown_pct:delta w ~context:Context.lf
                ~train:`Train
            in
            Runner.compare_runs ~baseline pr.Runner.run)
          deltas)
      workloads
  in
  transpose_average ~points:deltas per_workload

let offline_curve ?(workloads = default_workloads)
    ?(deltas = default_deltas) () =
  let per_workload =
    Runner.map_workloads
      (fun w ->
        let baseline = Runner.baseline w in
        List.map
          (fun delta ->
            let run = Runner.offline_run ~slowdown_pct:delta w in
            Runner.compare_runs ~baseline run)
          deltas)
      workloads
  in
  transpose_average ~points:deltas per_workload

let default_guards = [ 0.995; 0.985; 0.975; 0.96; 0.93; 0.88; 0.80 ]

let online_curve ?(workloads = default_workloads)
    ?(guards = default_guards) () =
  let per_workload =
    Runner.map_workloads
      (fun w ->
        let baseline = Runner.baseline w in
        List.map
          (fun guard ->
            let params =
              { Attack_decay.default_params with ipc_guard = guard }
            in
            let run = Runner.online_run ~params w in
            Runner.compare_runs ~baseline run)
          guards)
      workloads
  in
  transpose_average ~points:guards per_workload

let render ~title ~ylabel ~extract ~offline ~online ~profile =
  let header = [ "series"; "point"; "slowdown"; "value" ] in
  let series name points =
    List.mapi
      (fun i p ->
        [
          name;
          string_of_int (i + 1);
          Table.fmt_pct p.slowdown;
          Table.fmt_pct (extract p);
        ])
      points
  in
  let plot =
    Mcd_util.Chart.scatter ~xlabel:"slowdown %" ~ylabel
      ~series:
        [
          ("on-line", List.map (fun p -> (p.slowdown, extract p)) online);
          ("off-line", List.map (fun p -> (p.slowdown, extract p)) offline);
          ("L+F", List.map (fun p -> (p.slowdown, extract p)) profile);
        ]
      ()
  in
  title ^ "\n"
  ^ Table.render ~header
      ~rows:
        (series "on-line" online @ series "off-line" offline
       @ series "L+F" profile)
      ()
  ^ "\n" ^ plot

let fig10 ~offline ~online ~profile =
  render ~title:"Figure 10: energy savings vs achieved slowdown"
    ~ylabel:"energy savings %"
    ~extract:(fun p -> p.savings)
    ~offline ~online ~profile

let fig11 ~offline ~online ~profile =
  render
    ~title:"Figure 11: energy x delay improvement vs achieved slowdown"
    ~ylabel:"energy x delay improvement %"
    ~extract:(fun p -> p.ed)
    ~offline ~online ~profile
