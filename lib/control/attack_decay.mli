(** The hardware on-line attack/decay controller (Semeraro et al.,
    MICRO 2002) — the paper's "on-line" comparison bars.

    Every interval (10,000 front-end cycles by default) the controller
    examines each back-end domain's average issue-queue occupancy. A
    significant change in occupancy since the previous interval triggers
    an *attack*: frequency moves sharply in the same direction (rising
    occupancy means the domain is falling behind — speed it up; falling
    occupancy means slack — slow it down). Otherwise the frequency
    *decays* slowly downward to squeeze out residual slack. The
    front-end domain is not scaled (as in the original proposal).

    The algorithm exploits the tendency of the future to resemble the
    recent past; its characteristic failure, reproduced here, is
    instability on phase changes — the attack lags each transition. *)

type params = {
  interval_cycles : int;  (** sampling interval, front-end cycles *)
  attack_threshold : float;
      (** relative occupancy change that triggers an attack *)
  attack_step_mhz : int;  (** frequency change on attack *)
  decay_step_mhz : int;  (** downward drift per stable interval *)
  ipc_guard : float;
      (** tolerated relative IPC drop after a decay before the decay is
          reverted; lower values are more aggressive (more energy, more
          slowdown) — the knob swept in Figures 10/11 *)
}

val default_params : params

val controller :
  ?params:params -> ?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t
(** Fresh controller (single-use: carries per-run state). With a
    [sink], every frequency move is recorded as a [Decision] event
    labelled with its cause (attack / decay / revert / plunge /
    surge). *)

val params_id : params -> string list
(** Canonical ordered rendering of every knob — the [params] of this
    policy's cache-key fragment. *)

val policy : ?label:string -> ?params:params -> unit -> Policy.t
(** The controller as a first-class policy named ["online"] (key
    identity {!params_id}; [label] defaults to ["online"]). Feedback:
    always simulated exactly. *)
