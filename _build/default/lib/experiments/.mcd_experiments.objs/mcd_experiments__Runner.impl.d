lib/experiments/runner.ml: Hashtbl Mcd_control Mcd_core Mcd_cpu Mcd_domains Mcd_power Mcd_profiling Mcd_workloads Printf
