module Vec = Mcd_util.Vec
module Probe = Mcd_cpu.Probe
module Call_tree = Mcd_profiling.Call_tree
module Tracker = Mcd_profiling.Tracker

(* An attribution interval: instructions [start_seq, end_seq) belong to
   [target] (a long-running node) or to nobody. [buf = None] means the
   interval is not recorded (no target, over cap, or truncated). *)
type interval = {
  start_seq : int;
  mutable end_seq : int; (* max_int while open *)
  target : int; (* node id; -1 = none *)
  mutable buf : Probe.event Vec.t option;
  mutable truncated : bool;
}

type t = {
  tree : Call_tree.t;
  tracker : Tracker.t;
  max_segments : int;
  max_events : int;
  intervals : interval Vec.t;
  seg_count : (int, int) Hashtbl.t; (* node id -> recorded segments *)
  (* current innermost long-node stack; head = attribution target *)
  mutable long_stack : int list;
  (* one bool per tracker frame we entered: was it a long node? *)
  mutable shadow : bool list;
}

let create ~tree ?(max_segments_per_node = 4)
    ?(max_events_per_segment = 200_000) () =
  let t =
    {
      tree;
      tracker = Tracker.create tree;
      max_segments = max_segments_per_node;
      max_events = max_events_per_segment;
      intervals = Vec.create ();
      seg_count = Hashtbl.create 32;
      long_stack = [];
      shadow = [];
    }
  in
  Vec.push t.intervals
    {
      start_seq = 0;
      end_seq = max_int;
      target = -1;
      buf = None;
      truncated = false;
    };
  t

let current_interval t = Vec.get t.intervals (Vec.length t.intervals - 1)

let open_interval t ~seq ~target =
  let cur = current_interval t in
  if cur.target = target then ()
  else begin
    cur.end_seq <- seq;
    let buf =
      if target < 0 then None
      else begin
        let n = try Hashtbl.find t.seg_count target with Not_found -> 0 in
        if n >= t.max_segments then None
        else begin
          Hashtbl.replace t.seg_count target (n + 1);
          Some (Vec.create ())
        end
      end
    in
    Vec.push t.intervals
      { start_seq = seq; end_seq = max_int; target; buf; truncated = false }
  end

let target_of_position t = function
  | Tracker.Unknown -> None
  | Tracker.Known id ->
      if (Call_tree.node t.tree id).Call_tree.long then Some id else None

let on_marker t marker ~seq =
  match Tracker.on_marker t.tracker marker with
  | Tracker.Ignored -> ()
  | Tracker.Entered pos -> (
      match target_of_position t pos with
      | Some id ->
          t.shadow <- true :: t.shadow;
          t.long_stack <- id :: t.long_stack;
          open_interval t ~seq ~target:id
      | None -> t.shadow <- false :: t.shadow)
  | Tracker.Exited _ -> (
      match t.shadow with
      | [] -> () (* malformed stream; ignore *)
      | was_long :: rest ->
          t.shadow <- rest;
          if was_long then begin
            (match t.long_stack with
            | _ :: ls -> t.long_stack <- ls
            | [] -> ());
            let target =
              match t.long_stack with [] -> -1 | top :: _ -> top
            in
            open_interval t ~seq ~target
          end)

(* Binary search for the interval containing [seq]. Intervals are
   contiguous and ordered by start_seq. *)
let interval_of_seq t seq =
  let n = Vec.length t.intervals in
  let rec go lo hi =
    if lo >= hi then Vec.get t.intervals lo
    else
      let mid = (lo + hi + 1) / 2 in
      if (Vec.get t.intervals mid).start_seq <= seq then go mid hi
      else go lo (mid - 1)
  in
  go 0 (n - 1)

let on_event t (ev : Probe.event) =
  let iv = interval_of_seq t ev.Probe.seq in
  match iv.buf with
  | None -> ()
  | Some buf ->
      if Vec.length buf >= t.max_events then iv.truncated <- true
      else Vec.push buf ev

let probe t =
  {
    Probe.on_event = on_event t;
    on_marker = (fun m ~seq -> on_marker t m ~seq);
  }

let stage_rank = function
  | Probe.Fetch_s -> 0
  | Probe.Dispatch_s -> 1
  | Probe.Execute_s -> 2
  | Probe.Mem_s -> 2
  | Probe.Retire_s -> 3

let sort_events arr =
  Array.sort
    (fun (a : Probe.event) (b : Probe.event) ->
      match compare a.Probe.seq b.Probe.seq with
      | 0 -> compare (stage_rank a.Probe.stage) (stage_rank b.Probe.stage)
      | c -> c)
    arr;
  arr

let segments t =
  let by_node = Hashtbl.create 32 in
  let order = ref [] in
  Vec.iter
    (fun iv ->
      match iv.buf with
      | Some buf when Vec.length buf > 0 ->
          let arr = sort_events (Array.of_list (Vec.to_list buf)) in
          if not (Hashtbl.mem by_node iv.target) then begin
            Hashtbl.add by_node iv.target [];
            order := iv.target :: !order
          end;
          Hashtbl.replace by_node iv.target
            (arr :: Hashtbl.find by_node iv.target)
      | Some _ | None -> ())
    t.intervals;
  List.rev_map
    (fun node_id -> (node_id, List.rev (Hashtbl.find by_node node_id)))
    !order

let intervals_seen t = Vec.length t.intervals
