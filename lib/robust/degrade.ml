module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

type counters = {
  mutable clamped : int;
  mutable suppressed : int;
  mutable reissues : int;
  mutable controller_faults : int;
  mutable fallbacks : int;
}

let counters () =
  { clamped = 0; suppressed = 0; reissues = 0; controller_faults = 0; fallbacks = 0 }

let fallen_back c = c.fallbacks > 0

let interventions c =
  c.clamped + c.suppressed + c.reissues + c.controller_faults + c.fallbacks

let pp_counters fmt c =
  Format.fprintf fmt
    "{clamped=%d suppressed=%d reissues=%d controller_faults=%d fallbacks=%d}"
    c.clamped c.suppressed c.reissues c.controller_faults c.fallbacks

let default_watchdog_interval_cycles = 8192
let default_max_reissues = 3

(* A slew making progress closes its target gap by >= ~100 MHz per
   watchdog sample (8192 cycles at 1 GHz is 8.2 us, or 112 MHz at the
   73.3 ns/MHz ramp); a gap that fails to shrink by even 1 MHz across
   several samples is not a transition, it is a fault. *)
let stall_epsilon_mhz = 1.0
let stall_streak_limit = 4

let guard ?(log = fun (_ : Error.t) -> ()) ?sink
    ?(watchdog_interval_cycles = default_watchdog_interval_cycles)
    ?(max_reissues = default_max_reissues) ~counters:c inner =
  let degraded = ref false in
  let quiet = ref false in
  let commanded : int array option ref = ref None in
  let mismatch_streak = ref 0 in
  let stall_streak = ref 0 in
  let prev_gap = Array.make Domain.count 0.0 in
  let prev_target = Array.make Domain.count (-1) in
  let where = inner.Controller.name in
  let emit ~now detail =
    match sink with
    | None -> ()
    | Some snk -> Mcd_obs.Sink.degraded snk ~t_ps:now ~source:where ~detail
  in
  let sanitize ~now set =
    match set with
    | None -> None
    | Some s -> (
        match Validate.setting ~where s with
        | Result.Error e ->
            log e;
            c.suppressed <- c.suppressed + 1;
            emit ~now ("suppressed: " ^ Error.to_string e);
            None
        | Result.Ok (repaired, []) -> Some repaired
        | Result.Ok (repaired, warnings) ->
            List.iter log warnings;
            c.clamped <- c.clamped + 1;
            emit ~now "clamped off-grid setting";
            Some repaired)
  in
  let command s =
    commanded := Some (Array.copy s);
    Some s
  in
  let fall_back ~now ~detail =
    c.fallbacks <- c.fallbacks + 1;
    log (Error.Runtime_fault { where; detail });
    emit ~now ("fallback: " ^ detail);
    degraded := true;
    mismatch_streak := 0;
    stall_streak := 0;
    command (Reconfig.full_speed ())
  in
  let on_marker m ~now =
    if !degraded then Controller.no_reaction
    else
      match inner.Controller.on_marker m ~now with
      | exception e ->
          c.controller_faults <- c.controller_faults + 1;
          let set =
            fall_back ~now ~detail:("policy raised " ^ Printexc.to_string e)
          in
          { Controller.stall_cycles = 0; table_reads = 0; set }
      | r -> (
          match sanitize ~now r.Controller.set with
          | Some s -> { r with Controller.set = command s }
          | None -> { r with Controller.set = None })
  in
  (* The watchdog: compare what we commanded against what the hardware
     admits it was asked for (lost/ignored writes), and watch for target
     gaps that stop closing (a slew that never completes). *)
  let watchdog (s : Controller.sample) ~now =
    if !quiet then None
    else begin
      let action = ref None in
      (match !commanded with
      | None -> ()
      | Some cmd ->
          let mismatch = ref false in
          Array.iteri
            (fun i cmd_i ->
              if s.Controller.target_mhz.(i) <> cmd_i then mismatch := true)
            cmd;
          if !mismatch then begin
            incr mismatch_streak;
            if !mismatch_streak <= max_reissues then begin
              c.reissues <- c.reissues + 1;
              emit ~now "watchdog: reissuing lost reconfiguration write";
              action := Some (Array.copy cmd)
            end
            else if not !degraded then
              action :=
                fall_back ~now
                  ~detail:
                    "reconfiguration-register writes are being ignored \
                     (lost write or stuck domain)"
            else begin
              (* hardware is deaf even to the fallback: stop trying *)
              quiet := true;
              log
                (Error.Runtime_fault
                   {
                     where;
                     detail =
                       "domain ignores even the full-speed fallback; giving up";
                   });
              emit ~now "watchdog: fallback ignored too; giving up"
            end
          end
          else mismatch_streak := 0);
      (if !action = None then begin
         let stalled = ref false in
         for i = 0 to Domain.count - 1 do
           let gap =
             Float.abs
               (s.Controller.current_mhz.(i)
               -. float_of_int s.Controller.target_mhz.(i))
           in
           let target_stable = prev_target.(i) = s.Controller.target_mhz.(i) in
           if
             target_stable
             && gap > float_of_int Freq.step_mhz /. 2.0
             && gap >= prev_gap.(i) -. stall_epsilon_mhz
           then stalled := true;
           prev_gap.(i) <- gap;
           prev_target.(i) <- s.Controller.target_mhz.(i)
         done;
         if !stalled then incr stall_streak else stall_streak := 0;
         if !stall_streak >= stall_streak_limit && not !degraded then
           action := fall_back ~now ~detail:"frequency slew is not completing"
       end);
      !action
    end
  in
  let on_sample s ~now =
    match watchdog s ~now with
    | Some _ as reissue -> reissue
    | None ->
        if !degraded || inner.Controller.sample_interval_cycles = 0 then None
        else (
          match inner.Controller.on_sample s ~now with
          | exception e ->
              c.controller_faults <- c.controller_faults + 1;
              fall_back ~now ~detail:("policy raised " ^ Printexc.to_string e)
          | set -> (
              match sanitize ~now set with
              | Some s -> command s
              | None -> None))
  in
  {
    Controller.name = "guard:" ^ inner.Controller.name;
    on_marker;
    on_sample;
    sample_interval_cycles =
      (if inner.Controller.sample_interval_cycles > 0 then
         inner.Controller.sample_interval_cycles
       else watchdog_interval_cycles);
  }
