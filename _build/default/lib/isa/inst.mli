(** Instruction classes and dynamic instructions.

    The simulator executes a small RISC-like instruction vocabulary. A
    dynamic instruction carries everything the pipeline needs: its class
    (which selects the functional unit and clock domain), logical source
    and destination registers (dependences), the effective address for
    memory operations, and the resolved outcome for branches. *)

type iclass =
  | Int_alu  (** single-cycle integer operation, integer domain *)
  | Int_mult  (** integer multiply/divide, integer domain *)
  | Fp_alu  (** floating-point add/compare, floating-point domain *)
  | Fp_mult  (** floating-point multiply/divide/sqrt, fp domain *)
  | Load  (** memory read, load/store domain *)
  | Store  (** memory write, load/store domain *)
  | Branch  (** conditional or unconditional control transfer *)

val iclass_to_string : iclass -> string

val num_logical_regs : int
(** Logical register file size: 32 integer + 32 floating-point. *)

val is_fp_reg : int -> bool
(** Registers 32..63 are floating-point. *)

type dyn = {
  seq : int;  (** dynamic sequence number, dense from 0 *)
  static_id : int;  (** static instruction identity (a synthetic PC) *)
  klass : iclass;
  srcs : int array;  (** logical source registers *)
  dst : int;  (** logical destination register, or [-1] for none *)
  addr : int;  (** effective byte address for Load/Store, else [-1] *)
  taken : bool;  (** branch outcome; meaningless unless [klass = Branch] *)
}

val no_reg : int
(** The sentinel [-1] used for "no destination" / "no address". *)

val pp_dyn : Format.formatter -> dyn -> unit
