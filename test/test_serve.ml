(* Tests for the experiment service: wire-protocol round-trips, the
   bounded priority job queue, and the scheduler's coalescing,
   backpressure, drain, and failure-isolation behaviour. Socket-level
   behaviour (forked servers, concurrent clients, SIGTERM drain, warm
   restart) is covered end to end by tools/serve_smoke.ml under
   @verify. *)

module Protocol = Mcd_serve.Protocol
module Jobq = Mcd_serve.Jobq
module Scheduler = Mcd_serve.Scheduler
module Error = Mcd_robust.Error
module Inject = Mcd_robust.Inject
module Metrics = Mcd_obs.Metrics
module Rng = Mcd_util.Rng
module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Analyze = Mcd_core.Analyze
module Plan_io = Mcd_core.Plan_io

(* --- Protocol --------------------------------------------------------- *)

let all_commands =
  [
    Protocol.Ping;
    Protocol.Submit
      {
        priority = Protocol.High;
        request =
          Protocol.request ~policy:Protocol.Online ~context:"L+F+C+P"
            ~slowdown_pct:12.5 "adpcm decode";
      };
    Protocol.Submit
      { priority = Protocol.Low; request = Protocol.request "mcf" };
    Protocol.Status 7;
    Protocol.Wait 42;
    Protocol.Result 1;
    Protocol.Stats;
    Protocol.Drain;
    Protocol.Quit;
  ]

let test_command_roundtrip () =
  List.iter
    (fun cmd ->
      let line = Protocol.render_command cmd in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Protocol.parse_command line with
      | Ok cmd' -> Alcotest.(check bool) line true (cmd = cmd')
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_commands

let all_replies =
  [
    Protocol.Ready { version = 1; workers = 4; queue_max = 64 };
    Protocol.Pong;
    Protocol.Queued_reply
      { id = 3; digest = "0123456789abcdef0123456789abcdef"; coalesced = true };
    Protocol.Status_reply { id = 3; state = Protocol.Queued };
    Protocol.Status_reply { id = 3; state = Protocol.Running };
    Protocol.Status_reply { id = 3; state = Protocol.Done };
    Protocol.Status_reply
      { id = 3; state = Protocol.Failed "oops: 50% of\nplans corrupt" };
    Protocol.Payload { id = 9; bytes = 12345 };
    Protocol.Stats_payload { bytes = 0 };
    Protocol.Draining_reply;
    Protocol.Rejected
      (Protocol.Overloaded { queue_depth = 64; limit = 64; retry_after_ms = 250 });
    Protocol.Rejected Protocol.Draining;
    Protocol.Rejected (Protocol.Bad_request "unknown workload \"x y\"");
    Protocol.Rejected (Protocol.Unknown_job 17);
    Protocol.Rejected (Protocol.Job_failed { id = 2; message = "plan rejected" });
    Protocol.Rejected (Protocol.Not_done 4);
  ]

let test_reply_roundtrip () =
  List.iter
    (fun reply ->
      let line = Protocol.render_reply reply in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Protocol.parse_reply line with
      | Ok reply' -> Alcotest.(check bool) line true (reply = reply')
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_replies

let test_parse_rejects_garbage () =
  List.iter
    (fun line ->
      match Protocol.parse_command line with
      | Ok _ -> Alcotest.failf "command %S accepted" line
      | Error _ -> ())
    [
      "";
      "launch";
      "status";  (* missing id *)
      "status id=abc";
      "submit pri=urgent workload=mcf policy=profile context=F slowdown=7.";
      "submit pri=high workload=mcf policy=psychic context=F slowdown=7.";
      "submit pri=high workload=mcf policy=profile context=F slowdown=fast";
      "submit pri=high workload=m%2f policy=profile context=F slowdown=7.";
      (* bad escape *)
    ];
  List.iter
    (fun line ->
      match Protocol.parse_reply line with
      | Ok _ -> Alcotest.failf "reply %S accepted" line
      | Error _ -> ())
    [ ""; "status id=1 state=confused"; "error code=mystery"; "mcd-serve/x ready" ]

let test_request_normalization_digests () =
  (* the digest is the persistent-store key: spellings a policy cannot
     observe must collapse onto one identity, real differences must
     not *)
  let digest req =
    match Mcd_serve.Server.request_digest req with
    | Ok d -> d
    | Error e -> Alcotest.failf "request_digest: %s" e
  in
  let base = Protocol.request ~policy:Protocol.Baseline "adpcm decode" in
  let base' =
    Protocol.request ~policy:Protocol.Baseline ~context:"F" ~slowdown_pct:1.0
      "adpcm decode"
  in
  Alcotest.(check string) "baseline ignores context+slowdown" (digest base)
    (digest base');
  let prof = Protocol.request ~policy:Protocol.Profile "adpcm decode" in
  let prof_ctx =
    Protocol.request ~policy:Protocol.Profile ~context:"F" "adpcm decode"
  in
  let prof_slow =
    Protocol.request ~policy:Protocol.Profile ~slowdown_pct:3.0 "adpcm decode"
  in
  Alcotest.(check bool) "profile distinguishes context" false
    (digest prof = digest prof_ctx);
  Alcotest.(check bool) "profile distinguishes slowdown" false
    (digest prof = digest prof_slow);
  Alcotest.(check bool) "policies distinguished" false
    (digest base = digest prof);
  match Mcd_serve.Server.request_digest (Protocol.request "no such bench") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown workload digested"

let test_error_of_reject_exit_codes () =
  let code r = Error.exit_code (Protocol.error_of_reject r) in
  Alcotest.(check int) "overloaded -> 4" 4
    (code (Protocol.Overloaded { queue_depth = 1; limit = 1; retry_after_ms = 100 }));
  Alcotest.(check int) "draining -> 4" 4 (code Protocol.Draining);
  Alcotest.(check int) "bad request -> 2" 2 (code (Protocol.Bad_request "x"));
  Alcotest.(check int) "unknown job -> 2" 2 (code (Protocol.Unknown_job 1))

(* --- Jobq ------------------------------------------------------------- *)

let test_jobq_priority_fifo () =
  let q = Jobq.create ~queue_max:16 ~client_max:16 () in
  let push level client item =
    match Jobq.push q ~level ~client item with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "push rejected below the bound"
  in
  push 2 "a" "low1";
  push 1 "a" "norm1";
  push 0 "a" "high1";
  push 1 "a" "norm2";
  push 0 "b" "high2";
  let order = List.init 5 (fun _ -> Option.get (Jobq.pop q)) in
  Alcotest.(check (list string)) "levels first, FIFO within"
    [ "high1"; "high2"; "norm1"; "norm2"; "low1" ]
    order;
  Alcotest.(check bool) "drained" true (Jobq.pop q = None)

let test_jobq_bounds () =
  let q = Jobq.create ~queue_max:3 ~client_max:2 () in
  let push client item = Jobq.push q ~level:1 ~client item in
  Alcotest.(check bool) "1 ok" true (push "a" 1 = Ok ());
  Alcotest.(check bool) "2 ok" true (push "a" 2 = Ok ());
  (match push "a" 3 with
  | Error (Jobq.Client_full n) -> Alcotest.(check int) "client pending" 2 n
  | _ -> Alcotest.fail "third job for one client admitted");
  Alcotest.(check bool) "other client ok" true (push "b" 3 = Ok ());
  (match push "c" 4 with
  | Error (Jobq.Queue_full n) -> Alcotest.(check int) "global depth" 3 n
  | _ -> Alcotest.fail "job beyond the global bound admitted");
  (* popping releases both the global slot and the client's slot *)
  ignore (Jobq.pop q);
  Alcotest.(check int) "client released" 1 (Jobq.client_pending q "a");
  Alcotest.(check bool) "slot freed" true (push "a" 5 = Ok ())

let test_jobq_level_clamped () =
  let q = Jobq.create ~queue_max:4 ~client_max:4 () in
  ignore (Jobq.push q ~level:(-3) ~client:"a" "early");
  ignore (Jobq.push q ~level:99 ~client:"a" "late");
  Alcotest.(check (option string)) "clamped high" (Some "early") (Jobq.pop q);
  Alcotest.(check (option string)) "clamped low" (Some "late") (Jobq.pop q)

let test_jobq_rejects_bad_bounds () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "Invalid_argument" true
        (match f () with
        | (_ : int Jobq.t) -> false
        | exception Invalid_argument _ -> true))
    [
      (fun () -> Jobq.create ~queue_max:0 ~client_max:1 ());
      (fun () -> Jobq.create ~queue_max:1 ~client_max:0 ());
      (fun () -> Jobq.create ~levels:0 ~queue_max:1 ~client_max:1 ());
    ]

(* --- Scheduler -------------------------------------------------------- *)

let digest_of (r : Protocol.request) = r.Protocol.workload

let with_scheduler ?(workers = 1) ?(queue_max = 8) ?(client_max = 8) ~compute f =
  let s = Scheduler.create ~workers ~queue_max ~client_max ~compute () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) (fun () -> f s)

let submit s req =
  Scheduler.submit s ~client:"t" ~priority:Protocol.Normal
    ~digest:(digest_of req) req

let test_scheduler_runs_and_coalesces () =
  let computed = Atomic.make 0 in
  let compute (r : Protocol.request) =
    Atomic.incr computed;
    "payload:" ^ r.Protocol.workload
  in
  with_scheduler ~workers:2 ~compute @@ fun s ->
  let a = Protocol.request "a" and b = Protocol.request "b" in
  let id_a =
    match submit s a with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "first submit not accepted"
  in
  (match submit s b with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "distinct digest not accepted");
  (* duplicate of a queued/running/finished job always coalesces *)
  (match submit s a with
  | Scheduler.Coalesced info ->
      Alcotest.(check int) "same job" id_a info.Scheduler.id
  | _ -> Alcotest.fail "duplicate did not coalesce");
  (match Scheduler.wait_job ~timeout_s:10.0 s id_a with
  | Some { Scheduler.state = Scheduler.Done payload; _ } ->
      Alcotest.(check string) "payload" "payload:a" payload
  | _ -> Alcotest.fail "job a never finished");
  Alcotest.(check bool) "drains idle" true (Scheduler.await_idle ~timeout_s:10.0 s);
  (* late duplicate after completion still coalesces (served warm) *)
  (match submit s a with
  | Scheduler.Coalesced info ->
      Alcotest.(check int) "same finished job" id_a info.Scheduler.id;
      Alcotest.(check int) "submit count" 3 info.Scheduler.submits
  | _ -> Alcotest.fail "late duplicate did not coalesce");
  Alcotest.(check int) "each digest computed once" 2 (Atomic.get computed);
  Scheduler.with_registry s (fun m ->
      let v name = Metrics.value (Metrics.counter m name) in
      Alcotest.(check int) "submitted" 4 (v "serve.submitted");
      Alcotest.(check int) "coalesced" 2 (v "serve.coalesced");
      Alcotest.(check int) "completed" 2 (v "serve.completed");
      Alcotest.(check int) "failed" 0 (v "serve.failed"))

let test_scheduler_backpressure () =
  (* one worker stuck on a slow job, a depth-2 queue: the burst must be
     rejected with a typed, hinted Overloaded — and nothing admitted
     may be lost *)
  let gate = Atomic.make false in
  let compute (r : Protocol.request) =
    while not (Atomic.get gate) do
      Unix.sleepf 0.002
    done;
    r.Protocol.workload
  in
  with_scheduler ~workers:1 ~queue_max:2 ~compute @@ fun s ->
  let accepted = ref [] in
  let rejected = ref 0 in
  (* park the first job on the worker before bursting, so the depth-2
     queue is empty when the burst arrives and the count is exact *)
  (match submit s (Protocol.request "job0") with
  | Scheduler.Accepted info -> accepted := [ info.Scheduler.id ]
  | _ -> Alcotest.fail "first job not accepted");
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Scheduler.queue_depth s > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "worker holds job0" 1 (Scheduler.busy s);
  for i = 1 to 5 do
    match submit s (Protocol.request (Printf.sprintf "job%d" i)) with
    | Scheduler.Accepted info -> accepted := info.Scheduler.id :: !accepted
    | Scheduler.Rejected (Protocol.Overloaded { retry_after_ms; limit; _ }) ->
        incr rejected;
        Alcotest.(check bool) "hint present" true (retry_after_ms >= 100);
        Alcotest.(check int) "limit reported" 2 limit
    | _ -> Alcotest.fail "unexpected admission verdict"
  done;
  (* worker holds one job; the queue holds two more *)
  Alcotest.(check int) "admitted" 3 (List.length !accepted);
  Alcotest.(check int) "shed" 3 !rejected;
  Atomic.set gate true;
  List.iter
    (fun id ->
      match Scheduler.wait_job ~timeout_s:10.0 s id with
      | Some { Scheduler.state = Scheduler.Done _; _ } -> ()
      | _ -> Alcotest.failf "admitted job %d was dropped" id)
    !accepted

let test_scheduler_drain_rejects () =
  with_scheduler ~compute:(fun _ -> "x") @@ fun s ->
  Scheduler.set_draining s;
  match submit s (Protocol.request "late") with
  | Scheduler.Rejected Protocol.Draining -> ()
  | _ -> Alcotest.fail "submit during drain not rejected as Draining"

(* Satellite regression: a worker whose compute raises — here tripping
   over an Inject-corrupted plan artifact — must fail its own job with
   the message and backtrace attached, and the pool must keep serving
   the jobs behind it. *)
let two_phase_program () =
  B.program ~name:"twophase" @@ fun b ->
  B.func b "int_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 () ] ];
  B.func b "fp_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 ~frac_fp_alu:0.35 () ] ];
  B.func b "main"
    [ B.loop b (P.Const 15) [ B.call b "int_phase"; B.call b "fp_phase" ] ];
  "main"

let test_scheduler_fault_isolation () =
  let train = { P.input_name = "t"; scale = 1; divergence = 0.0; seed = 33 } in
  let plan, _ =
    Analyze.analyze ~program:(two_phase_program ()) ~train ~context:Context.lf
      ~threshold_insts:1_500 ~profile_insts:80_000 ~trace_insts:40_000 ()
  in
  let path = Filename.temp_file "mcd_serve_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Plan_io.save plan ~path;
  let rng = Rng.split (Rng.create 11) ~label:"serve" in
  Inject.corrupt_file Inject.Truncate ~rng ~path;
  let compute (r : Protocol.request) =
    if r.Protocol.workload = "boom" then
      ignore (Plan_io.load ~path ~tree:plan.Plan.tree : Plan.t);
    "survived"
  in
  with_scheduler ~compute @@ fun s ->
  let id_boom =
    match submit s (Protocol.request "boom") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "boom not accepted"
  in
  let id_ok =
    match submit s (Protocol.request "after") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "follow-up not accepted"
  in
  (match Scheduler.wait_job ~timeout_s:10.0 s id_boom with
  | Some { Scheduler.state = Scheduler.Failed { message; backtrace }; _ } ->
      Alcotest.(check bool) "carries the diagnostic" true (message <> "");
      Alcotest.(check bool) "carries a backtrace slot" true
        (String.length backtrace >= 0)
  | Some { Scheduler.state = Scheduler.Done _; _ } ->
      Alcotest.fail "corrupted plan load did not fail"
  | _ -> Alcotest.fail "boom job never turned terminal");
  (* the queue behind the fault keeps draining *)
  (match Scheduler.wait_job ~timeout_s:10.0 s id_ok with
  | Some { Scheduler.state = Scheduler.Done payload; _ } ->
      Alcotest.(check string) "pool survived" "survived" payload
  | _ -> Alcotest.fail "job behind the fault was wedged");
  Scheduler.with_registry s (fun m ->
      Alcotest.(check int) "failure counted" 1
        (Metrics.value (Metrics.counter m "serve.failed")))

let suite =
  [
    ("protocol command roundtrip", `Quick, test_command_roundtrip);
    ("protocol reply roundtrip", `Quick, test_reply_roundtrip);
    ("protocol rejects garbage", `Quick, test_parse_rejects_garbage);
    ("request digests normalize", `Quick, test_request_normalization_digests);
    ("reject exit codes", `Quick, test_error_of_reject_exit_codes);
    ("jobq priority fifo", `Quick, test_jobq_priority_fifo);
    ("jobq bounds", `Quick, test_jobq_bounds);
    ("jobq level clamped", `Quick, test_jobq_level_clamped);
    ("jobq rejects bad bounds", `Quick, test_jobq_rejects_bad_bounds);
    ("scheduler runs and coalesces", `Quick, test_scheduler_runs_and_coalesces);
    ("scheduler backpressure", `Quick, test_scheduler_backpressure);
    ("scheduler drain rejects", `Quick, test_scheduler_drain_rejects);
    ("scheduler fault isolation", `Quick, test_scheduler_fault_isolation);
  ]
