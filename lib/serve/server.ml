module Error = Mcd_robust.Error
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_obs.Metrics

type config = {
  socket : string;
  workers : int;
  queue_max : int;
  client_max : int;
  conn_inflight_max : int;
  outbuf_max_bytes : int;
  compute_delay_s : float;
  trace_dir : string option;
  drain_grace_s : float;
  drain_deadline_s : float;
  journal : string option;
  deadline_s : float option;
  retry_after_cap_ms : int;
}

(* The journal lives beside the payloads it protects: a restart that can
   see the cache can also see which acknowledged jobs still owe answers. *)
let default_journal_path () =
  Option.map
    (fun store -> Filename.concat (Mcd_cache.Store.dir store) "serve.journal")
    (Mcd_cache.Store.default ())

let default_config ~socket =
  {
    socket;
    workers = 2;
    queue_max = 64;
    client_max = 16;
    conn_inflight_max = 128;
    outbuf_max_bytes = 16 * 1024 * 1024;
    compute_delay_s = 0.0;
    trace_dir = None;
    drain_grace_s = 1.0;
    drain_deadline_s = 60.0;
    journal = default_journal_path ();
    deadline_s = None;
    retry_after_cap_ms = 10_000;
  }

(* --- request resolution ------------------------------------------------ *)

let policy_of_wire = function
  | Protocol.Baseline -> `Baseline
  | Protocol.Offline -> `Offline
  | Protocol.Online -> `Online
  | Protocol.Profile -> `Profile

let resolve (r : Protocol.request) =
  match Mcd_workloads.Suite.find_opt r.workload with
  | None ->
      Result.Error
        (Printf.sprintf "unknown workload %S (valid: %s)" r.workload
           (String.concat ", " Mcd_workloads.Suite.names))
  | Some w -> (
      match Mcd_profiling.Context.of_name r.context with
      | exception Not_found ->
          Result.Error
            (Printf.sprintf "unknown context %S (valid: %s)" r.context
               (String.concat ", "
                  (List.map
                     (fun (c : Mcd_profiling.Context.t) -> c.name)
                     Mcd_profiling.Context.all)))
      | context ->
          if not (Float.is_finite r.slowdown_pct) || r.slowdown_pct < 0.0 then
            Result.Error "slowdown must be a non-negative finite percentage"
          else Ok (w, policy_of_wire r.policy, context))

let request_digest (r : Protocol.request) =
  Result.map
    (fun (w, policy, context) ->
      Mcd_cache.Key.digest
        (Runner.request_key w ~policy ~context ~slowdown_pct:r.slowdown_pct))
    (resolve r)

let compute (r : Protocol.request) =
  match resolve r with
  | Result.Error msg -> invalid_arg ("Server.compute: " ^ msg)
  | Ok (w, policy, context) ->
      Mcd_power.Metrics.encode
        (Runner.run_request w ~policy ~context ~slowdown_pct:r.slowdown_pct)

(* --- socket setup ------------------------------------------------------ *)

let io_error socket message = Error.Server_unavailable { socket; message }

(* A socket file can outlive its server (SIGKILL, crash). Probing
   distinguishes a live server (connect succeeds — refuse to double-bind)
   from a stale corpse (connect refused — unlink and take over). *)
let clear_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close fd;
          Result.Error
            (io_error path "a server is already listening on this socket")
      | exception Unix.Unix_error (_, _, _) ->
          Unix.close fd;
          (try Sys.remove path with Sys_error _ -> ());
          Ok ())
  | _ ->
      Result.Error (io_error path "path exists and is not a socket")
  | exception Unix.Unix_error (_, _, _) ->
      Result.Error (io_error path "cannot stat socket path")

(* Two servers racing to start see the same stale socket and both decide
   to unlink-and-rebind; the second silently steals the first's bound
   socket file. An exclusive lock file serializes the whole
   probe→unlink→bind sequence: the loser reports Server_unavailable
   instead of corrupting the winner. The lock is held (fd open) for the
   server's lifetime and released by close on exit; the file itself is
   never unlinked — unlinking would reopen the race it exists to close. *)
let acquire_start_lock socket =
  let path = socket ^ ".lock" in
  match Unix.openfile path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (io_error socket (Unix.error_message e))
  | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () -> Ok fd
      | exception Unix.Unix_error (_, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Result.Error
            (io_error socket
               "another server is starting or running (start lock held)"))

let bind_socket path =
  match clear_stale_socket path with
  | Result.Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Result.Error (io_error path (Unix.error_message e)))

(* --- connections ------------------------------------------------------- *)

(* A connection is a pair of byte streams the loop owns outright:
   [acc] holds received bytes not yet parsed into command lines, [out]
   holds rendered reply frames the socket has not yet accepted. All
   writes are buffered-then-flushed, so a slow reader never blocks the
   loop — it accumulates output until {!config.outbuf_max_bytes} and is
   then disconnected. *)
type conn = {
  fd : Unix.file_descr;
  client : string;
  mutable acc : string;  (** bytes received, not yet parsed into lines *)
  out : Evloop.Outbuf.t;  (** rendered frames awaiting the socket *)
  mutable waits : (int * int option) list;
      (** parked [wait]s: job id and the command's seq tag *)
  mutable n_waits : int;
  mutable closing : bool;  (** [quit] received: flush [out], then close *)
}

(* Command lines are small; a line that grows past this without a
   newline is not a client, it is a mistake (or a binary stream aimed
   at the wrong socket). *)
let line_max = 64 * 1024

(* --- the event loop ---------------------------------------------------- *)

type loop_metrics = {
  h_wait : Metrics.histogram;  (** poll dwell time per iteration *)
  h_iter : Metrics.histogram;  (** processing time per iteration *)
  c_wakeups : Metrics.counter;
  c_partial_writes : Metrics.counter;
  c_slow_reader_closes : Metrics.counter;
  g_conns : Metrics.gauge;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** self-pipe: completions poke the loop *)
  wake_w : Unix.file_descr;
  sched : Scheduler.t;
  journal : Journal.t option;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  lm : loop_metrics;
  mutable next_client : int;
  mutable drain_started : float option;
  mutable idle_since : float option;
}

let poke fd =
  (* From a worker domain. The pipe is non-blocking; a full pipe already
     guarantees a pending wakeup, so EAGAIN is success. *)
  try ignore (Unix.write_substring fd "!" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let wire_state : Scheduler.state -> Protocol.state = function
  | Scheduler.Queued -> Protocol.Queued
  | Scheduler.Running -> Protocol.Running
  | Scheduler.Done _ -> Protocol.Done
  | Scheduler.Failed { message; _ } -> Protocol.Failed message

let status_reply (info : Scheduler.info) =
  Protocol.Status_reply { id = info.id; state = wire_state info.state }

(* The warm-restart story lives here: the persistent store's session
   counters are mirrored into the sink registry as [store.*] gauges, so
   a [stats] export shows whether payloads came from recomputation or
   from objects a previous server (or a one-shot CLI run) left behind. *)
let mirror_store_stats t =
  match Mcd_cache.Store.default () with
  | None -> ()
  | Some store ->
      let s = Mcd_cache.Store.stats store in
      Scheduler.with_registry t.sched (fun m ->
          let set name v =
            Metrics.set (Metrics.gauge m name) (float_of_int v)
          in
          set "store.hits" s.hits;
          set "store.misses" s.misses;
          set "store.corrupt" s.corrupt;
          set "store.stores" s.stores;
          set "store.bytes_read" s.bytes_read;
          set "store.bytes_written" s.bytes_written;
          set "store.gc_removed" s.gc_removed;
          set "store.gc_freed_bytes" s.gc_freed_bytes)

(* Journal counters surface as [journal.*] gauges, so `mcd-dvfs status`
   (a [stats] command under the hood) shows whether this server replayed
   work or recovered from a torn/corrupt log. *)
let mirror_journal_stats t =
  match t.journal with
  | None -> ()
  | Some j ->
      let s = Journal.stats j in
      Scheduler.with_registry t.sched (fun m ->
          let set name v =
            Metrics.set (Metrics.gauge m name) (float_of_int v)
          in
          set "journal.admitted" s.Journal.admitted;
          set "journal.finished" s.Journal.finished;
          set "journal.replayed" s.Journal.replayed;
          set "journal.recovered_torn" s.Journal.recovered_torn;
          set "journal.recovered_corrupt" s.Journal.recovered_corrupt)

let begin_drain t =
  if t.drain_started = None then begin
    t.drain_started <- Some (Unix.gettimeofday ());
    Scheduler.set_draining t.sched
  end

let close_conn t conn =
  Hashtbl.remove t.conns conn.fd;
  Metrics.set t.lm.g_conns (float_of_int (Hashtbl.length t.conns));
  try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ()

(* All replies are buffered: the loop never blocks on a peer's receive
   window. The flush pass pushes [out] whenever the socket will take
   bytes and disconnects readers that fall [outbuf_max_bytes] behind. *)
let enqueue conn ?seq reply =
  Evloop.Outbuf.add conn.out (Protocol.render_reply ?seq reply ^ "\n")

let enqueue_payload conn ?seq reply body =
  Evloop.Outbuf.add conn.out (Protocol.render_reply ?seq reply ^ "\n");
  Evloop.Outbuf.add conn.out body;
  Evloop.Outbuf.add conn.out "end\n"

let handle_command t conn ~digest ~seq = function
  | Protocol.Ping -> enqueue conn ?seq Protocol.Pong
  | Protocol.Quit -> conn.closing <- true
  | Protocol.Drain ->
      begin_drain t;
      enqueue conn ?seq Protocol.Draining_reply
  | Protocol.Stats ->
      mirror_store_stats t;
      mirror_journal_stats t;
      let body = Scheduler.export_metrics t.sched in
      enqueue_payload conn ?seq
        (Protocol.Stats_payload { bytes = String.length body })
        body
  | Protocol.Submit { priority; request } -> (
      match digest request with
      | Result.Error msg ->
          enqueue conn ?seq (Protocol.Rejected (Protocol.Bad_request msg))
      | Ok dg -> (
          match
            Scheduler.submit t.sched ~client:conn.client ~priority ~digest:dg
              request
          with
          | Scheduler.Accepted info ->
              (* Write-ahead: the admit record is durable (fsynced)
                 before the ack leaves this process, so an acknowledged
                 job survives any later crash. *)
              (match t.journal with
              | Some j ->
                  Journal.admit j
                    {
                      Journal.id = info.id;
                      client = conn.client;
                      priority;
                      digest = dg;
                      request;
                    }
              | None -> ());
              enqueue conn ?seq
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = false })
          | Scheduler.Coalesced info ->
              enqueue conn ?seq
                (Protocol.Queued_reply
                   { id = info.id; digest = dg; coalesced = true })
          | Scheduler.Rejected reject ->
              enqueue conn ?seq (Protocol.Rejected reject)))
  | Protocol.Status id -> (
      match Scheduler.find t.sched id with
      | None -> enqueue conn ?seq (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> enqueue conn ?seq (status_reply info))
  | Protocol.Wait id -> (
      match Scheduler.find t.sched id with
      | None -> enqueue conn ?seq (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done _ | Scheduler.Failed _ ->
              enqueue conn ?seq (status_reply info)
          | Scheduler.Queued | Scheduler.Running ->
              (* Per-connection in-flight cap: a pipelined client
                 parking unbounded waits would grow [waits] (and the
                 eventual answer burst) without limit. Past the cap the
                 wait is refused with the usual backoff hint. *)
              if conn.n_waits >= t.cfg.conn_inflight_max then
                enqueue conn ?seq
                  (Protocol.Rejected
                     (Protocol.Overloaded
                        {
                          queue_depth = conn.n_waits;
                          limit = t.cfg.conn_inflight_max;
                          retry_after_ms = Scheduler.retry_after_ms t.sched;
                        }))
              else begin
                conn.waits <- (id, seq) :: conn.waits;
                conn.n_waits <- conn.n_waits + 1
              end))
  | Protocol.Result id -> (
      match Scheduler.find t.sched id with
      | None -> enqueue conn ?seq (Protocol.Rejected (Protocol.Unknown_job id))
      | Some info -> (
          match info.state with
          | Scheduler.Done payload ->
              enqueue_payload conn ?seq
                (Protocol.Payload { id; bytes = String.length payload })
                payload
          | Scheduler.Failed { message; _ } ->
              let reject =
                if info.timed_out then
                  Protocol.Deadline
                    {
                      id;
                      deadline_ms =
                        int_of_float
                          (1000.0 *. Option.value ~default:0.0 t.cfg.deadline_s);
                    }
                else Protocol.Job_failed { id; message }
              in
              enqueue conn ?seq (Protocol.Rejected reject)
          | Scheduler.Queued | Scheduler.Running ->
              enqueue conn ?seq (Protocol.Rejected (Protocol.Not_done id))))

(* Split complete lines off the connection's accumulator and run them. *)
let handle_input t conn ~digest chunk =
  conn.acc <- conn.acc ^ chunk;
  let rec go () =
    if conn.closing then ()
    else
      match String.index_opt conn.acc '\n' with
      | None ->
          if String.length conn.acc > line_max then begin
            enqueue conn
              (Protocol.Rejected
                 (Protocol.Bad_request "command line too long"));
            conn.closing <- true
          end
      | Some i ->
          let line = String.sub conn.acc 0 i in
          conn.acc <-
            String.sub conn.acc (i + 1) (String.length conn.acc - i - 1);
          (match Protocol.parse_command line with
          | Ok (cmd, seq) -> handle_command t conn ~digest ~seq cmd
          | Result.Error reason ->
              enqueue conn
                (Protocol.Rejected
                   (Protocol.Bad_request
                      (Printf.sprintf "%s (line %S)" reason line))));
          go ()
  in
  go ()

let answer_parked_waits t =
  Hashtbl.iter
    (fun _ conn ->
      match conn.waits with
      | [] -> ()
      | waits ->
          let still_pending =
            List.filter
              (fun (id, seq) ->
                match Scheduler.find t.sched id with
                | None ->
                    enqueue conn ?seq
                      (Protocol.Rejected (Protocol.Unknown_job id));
                    false
                | Some info -> (
                    match info.state with
                    | Scheduler.Done _ | Scheduler.Failed _ ->
                        enqueue conn ?seq (status_reply info);
                        false
                    | Scheduler.Queued | Scheduler.Running -> true))
              (List.rev waits)
          in
          conn.waits <- List.rev still_pending;
          conn.n_waits <- List.length still_pending)
    t.conns

(* Accept everything pending — the listen fd is level-triggered but one
   readiness report can cover a burst of connects. *)
let accept_conns t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let client = Printf.sprintf "c%d" t.next_client in
        t.next_client <- t.next_client + 1;
        let conn =
          {
            fd;
            client;
            acc = "";
            out = Evloop.Outbuf.create ();
            waits = [];
            n_waits = 0;
            closing = false;
          }
        in
        Hashtbl.replace t.conns fd conn;
        Metrics.set t.lm.g_conns (float_of_int (Hashtbl.length t.conns));
        enqueue conn
          (Protocol.Ready
             {
               version = Protocol.version;
               workers = Scheduler.workers t.sched;
               queue_max = Scheduler.queue_max t.sched;
             });
        go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

(* Nothing owed to any client: no parked waits, no unflushed output. *)
let quiescent t =
  Hashtbl.fold
    (fun _ c acc -> acc && c.waits = [] && Evloop.Outbuf.is_empty c.out)
    t.conns true

(* Drain watchdog: [true] once the server should exit. Grace lets a
   client fetch the result of a job that finished during the drain; the
   deadline bounds everything. *)
let drained t =
  match t.drain_started with
  | None -> false
  | Some started ->
      let now = Unix.gettimeofday () in
      if now -. started > t.cfg.drain_deadline_s then true
      else if Scheduler.idle t.sched && quiescent t then begin
        (match t.idle_since with None -> t.idle_since <- Some now | Some _ -> ());
        Hashtbl.length t.conns = 0
        || now -. Option.get t.idle_since > t.cfg.drain_grace_s
      end
      else begin
        t.idle_since <- None;
        false
      end

let stop_requested = Atomic.make false

(* OCaml 5 may run a signal handler on any domain; setting the flag is
   not enough when the loop domain is parked in poll. The handler also
   pokes the wake pipe, so a SIGTERM interrupts even an idle 60s wait. *)
let install_signal_handlers ~wake =
  let request _ =
    Atomic.set stop_requested true;
    poke wake
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle request)
  with Invalid_argument _ -> ()

(* The poll timeout is deadline-driven, not a fixed tick: idle servers
   park for up to [idle_backstop_ms] (completions, connects and signals
   all interrupt via fd readiness), draining servers wake exactly when
   the grace or deadline clock next expires. *)
let idle_backstop_ms = 60_000

let loop_timeout_ms t =
  match t.drain_started with
  | None -> idle_backstop_ms
  | Some started ->
      let now = Unix.gettimeofday () in
      let until_deadline = started +. t.cfg.drain_deadline_s -. now in
      let until_grace =
        match t.idle_since with
        | Some i -> Float.min (i +. t.cfg.drain_grace_s -. now) until_deadline
        | None -> until_deadline
      in
      max 1 (int_of_float (Float.ceil (until_grace *. 1000.0)))

let interests t =
  { Evloop.fd = t.listen_fd; read = true; write = false }
  :: { Evloop.fd = t.wake_r; read = true; write = false }
  :: Hashtbl.fold
       (fun fd c acc ->
         {
           Evloop.fd;
           read = not c.closing;
           write = not (Evloop.Outbuf.is_empty c.out);
         }
         :: acc)
       t.conns []

let read_conn t conn ~digest buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t conn
  | n -> handle_input t conn ~digest (Bytes.sub_string buf 0 n)
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn

(* Push buffered output on every connection that has any; reap peers
   that closed, finished [quit]s, and readers too slow to keep up.
   Snapshot first — [close_conn] mutates the table. *)
let flush_conns t =
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun c ->
      if Evloop.Outbuf.length c.out > t.cfg.outbuf_max_bytes then begin
        Metrics.incr t.lm.c_slow_reader_closes;
        close_conn t c
      end
      else if not (Evloop.Outbuf.is_empty c.out) then begin
        match Evloop.Outbuf.flush c.out c.fd with
        | `Closed -> close_conn t c
        | `Partial -> Metrics.incr t.lm.c_partial_writes
        | `All -> if c.closing then close_conn t c
      end
      else if c.closing then close_conn t c)
    conns

let ms_bin dt = Scheduler.latency_bin_of_ms (int_of_float (dt *. 1000.0))

let serve_loop t ~digest =
  let buf = Bytes.create 65536 in
  let rec loop () =
    if Atomic.get stop_requested then begin_drain t;
    if drained t then ()
    else begin
      let t0 = Unix.gettimeofday () in
      let events = Evloop.wait (interests t) ~timeout_ms:(loop_timeout_ms t) in
      let t1 = Unix.gettimeofday () in
      Metrics.observe t.lm.h_wait ~bin:(ms_bin (t1 -. t0)) ~weight:1.0;
      List.iter
        (fun (ev : Evloop.event) ->
          if ev.fd = t.listen_fd then accept_conns t
          else if ev.fd = t.wake_r then begin
            drain_wake_pipe t;
            Metrics.incr t.lm.c_wakeups
          end
          else
            match Hashtbl.find_opt t.conns ev.fd with
            | None -> ()
            | Some conn ->
                if ev.readable && not conn.closing then
                  read_conn t conn ~digest buf)
        events;
      answer_parked_waits t;
      flush_conns t;
      Metrics.observe t.lm.h_iter
        ~bin:(ms_bin (Unix.gettimeofday () -. t1))
        ~weight:1.0;
      loop ()
    end
  in
  loop ()

(* A drain that hit its deadline can exit with clients still parked on
   waits for jobs that never finished. They are answered [Draining] —
   a typed "retry elsewhere/later", not a silent hang until TCP notices
   the close. *)
let answer_parked_with_draining t =
  Hashtbl.iter
    (fun _ conn ->
      List.iter
        (fun (_, seq) ->
          enqueue conn ?seq (Protocol.Rejected Protocol.Draining))
        (List.rev conn.waits);
      conn.waits <- [];
      conn.n_waits <- 0)
    t.conns

(* Best-effort exit flush: bounded, so a wedged peer cannot hold the
   shutdown hostage. *)
let final_flush t =
  let deadline = Unix.gettimeofday () +. 1.0 in
  Hashtbl.iter
    (fun _ conn ->
      let rec go () =
        if Unix.gettimeofday () < deadline then
          match Evloop.Outbuf.flush conn.out conn.fd with
          | `All | `Closed -> ()
          | `Partial ->
              ignore
                (Evloop.wait_fd conn.fd ~read:false ~write:true ~timeout_ms:50);
              go ()
      in
      go ())
    t.conns

let run ?(digest = request_digest) ?compute:(compute_fn = compute) cfg =
  match acquire_start_lock cfg.socket with
  | Result.Error _ as e -> e
  | Ok lock_fd -> (
      let release_lock () =
        try Unix.close lock_fd with Unix.Unix_error (_, _, _) -> ()
      in
      match bind_socket cfg.socket with
      | Result.Error _ as e ->
          release_lock ();
          e
      | Ok listen_fd ->
          Unix.set_nonblock listen_fd;
          Atomic.set stop_requested false;
          let journal, replay, next_id =
            match cfg.journal with
            | None -> (None, [], 1)
            | Some path -> (
                match Journal.open_journal ~path () with
                | Ok (j, recovery) ->
                    (match recovery.Journal.corrupt with
                    | Some err ->
                        Printf.eprintf "mcd-dvfs: %s\n%!" (Error.to_string err)
                    | None -> ());
                    (Some j, recovery.Journal.replay, recovery.Journal.next_id)
                | Result.Error err ->
                    (* journal-less serving beats not serving: replay
                       protection is lost, answers stay correct *)
                    Printf.eprintf "mcd-dvfs: %s\n%!" (Error.to_string err);
                    (None, [], 1))
          in
          let wake_r, wake_w = Unix.pipe () in
          Unix.set_nonblock wake_w;
          Unix.set_nonblock wake_r;
          install_signal_handlers ~wake:wake_w;
          let compute_wrapped req =
            if cfg.compute_delay_s > 0.0 then Unix.sleepf cfg.compute_delay_s;
            compute_fn req
          in
          (* on_complete runs in a worker (or watchdog) domain before the
             self-pipe poke; Journal.append serializes under its own
             mutex. The scheduler ref breaks the create-order knot: the
             callback needs the scheduler the call is constructing. *)
          let sched_cell = ref None in
          let on_complete id =
            (match (journal, !sched_cell) with
            | Some j, Some sched -> (
                match Scheduler.find sched id with
                | Some { Scheduler.state = Scheduler.Done _; _ } ->
                    Journal.mark_done j ~id
                | Some { Scheduler.state = Scheduler.Failed { message; _ }; _ }
                  ->
                    Journal.mark_failed j ~id ~msg:message
                | Some _ | None -> ())
            | _ -> ());
            poke wake_w
          in
          let sched =
            Scheduler.create ~workers:cfg.workers ~queue_max:cfg.queue_max
              ~client_max:cfg.client_max ?deadline_s:cfg.deadline_s
              ~retry_after_cap_ms:cfg.retry_after_cap_ms ~on_complete
              ~compute:compute_wrapped ()
          in
          sched_cell := Some sched;
          ignore (Scheduler.restore sched ~next_id replay);
          let lm =
            Scheduler.with_registry sched (fun m ->
                {
                  h_wait =
                    Metrics.histogram m "serve.loop.wait_ms"
                      ~bins:Scheduler.latency_bins;
                  h_iter =
                    Metrics.histogram m "serve.loop.iter_ms"
                      ~bins:Scheduler.latency_bins;
                  c_wakeups = Metrics.counter m "serve.loop.wakeups";
                  c_partial_writes =
                    Metrics.counter m "serve.loop.partial_writes";
                  c_slow_reader_closes =
                    Metrics.counter m "serve.loop.slow_reader_closes";
                  g_conns = Metrics.gauge m "serve.loop.connections";
                })
          in
          let t =
            {
              cfg;
              listen_fd;
              wake_r;
              wake_w;
              sched;
              journal;
              conns = Hashtbl.create 16;
              lm;
              next_client = 1;
              drain_started = None;
              idle_since = None;
            }
          in
          serve_loop t ~digest;
          answer_parked_with_draining t;
          final_flush t;
          Hashtbl.iter
            (fun _ conn -> try Unix.close conn.fd with _ -> ())
            t.conns;
          (try Unix.close listen_fd with _ -> ());
          (try Sys.remove cfg.socket with Sys_error _ -> ());
          Scheduler.shutdown sched;
          (match journal with Some j -> Journal.close j | None -> ());
          (try Unix.close wake_r with _ -> ());
          (try Unix.close wake_w with _ -> ());
          (match cfg.trace_dir with
          | None -> ()
          | Some dir ->
              mirror_store_stats t;
              mirror_journal_stats t;
              ignore (Mcd_obs.Export.write_dir ~dir (Scheduler.sink sched)));
          release_lock ();
          Ok ())
