module Metrics = Mcd_power.Metrics
module Freq = Mcd_domains.Freq
module Domain = Mcd_domains.Domain
module Sink = Mcd_obs.Sink
module Series = Mcd_obs.Series

type violation = { check : string; detail : string }

let render vs =
  String.concat "\n"
    (List.map (fun v -> Printf.sprintf "%s: %s" v.check v.detail) vs)

let v check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

(* Generous bound: no configuration in the repo retires more than the
   paper core's issue width per front-end cycle. *)
let ipc_ceiling = 8.0

let run_sane ~label (r : Metrics.run) =
  let out = ref [] in
  let fail check fmt = Printf.ksprintf (fun d -> out := v check "%s: %s" label d :: !out) fmt in
  if r.runtime_ps <= 0 then fail "sane-runtime" "runtime_ps %d not positive" r.runtime_ps;
  if (not (Float.is_finite r.energy_pj)) || r.energy_pj <= 0.0 then
    fail "sane-energy" "energy_pj %g not positive and finite" r.energy_pj;
  if r.instructions <= 0 then
    fail "sane-instructions" "instructions %d not positive" r.instructions;
  if r.cycles_front <= 0 then
    fail "sane-cycles" "cycles_front %d not positive" r.cycles_front;
  if Array.length r.per_domain_pj <> Domain.count + 1 then
    fail "sane-domains" "per_domain_pj has %d entries, want %d"
      (Array.length r.per_domain_pj) (Domain.count + 1)
  else begin
    Array.iteri
      (fun i e ->
        if (not (Float.is_finite e)) || e < 0.0 then
          fail "sane-domain-energy" "per_domain_pj.(%d) = %g" i e)
      r.per_domain_pj;
    let sum = Array.fold_left ( +. ) 0.0 r.per_domain_pj in
    let tol = 1e-6 *. Float.max 1.0 (Float.abs r.energy_pj) in
    if Float.abs (sum -. r.energy_pj) > tol then
      fail "sane-energy-split" "per-domain sum %.6g <> total %.6g" sum
        r.energy_pj
  end;
  let ipc = Metrics.ipc r in
  if (not (Float.is_finite ipc)) || ipc <= 0.0 || ipc > ipc_ceiling then
    fail "sane-ipc" "ipc %g outside (0, %g]" ipc ipc_ceiling;
  if r.sync_penalties > r.sync_crossings then
    fail "sane-sync" "penalties %d exceed crossings %d" r.sync_penalties
      r.sync_crossings;
  List.rev !out

let degradation_bounded ~label ~slowdown_pct ~epsilon_pct ~baseline r =
  let deg = Metrics.perf_degradation_pct ~baseline r in
  let sav = Metrics.energy_savings_pct ~baseline r in
  if sav > 0.0 && deg > slowdown_pct +. epsilon_pct then
    [
      v "degradation"
        "%s: saves %.2f%% energy but degrades %.2f%% (target %.2f%% + eps %.2f%%)"
        label sav deg slowdown_pct epsilon_pct;
    ]
  else []

let drift_bounded ~label ~bound_pp ~baseline ~exact ~sampled =
  let axes =
    [
      ("degradation", Metrics.perf_degradation_pct);
      ("savings", Metrics.energy_savings_pct);
      ("ed-improvement", Metrics.ed_improvement_pct);
    ]
  in
  List.filter_map
    (fun (axis, f) ->
      let e = f ~baseline exact and s = f ~baseline sampled in
      let drift = Float.abs (e -. s) in
      if drift > bound_pp then
        Some
          (v "drift" "%s: %s drifts %.2fpp (exact %.2f vs sampled %.2f, bound %.2fpp)"
             label axis drift e s bound_pp)
      else None)
    axes

let plan_floor_mhz (plan : Mcd_core.Plan.t) =
  let floor = Array.make Domain.count Freq.fmax_mhz in
  let absorb (setting : Mcd_domains.Reconfig.setting) =
    Array.iteri
      (fun i mhz -> if i < Domain.count && mhz < floor.(i) then floor.(i) <- mhz)
      setting
  in
  Hashtbl.iter (fun _ s -> absorb s) plan.node_settings;
  Hashtbl.iter (fun _ s -> absorb s) plan.unit_settings;
  floor

(* Slew endpoints land on integer MHz but rows store floats; a small
   slack keeps rounding out of the verdict. *)
let floor_slack_mhz = 2.0

let floor_respected ~label ~floor_mhz ~ipc_threshold sink =
  let series = Sink.series sink in
  let counts = Array.make (Array.length floor_mhz) 0 in
  let first = Array.make (Array.length floor_mhz) (-1) in
  Series.iter
    (fun (row : Series.row) ->
      if row.ipc > ipc_threshold then
        Array.iteri
          (fun i f ->
            if i < Array.length row.mhz
               && row.mhz.(i) < float_of_int f -. floor_slack_mhz
            then begin
              if counts.(i) = 0 then first.(i) <- row.t_ps;
              counts.(i) <- counts.(i) + 1
            end)
          floor_mhz)
    series;
  let out = ref [] in
  Array.iteri
    (fun i n ->
      if n > 0 then
        out :=
          v "floor"
            "%s: %s below plan floor %d MHz in %d interval(s) with ipc > %.2f (first at t=%d ps)"
            label
            (Domain.name (Domain.of_index i))
            floor_mhz.(i) n ipc_threshold first.(i)
          :: !out)
    counts;
  List.rev !out

let max_reported_grid = 3

let decisions_on_grid ~label sink =
  let bad = ref [] in
  let nbad = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Decision { t_ps; source; setting = Some s; _ } ->
          let ok =
            Array.length s = Domain.count && Array.for_all Freq.is_step s
          in
          if not ok then begin
            incr nbad;
            if !nbad <= max_reported_grid then
              bad :=
                v "decision-grid"
                  "%s: %s decision at t=%d ps targets off-grid setting [%s]"
                  label source t_ps
                  (String.concat ";" (Array.to_list (Array.map string_of_int s)))
                :: !bad
          end
      | _ -> ())
    (Sink.events sink);
  let out = List.rev !bad in
  if !nbad > max_reported_grid then
    out
    @ [
        v "decision-grid" "%s: %d further off-grid decision(s) suppressed" label
          (!nbad - max_reported_grid);
      ]
  else out
