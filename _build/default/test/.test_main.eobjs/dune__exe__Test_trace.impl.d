test/test_trace.ml: Alcotest Array Hashtbl List Mcd_cpu Mcd_isa Mcd_profiling Mcd_trace
