(** Combinators for authoring workload programs.

    A builder context hands out unique static ids for blocks, loops and
    call sites so workload definitions never manage ids by hand:

    {[
      let program =
        Build.program ~name:"example" @@ fun b ->
        Build.func b "kernel"
          [ Build.loop b (Scaled { base = 0; per_scale = 10 })
              [ Build.straight b ~length:200 ~frac_load:0.3 () ] ];
        Build.func b "main" [ Build.call b "kernel" ];
        "main"
    ]} *)

type ctx

val program : name:string -> (ctx -> string) -> Program.t
(** Run a definition body; the returned string names the main function.
    The resulting program is validated before being returned. *)

val func : ctx -> string -> Program.stmt list -> unit
(** Define a function. Definition order is irrelevant; callees may be
    defined after their call sites. *)

val straight :
  ctx ->
  length:int ->
  ?frac_int_mult:float ->
  ?frac_fp_alu:float ->
  ?frac_fp_mult:float ->
  ?frac_load:float ->
  ?frac_store:float ->
  ?frac_branch:float ->
  ?mem:Program.mem_pattern ->
  ?branch:Program.branch_pattern ->
  ?dep_chain:float ->
  unit ->
  Program.stmt
(** A straight-line block. Unspecified fractions default to 0 (the
    remainder of the mix is [Int_alu]); memory defaults to streaming
    through a 256 KB region; branches default to a 90%-taken bias;
    [dep_chain] defaults to 3.0. *)

val loop : ctx -> Program.trips -> Program.stmt list -> Program.stmt

val call : ctx -> ?arg:int -> string -> Program.stmt
(** [arg] (default 0) is passed to the callee, where [Arg_scaled] loop
    trip counts may consult it. *)

val choose :
  ctx ->
  prob:(Program.input -> float) ->
  Program.stmt list ->
  Program.stmt list ->
  Program.stmt
