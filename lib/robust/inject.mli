(** Deterministic fault injection for the profile→edit→run pipeline.

    Each fault is a named, enumerable variant, and every stochastic
    choice (which byte to flip, which field to mutate, which domain to
    pin) draws from an {!Mcd_util.Rng} stream, so a campaign run with a
    given seed is bit-reproducible.

    Faults come in two layers. {e Artifact faults} corrupt a saved plan
    file on disk — what happens when a shipped profile is truncated in
    transit, bit-rotted, or simply stale. {e Runtime faults} corrupt
    the machine's reconfiguration behaviour — a domain whose frequency
    is stuck, register writes that are silently lost, a voltage ramp
    that never completes. *)

type file_fault =
  | Truncate  (** drop the tail of the file *)
  | Bit_flip  (** flip one random bit somewhere in the file *)
  | Mutate_frequency
      (** rewrite one frequency field of a node/unit setting to a
          corrupt value (out of range or off the legal grid) *)
  | Stale_fingerprint
      (** replace the tree fingerprint, modelling a plan trained on an
          older build of the program *)
  | Drop_lines  (** delete random interior lines (lost trace events) *)

type runtime_fault =
  | Stuck_domain
      (** one domain is pinned at a random legal frequency and ignores
          every reconfiguration write *)
  | Lost_writes
      (** each reconfiguration-register write is silently dropped with
          probability 1/2 *)
  | Frozen_slew
      (** one domain accepts targets but its ramp never moves *)

type fault = File of file_fault | Runtime of runtime_fault

val all : fault list
(** Every fault class, in a fixed order. *)

val name : fault -> string
val of_name : string -> fault option
val names : string list

val corrupt_file : file_fault -> rng:Mcd_util.Rng.t -> path:string -> unit
(** Corrupt the plan file at [path] in place. When a fault has no
    applicable site (e.g. [Mutate_frequency] on a plan with no
    settings), it degenerates to [Bit_flip] so the file is always
    actually corrupted. *)

val dvfs_faults :
  runtime_fault -> rng:Mcd_util.Rng.t -> Mcd_domains.Dvfs.fault list
(** The hardware faults to pass to {!Mcd_cpu.Pipeline.run} for
    [Stuck_domain] and [Frozen_slew]; empty for [Lost_writes]. *)

val harness :
  runtime_fault -> rng:Mcd_util.Rng.t -> Mcd_cpu.Controller.t ->
  Mcd_cpu.Controller.t
(** Interpose the fault between a policy and the reconfiguration
    register: under [Lost_writes], settings emitted by the policy are
    dropped with probability 1/2 before they reach the hardware. The
    other runtime faults live in the hardware model and leave the
    controller untouched. *)
