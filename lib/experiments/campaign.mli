(** Adversarial property campaigns over generated workloads.

    Sweeps a seeded distribution of {!Mcd_gen.Spec} values across the
    policy zoo (over {!Runner.par_map}), evaluating every
    {!Mcd_gen.Assert} invariant plus the headline race: does
    profile-driven DVFS lose to the reactive attack/decay family
    ({!Mcd_control.Policies.adversaries}) on energy x delay? Every find
    is a {e hit} carrying its replayable spec; the first hit of each
    distinct class is then minimized by qcheck shrinking into the
    smallest spec that still reproduces it. Simulation is deterministic
    per spec, so replaying any emitted spec reproduces its find. *)

type params = {
  count : int;  (** specs to generate and evaluate *)
  seed : int;  (** campaign master seed (spec distribution + shrinking) *)
  slowdown_pct : float;  (** profile-driven target the race runs at *)
  epsilon_pct : float;  (** slack on the degradation-bound assertion *)
  margin_pct : float;
      (** ED-improvement margin (pp) a rival must win by to count *)
  minimize : int;  (** max distinct find classes to minimize *)
  observe : bool;
      (** attach an {!Mcd_obs.Sink} to one profile run and one
          attack/decay run per spec for the floor and decision-grid
          assertions (two extra uncached simulations each) *)
  train_insts : int;  (** training window of drawn specs *)
  ref_insts : int;  (** reference window of drawn specs *)
}

val default_params : params
(** 100 specs, seed 7, the paper's 7% slowdown target, 1pp epsilon,
    0.5pp margin, minimize up to 8 classes, observation on, 12k/30k
    windows. *)

(** What a spec was caught doing. *)
type kind =
  | Assertion of Mcd_gen.Assert.violation
  | Profile_loses of {
      rival : string;  (** policy label *)
      profile_ed_pct : float;
      rival_ed_pct : float;
    }

val kind_key : kind -> string
(** Stable class identifier ("assert:CHECK" / "loses:RIVAL") used to
    group hits and to decide whether a shrunk spec still reproduces. *)

val describe_kind : kind -> string

type hit = { spec : Mcd_gen.Spec.t; kind : kind }
(** A raw find; [spec] replays it. *)

type finding = {
  hit : hit;  (** the original find *)
  minimized : Mcd_gen.Spec.t;  (** smallest spec still reproducing *)
  shrink_steps : int;
  minimized_kind : kind;  (** the find as observed on [minimized] *)
}

type report = {
  params : params;
  total : int;  (** specs evaluated *)
  hits : hit list;  (** every raw find, sweep order *)
  findings : finding list;  (** one minimized finding per class, capped *)
  skipped_minimize : int;  (** find classes beyond the [minimize] cap *)
}

val evaluate : params:params -> Mcd_gen.Spec.t -> kind list
(** Run one spec through the full check battery. Registers the
    generated workload as a side effect. Deterministic. *)

val replay : ?params:params -> Mcd_gen.Spec.t -> kind list
(** {!evaluate} at (by default) {!default_params} — the entry point for
    reproducing a stored counterexample. *)

val run : ?params:params -> unit -> report

val render : report -> string

val to_json : report -> Mcd_obs.Json.t
(** Schema ["mcd-dvfs-campaign/1"]; every hit and finding embeds its
    spec as replayable ["mcd-gen-spec/1"] JSON. *)

val spec_of_replay_json : Mcd_obs.Json.t -> (Mcd_gen.Spec.t, string) result
(** Accepts a bare spec object, any object with a ["spec"] member (a
    serialized hit or finding), an object with a ["minimized"] member,
    or a whole campaign report (first finding's minimized spec). *)
