test/test_mcd.ml: Alcotest Array Float List Mcd_domains Mcd_util QCheck QCheck_alcotest
