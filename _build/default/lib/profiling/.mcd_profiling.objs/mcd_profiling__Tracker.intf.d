lib/profiling/tracker.mli: Call_tree Mcd_isa
