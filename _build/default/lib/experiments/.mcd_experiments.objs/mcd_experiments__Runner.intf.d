lib/experiments/runner.mli: Mcd_control Mcd_core Mcd_power Mcd_profiling Mcd_workloads
