lib/isa/inst.ml: Array Format String
