lib/profiling/call_tree.ml: Buffer Context Format Hashtbl List Mcd_isa Mcd_util Option Printf String
