lib/power/metrics.ml: Format Mcd_util
