lib/control/attack_decay.mli: Mcd_cpu
