module Domain = Mcd_domains.Domain
module Dvfs = Mcd_domains.Dvfs
module Freq = Mcd_domains.Freq

type activity =
  | Fetch
  | Decode_rename
  | Rob_write
  | Retire
  | Iq_write_int
  | Iq_write_fp
  | Issue_int
  | Issue_fp
  | Int_alu_op
  | Int_mult_op
  | Fp_alu_op
  | Fp_mult_op
  | Regfile_int
  | Regfile_fp
  | L1i_access
  | L1d_access
  | L2_access
  | Lsq_op
  | Main_memory_access

let base_pj = function
  | Fetch -> 0.35
  | Decode_rename -> 0.50
  | Rob_write -> 0.30
  | Retire -> 0.25
  | Iq_write_int -> 0.20
  | Iq_write_fp -> 0.20
  | Issue_int -> 0.25
  | Issue_fp -> 0.25
  | Int_alu_op -> 0.45
  | Int_mult_op -> 1.30
  | Fp_alu_op -> 0.95
  | Fp_mult_op -> 1.90
  | Regfile_int -> 0.18
  | Regfile_fp -> 0.24
  | L1i_access -> 0.60
  | L1d_access -> 0.80
  | L2_access -> 2.40
  | Lsq_op -> 0.35
  | Main_memory_access -> 12.0

let domain_of = function
  | Fetch | Decode_rename | Rob_write | Retire | L1i_access ->
      Some Domain.Front_end
  | Iq_write_int | Issue_int | Int_alu_op | Int_mult_op | Regfile_int ->
      Some Domain.Integer
  | Iq_write_fp | Issue_fp | Fp_alu_op | Fp_mult_op | Regfile_fp ->
      Some Domain.Floating
  | L1d_access | L2_access | Lsq_op -> Some Domain.Memory
  | Main_memory_access -> None

let clock_tree_pj_per_cycle = function
  | Domain.Front_end -> 0.55
  | Domain.Integer -> 0.45
  | Domain.Floating -> 0.35
  | Domain.Memory -> 0.50

let leakage_pj_per_ns = function
  | Domain.Front_end -> 0.06
  | Domain.Integer -> 0.05
  | Domain.Floating -> 0.04
  | Domain.Memory -> 0.05

module Accum = struct
  (* index 0..3: domains; index 4: external *)
  type t = { pj : float array }

  let external_index = Domain.count

  let create () = { pj = Array.make (Domain.count + 1) 0.0 }

  let charge t dvfs ~now activity =
    let base = base_pj activity in
    match domain_of activity with
    | None -> t.pj.(external_index) <- t.pj.(external_index) +. base
    | Some d ->
        let i = Domain.index d in
        t.pj.(i) <- t.pj.(i) +. (base *. Dvfs.energy_scale dvfs d ~now)

  let charge_clock_tick t dvfs ~now domain =
    let i = Domain.index domain in
    let scale = Dvfs.energy_scale dvfs domain ~now in
    let fmhz = Dvfs.current_mhz dvfs domain ~now in
    let period_ns = 1_000.0 /. fmhz in
    let v_ratio = Freq.voltage_f fmhz /. Freq.vmax in
    let clock = clock_tree_pj_per_cycle domain *. scale in
    let leak = leakage_pj_per_ns domain *. period_ns *. v_ratio in
    t.pj.(i) <- t.pj.(i) +. clock +. leak

  let charge_raw t domain ~pj =
    assert (pj >= 0.0);
    match domain with
    | None -> t.pj.(external_index) <- t.pj.(external_index) +. pj
    | Some d ->
        let i = Domain.index d in
        t.pj.(i) <- t.pj.(i) +. pj

  let domain_pj t d = t.pj.(Domain.index d)
  let external_pj t = t.pj.(external_index)
  let total_pj t = Array.fold_left ( +. ) 0.0 t.pj
  let reset t = Array.fill t.pj 0 (Array.length t.pj) 0.0
end
