module Vec = Mcd_util.Vec
module Walker = Mcd_isa.Walker

type params = { min_insts : int; verify : int; tolerance : float }

let default_params = { min_insts = 4_000; verify = 1; tolerance = 0.05 }

let params_id p =
  Printf.sprintf "%d:%d:%h" p.min_insts p.verify p.tolerance

type snapshot = {
  now_ps : int;
  cycles_front : int;
  pj : float array;
  crossings : int;
  penalties : int;
  reconfigs : int;
  instr_points : int;
  instr_ps : int;
}

type measure = {
  m_insts : int;
  dps : int;
  dcycles : int;
  dpj : float array;
  dcrossings : int;
  dpenalties : int;
  dreconfigs : int;
  dinstr_points : int;
  dinstr_ps : int;
  exit_targets : int array;
}

(* The sampler keeps its own passive phase tree rather than reusing
   {!Mcd_profiling.Call_tree}: the tree here grows online during the
   run (Call_tree.build consumes a whole walk upfront), and mcd_cpu
   sits below mcd_profiling in the library stack. Construction mirrors
   Call_tree exactly — nodes keyed by (parent, kind), full loop+site
   context, recursive calls folded onto the ancestor frame and excluded
   from instance statistics — so the phases sampled here are the phases
   the profiler counts. *)
type kind = Func of { fid : int; site : int } | Loop of { loop_id : int }

type node = {
  id : int;
  kind : kind;
  mutable children : (kind * int) list;
  mutable completed : int; (* exact instances finished *)
  mutable last_insts : int; (* size of the most recent exact instance *)
}

type fstate =
  | Tracked
  | Folded (* recursion: reuses an ancestor node, no statistics *)
  | Skipped (* pushed by a [Skip]; popped silently at the exit marker *)
  | Recording

(* Iteration bookkeeping of a live loop frame, grown lazily at its
   first back edge. [last_boundary] is [t.insts] at the most recent
   iteration boundary (decided back edge or end of a bounded skip). *)
type iter = { mutable last_boundary : int }

type frame = {
  f_node : int;
  f_entry : int;
  mutable f_state : fstate;
  mutable f_iter : iter option;
}

(* Per-(node, frequency-vector) sampling state. [Measuring] accumulates
   exact recordings newest-first; the first recording promotes to
   [Stable] immediately (optimistic promotion — verification is
   deferred to the refresh below). A [Stable] measure remembers when it
   was recorded ([at], in stream instructions): machine behaviour
   drifts as caches and predictors warm, so a measure is only trusted
   while the run is less than [trust_factor] times its age — past that
   the next instance re-records instead (epoch-based refresh). A
   measure recorded in the cold start
   (small [at]) refreshes almost immediately; a steady-state one
   effectively never does, and each signature refreshes O(log window)
   times in total. Node-signature refreshes demote to
   [Measuring [old]]: the fresh recording must agree with the old
   measure to restore [Stable] (the newest wins), so an epoch shift
   larger than the tolerance triggers a full re-verification. *)
type stable = { sm : measure; at : int }
type sig_state = Measuring of measure list | Stable of stable | Unstable

(* What an open recording covers: a whole node instance (ends when its
   frame exits) or an iteration batch of [rframe] (ends at one of its
   later boundaries). *)
type rkind = Knode | Kiter

type t = {
  p : params;
  nodes : node Vec.t;
  mutable stack : frame list; (* root frame always at the bottom *)
  mutable insts : int; (* dynamic instructions seen, skipped included *)
  sigs : (string, sig_state) Hashtbl.t;
  mutable recording : rkind option;
  mutable rec_frame : frame option; (* physical identity of the owner *)
  mutable rec_key : string;
  mutable rec_entry : int;
  mutable rec_begin : snapshot option;
  mutable recorded_instances : int;
  mutable skipped_instances : int;
  mutable skipped_insts : int;
  mutable unstable_signatures : int;
}

let root_kind = Func { fid = -1; site = -1 }

let create p =
  let nodes = Vec.create () in
  Vec.push nodes
    { id = 0; kind = root_kind; children = []; completed = 0; last_insts = 0 };
  {
    p;
    nodes;
    stack = [ { f_node = 0; f_entry = 0; f_state = Tracked; f_iter = None } ];
    insts = 0;
    sigs = Hashtbl.create 64;
    recording = None;
    rec_frame = None;
    rec_key = "";
    rec_entry = 0;
    rec_begin = None;
    recorded_instances = 0;
    skipped_instances = 0;
    skipped_insts = 0;
    unstable_signatures = 0;
  }

type decision =
  | Proceed
  | Wait
  | Record
  | End_record
  | Skip of measure
  | Skip_iters of measure * int

(* Iteration measures are keyed by position inside the loop execution,
   quantised to [iter_quantum]-sized buckets (the last bucket covers
   the whole steady-state tail). Iteration cost is not
   position-invariant — a loop's first iterations re-fill the caches
   its phase siblings evicted — so a mid-loop measure must not
   extrapolate over the entry region. Bucketing keeps every
   extrapolation position-matched and bounds each skip at the next
   bucket edge, where the next bucket's own measure takes over.

   The quantum (batch minimum and bucket width) equals the node
   candidate threshold, so [min_insts] is the single granularity knob:
   every recorded span starts at a drained, empty-pipeline point and
   carries a fixed pipeline-refill cost that each extrapolation
   replays, so the span length bounds the systematic overestimate —
   [default_params] picks a span long enough to dilute it below the
   stability tolerance. *)
let bucket_cap = 4
let iter_quantum p = p.min_insts

(* Epoch-based trust: a measure recorded when the run was [at]
   instructions old is trusted until the run doubles, then re-recorded.
   The factor trades re-record duty (each signature refreshes O(log
   window) times) against tracking of slowly converging machine state
   — caches warming, and above all the voltage-slew limit cycle of a
   frequently reconfiguring policy, whose per-instruction cost can keep
   rising for a large fraction of the run (transitions take tens of
   microseconds against phases of a few). Doubling keeps at least one
   refresh inside the second half of any window; a factor of 4 was
   measurably too coarse there. *)
let trust_factor = 2

let node t id = Vec.get t.nodes id

let child_of t parent kind =
  let pn = node t parent in
  match List.assoc_opt kind pn.children with
  | Some id -> id
  | None ->
      let n =
        {
          id = Vec.length t.nodes;
          kind;
          children = [];
          completed = 0;
          last_insts = 0;
        }
      in
      Vec.push t.nodes n;
      pn.children <- pn.children @ [ (kind, n.id) ];
      n.id

let fid_on_stack t fid =
  List.exists
    (fun fr ->
      match (node t fr.f_node).kind with
      | Func { fid = f; _ } -> f = fid
      | Loop _ -> false)
    t.stack

let top t = match t.stack with fr :: _ -> fr | [] -> assert false

let push t ~node_id ~state =
  let fr =
    { f_node = node_id; f_entry = t.insts; f_state = state; f_iter = None }
  in
  t.stack <- fr :: t.stack;
  fr

let sig_key ?bucket node_id targets =
  let buf = Buffer.create 32 in
  (match bucket with
  | Some b ->
      Buffer.add_string buf "i:";
      Buffer.add_string buf (string_of_int b);
      Buffer.add_char buf ':'
  | None -> ());
  Buffer.add_string buf (string_of_int node_id);
  Array.iter
    (fun mhz ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int mhz))
    targets;
  Buffer.contents buf

let rec firstn n = function
  | x :: rest when n > 0 -> x :: firstn (n - 1) rest
  | _ :: _ | [] -> []

let per_inst_close p ~insts_a va ~insts_b vb =
  let a = va /. float_of_int (max 1 insts_a)
  and b = vb /. float_of_int (max 1 insts_b) in
  let scale = Float.max (Float.abs a) (Float.abs b) in
  scale = 0.0 || Float.abs (a -. b) /. scale <= p.tolerance

let total_pj m = Array.fold_left ( +. ) 0.0 m.dpj

let stable p = function
  | [] -> false
  | first :: rest ->
      List.for_all
        (fun m ->
          per_inst_close p ~insts_a:first.m_insts
            (float_of_int first.dps)
            ~insts_b:m.m_insts
            (float_of_int m.dps)
          && per_inst_close p ~insts_a:first.m_insts (total_pj first)
               ~insts_b:m.m_insts (total_pj m))
        rest

(* --- marker dispatch ------------------------------------------------ *)

let enter t ~kind ~folded ~drained ~measuring ~targets =
  if folded then begin
    (* reuse the innermost ancestor frame's node for the fold target *)
    let anc =
      List.find
        (fun fr ->
          match ((node t fr.f_node).kind, kind) with
          | Func { fid = f1; _ }, Func { fid = f2; _ } -> f1 = f2
          | (Func _ | Loop _), _ -> false)
        t.stack
    in
    ignore (push t ~node_id:anc.f_node ~state:Folded : frame);
    Proceed
  end
  else begin
    let node_id = child_of t (top t).f_node kind in
    let n = node t node_id in
    (* recording is allowed even before the measured window opens —
       warmup instances are free training — but skipping only happens
       inside the window, so warmup leaves the machine state exact.
       Candidacy waits for the second completed instance: the second
       execution then runs with no node recording open, which is when
       the stale (cold-start) iteration buckets learned during the
       first execution can refresh — node measures recorded from the
       third instance on are built over warm iteration measures. *)
    let candidate = n.completed >= 2 && n.last_insts >= t.p.min_insts in
    if not candidate then begin
      ignore (push t ~node_id ~state:Tracked : frame);
      Proceed
    end
    else begin
      let key = sig_key node_id (targets ()) in
      match Hashtbl.find_opt t.sigs key with
      | Some (Stable st) when measuring ->
          if t.insts >= trust_factor * st.at && t.recording = None then
            (* refresh due: re-record this instance and verify it
               against the old measure (demoting to [Measuring [old]]
               means one fresh recording completes the window) *)
            if not drained then Wait
            else begin
              Hashtbl.replace t.sigs key (Measuring [ st.sm ]);
              let fr = push t ~node_id ~state:Recording in
              t.recording <- Some Knode;
              t.rec_frame <- Some fr;
              t.rec_key <- key;
              t.rec_entry <- t.insts;
              t.rec_begin <- None;
              Record
            end
            (* stable instances skip even inside an open recording:
               snapshots include the extrapolation accumulators, so the
               enclosing measure still covers its full span *)
          else if not drained then Wait
          else begin
            ignore (push t ~node_id ~state:Skipped : frame);
            Skip st.sm
          end
      | Some (Stable _) ->
          ignore (push t ~node_id ~state:Tracked : frame);
          Proceed
      | Some Unstable ->
          ignore (push t ~node_id ~state:Tracked : frame);
          Proceed
      | (Some (Measuring _) | None) when t.recording <> None ->
          ignore (push t ~node_id ~state:Tracked : frame);
          Proceed
      | Some (Measuring _) | None ->
          if not drained then Wait
          else begin
            let fr = push t ~node_id ~state:Recording in
            t.recording <- Some Knode;
            t.rec_frame <- Some fr;
            t.rec_key <- key;
            t.rec_entry <- t.insts;
            t.rec_begin <- None;
            Record
          end
    end
  end

let exit_frame t ~drained =
  match t.stack with
  | [] | [ _ ] -> Proceed (* never pop the root *)
  | fr :: rest -> (
      match fr.f_state with
      | Folded | Skipped ->
          t.stack <- rest;
          Proceed
      | Tracked ->
          t.stack <- rest;
          let n = node t fr.f_node in
          n.completed <- n.completed + 1;
          n.last_insts <- t.insts - fr.f_entry;
          Proceed
      | Recording -> if drained then End_record else Wait)

let decide t marker ~drained ~measuring ~targets =
  match marker with
  | Walker.Enter_func { fid; site_id } ->
      let folded = fid_on_stack t fid in
      enter t
        ~kind:(Func { fid; site = Option.value site_id ~default:(-1) })
        ~folded ~drained ~measuring ~targets
  | Walker.Enter_loop { loop_id } ->
      enter t ~kind:(Loop { loop_id }) ~folded:false ~drained ~measuring
        ~targets
  | Walker.Exit_func _ | Walker.Exit_loop _ -> exit_frame t ~drained

let decide_backedge t ~loop_id ~taken ~drained ~measuring ~targets =
  match t.stack with
  | fr :: _
    when fr.f_state = Tracked
         && (match (node t fr.f_node).kind with
            | Loop { loop_id = l } -> l = loop_id
            | Func _ -> false) ->
      let n = node t fr.f_node in
      let it =
        match fr.f_iter with
        | Some it -> it
        | None ->
            let it = { last_boundary = fr.f_entry } in
            fr.f_iter <- Some it;
            it
      in
      (* this frame owns the open batch recording? (physical identity:
         recursion can put a same-node frame above the owner) *)
      let owner =
        t.recording = Some Kiter
        && match t.rec_frame with Some rf -> rf == fr | None -> false
      in
      (* the boundary is accounted only on a non-[Wait] answer: a
         waited back edge is re-presented and re-decided verbatim *)
      let account () = it.last_boundary <- t.insts in
      let abandon () =
        t.recording <- None;
        t.rec_frame <- None;
        t.rec_begin <- None
      in
      let iq = iter_quantum t.p in
      if not taken then
        (* final back edge: the loop ends, close or abandon a batch *)
        if owner then
          if drained && t.insts - t.rec_entry >= iq then begin
            account ();
            End_record
          end
          else begin
            abandon ();
            account ();
            Proceed
          end
        else begin
          account ();
          Proceed
        end
      else if owner then
        if t.insts - t.rec_entry < iq then begin
          account ();
          Proceed (* batch still filling *)
        end
        else if drained then begin
          account ();
          End_record
        end
        else Wait
      else begin
        (* engage iteration sampling only on loops already known to be
           substantial — a completed long instance, or this execution
           has itself grown past the candidate threshold — and whose
           iterations are small. A loop whose single iteration already
           exceeds the quantum (an outer driver loop calling several
           different kernels per trip) has heterogeneous interior; a
           batch-average measure would extrapolate badly over partial
           spans. Its inner loops and callees sample themselves at
           their own, homogeneous granularity instead. *)
        let pos = t.insts - fr.f_entry in
        let big =
          ((n.completed >= 1 && n.last_insts >= t.p.min_insts)
          || pos >= t.p.min_insts)
          && t.insts - it.last_boundary <= iq
        in
        if not big then begin
          account ();
          Proceed
        end
        else begin
          let bucket = min (pos / iq) (bucket_cap - 1) in
          let key = sig_key ~bucket fr.f_node (targets ()) in
          match Hashtbl.find_opt t.sigs key with
          | Some (Stable st) when measuring ->
              if t.insts >= trust_factor * st.at && t.recording = None then
                (* refresh due: re-record a batch in place of the skip *)
                if not drained then Wait
                else begin
                  Hashtbl.replace t.sigs key (Measuring []);
                  account ();
                  t.recording <- Some Kiter;
                  t.rec_frame <- Some fr;
                  t.rec_key <- key;
                  t.rec_entry <- t.insts;
                  t.rec_begin <- None;
                  Record
                end
              else if not drained then Wait
              else begin
                account ();
                (* bounded skip: stop at the next bucket edge, where
                   that bucket's own measure takes over (the tail
                   bucket runs to the end of the loop) — but never
                   past the measure's trust horizon ([trust_factor * st.at]), so
                   a single skip cannot outlive the measure serving
                   it: at the horizon the walker is back at a decision
                   point and the refresh above re-records *)
                let horizon = (trust_factor * st.at) - t.insts in
                let bound =
                  if bucket = bucket_cap - 1 then horizon
                  else min horizon (((bucket + 1) * iq) - pos)
                in
                Skip_iters (st.sm, bound)
              end
          | Some (Stable _) ->
              account ();
              Proceed
          | Some Unstable ->
              account ();
              Proceed
          | (Some (Measuring _) | None) when t.recording <> None ->
              account ();
              Proceed
          | Some (Measuring _) | None ->
              if not drained then Wait
              else begin
                account ();
                t.recording <- Some Kiter;
                t.rec_frame <- Some fr;
                t.rec_key <- key;
                t.rec_entry <- t.insts;
                t.rec_begin <- None;
                Record
              end
        end
      end
  | _ -> Proceed

(* A bounded iteration skip ends at an iteration boundary of the loop
   on top of the stack: realign its bookkeeping after the skipped
   instructions have been reported via {!note_skipped}. *)
let note_iter_boundary t =
  match t.stack with
  | { f_iter = Some it; _ } :: _ -> it.last_boundary <- t.insts
  | _ -> ()

let note_inst t = t.insts <- t.insts + 1

let note_skipped t ~insts =
  t.insts <- t.insts + insts;
  t.skipped_instances <- t.skipped_instances + 1;
  t.skipped_insts <- t.skipped_insts + insts

let begin_record t ~snapshot = t.rec_begin <- Some snapshot

(* Discard any open recording without saving a measure. Called at the
   warm-up boundary, where the pipeline resets its measured counters:
   a span straddling the reset would difference incompatible
   snapshots. The owning frame reverts to plain tracking. *)
let abort_record t =
  (match (t.recording, t.rec_frame) with
  | Some Knode, Some fr -> fr.f_state <- Tracked
  | (Some Kiter | None), _ | Some Knode, None -> ());
  t.recording <- None;
  t.rec_frame <- None;
  t.rec_begin <- None

(* Close the open recording: build the measure from the two snapshots
   and promote optimistically — a signature's first recording already
   serves skips. Verification is deferred to the epoch refresh: the
   refresh demotes to [Measuring [old]], and the fresh recording must
   agree with the old measure per the sliding window below before the
   signature is trusted again, so every promoted measure is verified
   against an independent instance within one epoch refresh. [single]
   recordings (iteration buckets) never carry a verification
   obligation: their chunks are short, position matched, and
   cross-checked by the node-level measures that subsume them. *)
let save_measure t ~single ~snapshot:(e : snapshot) ~targets =
  match t.rec_begin with
  | None -> () (* begin snapshot never arrived: discard *)
  | Some b ->
      t.rec_begin <- None;
      t.recorded_instances <- t.recorded_instances + 1;
      let m =
        {
          m_insts = t.insts - t.rec_entry;
          dps = e.now_ps - b.now_ps;
          dcycles = e.cycles_front - b.cycles_front;
          dpj = Array.map2 (fun a b -> a -. b) e.pj b.pj;
          dcrossings = e.crossings - b.crossings;
          dpenalties = e.penalties - b.penalties;
          dreconfigs = e.reconfigs - b.reconfigs;
          dinstr_points = e.instr_points - b.instr_points;
          dinstr_ps = e.instr_ps - b.instr_ps;
          exit_targets = targets;
        }
      in
      let prev =
        match Hashtbl.find_opt t.sigs t.rec_key with
        | Some (Measuring ms) -> ms
        | Some (Stable _ | Unstable) | None -> []
      in
      let ms = m :: prev in
      (* Sliding verification: agreement is demanded of the newest
         [1 + verify] recordings only, so a cold-cache first instance
         does not poison the signature — it ages out of the window as
         warmer recordings replace it. Only a signature that keeps
         disagreeing across [2 * (1 + verify)] recordings is declared
         unstable (then simulated exactly forever). *)
      let need = if single then 1 else 1 + t.p.verify in
      let state =
        if List.length ms < need then
          (* optimistic promotion: serve skips from the very first
             recording; the epoch refresh re-records within one
             doubling and the verification below then applies *)
          Stable { sm = m; at = t.insts }
        else if stable t.p (firstn need ms) then
          (* keep the newest recording: it ran with the warmest
             caches, closest to steady state *)
          Stable { sm = m; at = t.insts }
        else if List.length ms >= 2 * need then begin
          t.unstable_signatures <- t.unstable_signatures + 1;
          Unstable
        end
        else Measuring ms
      in
      Hashtbl.replace t.sigs t.rec_key state

let end_record t ~snapshot ~targets =
  match t.recording with
  | Some Knode -> (
      match t.stack with
      | { f_state = Recording; f_node; _ } :: rest ->
          t.stack <- rest;
          t.recording <- None;
          t.rec_frame <- None;
          let n = node t f_node in
          n.completed <- n.completed + 1;
          n.last_insts <- t.insts - t.rec_entry;
          save_measure t ~single:false ~snapshot ~targets
      | _ -> assert false (* the Recording frame is necessarily on top *))
  | Some Kiter ->
      t.recording <- None;
      t.rec_frame <- None;
      save_measure t ~single:true ~snapshot ~targets
  | None -> assert false (* end_record only follows an End_record *)

type report = {
  recorded_instances : int;
  skipped_instances : int;
  skipped_insts : int;
  unstable_signatures : int;
}

let report (t : t) =
  {
    recorded_instances = t.recorded_instances;
    skipped_instances = t.skipped_instances;
    skipped_insts = t.skipped_insts;
    unstable_signatures = t.unstable_signatures;
  }
