(** Validation primitives over plan ingredients.

    These check the raw values a plan is made of — frequencies,
    reconfiguration settings, histogram weights, slowdown tolerances —
    against the machine's invariants, and implement the repair half of
    the degradation policy: every recoverable violation is repaired
    (clamped to the legal {!Mcd_domains.Freq} grid, dropped, or reset)
    and reported as a diagnostic, never silently. {!Mcd_core.Plan_io}
    composes these into a whole-plan validation pass. *)

val frequency : where:string -> int -> int * Error.t option
(** [frequency ~where mhz] returns the legal operating point for [mhz]:
    [mhz] itself when it is already a step of the grid, otherwise the
    nearest legal step plus an {!Error.Illegal_frequency} diagnostic.
    Out-of-range values are additionally flagged as unrecoverable by
    {!frequency_fatal}. *)

val frequency_fatal : int -> bool
(** True when the value is outside [fmin, fmax] entirely — a corrupt
    field rather than a near-miss, which validation refuses to repair
    (snapping 0 or 999999 to the nearest bound would fabricate a
    setting the profile never chose). *)

val setting :
  where:string -> int array -> (int array * Error.t list, Error.t) result
(** Validate a reconfiguration setting: arity must equal
    {!Mcd_domains.Domain.count} ([Error] otherwise, unrecoverable) and
    every frequency must be in range ([Error] when {!frequency_fatal});
    in-range off-grid frequencies are snapped and reported. Returns the
    repaired setting and its diagnostics. *)

val weight :
  node:int -> domain:int -> bin:int -> float -> float * Error.t option
(** NaN and negative histogram weights are replaced with 0 (the bin is
    dropped) and reported. *)

val slowdown_pct : float -> float * Error.t option
(** NaN and negative tolerances are reset to 0 (most conservative:
    full speed everywhere) and reported. *)
