let all = Mediabench.all @ Spec.all

let by_name name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None -> raise Not_found

let names = List.map (fun w -> w.Workload.name) all

let of_kind k = List.filter (fun w -> w.Workload.kind = k) all
let media = of_kind Workload.Media
let spec_int = of_kind Workload.Spec_int
let spec_fp = of_kind Workload.Spec_fp
