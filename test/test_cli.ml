(* Documentation guard for the command-line surface: the top-level help
   must name every subcommand, and the exit-status table — the single
   authoritative copy — must document every code the tool can return
   (0 success, 1 campaign failure, 2 validation, 3 I/O, 4 overload). *)

(* Resolve the binary relative to the test executable, not the cwd, so
   the suite passes under `dune runtest` and when run by hand. *)
let cli_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) Filename.parent_dir_name)
    (Filename.concat "bin" "mcd_dvfs_cli.exe")

let run_help args =
  let cmd =
    Filename.quote_command cli_exe (args @ [ "--help=plain" ])
    ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s --help failed" (String.concat " " args));
  Buffer.contents buf

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let subcommands =
  [
    "suite"; "run"; "tree"; "plan"; "compare"; "trace"; "cache"; "robustness";
    "tournament"; "campaign"; "serve"; "submit"; "status"; "drain";
  ]

let test_help_names_every_subcommand () =
  let help = run_help [] in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("help mentions " ^ sub) true (contains help sub))
    subcommands

let test_exit_codes_documented_once () =
  let help = run_help [] in
  Alcotest.(check bool) "has EXIT STATUS section" true
    (contains help "EXIT STATUS");
  List.iter
    (fun (code, hint) ->
      Alcotest.(check bool)
        (Printf.sprintf "documents exit %d" code)
        true
        (contains help (string_of_int code))
        ;
      Alcotest.(check bool)
        (Printf.sprintf "exit %d names its meaning" code)
        true (contains help hint))
    [
      (0, "success");
      (1, "campaign");
      (2, "validation");
      (3, "I/O");
      (4, "overloaded");
    ];
  (* subcommands inherit the same table rather than redefining it: a
     subcommand's help shows the identical overload wording *)
  let sub_help = run_help [ "submit" ] in
  Alcotest.(check bool) "subcommand inherits the table" true
    (contains sub_help "overloaded")

let test_serve_help_documents_protocol_knobs () =
  let help = run_help [ "serve" ] in
  List.iter
    (fun flag ->
      Alcotest.(check bool) ("serve documents " ^ flag) true
        (contains help flag))
    [
      "--workers"; "--queue-max"; "--client-max"; "--socket";
      "--no-journal"; "--deadline-ms"; "--retry-after-cap-ms";
      "--conn-inflight-max"; "--outbuf-max-bytes";
    ]

let suite =
  [
    ("help names every subcommand", `Quick, test_help_names_every_subcommand);
    ("exit codes documented", `Quick, test_exit_codes_documented_once);
    ("serve help documents knobs", `Quick, test_serve_help_documents_protocol_knobs);
  ]
