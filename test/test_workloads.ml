(* Tests for the 19-benchmark synthetic suite. *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Walker = Mcd_isa.Walker
module P = Mcd_isa.Program
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Coverage = Mcd_profiling.Coverage

let test_suite_size () =
  Alcotest.(check int) "nineteen benchmarks" 19 (List.length Suite.all);
  Alcotest.(check int) "twelve media" 12 (List.length Suite.media);
  Alcotest.(check int) "three specint" 3 (List.length Suite.spec_int);
  Alcotest.(check int) "four specfp" 4 (List.length Suite.spec_fp)

let test_names_unique () =
  Alcotest.(check int) "unique names" 19
    (List.length (List.sort_uniq compare Suite.names))

let test_by_name () =
  let w = Suite.by_name "mcf" in
  Alcotest.(check string) "found" "mcf" w.Workload.name;
  (match Suite.by_name "doom" with
  | _ -> Alcotest.fail "by_name accepted an unknown benchmark"
  | exception Invalid_argument msg ->
      (* the message must name the offender and list the valid names *)
      let contains needle =
        let nl = String.length needle and hl = String.length msg in
        let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions the bad name" true (contains {|"doom"|});
      Alcotest.(check bool) "lists valid names" true (contains "mcf"));
  (match Suite.find_opt "doom" with
  | None -> ()
  | Some _ -> Alcotest.fail "find_opt accepted an unknown benchmark");
  (match Suite.find_opt "gzip" with
  | Some w -> Alcotest.(check string) "find_opt found" "gzip" w.Workload.name
  | None -> Alcotest.fail "find_opt missed a known benchmark")

let test_programs_validate () =
  (* Program.validate runs in the builder; re-run it explicitly *)
  List.iter (fun w -> P.validate w.Workload.program) Suite.all

let test_inputs_distinct () =
  List.iter
    (fun w ->
      Alcotest.(check bool) "train/ref seeds differ" true
        (w.Workload.train.P.seed <> w.Workload.reference.P.seed);
      Alcotest.(check bool) "train window below ref" true
        (w.Workload.train_window < w.Workload.ref_window))
    Suite.all

let count_insts w input limit =
  let walker = Walker.create w.Workload.program ~input in
  let rec go n =
    if n >= limit then n
    else
      match Walker.next walker with
      | None -> n
      | Some (Walker.Inst _) -> go (n + 1)
      | Some (Walker.Marker _) -> go n
  in
  go 0

let test_programs_long_enough () =
  (* every program must fill its warm-up plus reference window *)
  List.iter
    (fun w ->
      let need = w.Workload.ref_offset + w.Workload.ref_window in
      let n = count_insts w w.Workload.reference need in
      if n < need then
        Alcotest.failf "%s reference run too short: %d < %d" w.Workload.name n
          need)
    Suite.all

let test_train_programs_long_enough () =
  List.iter
    (fun w ->
      let n = count_insts w w.Workload.train w.Workload.train_window in
      if n < w.Workload.train_window then
        Alcotest.failf "%s training run too short: %d < %d" w.Workload.name n
          w.Workload.train_window)
    Suite.all

let build_tree w input =
  Call_tree.build w.Workload.program ~input ~context:Context.lfcp
    ~max_insts:120_000 ()

let test_every_benchmark_has_long_nodes () =
  List.iter
    (fun w ->
      let t = build_tree w w.Workload.train in
      if Call_tree.long_count t = 0 then
        Alcotest.failf "%s has no long-running nodes in training"
          w.Workload.name)
    Suite.all

let test_vpr_low_coverage () =
  let w = Suite.by_name "vpr" in
  let c =
    Coverage.compare
      ~train:(build_tree w w.Workload.train)
      ~reference:(build_tree w w.Workload.reference)
  in
  Alcotest.(check bool) "vpr coverage below 0.5" true
    (c.Coverage.long_coverage < 0.5)

let test_mpeg2_decode_partial_coverage () =
  let w = Suite.by_name "mpeg2 decode" in
  let c =
    Coverage.compare
      ~train:(build_tree w w.Workload.train)
      ~reference:(build_tree w w.Workload.reference)
  in
  Alcotest.(check bool) "mpeg2 long coverage partial" true
    (c.Coverage.long_coverage < 1.0 && c.Coverage.long_coverage > 0.2)

let test_stable_benchmarks_full_coverage () =
  List.iter
    (fun name ->
      let w = Suite.by_name name in
      let c =
        Coverage.compare
          ~train:(build_tree w w.Workload.train)
          ~reference:(build_tree w w.Workload.reference)
      in
      if c.Coverage.long_coverage < 0.99 then
        Alcotest.failf "%s expected full coverage, got %.2f" name
          c.Coverage.long_coverage)
    [ "adpcm decode"; "g721 decode"; "gsm encode"; "equake" ]

let test_traits_documented () =
  List.iter
    (fun w ->
      Alcotest.(check bool) "trait non-empty" true
        (String.length w.Workload.trait > 10))
    Suite.all

let suite =
  [
    ("suite size", `Quick, test_suite_size);
    ("names unique", `Quick, test_names_unique);
    ("by_name", `Quick, test_by_name);
    ("programs validate", `Quick, test_programs_validate);
    ("inputs distinct", `Quick, test_inputs_distinct);
    ("reference runs long enough", `Slow, test_programs_long_enough);
    ("training runs long enough", `Slow, test_train_programs_long_enough);
    ("long nodes everywhere", `Slow, test_every_benchmark_has_long_nodes);
    ("vpr low coverage", `Slow, test_vpr_low_coverage);
    ("mpeg2 partial coverage", `Slow, test_mpeg2_decode_partial_coverage);
    ("stable full coverage", `Slow, test_stable_benchmarks_full_coverage);
    ("traits documented", `Quick, test_traits_documented);
  ]
