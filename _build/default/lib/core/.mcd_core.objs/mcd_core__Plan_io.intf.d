lib/core/plan_io.mli: Mcd_profiling Plan
