let bars ?(width = 40) ?(unit_label = "%") ~groups () =
  let max_abs =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) acc
          series)
      1e-9 groups
  in
  let label_width =
    List.fold_left
      (fun acc (g, _) -> max acc (String.length g))
      0 groups
  in
  let series_width =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc (s, _) -> max acc (String.length s)) acc series)
      0 groups
  in
  let pad s n =
    if String.length s >= n then s else s ^ String.make (n - String.length s) ' '
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (group, series) ->
      List.iteri
        (fun i (name, v) ->
          let cells =
            int_of_float
              (Float.round (Float.abs v /. max_abs *. float_of_int width))
          in
          let fill = if v >= 0.0 then "#" else "-" in
          Buffer.add_string buf
            (pad (if i = 0 then group else "") label_width);
          Buffer.add_string buf "  ";
          Buffer.add_string buf (pad name series_width);
          Buffer.add_string buf " |";
          for _ = 1 to cells do
            Buffer.add_string buf fill
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s %.1f%s\n"
               (String.make (max 0 (width - cells)) ' ')
               v unit_label))
        series;
      Buffer.add_char buf '\n')
    groups;
  Buffer.contents buf

let scatter ?(width = 64) ?(height = 20) ~xlabel ~ylabel ~series () =
  let all = List.concat_map snd series in
  match all with
  | [] -> "(no data)\n"
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let fmin l = List.fold_left Float.min (List.hd l) l in
      let fmax l = List.fold_left Float.max (List.hd l) l in
      let x0 = Float.min 0.0 (fmin xs) and x1 = Float.max 1e-9 (fmax xs) in
      let y0 = Float.min 0.0 (fmin ys) and y1 = Float.max 1e-9 (fmax ys) in
      let grid = Array.make_matrix height width ' ' in
      let glyphs = [| 'o'; '+'; 'x'; '*'; '@' |] in
      List.iteri
        (fun si (_, points) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              let col =
                int_of_float
                  ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float
                    ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph)
            points)
        series;
      let buf = Buffer.create 2048 in
      Buffer.add_string buf
        (Printf.sprintf "%s (vertical %.1f..%.1f, horizontal %.1f..%.1f %s)\n"
           ylabel y0 y1 x0 x1 xlabel);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c = %s\n" glyphs.(si mod Array.length glyphs)
               name))
        series;
      Buffer.contents buf
