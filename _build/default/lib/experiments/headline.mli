(** The headline results: Figures 4, 5, 6 and 7.

    For every benchmark, off-line (oracle), on-line (attack/decay) and
    profile-based L+F reconfiguration are compared against the MCD
    baseline. Figure 7 summarises minimum / maximum / average across
    the suite and adds the "global" single-clock DVS bar, scaled per
    benchmark to match the off-line algorithm's runtime. *)

type row = {
  workload : Mcd_workloads.Workload.t;
  offline : Runner.comparison;
  online : Runner.comparison;
  profile : Runner.comparison;  (** L+F, trained on the training input *)
}

val rows : ?workloads:Mcd_workloads.Workload.t list -> unit -> row list
(** Defaults to the whole suite. Results are cached in {!Runner}. *)

val fig4 : row list -> string
(** Performance degradation per benchmark. *)

val fig5 : row list -> string
(** Energy savings per benchmark. *)

val fig6 : row list -> string
(** Energy x delay improvement per benchmark. *)

type band = { min_v : float; max_v : float; avg : float }

type summary = {
  global_ : band * band * band;
      (** slowdown, savings, ED improvement bands for global DVS *)
  online_s : band * band * band;
  offline_s : band * band * band;
  profile_s : band * band * band;
}

val summary : row list -> summary
(** Runs the global-DVS search per benchmark (targeting the off-line
    runtime), then aggregates all four methods. *)

val fig7 : summary -> string
