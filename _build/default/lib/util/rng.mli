(** Deterministic, splittable pseudo-random number generator.

    Every stochastic element of the simulator (clock jitter, workload
    address and branch streams) draws from a named stream derived from a
    master seed, so identical configurations produce bit-identical runs.
    The generator is SplitMix64, which is fast, has a 64-bit state, and
    supports cheap derivation of statistically independent child streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with
    the same seed produce the same sequence. *)

val split : t -> label:string -> t
(** [split t ~label] derives a child generator whose stream is a pure
    function of [t]'s seed and [label]; it does not advance [t].
    Distinct labels give independent streams. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be positive. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val normal : t -> mean:float -> sigma:float -> float
(** Normally distributed draw (Box-Muller). *)

val geometric : t -> mean:float -> int
(** [geometric t ~mean] draws a strictly positive integer with the given
    mean (rounded up from an exponential draw); used for dependence
    distances in synthetic instruction streams. *)
