(* Shipping a reconfiguration plan.

   The paper's work flow is train once, edit the binary, run the edited
   binary in production forever. The plan file is this library's edited
   binary: this example trains, saves the plan to disk, then — as a
   "production machine" would — rebuilds the call tree from the same
   program and training input, loads the plan (fingerprint-checked), and
   runs production with it. A tampered or stale plan is rejected.

     dune exec examples/ship_plan.exe *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Analyze = Mcd_core.Analyze
module Plan_io = Mcd_core.Plan_io
module Editor = Mcd_core.Editor
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Metrics = Mcd_power.Metrics

let () =
  let w = Suite.by_name "jpeg compress" in
  let path = Filename.temp_file "jpeg_compress" ".plan" in

  (* --- development machine: train and save ------------------------- *)
  let plan, _ =
    Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
      ~context:Context.lf ~trace_insts:w.Workload.train_window ()
  in
  Plan_io.save plan ~path;
  Printf.printf "trained and saved plan: %s (%d bytes)\n%!" path
    (Unix.stat path).Unix.st_size;

  (* --- production machine: rebuild the tree, load, run ------------- *)
  let tree =
    Call_tree.build w.Workload.program ~input:w.Workload.train
      ~context:Context.lf ~max_insts:400_000 ()
  in
  let loaded = Plan_io.load ~path ~tree in
  let edited = Editor.edit loaded in
  let baseline =
    Pipeline.run ~config:Config.alpha21264_like
      ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
      ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
  in
  let run =
    Pipeline.run ~controller:edited.Editor.controller
      ~config:Config.alpha21264_like ~warmup_insts:w.Workload.ref_offset
      ~program:w.Workload.program ~input:w.Workload.reference
      ~max_insts:w.Workload.ref_window ()
  in
  Printf.printf
    "production run with the shipped plan: %.1f%% slowdown, %.1f%% energy \
     savings\n"
    (Metrics.perf_degradation_pct ~baseline run)
    (Metrics.energy_savings_pct ~baseline run);

  (* --- a stale plan is refused -------------------------------------- *)
  let other = Suite.by_name "jpeg decompress" in
  let wrong_tree =
    Call_tree.build other.Workload.program ~input:other.Workload.train
      ~context:Context.lf ~max_insts:400_000 ()
  in
  (match Plan_io.load ~path ~tree:wrong_tree with
  | _ -> print_endline "BUG: stale plan accepted"
  | exception Failure msg ->
      Printf.printf "stale plan correctly refused: %s\n" msg);
  Sys.remove path
