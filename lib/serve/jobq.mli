(** Bounded multi-level FIFO job queue with per-client fairness.

    The admission-control data structure behind the scheduler: a fixed
    number of priority levels, FIFO within a level, [pop] always taking
    the highest non-empty level. Two bounds make it an admission
    controller rather than a plain queue: a global depth bound
    ([queue_max]) — backpressure for everyone — and a per-client
    pending bound ([client_max]) so one chatty client cannot occupy the
    whole queue and starve the rest.

    Not thread-safe on its own; the scheduler serializes access under
    its mutex. *)

type 'a t

val create : ?levels:int -> queue_max:int -> client_max:int -> unit -> 'a t
(** [levels] defaults to 3 (high/normal/low). Raises [Invalid_argument]
    if [levels <= 0], [queue_max <= 0] or [client_max <= 0]. *)

val length : 'a t -> int
(** Total queued items across all levels. *)

val queue_max : 'a t -> int
val client_max : 'a t -> int

val client_pending : 'a t -> string -> int
(** Queued items owed to the given client. *)

type rejection =
  | Queue_full of int  (** current depth (= the global bound) *)
  | Client_full of int  (** the client's pending count (= its bound) *)

val push :
  ?force:bool ->
  'a t -> level:int -> client:string -> 'a -> (unit, rejection) result
(** [level] is clamped into range. Bounds are checked global-first, so
    a full queue reports [Queue_full] even to a client also at its own
    cap. [force] (default false) bypasses both bounds — journal replay
    re-queues jobs that were already admitted once, and must never
    drop them to an admission race with a smaller restart config. *)

val pop : 'a t -> 'a option
(** Highest-priority, oldest-first; releases the item's slot in its
    client's pending count. *)
