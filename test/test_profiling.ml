(* Tests for call-tree construction, context definitions, coverage, and
   run-time path tracking — including the paper's Figure 2 example. *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Walker = Mcd_isa.Walker
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Coverage = Mcd_profiling.Coverage
module Tracker = Mcd_profiling.Tracker

let qcheck ?(seed = 0x9806) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let input ?(scale = 2) ?(divergence = 0.0) ?(seed = 5) () =
  { P.input_name = "t"; scale; divergence; seed }

(* The paper's Figure 2: initm called from two sites in main; initm
   contains loops L1 and L2; L2's body calls drand48 100 times. *)
let figure2_program () =
  B.program ~name:"figure2" @@ fun b ->
  B.func b "drand48" [ B.straight b ~length:12 () ];
  B.func b "initm"
    [
      B.loop b (P.Const 10) (* L1 *)
        [
          B.loop b (P.Const 10) (* L2 *)
            [ B.call b "drand48"; B.straight b ~length:3 () ];
        ];
    ];
  B.func b "main" [ B.call b "initm"; B.call b "initm" ];
  "main"

let build ?(context = Context.lfcp) ?(threshold = 10_000)
    ?(max_insts = 1_000_000) ?input:(inp = input ()) program =
  Call_tree.build program ~input:inp ~context ~threshold ~max_insts ()

let count_nodes t =
  let n = ref 0 in
  Call_tree.iter t ~f:(fun node ->
      match node.Call_tree.kind with
      | Call_tree.Root -> ()
      | Call_tree.Func_node _ | Call_tree.Loop_node _ -> incr n);
  !n

let find_nodes t pred =
  let acc = ref [] in
  Call_tree.iter t ~f:(fun n -> if pred n then acc := n :: !acc);
  List.rev !acc

let func_nodes_of t program fname =
  let fid = (P.find_func program fname).P.fid in
  find_nodes t (fun n ->
      match n.Call_tree.kind with
      | Call_tree.Func_node { fid = f; _ } -> f = fid
      | Call_tree.Root | Call_tree.Loop_node _ -> false)

(* --- context definitions -------------------------------------------- *)

let test_context_names_unique () =
  let names = List.map (fun c -> c.Context.name) Context.all in
  Alcotest.(check int) "six contexts" 6 (List.length names);
  Alcotest.(check int) "unique" 6 (List.length (List.sort_uniq compare names))

let test_context_tree_mapping () =
  Alcotest.(check string) "lf uses lfp tree" "L+F+P"
    (Context.tree_context Context.lf).Context.name;
  Alcotest.(check string) "f uses fp tree" "F+P"
    (Context.tree_context Context.f).Context.name;
  Alcotest.(check string) "lfcp is itself" "L+F+C+P"
    (Context.tree_context Context.lfcp).Context.name

let test_context_of_name () =
  Alcotest.(check bool) "lookup" true (Context.of_name "L+F" == Context.lf);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Context.of_name "bogus"))

(* --- Figure 2 -------------------------------------------------------- *)

let test_figure2_lfcp () =
  let p = figure2_program () in
  let t = build ~context:Context.lfcp p in
  (* two initm children of main (two call sites), each with L1, L2, and
     one drand48 child under L2: main + 2 x (initm, L1, L2, drand48) *)
  Alcotest.(check int) "node count" 9 (count_nodes t);
  Alcotest.(check int) "two initm nodes" 2
    (List.length (func_nodes_of t p "initm"));
  (* drand48 is called 100 times per initm but is one node per path *)
  let drands = func_nodes_of t p "drand48" in
  Alcotest.(check int) "two drand48 nodes" 2 (List.length drands);
  List.iter
    (fun (n : Call_tree.node) ->
      Alcotest.(check int) "100 instances" 100 n.Call_tree.instances)
    drands

let test_figure2_lfp () =
  let p = figure2_program () in
  let t = build ~context:Context.lfp p in
  (* call sites not distinguished: one initm child of main *)
  Alcotest.(check int) "one initm node" 1
    (List.length (func_nodes_of t p "initm"));
  let initm = List.hd (func_nodes_of t p "initm") in
  Alcotest.(check int) "initm instances" 2 initm.Call_tree.instances;
  Alcotest.(check int) "node count" 5 (count_nodes t)

let test_figure2_fcp () =
  let p = figure2_program () in
  let t = build ~context:Context.fcp p in
  (* loops invisible: main + 2 initm + 2 drand48 *)
  Alcotest.(check int) "node count" 5 (count_nodes t);
  let loops =
    find_nodes t (fun n ->
        match n.Call_tree.kind with
        | Call_tree.Loop_node _ -> true
        | Call_tree.Root | Call_tree.Func_node _ -> false)
  in
  Alcotest.(check int) "no loop nodes" 0 (List.length loops)

let test_figure2_fp () =
  let p = figure2_program () in
  let t = build ~context:Context.fp p in
  (* the CCT of Ammons et al.: main + initm + drand48 *)
  Alcotest.(check int) "node count" 3 (count_nodes t)

let test_figure2_instruction_totals () =
  let p = figure2_program () in
  let t = build ~context:Context.lfp p in
  let initm = List.hd (func_nodes_of t p "initm") in
  let main = List.hd (func_nodes_of t p "main") in
  Alcotest.(check bool) "main covers everything" true
    (main.Call_tree.total_insts >= initm.Call_tree.total_insts);
  Alcotest.(check bool) "initm nonempty" true (initm.Call_tree.total_insts > 0)

(* --- long-running marking ------------------------------------------- *)

let test_long_running_threshold () =
  let p = figure2_program () in
  (* total work per initm instance is ~1800 instructions: with a 500
     threshold initm (or its loops) is long, with 1M nothing is *)
  let t_small = build ~threshold:500 p in
  Alcotest.(check bool) "some long nodes" true (Call_tree.long_count t_small > 0);
  let t_huge = build ~threshold:1_000_000 p in
  Alcotest.(check int) "no long nodes" 0 (Call_tree.long_count t_huge)

let test_long_excludes_long_children () =
  (* a parent whose time is entirely in a long child is not itself long *)
  let p =
    B.program ~name:"nest" @@ fun b ->
    B.func b "inner"
      [ B.loop b (P.Const 100) [ B.straight b ~length:20 () ] ];
    B.func b "outer" [ B.call b "inner"; B.straight b ~length:30 () ];
    B.func b "main" [ B.call b "outer" ];
    "main"
  in
  let t = build ~threshold:1000 p in
  let inner = List.hd (func_nodes_of t p "inner") in
  let outer = List.hd (func_nodes_of t p "outer") in
  (* inner's loop is the long node; inner and outer, once their long
     descendants are excluded, are short *)
  let loop_long =
    find_nodes t (fun n ->
        match n.Call_tree.kind with
        | Call_tree.Loop_node _ -> n.Call_tree.long
        | Call_tree.Root | Call_tree.Func_node _ -> false)
  in
  Alcotest.(check int) "the loop is long" 1 (List.length loop_long);
  Alcotest.(check bool) "inner not long" false inner.Call_tree.long;
  Alcotest.(check bool) "outer not long" false outer.Call_tree.long;
  Alcotest.(check bool) "inner reaches long" true inner.Call_tree.reaches_long;
  Alcotest.(check bool) "outer reaches long" true outer.Call_tree.reaches_long;
  (* without loop tracking, inner itself becomes the long node *)
  let t_fp = build ~threshold:1000 ~context:Context.fp p in
  let inner_fp = List.hd (func_nodes_of t_fp p "inner") in
  Alcotest.(check bool) "inner long under F+P" true inner_fp.Call_tree.long

let test_recursion_folded () =
  let p =
    B.program ~name:"rec" @@ fun b ->
    B.func b "fib"
      [
        B.straight b ~length:5 ();
        B.choose b
          ~prob:(fun _ -> 0.6)
          [ B.call b "fib" ]
          [ B.straight b ~length:2 () ];
      ];
    B.func b "main" [ B.call b "fib" ];
    "main"
  in
  let t = build p in
  (* recursion folds into a single fib node *)
  Alcotest.(check int) "one fib node" 1 (List.length (func_nodes_of t p "fib"));
  let fib = List.hd (func_nodes_of t p "fib") in
  Alcotest.(check int) "one recorded instance" 1 fib.Call_tree.instances

let test_static_units () =
  let p = figure2_program () in
  let t = build ~threshold:500 ~context:Context.lfcp p in
  let reconfig = Call_tree.long_static_units t in
  let instr = Call_tree.instrumented_static_units t in
  Alcotest.(check bool) "reconfig subset of instrumented" true
    (List.for_all (fun u -> List.mem u instr) reconfig);
  Alcotest.(check bool) "instrumented nonempty" true (List.length instr > 0)

let test_tree_pp () =
  let p = figure2_program () in
  let t = build p in
  let s = Format.asprintf "%a" Call_tree.pp t in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let test_instructions_profiled () =
  let p = figure2_program () in
  let t = build ~max_insts:100 p in
  Alcotest.(check bool) "window respected" true
    (Call_tree.instructions_profiled t <= 101)

(* --- coverage -------------------------------------------------------- *)

let test_coverage_identical () =
  let p = figure2_program () in
  let a = build ~threshold:500 p and b = build ~threshold:500 p in
  let c = Coverage.compare ~train:a ~reference:b in
  Alcotest.(check (float 1e-9)) "full total coverage" 1.0 c.Coverage.total_coverage;
  Alcotest.(check (float 1e-9)) "full long coverage" 1.0 c.Coverage.long_coverage;
  Alcotest.(check int) "common = total" c.Coverage.ref_total c.Coverage.common_total

let test_coverage_divergent_paths () =
  let p =
    B.program ~name:"div" @@ fun b ->
    B.func b "a" [ B.loop b (P.Const 50) [ B.straight b ~length:30 () ] ];
    B.func b "bb" [ B.loop b (P.Const 50) [ B.straight b ~length:30 () ] ];
    B.func b "main"
      [
        B.loop b (P.Const 10)
          [
            B.choose b
              ~prob:(fun inp -> inp.P.divergence)
              [ B.call b "bb" ]
              [ B.call b "a" ];
          ];
      ];
    "main"
  in
  let train = build ~threshold:800 ~input:(input ~divergence:0.0 ()) p in
  let refr = build ~threshold:800 ~input:(input ~divergence:1.0 ()) p in
  let c = Coverage.compare ~train ~reference:refr in
  Alcotest.(check bool) "partial coverage" true
    (c.Coverage.total_coverage < 1.0)

let test_coverage_context_mismatch () =
  let p = figure2_program () in
  let a = build ~context:Context.lfcp p and b = build ~context:Context.fp p in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Coverage.compare: trees built under different contexts")
    (fun () -> ignore (Coverage.compare ~train:a ~reference:b))

(* --- tracker --------------------------------------------------------- *)

let drive_tracker tree program inp =
  let tracker = Tracker.create tree in
  let w = Walker.create program ~input:inp in
  let trace = ref [] in
  let rec go () =
    match Walker.next w with
    | None -> ()
    | Some (Walker.Inst _) -> go ()
    | Some (Walker.Marker m) ->
        trace := Tracker.on_marker tracker m :: !trace;
        go ()
  in
  go ();
  (tracker, List.rev !trace)

let test_tracker_follows_known_paths () =
  let p = figure2_program () in
  let tree = build p in
  let _, trace = drive_tracker tree p (input ()) in
  List.iter
    (function
      | Tracker.Entered Tracker.Unknown -> Alcotest.fail "unknown on a trained path"
      | Tracker.Entered (Tracker.Known _) | Tracker.Exited _ | Tracker.Ignored
        -> ())
    trace

let test_tracker_unknown_on_new_path () =
  let p =
    B.program ~name:"u" @@ fun b ->
    B.func b "x" [ B.straight b ~length:5 () ];
    B.func b "main"
      [
        B.choose b
          ~prob:(fun inp -> inp.P.divergence)
          [ B.call b "x"; B.call b "x" ]
          [ B.straight b ~length:5 () ];
      ];
    "main"
  in
  let tree = build ~input:(input ~divergence:0.0 ()) p in
  let _, trace = drive_tracker tree p (input ~divergence:1.0 ()) in
  let unknowns =
    List.filter (function Tracker.Entered Tracker.Unknown -> true | _ -> false)
      trace
  in
  Alcotest.(check bool) "untrained calls are unknown" true
    (List.length unknowns > 0)

let test_tracker_depth_balanced () =
  let p = figure2_program () in
  let tree = build p in
  let tracker, _ = drive_tracker tree p (input ()) in
  Alcotest.(check int) "back at root" 0 (Tracker.depth tracker)

let test_tracker_restores_position () =
  let p = figure2_program () in
  let tree = build p in
  let tracker = Tracker.create tree in
  let main_fid = (P.find_func p "main").P.fid in
  let initm_fid = (P.find_func p "initm").P.fid in
  let _ = Tracker.on_marker tracker (Walker.Enter_func { fid = main_fid; site_id = None }) in
  let main_pos = Tracker.current tracker in
  let _ =
    Tracker.on_marker tracker
      (Walker.Enter_func { fid = initm_fid; site_id = Some 0 })
  in
  (match Tracker.on_marker tracker (Walker.Exit_func { fid = initm_fid }) with
  | Tracker.Exited { restored } ->
      Alcotest.(check bool) "restored to main" true (restored = main_pos)
  | Tracker.Entered _ | Tracker.Ignored -> Alcotest.fail "expected exit");
  Alcotest.(check bool) "current is main" true (Tracker.current tracker = main_pos)

(* --- qcheck ---------------------------------------------------------- *)

let prop_totals_bounded_by_window =
  QCheck.Test.make ~name:"node totals bounded by profiled window" ~count:50
    QCheck.(pair (int_range 1 4) small_int)
    (fun (scale, seed) ->
      let p = figure2_program () in
      let t =
        build ~max_insts:2_000 ~input:(input ~scale ~seed ()) p
      in
      let ok = ref true in
      Call_tree.iter t ~f:(fun n ->
          if n.Call_tree.total_insts > Call_tree.instructions_profiled t then
            ok := false);
      !ok)

let suite =
  [
    ("context names unique", `Quick, test_context_names_unique);
    ("context tree mapping", `Quick, test_context_tree_mapping);
    ("context of_name", `Quick, test_context_of_name);
    ("figure2 L+F+C+P", `Quick, test_figure2_lfcp);
    ("figure2 L+F+P", `Quick, test_figure2_lfp);
    ("figure2 F+C+P", `Quick, test_figure2_fcp);
    ("figure2 F+P", `Quick, test_figure2_fp);
    ("figure2 totals", `Quick, test_figure2_instruction_totals);
    ("long-running threshold", `Quick, test_long_running_threshold);
    ("long excludes long children", `Quick, test_long_excludes_long_children);
    ("recursion folded", `Quick, test_recursion_folded);
    ("static units", `Quick, test_static_units);
    ("tree pp", `Quick, test_tree_pp);
    ("instructions profiled", `Quick, test_instructions_profiled);
    ("coverage identical", `Quick, test_coverage_identical);
    ("coverage divergent", `Quick, test_coverage_divergent_paths);
    ("coverage context mismatch", `Quick, test_coverage_context_mismatch);
    ("tracker follows known paths", `Quick, test_tracker_follows_known_paths);
    ("tracker unknown on new path", `Quick, test_tracker_unknown_on_new_path);
    ("tracker depth balanced", `Quick, test_tracker_depth_balanced);
    ("tracker restores position", `Quick, test_tracker_restores_position);
    qcheck prop_totals_bounded_by_window;
  ]
