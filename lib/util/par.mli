(** Multicore fan-out for embarrassingly parallel experiment sweeps.

    [map ~jobs f xs] evaluates [f] over [xs] on up to [jobs] OCaml 5
    domains (including the calling one) and returns the results in input
    order, so output is byte-identical to the sequential [List.map] as
    long as [f] is deterministic per element. [jobs <= 1] is exactly
    [List.map] — no domains are spawned, no synchronization happens —
    which keeps single-threaded callers (tests, the CLI default) on the
    untouched sequential path.

    Work is distributed dynamically through a shared atomic counter, so
    uneven per-item cost (e.g. mcf's long memory stalls vs adpcm) load
    balances automatically. Domains are spawned per call and joined
    before returning; if [f] raises, every worker is still drained and
    joined, then the exception of the earliest failing item re-raises in
    the caller, carrying the backtrace captured at the original raise
    site inside the worker domain.

    Callers are responsible for [f] being domain-safe: no writes to
    shared mutable state. Per-domain memo tables (see
    {!Mcd_experiments.Runner}) are the standard recipe. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [--jobs] default. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
