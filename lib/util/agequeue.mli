(** Fixed-capacity, age-ordered queues for simulator hot paths.

    An [Agequeue.t] holds elements in insertion (program) order inside a
    preallocated array: O(1) [push], O(1) occupancy via {!length}, and
    an in-place, order-preserving {!filter_in_place} that replaces the
    allocate-per-tick [List.filter] idiom. It is the backing store for
    the pipeline's issue queues and load/store queue, where capacity is
    a hardware parameter and oldest-first scan order is the issue
    priority.

    A [dummy] element fills vacated slots so removed entries do not
    leak through the array. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append as youngest. Raises [Invalid_argument] when full — hardware
    occupancy checks must gate insertion, exactly as dispatch does. *)

val get : 'a t -> int -> 'a
(** [get t i] is the i-th oldest element. Raises [Invalid_argument]
    out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest-first. *)

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep the elements satisfying the predicate, preserving age order.
    The predicate is applied to {e every} element oldest-first (like
    [List.filter]), so effectful predicates observe the same call
    sequence as the list idiom this replaces. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Oldest-first; for tests and debugging. *)
