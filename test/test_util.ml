(* Unit and property tests for Mcd_util. *)

module Rng = Mcd_util.Rng
module Histogram = Mcd_util.Histogram
module Stats = Mcd_util.Stats
module Table = Mcd_util.Table
module Time = Mcd_util.Time
module Vec = Mcd_util.Vec
module Agequeue = Mcd_util.Agequeue
module Par = Mcd_util.Par

let qcheck ?(seed = 0x0711) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent ~label:"a" in
  let c2 = Rng.split parent ~label:"b" in
  Alcotest.(check bool) "distinct labels give distinct streams" true
    (Rng.int64 c1 <> Rng.int64 c2);
  (* splitting does not advance the parent *)
  let p1 = Rng.create 7 in
  let _ = Rng.split p1 ~label:"x" in
  let p2 = Rng.create 7 in
  Alcotest.(check int64) "split leaves parent intact" (Rng.int64 p1)
    (Rng.int64 p2)

let test_rng_split_reproducible () =
  let c1 = Rng.split (Rng.create 9) ~label:"stream" in
  let c2 = Rng.split (Rng.create 9) ~label:"stream" in
  Alcotest.(check int64) "same label same stream" (Rng.int64 c1)
    (Rng.int64 c2)

let test_rng_int_bounds () =
  let t = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_rng_float_bounds () =
  let t = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_bool_bias () =
  let t = Rng.create 5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool t 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bias near 0.3" true (p > 0.27 && p < 0.33)

let test_rng_normal_moments () =
  let t = Rng.create 6 in
  let n = 50_000 in
  let samples = List.init n (fun _ -> Rng.normal t ~mean:10.0 ~sigma:2.0) in
  let mean = Stats.mean samples in
  let sd = Stats.stddev samples in
  Alcotest.(check bool) "mean near 10" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "sigma near 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_rng_geometric () =
  let t = Rng.create 8 in
  let n = 50_000 in
  let samples = List.init n (fun _ -> float_of_int (Rng.geometric t ~mean:4.0)) in
  List.iter (fun v -> if v < 1.0 then Alcotest.fail "geometric below 1") samples;
  let mean = Stats.mean samples in
  Alcotest.(check bool) "mean in a sane band" true (mean > 3.0 && mean < 6.0)

(* --- Histogram ------------------------------------------------------ *)

let test_histogram_basic () =
  let h = Histogram.create ~bins:4 in
  Histogram.add h ~bin:0 ~weight:1.5;
  Histogram.add h ~bin:3 ~weight:2.5;
  Histogram.add h ~bin:3 ~weight:1.0;
  check_float "bin 0" 1.5 (Histogram.get h ~bin:0);
  check_float "bin 3" 3.5 (Histogram.get h ~bin:3);
  check_float "total" 5.0 (Histogram.total h)

let test_histogram_errors () =
  let h = Histogram.create ~bins:2 in
  Alcotest.check_raises "bad bin" (Invalid_argument "Histogram.add: bin out of range")
    (fun () -> Histogram.add h ~bin:2 ~weight:1.0);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Histogram.add: negative weight") (fun () ->
      Histogram.add h ~bin:0 ~weight:(-1.0));
  Alcotest.check_raises "bad create"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Histogram.create ~bins:0))

let test_histogram_merge () =
  let a = Histogram.create ~bins:3 and b = Histogram.create ~bins:3 in
  Histogram.add a ~bin:0 ~weight:1.0;
  Histogram.add b ~bin:0 ~weight:2.0;
  Histogram.add b ~bin:2 ~weight:3.0;
  Histogram.merge_into ~dst:a ~src:b;
  check_float "merged bin 0" 3.0 (Histogram.get a ~bin:0);
  check_float "merged bin 2" 3.0 (Histogram.get a ~bin:2);
  check_float "src unchanged" 2.0 (Histogram.get b ~bin:0)

let test_histogram_suffix_sum () =
  let h = Histogram.create ~bins:4 in
  List.iteri (fun i w -> Histogram.add h ~bin:i ~weight:w) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "suffix from 2" 7.0 (Histogram.suffix_sum h ~from:2);
  check_float "suffix from 0" 10.0 (Histogram.suffix_sum h ~from:0);
  check_float "suffix past end" 0.0 (Histogram.suffix_sum h ~from:4)

let test_histogram_copy_fold () =
  let h = Histogram.create ~bins:3 in
  Histogram.add h ~bin:1 ~weight:5.0;
  let c = Histogram.copy h in
  Histogram.add h ~bin:1 ~weight:1.0;
  check_float "copy is independent" 5.0 (Histogram.get c ~bin:1);
  let sum =
    Histogram.fold h ~init:0.0 ~f:(fun acc ~bin:_ ~weight -> acc +. weight)
  in
  check_float "fold sums" (Histogram.total h) sum

(* --- Stats ---------------------------------------------------------- *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "geomean empty" 0.0 (Stats.geomean [])

let test_stats_minmax () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "min empty"
    (Invalid_argument "Stats.minimum: empty list") (fun () ->
      ignore (Stats.minimum []))

let test_stats_stddev () =
  check_float "stddev constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percent () =
  check_float "percent" 25.0 (Stats.percent 1.0 4.0);
  check_float "percent zero whole" 0.0 (Stats.percent 1.0 0.0);
  check_float "change" 10.0
    (Stats.ratio_percent_change ~baseline:100.0 ~value:110.0);
  check_float "negative change" (-10.0)
    (Stats.ratio_percent_change ~baseline:100.0 ~value:90.0)

(* --- Table ---------------------------------------------------------- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "v" ]
      ~rows:[ [ "a"; "1" ]; [ "bb"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* header, separator, two rows, trailing newline *)
  Alcotest.(check bool) "column aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_formats () =
  Alcotest.(check string) "f1" "3.1" (Table.fmt_f1 3.14159);
  Alcotest.(check string) "f2" "3.14" (Table.fmt_f2 3.14159);
  Alcotest.(check string) "pct" "3.1%" (Table.fmt_pct 3.14159)

(* --- Time ----------------------------------------------------------- *)

let test_time_conversions () =
  Alcotest.(check int) "ns" 1_000 (Time.ns 1);
  Alcotest.(check int) "us" 1_000_000 (Time.us 1);
  check_float "to_ns" 1.0 (Time.to_ns (Time.ns 1));
  check_float "to_us" 2.5 (Time.to_us (Time.ps 2_500_000));
  Alcotest.(check int) "of_ns_float rounds" 1_500 (Time.of_ns_float 1.5)

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ps" "500 ps" (s 500);
  Alcotest.(check bool) "ns unit" true
    (String.length (s (Time.ns 100)) > 0
    && String.sub (s (Time.ns 100)) (String.length (s (Time.ns 100)) - 2) 2
       = "ns")

(* --- Vec ------------------------------------------------------------ *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 99 (Vec.get v 99);
  Vec.set v 50 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 50)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  let order = ref [] in
  Vec.iteri (fun i x -> order := (i, x) :: !order) v;
  Alcotest.(check (list (pair int int))) "iteri order" [ (0, 1); (1, 2); (2, 3) ]
    (List.rev !order);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v)

(* --- Chart ----------------------------------------------------------- *)

let test_chart_bars () =
  let s =
    Mcd_util.Chart.bars
      ~groups:
        [
          ("alpha", [ ("a", 10.0); ("b", 5.0) ]);
          ("beta", [ ("a", -2.0) ]);
        ]
      ()
  in
  Alcotest.(check bool) "labels present" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l > 0 && l.[0] = 'a'));
  (* positive bars use '#', negatives use '-' *)
  Alcotest.(check bool) "has positive fill" true (String.contains s '#');
  Alcotest.(check bool) "has negative fill" true (String.contains s '-')

let test_chart_bars_scaling () =
  let s =
    Mcd_util.Chart.bars ~width:10
      ~groups:[ ("g", [ ("big", 100.0); ("half", 50.0) ]) ]
      ()
  in
  let count_hashes line =
    String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 line
  in
  match String.split_on_char '\n' s with
  | big :: half :: _ ->
      Alcotest.(check int) "full width" 10 (count_hashes big);
      Alcotest.(check int) "half width" 5 (count_hashes half)
  | _ -> Alcotest.fail "unexpected chart shape"

let test_chart_scatter () =
  let s =
    Mcd_util.Chart.scatter ~xlabel:"x" ~ylabel:"y"
      ~series:[ ("s1", [ (1.0, 1.0); (2.0, 4.0) ]); ("s2", [ (3.0, 2.0) ]) ]
      ()
  in
  Alcotest.(check bool) "glyphs drawn" true
    (String.contains s 'o' && String.contains s '+');
  Alcotest.(check bool) "legend present" true (String.length s > 100)

let test_chart_scatter_empty () =
  let s =
    Mcd_util.Chart.scatter ~xlabel:"x" ~ylabel:"y" ~series:[ ("s", []) ] ()
  in
  Alcotest.(check string) "empty" "(no data)\n" s

(* --- qcheck properties ---------------------------------------------- *)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_histogram_merge_total =
  QCheck.Test.make ~name:"histogram merge adds totals" ~count:200
    QCheck.(pair (list (pair (int_range 0 7) (float_range 0.0 100.0)))
              (list (pair (int_range 0 7) (float_range 0.0 100.0))))
    (fun (xs, ys) ->
      let a = Histogram.create ~bins:8 and b = Histogram.create ~bins:8 in
      List.iter (fun (bin, weight) -> Histogram.add a ~bin ~weight) xs;
      List.iter (fun (bin, weight) -> Histogram.add b ~bin ~weight) ys;
      let ta = Histogram.total a and tb = Histogram.total b in
      Histogram.merge_into ~dst:a ~src:b;
      Float.abs (Histogram.total a -. (ta +. tb)) < 1e-6)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:300
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

(* --- Agequeue ------------------------------------------------------- *)

let test_agequeue_basic () =
  let q = Agequeue.create ~capacity:3 ~dummy:(-1) in
  Alcotest.(check bool) "empty" true (Agequeue.is_empty q);
  Agequeue.push q 10;
  Agequeue.push q 20;
  Alcotest.(check int) "length" 2 (Agequeue.length q);
  Alcotest.(check int) "oldest first" 10 (Agequeue.get q 0);
  Agequeue.push q 30;
  Alcotest.(check bool) "full" true (Agequeue.is_full q);
  Alcotest.check_raises "push on full"
    (Invalid_argument "Agequeue.push: queue is full") (fun () ->
      Agequeue.push q 40);
  Agequeue.filter_in_place (fun v -> v <> 20) q;
  Alcotest.(check (list int)) "order kept" [ 10; 30 ] (Agequeue.to_list q);
  Agequeue.clear q;
  Alcotest.(check int) "cleared" 0 (Agequeue.length q)

let test_agequeue_filter_visits_all_in_age_order () =
  let q = Agequeue.create ~capacity:8 ~dummy:0 in
  List.iter (Agequeue.push q) [ 1; 2; 3; 4; 5 ];
  let visited = ref [] in
  Agequeue.filter_in_place
    (fun v ->
      visited := v :: !visited;
      v mod 2 = 1)
    q;
  Alcotest.(check (list int)) "visited every element oldest-first"
    [ 1; 2; 3; 4; 5 ] (List.rev !visited);
  Alcotest.(check (list int)) "survivors" [ 1; 3; 5 ] (Agequeue.to_list q)

(* Differential property: an [Agequeue] driven by random
   dispatch/issue/flush sequences behaves exactly like the immutable
   age-ordered list the pipeline used before the rewrite, including the
   order in which an effectful issue predicate observes entries. *)
let prop_agequeue_matches_list_reference =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 0 120)
        (oneof
           [
             map (fun v -> `Dispatch v) (int_range 0 999);
             map (fun m -> `Issue m) (int_range 0 255);
             return `Flush;
           ]))
  in
  let pp_ops ops =
    String.concat ";"
      (List.map
         (function
           | `Dispatch v -> Printf.sprintf "D%d" v
           | `Issue m -> Printf.sprintf "I%d" m
           | `Flush -> "F")
         ops)
  in
  QCheck.Test.make ~name:"agequeue matches the list reference" ~count:300
    (QCheck.make ~print:pp_ops gen_ops)
    (fun ops ->
      let capacity = 6 in
      let q = Agequeue.create ~capacity ~dummy:(-1) in
      let reference = ref [] in
      let seen_q = ref [] and seen_l = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Dispatch v ->
              (* dispatch is gated on occupancy, exactly like the
                 pipeline's [queue_has_space] *)
              let has_space_q = not (Agequeue.is_full q) in
              let has_space_l = List.length !reference < capacity in
              assert (has_space_q = has_space_l);
              if has_space_q then begin
                Agequeue.push q v;
                reference := !reference @ [ v ]
              end
          | `Issue mask ->
              (* an effectful oldest-first scan with an issue budget,
                 like [tick_exec]: keep entries whose low bits miss the
                 mask, issue (remove) at most two others *)
              let issue_one seen budget v =
                seen := v :: !seen;
                if !budget > 0 && (v land 7) land mask <> 0 then begin
                  decr budget;
                  false
                end
                else true
              in
              let bq = ref 2 in
              Agequeue.filter_in_place (issue_one seen_q bq) q;
              let bl = ref 2 in
              reference := List.filter (issue_one seen_l bl) !reference
          | `Flush ->
              Agequeue.clear q;
              reference := [])
        ops;
      Agequeue.to_list q = !reference
      && Agequeue.length q = List.length !reference
      && !seen_q = !seen_l)

(* --- Par ------------------------------------------------------------ *)

let test_par_matches_sequential () =
  let xs = List.init 97 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Par.map ~jobs f xs))
    [ 1; 2; 4; 128 ]

let test_par_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Par.map ~jobs:4 succ [ 1 ])

let test_par_propagates_exception () =
  Alcotest.check_raises "raises" (Failure "boom") (fun () ->
      ignore
        (Par.map ~jobs:4
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 20 Fun.id)))

(* A raising function the runtime cannot inline away, so the worker's
   backtrace has at least one frame to capture. *)
let[@inline never] deep_raise x =
  if x >= 0 then raise Not_found else x

let test_par_preserves_backtrace () =
  (* Regression: worker exceptions were captured without their
     backtrace, so the re-raise on the joining domain reported the join
     site instead of the raise site. The slot now stores the raw
     backtrace and re-raises with it. *)
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace prev)
    (fun () ->
      match Par.map ~jobs:4 deep_raise (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Not_found ->
          let bt = Printexc.get_raw_backtrace () in
          Alcotest.(check bool) "re-raised with the worker's backtrace" true
            (Printexc.raw_backtrace_length bt > 0))

let test_par_iter () =
  let hits = Array.make 16 0 in
  Par.iter ~jobs:4 (fun i -> hits.(i) <- hits.(i) + 1) (List.init 16 Fun.id);
  Alcotest.(check (array int)) "each item once" (Array.make 16 1) hits

let prop_par_map_deterministic =
  QCheck.Test.make ~name:"par map is order-preserving at any jobs" ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) -> Par.map ~jobs (fun x -> x * 3) xs = List.map (fun x -> x * 3) xs)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng split reproducible", `Quick, test_rng_split_reproducible);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng bool bias", `Quick, test_rng_bool_bias);
    ("rng normal moments", `Quick, test_rng_normal_moments);
    ("rng geometric", `Quick, test_rng_geometric);
    ("histogram basic", `Quick, test_histogram_basic);
    ("histogram errors", `Quick, test_histogram_errors);
    ("histogram merge", `Quick, test_histogram_merge);
    ("histogram suffix sum", `Quick, test_histogram_suffix_sum);
    ("histogram copy/fold", `Quick, test_histogram_copy_fold);
    ("stats mean", `Quick, test_stats_mean);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats min/max", `Quick, test_stats_minmax);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percent", `Quick, test_stats_percent);
    ("table render", `Quick, test_table_render);
    ("table pads short rows", `Quick, test_table_pads_short_rows);
    ("table formats", `Quick, test_table_formats);
    ("time conversions", `Quick, test_time_conversions);
    ("time pp", `Quick, test_time_pp);
    ("chart bars", `Quick, test_chart_bars);
    ("chart bars scaling", `Quick, test_chart_bars_scaling);
    ("chart scatter", `Quick, test_chart_scatter);
    ("chart scatter empty", `Quick, test_chart_scatter_empty);
    ("vec push/get", `Quick, test_vec_push_get);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec iter/fold", `Quick, test_vec_iter_fold);
    ("agequeue basic", `Quick, test_agequeue_basic);
    ("agequeue filter order", `Quick, test_agequeue_filter_visits_all_in_age_order);
    ("par matches sequential", `Quick, test_par_matches_sequential);
    ("par empty/singleton", `Quick, test_par_empty_and_singleton);
    ("par propagates exception", `Quick, test_par_propagates_exception);
    ("par preserves backtrace", `Quick, test_par_preserves_backtrace);
    ("par iter", `Quick, test_par_iter);
    qcheck prop_agequeue_matches_list_reference;
    qcheck prop_par_map_deterministic;
    qcheck prop_rng_int_in_bounds;
    qcheck prop_histogram_merge_total;
    qcheck prop_stats_mean_bounds;
    qcheck prop_vec_roundtrip;
  ]
