module B = Mcd_isa.Build
module P = Mcd_isa.Program

let kb n = n * 1024
let l1_resident = kb 32

(* --- block mix helpers --------------------------------------------- *)

(* tight integer DSP kernel: predictable branches, L1-resident data *)
let int_dsp b ~length ?(region = l1_resident) ?(dep_chain = 4.0) () =
  B.straight b ~length ~frac_int_mult:0.03 ~frac_load:0.22 ~frac_store:0.10
    ~frac_branch:0.08
    ~mem:(P.Seq_stride { stride = 8; region })
    ~branch:(P.Periodic [| true; true; true; false |])
    ~dep_chain ()

(* filter/transform kernel: fp-heavy, streaming *)
let fp_filter b ~length ?(region = kb 256) ?(dep_chain = 5.0) () =
  B.straight b ~length ~frac_fp_alu:0.28 ~frac_fp_mult:0.12 ~frac_load:0.24
    ~frac_store:0.08 ~frac_branch:0.04
    ~mem:(P.Seq_stride { stride = 8; region })
    ~branch:(P.Periodic [| true; true; false |])
    ~dep_chain ()

(* table-driven integer code: random lookups, moderate predictability *)
let table_lookup b ~length ?(region = kb 128) () =
  B.straight b ~length ~frac_int_mult:0.02 ~frac_load:0.30 ~frac_store:0.06
    ~frac_branch:0.10
    ~mem:(P.Rand_in { region })
    ~branch:(P.Biased 0.82) ~dep_chain:3.0 ()

(* initialisation: streaming stores over a region *)
let init_block b ~length ?(region = kb 256) () =
  B.straight b ~length ~frac_load:0.05 ~frac_store:0.45 ~frac_branch:0.02
    ~mem:(P.Seq_stride { stride = 8; region })
    ~dep_chain:8.0 ()

(* --- adpcm: tiny integer kernel, loops are the phases --------------- *)

let adpcm name =
  B.program ~name @@ fun b ->
  B.func b "init" [ init_block b ~length:700 ~region:(kb 16) () ];
  B.func b "codec_step"
    [
      (* the hot loop crosses the long-running threshold on its own *)
      B.loop b (P.Const 120) [ int_dsp b ~length:110 ~region:(kb 8) () ];
      (* step-size adaptation stays short *)
      B.loop b (P.Const 40) [ int_dsp b ~length:60 ~region:(kb 8) () ];
    ];
  B.func b "main"
    [
      B.call b "init";
      B.loop b
        (P.Scaled { base = 2; per_scale = 6 })
        [ B.call b "codec_step" ];
    ];
  "main"

let adpcm_decode =
  Workload.make ~name:"adpcm decode" ~program:(adpcm "adpcm_decode")
    ~train_window:60_000 ~ref_window:120_000 ~kind:Workload.Media
    ~trait:"tiny integer kernel; loop nodes carry the phases" ()

let adpcm_encode =
  Workload.make ~name:"adpcm encode" ~program:(adpcm "adpcm_encode")
    ~train_window:65_000 ~ref_window:130_000 ~kind:Workload.Media
    ~trait:"tiny integer kernel; slightly longer search loop than decode"
    ()

(* --- epic: multi-phase image codec --------------------------------- *)

let epic_decode_prog =
  B.program ~name:"epic_decode" @@ fun b ->
  B.func b "read_and_huffman"
    [ B.loop b (P.Const 115) [ table_lookup b ~length:100 () ] ];
  B.func b "unquantize"
    [ B.loop b (P.Const 130) [ int_dsp b ~length:90 ~region:(kb 64) () ] ];
  B.func b "inverse_filter"
    [
      B.loop b (P.Const 45) [ fp_filter b ~length:180 ~region:(kb 128) () ];
      B.loop b (P.Const 32) [ fp_filter b ~length:120 ~region:(kb 128) () ];
    ];
  B.func b "collapse_pyramid"
    [
      B.call b "inverse_filter";
      B.call b "unquantize";
      B.call b "inverse_filter";
    ];
  B.func b "write_image"
    [ B.loop b (P.Const 95) [ init_block b ~length:100 ~region:(kb 512) () ] ];
  B.func b "main"
    [
      B.call b "read_and_huffman";
      B.loop b (P.Scaled { base = 1; per_scale = 1 })
        [ B.call b "collapse_pyramid" ];
      B.call b "write_image";
    ];
  "main"

let epic_decode =
  Workload.make ~name:"epic decode" ~program:epic_decode_prog
    ~train_window:70_000 ~ref_window:140_000 ~kind:Workload.Media
    ~trait:"fp inverse pyramid filters over an L2-resident image" ()

(* internal_filter is called from six sites in build_level with genuinely
   different behaviour per site (the argument skews the balance between
   its fp-convolution loop and its memory-gather loop) — call-site
   tracking pays off here, as the paper observes. *)
let epic_encode_prog =
  B.program ~name:"epic_encode" @@ fun b ->
  B.func b "internal_filter"
    [
      B.loop b
        (P.Arg_scaled { base = 30; per_arg = 14 })
        [ fp_filter b ~length:110 ~region:(kb 64) () ];
      B.loop b
        (P.Arg_scaled { base = 85; per_arg = -11 })
        [ table_lookup b ~length:90 ~region:(kb 512) () ];
    ];
  B.func b "build_level"
    [
      B.call b ~arg:7 "internal_filter";
      B.call b ~arg:6 "internal_filter";
      B.call b ~arg:4 "internal_filter";
      B.call b ~arg:3 "internal_filter";
      B.call b ~arg:1 "internal_filter";
      B.call b ~arg:0 "internal_filter";
    ];
  B.func b "quantize_level"
    [ B.loop b (P.Const 125) [ int_dsp b ~length:90 ~region:(kb 64) () ] ];
  B.func b "huffman_encode"
    [ B.loop b (P.Const 70) [ table_lookup b ~length:80 () ] ];
  B.func b "run_length"
    [ B.loop b (P.Const 50) [ int_dsp b ~length:60 ~region:(kb 32) () ] ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 1; per_scale = 1 })
        [
          B.call b "build_level";
          B.call b "quantize_level";
          B.call b "run_length";
          B.call b "huffman_encode";
        ];
    ];
  "main"

let epic_encode =
  Workload.make ~name:"epic encode" ~program:epic_encode_prog
    ~train_window:110_000 ~ref_window:200_000 ~kind:Workload.Media
    ~trait:
      "internal_filter called from six sites with site-dependent behaviour"
    ()

(* --- g721: one dominant subroutine --------------------------------- *)

let g721 name =
  B.program ~name @@ fun b ->
  B.func b "predictor_update"
    [
      B.loop b
        (P.Scaled { base = 0; per_scale = 60 })
        [ int_dsp b ~length:170 ~region:(kb 16) ~dep_chain:3.0 () ];
    ];
  B.func b "main" [ B.call b "predictor_update" ];
  "main"

let g721_decode =
  Workload.make ~name:"g721 decode" ~program:(g721 "g721_decode")
    ~train_window:55_000 ~ref_window:120_000 ~kind:Workload.Media
    ~trait:"single hot subroutine dominates the whole run" ()

let g721_encode =
  Workload.make ~name:"g721 encode" ~program:(g721 "g721_encode")
    ~train_window:55_000 ~ref_window:125_000 ~kind:Workload.Media
    ~trait:"single hot subroutine; slightly richer branch mix" ()

(* --- gsm: integer linear prediction -------------------------------- *)

let gsm_decode_prog =
  B.program ~name:"gsm_decode" @@ fun b ->
  B.func b "short_term_synth"
    [ B.loop b (P.Const 115) [ int_dsp b ~length:120 ~region:(kb 8) () ] ];
  B.func b "long_term_synth"
    [ B.loop b (P.Const 60) [ int_dsp b ~length:80 ~region:(kb 8) () ] ];
  B.func b "main"
    [
      B.loop b
        (P.Scaled { base = 0; per_scale = 4 })
        [ B.call b "long_term_synth"; B.call b "short_term_synth" ];
    ];
  "main"

let gsm_decode =
  Workload.make ~name:"gsm decode" ~program:gsm_decode_prog
    ~train_window:60_000 ~ref_window:140_000 ~kind:Workload.Media
    ~trait:"two integer synthesis filters alternate per frame" ()

let gsm_encode_prog =
  B.program ~name:"gsm_encode" @@ fun b ->
  B.func b "preprocess"
    [ B.loop b (P.Const 40) [ int_dsp b ~length:70 ~region:(kb 8) () ] ];
  B.func b "lpc_analysis"
    [ B.loop b (P.Const 95) [ int_dsp b ~length:130 ~region:(kb 8) () ] ];
  B.func b "short_term_analysis"
    [ B.loop b (P.Const 105) [ int_dsp b ~length:110 ~region:(kb 8) () ] ];
  B.func b "long_term_search"
    [
      B.loop b (P.Const 100)
        [ int_dsp b ~length:100 ~region:(kb 8) ~dep_chain:2.5 () ];
    ];
  B.func b "main"
    [
      B.loop b
        (P.Scaled { base = 0; per_scale = 3 })
        [
          B.call b "preprocess";
          B.call b "lpc_analysis";
          B.call b "short_term_analysis";
          B.call b "long_term_search";
        ];
    ];
  "main"

let gsm_encode =
  Workload.make ~name:"gsm encode" ~program:gsm_encode_prog
    ~train_window:75_000 ~ref_window:160_000 ~kind:Workload.Media
    ~trait:"four analysis kernels per frame, all integer" ()

(* --- jpeg: blocked DCT codec ---------------------------------------- *)

let jpeg_compress_prog =
  B.program ~name:"jpeg_compress" @@ fun b ->
  B.func b "color_convert"
    [ B.loop b (P.Const 55) [ int_dsp b ~length:100 ~region:(kb 256) () ] ];
  B.func b "forward_dct"
    [ B.loop b (P.Const 90) [ fp_filter b ~length:140 ~region:(kb 64) () ] ];
  B.func b "quantize"
    [ B.loop b (P.Const 60) [ int_dsp b ~length:80 ~region:(kb 32) () ] ];
  B.func b "huffman"
    [ B.loop b (P.Const 120) [ table_lookup b ~length:90 () ] ];
  B.func b "process_rows"
    [
      B.call b "color_convert";
      B.call b "forward_dct";
      B.call b "quantize";
      B.call b "huffman";
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "process_rows" ];
    ];
  "main"

let jpeg_compress =
  Workload.make ~name:"jpeg compress" ~program:jpeg_compress_prog
    ~train_window:70_000 ~ref_window:170_000 ~kind:Workload.Media
    ~trait:"DCT (fp) and Huffman (int) phases alternate per row block" ()

let jpeg_decompress_prog =
  B.program ~name:"jpeg_decompress" @@ fun b ->
  B.func b "huffman_decode"
    [ B.loop b (P.Const 65) [ table_lookup b ~length:85 () ] ];
  B.func b "inverse_dct"
    [ B.loop b (P.Const 100) [ fp_filter b ~length:150 ~region:(kb 64) () ] ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "huffman_decode"; B.call b "inverse_dct" ];
    ];
  "main"

let jpeg_decompress =
  Workload.make ~name:"jpeg decompress" ~program:jpeg_decompress_prog
    ~train_window:55_000 ~ref_window:140_000 ~kind:Workload.Media
    ~trait:"inverse DCT dominates; small call tree" ()

(* --- mpeg2: decode takes paths in production that training misses ---
   B-pictures run the same vld/iq/idct subroutines but over a call chain
   the training input (almost) never exercises: path-tracking contexts
   see label 0 there and do not reconfigure, while L+F and F reconfigure
   the familiar units regardless of how they were reached. *)

let mpeg2_decode_prog =
  B.program ~name:"mpeg2_decode" @@ fun b ->
  B.func b "variable_length_decode"
    [ B.loop b (P.Const 120) [ table_lookup b ~length:95 () ] ];
  B.func b "inverse_quantize"
    [ B.loop b (P.Const 115) [ int_dsp b ~length:95 ~region:(kb 32) () ] ];
  B.func b "idct_block"
    [ B.loop b (P.Const 100) [ fp_filter b ~length:130 ~region:(kb 64) () ] ];
  B.func b "motion_comp_forward"
    [ B.loop b (P.Const 95) [ int_dsp b ~length:110 ~region:(kb 512) () ] ];
  B.func b "motion_comp_bidir"
    [
      B.loop b (P.Const 100)
        [ fp_filter b ~length:120 ~region:(kb 512) ~dep_chain:3.5 () ];
    ];
  B.func b "decode_ip_picture"
    [
      B.call b "variable_length_decode";
      B.call b "inverse_quantize";
      B.call b "idct_block";
      B.call b "motion_comp_forward";
    ];
  B.func b "decode_b_picture"
    [
      B.call b "variable_length_decode";
      B.call b "inverse_quantize";
      B.call b "idct_block";
      B.call b "motion_comp_bidir";
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [
          B.choose b
            ~prob:(fun inp -> inp.P.divergence)
            [ B.call b "decode_b_picture" ]
            [ B.call b "decode_ip_picture" ];
        ];
    ];
  "main"

let mpeg2_decode =
  Workload.make ~name:"mpeg2 decode" ~program:mpeg2_decode_prog
    ~train_divergence:0.0 ~ref_divergence:0.45 ~train_window:90_000
    ~ref_window:180_000 ~kind:Workload.Media
    ~trait:
      "B-frame paths appear in production but (almost) never in training"
    ()

(* encode has subroutines containing more than one long-running loop —
   reconfiguring loops individually trades a little performance for
   extra energy, as the paper notes *)
let mpeg2_encode_prog =
  B.program ~name:"mpeg2_encode" @@ fun b ->
  B.func b "motion_estimate"
    [
      B.loop b (P.Const 100)
        [ int_dsp b ~length:130 ~region:(kb 512) ~dep_chain:2.5 () ];
      B.loop b (P.Const 100) [ int_dsp b ~length:100 ~region:(kb 512) () ];
    ];
  B.func b "transform_quantize"
    [
      B.loop b (P.Const 90) [ fp_filter b ~length:120 ~region:(kb 64) () ];
      B.loop b (P.Const 60) [ int_dsp b ~length:90 ~region:(kb 32) () ];
    ];
  B.func b "rate_control"
    [ B.loop b (P.Const 30) [ int_dsp b ~length:60 ~region:(kb 16) () ] ];
  B.func b "vlc_encode"
    [ B.loop b (P.Const 45) [ table_lookup b ~length:80 () ] ];
  B.func b "encode_picture"
    [
      B.call b "motion_estimate";
      B.call b "transform_quantize";
      B.call b "rate_control";
      B.call b "vlc_encode";
    ];
  B.func b "main"
    [
      B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "encode_picture" ];
    ];
  "main"

let mpeg2_encode =
  Workload.make ~name:"mpeg2 encode" ~program:mpeg2_encode_prog
    ~train_window:100_000 ~ref_window:190_000 ~kind:Workload.Media
    ~trait:"subroutines contain multiple long-running loops" ()

let all =
  [
    adpcm_decode;
    adpcm_encode;
    epic_decode;
    epic_encode;
    g721_decode;
    g721_encode;
    gsm_decode;
    gsm_encode;
    jpeg_compress;
    jpeg_decompress;
    mpeg2_decode;
    mpeg2_encode;
  ]
