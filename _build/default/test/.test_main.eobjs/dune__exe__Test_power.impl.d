test/test_power.ml: Alcotest Array List Mcd_domains Mcd_power Mcd_util
