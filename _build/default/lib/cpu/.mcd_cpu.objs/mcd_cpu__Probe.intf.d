lib/cpu/probe.mli: Mcd_domains Mcd_isa Mcd_util
