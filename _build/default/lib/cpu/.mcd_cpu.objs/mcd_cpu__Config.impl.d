lib/cpu/config.ml: Format Mcd_domains Printf
