(** The SPEC CPU2000 half of the suite: three integer benchmarks (gzip,
    vpr, mcf) and four floating-point ones (swim, applu, art, equake),
    mirroring the paper's selection and the behaviours its evaluation
    highlights (vpr's near-zero train/ref coverage, swim's input-size
    dependent loop classification, art's seven sub-loops, mcf's
    memory-bound pointer chasing). *)

val gzip : Workload.t
val vpr : Workload.t
val mcf : Workload.t
val swim : Workload.t
val applu : Workload.t
val art : Workload.t
val equake : Workload.t

val all : Workload.t list
(** In the paper's Table 2 order: gzip, vpr, mcf, swim, applu, art,
    equake. *)
