lib/util/table.ml: Buffer List Option Printf String
