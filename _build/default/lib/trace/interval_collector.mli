(** Fixed-interval primitive-event collection.

    The paper's off-line comparison point (its reference [30]) chooses
    voltages and frequencies at fixed instruction intervals with perfect
    future knowledge, regardless of program structure. This collector
    supports that analysis: it files the probe's events into consecutive
    buckets of [interval_insts] dynamic instructions each, ignoring
    markers entirely. *)

type t

val create : ?interval_insts:int -> ?max_events_per_interval:int -> unit -> t
(** Defaults: 10_000 instructions per interval, 80_000 events cap. *)

val probe : t -> Mcd_cpu.Probe.t

val intervals : t -> Mcd_cpu.Probe.event array list
(** Buckets in stream order, each sorted by (seq, stage). *)

val interval_insts : t -> int
