(** The MCD reconfiguration register.

    The paper assumes a single unprivileged instruction that writes all
    four domain frequencies at once; this module is that register. A
    setting is an array of four frequencies (MHz) indexed by
    {!Domain.index}. *)

type setting = int array

val full_speed : unit -> setting
(** Fresh setting with every domain at 1 GHz. *)

val make :
  front_end:int -> integer:int -> floating:int -> memory:int -> setting
(** Frequencies are snapped to legal steps. *)

val get : setting -> Domain.t -> int
val equal : setting -> setting -> bool
val pp : Format.formatter -> setting -> unit

type t

val create : Dvfs.t -> t

val write :
  ?on_snap:(requested:int -> snapped:int -> unit) ->
  t ->
  setting ->
  now:Mcd_util.Time.t ->
  unit
(** Program all four domain targets; no idle time is incurred. Off-grid
    frequencies are snapped exactly as {!Dvfs.set_target} does; [on_snap]
    receives each snapped value so callers can emit a validation
    diagnostic instead of losing the discrepancy silently. *)

val writes : t -> int
(** Number of register writes so far (reconfigurations performed). *)

val last_setting : t -> setting
