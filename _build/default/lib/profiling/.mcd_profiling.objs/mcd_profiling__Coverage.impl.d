lib/profiling/coverage.ml: Call_tree Context List
