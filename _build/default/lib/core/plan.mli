(** A reconfiguration plan: the output of off-line analysis.

    Maps every long-running call-tree node to the domain frequencies
    chosen by slowdown thresholding, and every long-running *static
    unit* (subroutine or loop) to a merged setting for the run-time
    schemes that ignore calling context (L+F and F — when instances of a
    unit reached over different paths get different per-node settings,
    the merged setting is thresholded over their combined histograms,
    which is what "choosing the average frequency of all instances"
    amounts to).

    Retains the per-node histograms, so sweeping the slowdown threshold
    (Figures 10/11) re-runs only the cheap thresholding step, not the
    shaker. *)

type t = {
  tree : Mcd_profiling.Call_tree.t;
  context : Mcd_profiling.Context.t;  (** the run-time context *)
  slowdown_pct : float;
  node_settings : (int, Mcd_domains.Reconfig.setting) Hashtbl.t;
  unit_settings :
    (Mcd_profiling.Call_tree.static_unit, Mcd_domains.Reconfig.setting)
    Hashtbl.t;
  node_histograms : (int, Mcd_util.Histogram.t array) Hashtbl.t;
  node_paths : (int, Path_model.t) Hashtbl.t;
}

val make :
  tree:Mcd_profiling.Call_tree.t ->
  context:Mcd_profiling.Context.t ->
  slowdown_pct:float ->
  node_histograms:(int * Mcd_util.Histogram.t array) list ->
  ?node_paths:(int * Path_model.t) list ->
  unit ->
  t
(** Runs thresholding per node and per merged static unit, then — when a
    path model is available — validates each chosen setting against the
    node's recorded critical paths, raising frequencies until the
    estimated slowdown respects the delta (the delay-calculation step).
    Finally applies transition-aware swing clamping (below). Long nodes
    with no recorded histogram get full-speed settings. *)

val swing_allowance_mhz : duration_ps:float -> f_target_mhz:int -> int
(** Transition-aware swing bound. Frequency slews at 73.3 ns/MHz, so a
    node entered with a domain [delta] MHz below its chosen point loses
    roughly [delta^2 x 36.65 / f] ns of that domain's work to the ramp.
    This returns the largest [delta] whose ramp loss stays within a
    small fraction of the node's duration. Plans clamp every node's
    per-domain setting to within this allowance of the suite-wide
    maximum for that domain, so no reconfiguration can trigger a ramp
    the destination node cannot amortize. (The paper never needed this:
    its phases were millions of instructions, far longer than the 55 us
    full-range transition; our scaled-down windows are not.) *)

val setting_for_node : t -> int -> Mcd_domains.Reconfig.setting option
(** [Some] exactly for long-running nodes. *)

val setting_for_unit :
  t -> Mcd_profiling.Call_tree.static_unit -> Mcd_domains.Reconfig.setting option

val with_slowdown : t -> slowdown_pct:float -> t
(** Re-threshold the retained histograms at a different delta. *)

val static_reconfig_points : t -> int
(** Distinct static units carrying reconfiguration code. *)

val static_instr_points : t -> int
(** Distinct static units (and, under site-tracking contexts, call
    sites) carrying any inserted code, reconfiguration included. *)

val pp : Format.formatter -> t -> unit
