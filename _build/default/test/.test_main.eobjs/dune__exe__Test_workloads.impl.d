test/test_workloads.ml: Alcotest List Mcd_isa Mcd_profiling Mcd_workloads String
