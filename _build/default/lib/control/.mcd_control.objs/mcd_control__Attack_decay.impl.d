lib/control/attack_decay.ml: Array List Mcd_cpu Mcd_domains
