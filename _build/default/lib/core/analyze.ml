module Call_tree = Mcd_profiling.Call_tree
module Context = Mcd_profiling.Context
module Collector = Mcd_trace.Collector
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq

type stats = {
  profiled_insts : int;
  traced_insts : int;
  long_nodes : int;
  segments_shaken : int;
  events_shaken : int;
  shaker_passes_total : int;
}

let min_segment_events = 50

let analyze ~program ~train ~context ?(slowdown_pct = 7.0)
    ?(threshold_insts = Call_tree.default_threshold)
    ?(profile_insts = 400_000) ?(trace_insts = 120_000) ?(shaker_passes = 24)
    ?(config = Config.alpha21264_like) () =
  (* phase 1: instrumented profiling walk *)
  let tree =
    Call_tree.build program ~input:train ~context ~threshold:threshold_insts
      ~max_insts:profile_insts ()
  in
  (* phase 2: full-speed pipeline run with the trace probe *)
  let collector = Collector.create ~tree () in
  let metrics =
    Pipeline.run ~probe:(Collector.probe collector) ~config ~program
      ~input:train ~max_insts:trace_insts ()
  in
  let segments_shaken = ref 0 in
  let events_shaken = ref 0 in
  let passes_total = ref 0 in
  let node_histograms = ref [] in
  let node_paths = ref [] in
  List.iter
    (fun (node_id, segments) ->
      let merged =
        Array.init Domain.count (fun _ ->
            Histogram.create ~bins:Freq.num_steps)
      in
      let paths = ref Path_model.empty in
      let used = ref false in
      List.iter
        (fun seg ->
          if Array.length seg >= min_segment_events then begin
            let dag = Dag.build ~rob_size:config.Config.rob_size seg in
            let result = Shaker.run ~max_passes:shaker_passes dag in
            incr segments_shaken;
            events_shaken := !events_shaken + result.Shaker.total_events;
            passes_total := !passes_total + result.Shaker.passes;
            Array.iteri
              (fun i h -> Histogram.merge_into ~dst:merged.(i) ~src:h)
              result.Shaker.histograms;
            paths := Path_model.add_segment !paths (Dag.path_signatures dag);
            used := true
          end)
        segments;
      if !used then begin
        node_histograms := (node_id, merged) :: !node_histograms;
        node_paths := (node_id, !paths) :: !node_paths
      end)
    (Collector.segments collector);
  let plan =
    Plan.make ~tree ~context ~slowdown_pct
      ~node_histograms:!node_histograms ~node_paths:!node_paths ()
  in
  let stats =
    {
      profiled_insts = Call_tree.instructions_profiled tree;
      traced_insts = metrics.Mcd_power.Metrics.instructions;
      long_nodes = Call_tree.long_count tree;
      segments_shaken = !segments_shaken;
      events_shaken = !events_shaken;
      shaker_passes_total = !passes_total;
    }
  in
  (plan, stats)
