type 'a t = { data : 'a array; mutable len : int; dummy : 'a }

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Agequeue.create: capacity must be > 0";
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len
let capacity t = Array.length t.data
let is_empty t = t.len = 0
let is_full t = t.len >= Array.length t.data

let push t v =
  if is_full t then invalid_arg "Agequeue.push: queue is full";
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Agequeue.get: index out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

(* The predicate is applied to every element oldest-first, matching
   [List.filter] on an age-ordered list, so effectful predicates (issue
   budgets, port counters) observe the exact same sequence. Survivors
   are compacted toward the front; vacated slots are reset to [dummy]
   so removed elements become collectable. *)
let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let v = t.data.(i) in
    if p v then begin
      if !j < i then t.data.(!j) <- v;
      incr j
    end
  done;
  let kept = !j in
  for i = kept to t.len - 1 do
    t.data.(i) <- t.dummy
  done;
  t.len <- kept

let clear t =
  for i = 0 to t.len - 1 do
    t.data.(i) <- t.dummy
  done;
  t.len <- 0

let to_list t = List.init t.len (fun i -> t.data.(i))
