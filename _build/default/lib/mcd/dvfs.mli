(** Per-domain dynamic voltage and frequency scaling state.

    Modelled on the Intel XScale behaviour assumed by the paper: a
    reconfiguration write incurs no idle time — the domain keeps
    executing through the change — but frequency slews toward the target
    at 73.3 ns per MHz, so traversing the full 750 MHz range takes 55 us.
    Voltage tracks the instantaneous frequency. *)

type t

val create : unit -> t
(** All domains at full speed (1 GHz, 1.2 V). *)

val slew_ns_per_mhz : float
(** 73.3 ns/MHz. *)

val set_target : t -> Domain.t -> now:Mcd_util.Time.t -> mhz:int -> unit
(** Begin slewing the domain toward [mhz] (snapped to a legal step). *)

val force : t -> Domain.t -> mhz:int -> unit
(** Set the domain's operating point instantaneously (no slew). Used to
    initialise alternative machine configurations — e.g. a globally
    synchronous core at a lower frequency — not to model transitions. *)

val target_mhz : t -> Domain.t -> int

val current_mhz : t -> Domain.t -> now:Mcd_util.Time.t -> float
(** Instantaneous frequency, advancing the internal ramp to [now].
    Queries at times before the previous observation answer with the
    current operating point (the ramp is never rewound). *)

val voltage : t -> Domain.t -> now:Mcd_util.Time.t -> float

val energy_scale : t -> Domain.t -> now:Mcd_util.Time.t -> float
(** [(v/vmax)^2] at the instantaneous operating point. *)

val in_transition : t -> Domain.t -> now:Mcd_util.Time.t -> bool
