(** Blocking synchronous client for the experiment daemon.

    One connection, one outstanding command at a time — exactly the
    shape the CLI subcommands and the smoke harness need. Each call
    maps a {!Protocol} exchange to a typed result; server-side
    rejections come back as the corresponding {!Mcd_robust.Error.t}
    (so [Overloaded] carries its retry-after hint and exits with the
    overload code), transport failures as [Server_unavailable]. *)

type t

val connect : socket:string -> (t, Mcd_robust.Error.t) result
(** Connect and consume the greeting. [Server_unavailable] when nothing
    listens; [Protocol_violation] when the peer speaks something other
    than protocol version {!Protocol.version}. *)

val close : t -> unit
(** Sends [quit] (best effort) and closes the connection. *)

val version : t -> int
val workers : t -> int
val queue_max : t -> int
(** Fields of the server's greeting. *)

val ping : t -> (unit, Mcd_robust.Error.t) result

type ticket = { id : int; digest : string; coalesced : bool }

val submit :
  ?priority:Protocol.priority ->
  t ->
  Protocol.request ->
  (ticket, Mcd_robust.Error.t) result
(** [priority] defaults to [Normal]. [coalesced] is true when the
    request attached to an existing job instead of enqueueing. *)

val status : t -> int -> (Protocol.state, Mcd_robust.Error.t) result

val wait : t -> int -> (Protocol.state, Mcd_robust.Error.t) result
(** Blocks until the job is terminal (the server parks the
    connection). *)

val result : t -> int -> (string, Mcd_robust.Error.t) result
(** The job's payload bytes. [Runtime_fault] for a failed job,
    [Protocol_violation] for an unknown or unfinished one. *)

val run :
  ?priority:Protocol.priority ->
  t ->
  Protocol.request ->
  (string, Mcd_robust.Error.t) result
(** [submit] + [wait] + [result]: the one-call request path. *)

val stats : t -> (string, Mcd_robust.Error.t) result
(** The server's metrics registry as JSON lines
    ({!Mcd_obs.Export.metrics_jsonl}), including the mirrored
    [store.*] gauges. *)

val drain : t -> (unit, Mcd_robust.Error.t) result
(** Ask the server to stop admitting, finish in-flight work, and
    exit. *)

(** {2 Retrying requests}

    A request loop that survives server restarts. Job-level transient
    rejections ([Overloaded], [Draining], [Unknown_job]) arrive on a
    healthy connection, so their retries reuse it — no reconnect tax;
    a transport failure ([Server_unavailable]) drops the connection
    and the next attempt reconnects. A severed-mid-wait resubmit
    either coalesces onto the job the restarted server replayed from
    its journal, or (if the job completed and was compacted away) hits
    the content-addressed store and returns the same bytes. *)

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_ms : int;  (** backoff scale for attempt 0 *)
  max_delay_ms : int;
      (** ceiling on any single sleep, including server hints *)
  seed : int option;
      (** jitter stream ({!Mcd_util.Rng}). [Some s] is deterministic —
          the chaos harness replays byte-identical schedules; [None]
          derives a fresh pid-mixed seed per call, so independent
          clients never share a jitter schedule (a fleet retrying in
          lockstep is the thundering herd jitter exists to prevent) *)
  sleep : float -> unit;  (** seconds; tests stub this out *)
}

val default_policy : retry_policy
(** 8 attempts, 50ms base, 5s cap, auto seed ([None]),
    [Unix.sleepf]. *)

val retryable : Mcd_robust.Error.t -> bool
(** [Overloaded], [Draining], [Server_unavailable] and [Unknown_job]
    are transient service states; everything else is a verdict about
    the request and is returned as-is. *)

val run_with_retry :
  ?priority:Protocol.priority ->
  ?policy:retry_policy ->
  socket:string ->
  Protocol.request ->
  (string, Mcd_robust.Error.t) result
(** {!run} under capped exponential backoff with full jitter, floored
    at the server's [retry_after_ms] hint when an [Overloaded]
    rejection carries one. Returns the last error once
    [policy.max_attempts] attempts are spent or a terminal error
    appears. *)

(** {2 Pipelined connections}

    Many requests in flight on one socket. Every command carries a
    [seq] tag; the server echoes it on the answering reply — including
    [wait] answers deferred until the job turns terminal — so replies
    for different requests interleave in completion order and are
    routed back by tag. Each {!Pipeline.run} walks the same
    submit → wait → result exchange as the blocking {!run}, one
    round-trip per phase but overlapped across requests, which is
    where the pipelined throughput multiple comes from.

    The connection is non-blocking and single-threaded: callbacks fire
    inside {!Pipeline.pump} on the caller's thread. Drive many
    connections from one loop via {!Pipeline.fd} and external
    readiness, or just {!Pipeline.pump} each in turn. *)
module Pipeline : sig
  type t

  val connect :
    ?max_payload:int -> socket:string -> unit -> (t, Mcd_robust.Error.t) result
  (** Connect, consume the greeting, switch to non-blocking.
      [max_payload] bounds any single reply body
      (default {!Protocol.Frames.default_max_payload}). *)

  val close : t -> unit
  (** Best-effort [quit], then close. In-flight callbacks never fire
      after [close]. *)

  val version : t -> int
  val workers : t -> int
  val queue_max : t -> int

  val fd : t -> Unix.file_descr
  (** For external readiness multiplexing across many connections. *)

  val in_flight : t -> int
  (** Requests submitted whose callback has not yet fired. *)

  val has_output : t -> bool
  (** Rendered commands not yet accepted by the socket. *)

  val run :
    ?priority:Protocol.priority ->
    t ->
    Protocol.request ->
    k:((string, Mcd_robust.Error.t) result -> unit) ->
    unit
  (** Start a request; [k] fires exactly once, from a later {!pump},
      with the payload or the typed error ({!run}'s result shape).
      After a transport failure every pending [k] fires with the
      error and new [run]s fail immediately. *)

  val pump : ?timeout_ms:int -> t -> (unit, Mcd_robust.Error.t) result
  (** Flush pending output, wait up to [timeout_ms] (default 0: just
      poll) for socket readiness, read and dispatch any completed
      replies. [Error] is terminal: the transport or framing is gone
      and all pending callbacks have been failed. *)
end
