(** Compact critical-path model of a long-running node.

    Slowdown thresholding budgets aggregate work per domain, but the
    achieved slowdown of a node is governed by its critical paths: if
    events on the binding path are forced above their ideal frequency,
    the whole node stretches. The paper acknowledges its delay
    calculation is "by necessity approximate"; this model is the
    validation step that keeps the tolerated slowdown meaningful.

    For each recorded segment we retain a handful of path signatures —
    the per-domain time composition of the paths that become critical
    when each domain is slowed — plus the full-speed critical-path
    length. Estimating a candidate setting's slowdown is then a max over
    signatures of a 4-term dot product, cheap enough to run inside the
    frequency-selection loop and when re-thresholding at a different
    delta. *)

type segment = {
  base_ps : float;  (** full-speed critical-path length *)
  signatures : float array list;
      (** candidate binding paths: per-domain scaling time in the first
          {!Mcd_domains.Domain.count} entries, frequency-independent
          remainder in the last *)
}

type t = { segments : segment list }

val empty : t
val add_segment : t -> segment -> t
val union : t -> t -> t

val estimated_slowdown_pct : t -> Mcd_domains.Reconfig.setting -> float
(** Estimated node slowdown (percent over full speed) at the given
    setting: per segment, the worst signature's scaled length relative
    to the full-speed baseline, weighted across segments. 0 for an empty
    model. *)

val refine :
  t -> Mcd_domains.Reconfig.setting -> slowdown_pct:float ->
  Mcd_domains.Reconfig.setting
(** Starting from a thresholding-chosen setting, raise domain
    frequencies (greedily, the most beneficial domain first) until the
    estimated slowdown is within [slowdown_pct] (a small tolerance is
    allowed) or all domains are at full speed. Returns a fresh array. *)
