lib/experiments/headline.mli: Mcd_workloads Runner
