lib/mcd/freq.ml: Array Float Printf
