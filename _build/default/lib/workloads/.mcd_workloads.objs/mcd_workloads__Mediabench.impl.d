lib/workloads/mediabench.ml: Mcd_isa Workload
