(* mcd-dvfs: command-line driver for the MCD DVFS simulator.

     mcd-dvfs suite                         list benchmarks
     mcd-dvfs run mcf --policy profile      simulate one benchmark
     mcd-dvfs tree "gsm encode"             print the training call tree
     mcd-dvfs plan "gsm encode"             print the reconfiguration plan
     mcd-dvfs compare mcf                   baseline/off-line/on-line/L+F
     mcd-dvfs tournament --quick            rank the policy zoo
     mcd-dvfs campaign --count 100          adversarial generated-workload sweep
     mcd-dvfs trace mcf --out dir           traced run + exporters
     mcd-dvfs cache stats                   persistent result cache usage
     mcd-dvfs robustness --seed 7           fault-injection campaign
     mcd-dvfs serve --socket S              experiment daemon
     mcd-dvfs submit mcf --socket S         run a benchmark via the daemon
     mcd-dvfs status --socket S [ID]        job state / server stats
     mcd-dvfs drain --socket S              graceful daemon shutdown

   Exit codes are documented once, in the top-level EXIT STATUS section
   ([exits] below): 0 success, 1 campaign failure, 2 validation error,
   3 I/O error, 4 server overloaded (see Mcd_robust.Error.exit_code). *)

open Cmdliner

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Runner = Mcd_experiments.Runner
module Robustness = Mcd_experiments.Robustness
module Tournament = Mcd_experiments.Tournament
module Campaign = Mcd_experiments.Campaign
module Gspec = Mcd_gen.Spec
module Policies = Mcd_control.Policies
module Json = Mcd_obs.Json
module Metrics = Mcd_power.Metrics
module Table = Mcd_util.Table
module Error = Mcd_robust.Error
module Inject = Mcd_robust.Inject
module Server = Mcd_serve.Server
module Client = Mcd_serve.Client
module Sproto = Mcd_serve.Protocol

let workload_arg =
  let parse s =
    match Suite.find_opt s with
    | Some w -> Ok w
    | None ->
        Error (`Msg (Printf.sprintf "unknown benchmark %S (try `suite`)" s))
  in
  let print fmt w = Format.pp_print_string fmt w.Workload.name in
  Arg.conv (parse, print)

let context_arg =
  let parse s =
    match Context.of_name s with
    | c -> Ok c
    | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown context %S (e.g. L+F)" s))
  in
  let print fmt c = Format.pp_print_string fmt c.Context.name in
  Arg.conv (parse, print)

(* --- persistent result cache ------------------------------------------- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent result cache directory (overrides the \
           $(b,MCD_DVFS_CACHE) environment variable). Simulation results \
           are stored content-addressed and reused across invocations.")

(* Flag wins over environment; with neither, caching stays off. *)
let init_cache = function
  | Some dir ->
      Mcd_cache.Store.set_default (Some (Mcd_cache.Store.create ~dir))
  | None -> ignore (Mcd_cache.Store.default ())

(* Load a generated-workload spec from JSON: a bare mcd-gen-spec/1
   object, or any campaign hit/finding/report carrying one. Returns
   the designated exit code on failure. *)
let load_spec path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error (3, "mcd-dvfs: " ^ m)
  | text -> (
      match Json.of_string text with
      | Error e -> Error (2, Printf.sprintf "mcd-dvfs: %s: %s" path e)
      | Ok j -> (
          match Campaign.spec_of_replay_json j with
          | Error e -> Error (2, Printf.sprintf "mcd-dvfs: %s: %s" path e)
          | Ok spec -> Ok spec))

(* The single authoritative exit-code table (mirrors
   Mcd_robust.Error.exit_code). Defined once and threaded through every
   subcommand's info via [cmd_info], so each man page documents the
   same codes and none can drift. *)
let exits =
  Cmd.Exit.info 0 ~doc:"on success."
  :: Cmd.Exit.info 1 ~doc:"on a robustness campaign failure."
  :: Cmd.Exit.info 2
       ~doc:"on a validation error (rejected plan, malformed request)."
  :: Cmd.Exit.info 3
       ~doc:"on an I/O error (plan file, cache directory, server socket)."
  :: Cmd.Exit.info 4
       ~doc:
         "when the server sheds load (overloaded or draining); back off \
          and retry."
  :: Cmd.Exit.defaults

let cmd_info ?doc name = Cmd.info ?doc name ~exits

(* --- suite ----------------------------------------------------------- *)

let suite_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-16s %-10s %s\n" w.Workload.name
          (Workload.kind_name w.Workload.kind)
          w.Workload.trait)
      Suite.all;
    0
  in
  Cmd.v (cmd_info "suite" ~doc:"List the benchmark suite")
    Term.(const run $ const ())

(* --- run ------------------------------------------------------------- *)

(* The paper's four policies plus the global-DVS bar keep their
   historical spellings; any other name is looked up in the policy-zoo
   registry, so `run mcf --policy pid` works for every registered
   contender without a new enum case per policy. *)
let run_policy_arg =
  let parse s =
    match s with
    | "baseline" -> Ok `Baseline
    | "offline" -> Ok `Offline
    | "online" -> Ok `Online
    | "profile" -> Ok `Profile
    | "global" -> Ok `Global
    | s -> (
        match Policies.by_name s with
        | Some p -> Ok (`Zoo p)
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown policy %S (registry: %s)" s
                    (String.concat ", " (Policies.names ())))))
  in
  let print fmt = function
    | `Baseline -> Format.pp_print_string fmt "baseline"
    | `Offline -> Format.pp_print_string fmt "offline"
    | `Online -> Format.pp_print_string fmt "online"
    | `Profile -> Format.pp_print_string fmt "profile"
    | `Global -> Format.pp_print_string fmt "global"
    | `Zoo p -> Format.pp_print_string fmt (Mcd_control.Policy.id p)
  in
  Arg.conv (parse, print)

let print_breakdown (m : Metrics.run) =
  let domains = Mcd_domains.Domain.all in
  let rows =
    List.map
      (fun d ->
        [
          Mcd_domains.Domain.name d;
          Printf.sprintf "%.1f"
            (m.Metrics.per_domain_pj.(Mcd_domains.Domain.index d) /. 1000.0);
          Table.fmt_pct
            (100.0
            *. m.Metrics.per_domain_pj.(Mcd_domains.Domain.index d)
            /. m.Metrics.energy_pj);
        ])
      domains
    @ [
        [
          "external memory";
          Printf.sprintf "%.1f"
            (m.Metrics.per_domain_pj.(Mcd_domains.Domain.count) /. 1000.0);
          Table.fmt_pct
            (100.0
            *. m.Metrics.per_domain_pj.(Mcd_domains.Domain.count)
            /. m.Metrics.energy_pj);
        ];
      ]
  in
  print_string
    (Table.render ~header:[ "domain"; "energy (nJ)"; "share" ] ~rows ())

let run_cmd =
  let run w spec_file policy context breakdown cache_dir sample =
    init_cache cache_dir;
    if sample then
      Runner.set_sim_mode (Runner.Sampled Mcd_cpu.Sampler.default_params);
    match
      match (w, spec_file) with
      | Some w, None -> Ok w
      | None, Some path ->
          Result.map
            (fun spec ->
              let w = Gspec.workload spec in
              Suite.register w;
              w)
            (load_spec path)
      | Some _, Some _ ->
          Error (2, "mcd-dvfs: give either BENCHMARK or --spec, not both")
      | None, None -> Error (2, "mcd-dvfs: missing BENCHMARK (or --spec FILE)")
    with
    | Error (code, msg) ->
        prerr_endline msg;
        code
    | Ok w ->
    let baseline = Runner.baseline w in
    let metrics =
      match policy with
      | `Baseline -> baseline
      | `Offline -> Runner.offline_run w
      | `Online -> Runner.online_run w
      | `Profile -> (Runner.profile_run w ~context ~train:`Train).Runner.run
      | `Global ->
          let off = Runner.offline_run w in
          let g, mhz =
            Runner.global_dvs_run w
              ~target_runtime_ps:off.Metrics.runtime_ps
          in
          Printf.printf "global frequency: %d MHz\n" mhz;
          g
      | `Zoo p -> Runner.policy_run p w
    in
    Format.printf "%a@." Metrics.pp metrics;
    if breakdown then print_breakdown metrics;
    if metrics != baseline then begin
      let c = Runner.compare_runs ~baseline metrics in
      Format.printf
        "vs baseline: slowdown %.1f%%, energy savings %.1f%%, ExD %+.1f%%@."
        c.Runner.degradation_pct c.Runner.savings_pct
        c.Runner.ed_improvement_pct
    end;
    0
  in
  let w = Arg.(value & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  let spec_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Simulate a generated workload instead of a named benchmark: \
             $(docv) holds an mcd-gen-spec/1 JSON object (or any campaign \
             finding carrying one, see $(b,campaign)).")
  in
  let policy =
    Arg.(value & opt run_policy_arg `Profile
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:
               "baseline | offline | online | profile | global, or any \
                policy-zoo registry label (see $(b,tournament))")
  in
  let context =
    Arg.(value & opt context_arg Context.lf
         & info [ "context" ] ~docv:"CTX"
             ~doc:"Calling-context definition (L+F+C+P, L+F+P, F+C+P, F+P, L+F, F)")
  in
  let breakdown =
    Arg.(value & flag
         & info [ "breakdown" ] ~doc:"Print per-domain energy breakdown")
  in
  let sample =
    Arg.(
      value
      & vflag false
          [
            ( true,
              info [ "sample" ]
                ~doc:
                  "Simulate under phase sampling: repeating call-tree \
                   phases run once per frequency-vector signature and are \
                   extrapolated. Faster, approximate; results are cached \
                   separately from exact ones." );
            ( false,
              info [ "exact" ]
                ~doc:"Exact cycle-level simulation (the default)." );
          ])
  in
  Cmd.v
    (cmd_info "run" ~doc:"Simulate a benchmark under a policy")
    Term.(
      const run $ w $ spec_file $ policy $ context $ breakdown $ cache_dir_arg
      $ sample)

(* --- tree ------------------------------------------------------------ *)

let tree_cmd =
  let run w context reference dot =
    let train = if reference then `Reference else `Train in
    let tree = Runner.training_tree w ~context ~train in
    if dot then print_string (Call_tree.to_dot tree)
    else begin
      Format.printf "%a@." Call_tree.pp tree;
      Format.printf "%d nodes, %d long-running@." (Call_tree.size tree - 1)
        (Call_tree.long_count tree)
    end;
    0
  in
  let w = Arg.(required & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  let context =
    Arg.(value & opt context_arg Context.lfcp
         & info [ "context" ] ~docv:"CTX" ~doc:"Calling-context definition")
  in
  let reference =
    Arg.(value & flag & info [ "reference" ] ~doc:"Profile the reference input")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text")
  in
  Cmd.v
    (cmd_info "tree" ~doc:"Print a benchmark's annotated call tree")
    Term.(const run $ w $ context $ reference $ dot)

(* --- plan ------------------------------------------------------------ *)

let plan_cmd =
  let show plan save =
    Format.printf "%a@." Mcd_core.Plan.pp plan;
    Printf.printf "static points: %d reconfiguration, %d instrumented\n"
      (Mcd_core.Plan.static_reconfig_points plan)
      (Mcd_core.Plan.static_instr_points plan);
    (match save with
    | Some path ->
        Mcd_core.Plan_io.save plan ~path;
        Printf.printf "saved to %s\n" path
    | None -> ());
    0
  in
  let run w context delta save load cache_dir =
    init_cache cache_dir;
    match load with
    | Some path -> (
        match Runner.load_plan w ~context ~path with
        | Error errors ->
            Format.eprintf "%s: rejected:@.%a" path Error.pp_list errors;
            Error.exit_code_of_list errors
        | Ok { Mcd_core.Plan_io.plan; warnings } ->
            if warnings <> [] then
              Format.eprintf "%s: loaded with repairs:@.%a" path Error.pp_list
                warnings;
            show plan save)
    | None ->
        let plan =
          if delta = Runner.default_slowdown_pct then
            Runner.plan_for w ~context ~train:`Train
          else
            Mcd_core.Plan.with_slowdown
              (Runner.plan_for w ~context ~train:`Train)
              ~slowdown_pct:delta
        in
        show plan save
  in
  let w = Arg.(required & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  let context =
    Arg.(value & opt context_arg Context.lf
         & info [ "context" ] ~docv:"CTX" ~doc:"Calling-context definition")
  in
  let delta =
    Arg.(value & opt float Runner.default_slowdown_pct
         & info [ "slowdown" ] ~docv:"PCT" ~doc:"Tolerated slowdown")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Write the plan to a file")
  in
  let load =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Read a previously saved plan instead of analyzing")
  in
  Cmd.v
    (cmd_info "plan" ~doc:"Print a benchmark's reconfiguration plan")
    Term.(const run $ w $ context $ delta $ save $ load $ cache_dir_arg)

(* --- compare ---------------------------------------------------------- *)

let compare_cmd =
  let run w cache_dir =
    init_cache cache_dir;
    let baseline = Runner.baseline w in
    let row name m =
      let c = Runner.compare_runs ~baseline m in
      [
        name;
        Table.fmt_pct c.Runner.degradation_pct;
        Table.fmt_pct c.Runner.savings_pct;
        Table.fmt_pct c.Runner.ed_improvement_pct;
        string_of_int m.Metrics.reconfigurations;
      ]
    in
    let offline = Runner.offline_run w in
    let online = Runner.online_run w in
    let profile =
      (Runner.profile_run w ~context:Context.lf ~train:`Train).Runner.run
    in
    let global, mhz =
      Runner.global_dvs_run w ~target_runtime_ps:offline.Metrics.runtime_ps
    in
    print_string
      (Table.render
         ~header:[ "policy"; "slowdown"; "energy saved"; "ExD"; "reconfigs" ]
         ~rows:
           [
             row "off-line (oracle)" offline;
             row "on-line (attack/decay)" online;
             row "profile L+F" profile;
             row (Printf.sprintf "global DVS @%d MHz" mhz) global;
           ]
         ());
    0
  in
  let w = Arg.(required & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  Cmd.v
    (cmd_info "compare" ~doc:"Compare all policies on one benchmark")
    Term.(const run $ w $ cache_dir_arg)

(* --- tournament -------------------------------------------------------- *)

let tournament_cmd =
  let run quick jobs json_out cache_dir workloads =
    init_cache cache_dir;
    Runner.set_jobs jobs;
    let workloads =
      match workloads with
      | [] -> if quick then Tournament.quick_workloads () else Suite.all
      | ws -> ws
    in
    let t = Tournament.run ~workloads () in
    print_string (Tournament.render t);
    match json_out with
    | None -> 0
    | Some path -> (
        try
          let oc = open_out path in
          output_string oc (Json.to_string (Tournament.to_json t));
          output_char oc '\n';
          close_out oc;
          0
        with Sys_error m ->
          prerr_endline ("mcd-dvfs: " ^ m);
          3)
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Race on the bench harness's five-benchmark subset instead of \
             the full suite.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan the per-workload sweep out over $(docv) OCaml domains \
             (default 1 = sequential; 0 = all cores). The ranking is \
             byte-identical at any jobs count.")
  in
  let jobs_resolved =
    Term.(
      const (fun j -> if j <= 0 then Mcd_util.Par.recommended_jobs () else j)
      $ jobs)
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable report to $(docv).")
  in
  let workloads =
    Arg.(
      value & pos_all workload_arg []
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks to race on (default: the full suite).")
  in
  Cmd.v
    (cmd_info "tournament"
       ~doc:
         "Race every registered policy across the benchmark suite and \
          rank them by mean energy x delay improvement")
    Term.(
      const run $ quick $ jobs_resolved $ json_out $ cache_dir_arg $ workloads)

(* --- campaign ----------------------------------------------------------- *)

let campaign_cmd =
  let dp = Campaign.default_params in
  let run count seed slowdown epsilon margin minimize no_observe train_insts
      ref_insts jobs json_out replay cache_dir =
    init_cache cache_dir;
    Runner.set_jobs jobs;
    let params =
      {
        Campaign.count;
        seed;
        slowdown_pct = slowdown;
        epsilon_pct = epsilon;
        margin_pct = margin;
        minimize;
        observe = not no_observe;
        train_insts;
        ref_insts;
      }
    in
    match replay with
    | Some path -> (
        match load_spec path with
        | Error (code, msg) ->
            prerr_endline msg;
            code
        | Ok spec -> (
            Printf.printf "replaying %s (%s)\n" (Gspec.name spec)
              (Gspec.summary spec);
            match Campaign.replay ~params spec with
            | [] ->
                print_endline "no violation reproduced";
                1
            | kinds ->
                List.iter
                  (fun k ->
                    Printf.printf "  %s\n" (Campaign.describe_kind k))
                  kinds;
                0))
    | None -> (
        let r = Campaign.run ~params () in
        print_string (Campaign.render r);
        match json_out with
        | None -> 0
        | Some path -> (
            try
              let oc = open_out path in
              output_string oc (Json.to_string (Campaign.to_json r));
              output_char oc '\n';
              close_out oc;
              0
            with Sys_error m ->
              prerr_endline ("mcd-dvfs: " ^ m);
              3))
  in
  let count =
    Arg.(
      value & opt int dp.Campaign.count
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of seeded workload specs to generate and evaluate.")
  in
  let seed =
    Arg.(
      value & opt int dp.Campaign.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign master seed: the spec distribution (and shrinking) \
             is a pure function of it.")
  in
  let slowdown =
    Arg.(
      value & opt float dp.Campaign.slowdown_pct
      & info [ "slowdown" ] ~docv:"PCT"
          ~doc:"Profile-driven slowdown target the race runs at.")
  in
  let epsilon =
    Arg.(
      value & opt float dp.Campaign.epsilon_pct
      & info [ "epsilon" ] ~docv:"PP"
          ~doc:
            "Slack (percentage points) on the degradation-bound \
             assertion before it fires.")
  in
  let margin =
    Arg.(
      value & opt float dp.Campaign.margin_pct
      & info [ "margin" ] ~docv:"PP"
          ~doc:
            "ED-improvement margin a rival policy must win by before the \
             spec counts as a profile-loses find.")
  in
  let minimize =
    Arg.(
      value & opt int dp.Campaign.minimize
      & info [ "minimize" ] ~docv:"N"
          ~doc:"Max distinct find classes to shrink to minimal specs.")
  in
  let no_observe =
    Arg.(
      value & flag
      & info [ "no-observe" ]
          ~doc:
            "Skip the sink-observed runs (plan-floor and decision-grid \
             assertions); roughly halves per-spec cost.")
  in
  let train_insts =
    Arg.(
      value & opt int dp.Campaign.train_insts
      & info [ "train-insts" ] ~docv:"N"
          ~doc:"Training-input instruction window of generated specs.")
  in
  let ref_insts =
    Arg.(
      value & opt int dp.Campaign.ref_insts
      & info [ "ref-insts" ] ~docv:"N"
          ~doc:"Reference-input instruction window of generated specs.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan the sweep out over $(docv) OCaml domains (default 1 = \
             sequential; 0 = all cores). Results are byte-identical at \
             any jobs count.")
  in
  let jobs_resolved =
    Term.(
      const (fun j -> if j <= 0 then Mcd_util.Par.recommended_jobs () else j)
      $ jobs)
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable mcd-dvfs-campaign/1 report (every \
             find with its replayable spec) to $(docv).")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one stored counterexample spec instead of sweeping: \
             exits 0 when the violation reproduces, 1 when it does not.")
  in
  Cmd.v
    (cmd_info "campaign"
       ~doc:
         "Property campaign over generated workloads: sweep seeded specs, \
          check DVS invariants, race profile-driven control against \
          attack/decay, and shrink every find to a minimal replayable spec")
    Term.(
      const run $ count $ seed $ slowdown $ epsilon $ margin $ minimize
      $ no_observe $ train_insts $ ref_insts $ jobs_resolved $ json_out
      $ replay $ cache_dir_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let run w policy context out stride =
    let sink =
      Mcd_obs.Sink.create ~stride_cycles:stride
        ~domains:Mcd_domains.Domain.count ()
    in
    let metrics = Runner.observed_run ~policy ~context ~sink w in
    let domain_names =
      Array.of_list (List.map Mcd_domains.Domain.name Mcd_domains.Domain.all)
    in
    let files = Mcd_obs.Export.write_dir ~domain_names ~dir:out sink in
    Format.printf "%a@." Metrics.pp metrics;
    Printf.printf "%d samples, %d events retained (%d dropped)\n"
      (Mcd_obs.Series.length (Mcd_obs.Sink.series sink))
      (List.length (Mcd_obs.Sink.events sink))
      (Mcd_obs.Sink.dropped_events sink);
    List.iter (fun f -> Printf.printf "wrote %s\n" f) files;
    0
  in
  let w = Arg.(required & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  let policy_enum =
    Arg.enum
      [
        ("baseline", `Baseline);
        ("offline", `Offline);
        ("online", `Online);
        ("profile", `Profile);
      ]
  in
  let policy =
    Arg.(value & opt policy_enum `Profile
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"baseline | offline | online | profile")
  in
  let context =
    Arg.(value & opt context_arg Context.lf
         & info [ "context" ] ~docv:"CTX" ~doc:"Calling-context definition")
  in
  let out =
    Arg.(value & opt string "trace-out"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Output directory (created if missing)")
  in
  let stride =
    Arg.(value & opt int 2048
         & info [ "stride" ] ~docv:"CYCLES"
             ~doc:"Front-end cycles between time-series samples")
  in
  Cmd.v
    (cmd_info "trace"
       ~doc:
         "Simulate one benchmark with the observability sink attached and \
          export metrics.jsonl, series.csv and a Chrome trace (trace.json, \
          one track per clock domain)")
    Term.(const run $ w $ policy $ context $ out $ stride)

(* --- cache ------------------------------------------------------------- *)

let cache_cmd =
  (* stats/gc address a directory, not a run: the flag wins, then the
     environment; with neither there is nothing to inspect. *)
  let resolve_dir = function
    | Some dir -> Ok dir
    | None -> (
        match Sys.getenv_opt "MCD_DVFS_CACHE" with
        | Some dir when dir <> "" -> Ok dir
        | _ ->
            prerr_endline
              "mcd-dvfs cache: no cache directory (give --cache-dir or set \
               MCD_DVFS_CACHE)";
            Error 3)
  in
  let human_bytes b =
    if b >= 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int b /. 1_048_576.0)
    else if b >= 1_024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1_024.0)
    else Printf.sprintf "%d B" b
  in
  let stats dir =
    match resolve_dir dir with
    | Error code -> code
    | Ok dir ->
        let store = Mcd_cache.Store.create ~dir in
        let objects, bytes = Mcd_cache.Store.disk_usage store in
        print_string
          (Table.render
             ~header:[ "cache"; "value" ]
             ~rows:
               [
                 [ "directory"; dir ];
                 [ "objects"; string_of_int objects ];
                 [ "bytes"; Printf.sprintf "%d (%s)" bytes (human_bytes bytes) ];
               ]
             ());
        0
  in
  let gc dir max_bytes =
    match resolve_dir dir with
    | Error code -> code
    | Ok dir ->
        let store = Mcd_cache.Store.create ~dir in
        let removed, freed = Mcd_cache.Store.gc ~max_bytes store in
        Printf.printf "removed %d objects, freed %s\n" removed
          (human_bytes freed);
        0
  in
  let max_bytes =
    Arg.(
      value & opt int 0
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:
            "Byte budget to shrink the cache to, oldest objects first \
             (default 0: remove everything)")
  in
  let stats_cmd =
    Cmd.v
      (cmd_info "stats" ~doc:"Show object count and on-disk size")
      Term.(const stats $ cache_dir_arg)
  in
  let gc_cmd =
    Cmd.v
      (cmd_info "gc"
         ~doc:"Delete oldest cache objects until under a byte budget")
      Term.(const gc $ cache_dir_arg $ max_bytes)
  in
  Cmd.group
    (cmd_info "cache" ~doc:"Inspect or prune the persistent result cache")
    [ stats_cmd; gc_cmd ]

(* --- robustness -------------------------------------------------------- *)

let fault_arg =
  let parse s =
    match Inject.of_name s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault %S (one of: %s)" s
               (String.concat ", " Inject.names)))
  in
  let print fmt f = Format.pp_print_string fmt (Inject.name f) in
  Arg.conv (parse, print)

let robustness_cmd =
  let run seed faults workloads =
    let faults = if faults = [] then Inject.all else faults in
    let workloads = if workloads = [] then Suite.all else workloads in
    let report = Robustness.run ~workloads ~faults ~seed () in
    print_string (Robustness.render report);
    if Robustness.clean report then 0 else 1
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Master seed for all stochastic fault choices")
  in
  let faults =
    Arg.(value & opt_all fault_arg []
         & info [ "fault" ] ~docv:"FAULT"
             ~doc:
               ("Restrict to a fault class (repeatable). One of: "
               ^ String.concat ", " Inject.names))
  in
  let workloads =
    Arg.(value & pos_all workload_arg [] & info [] ~docv:"BENCHMARK")
  in
  Cmd.v
    (cmd_info "robustness"
       ~doc:
         "Run the fault-injection campaign: every fault class over the \
          benchmark suite, asserting zero crashes and bounded slowdown")
    Term.(const run $ seed $ faults $ workloads)

(* --- serve family ------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mcd-dvfs.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "MCD_DVFS_SOCKET")
        ~doc:"Unix-domain socket the experiment daemon listens on.")

let fail_error e =
  Format.eprintf "mcd-dvfs: %s@." (Error.to_string e);
  Error.exit_code e

let serve_cmd =
  let run socket workers queue_max client_max conn_inflight_max
      outbuf_max_bytes compute_delay_ms trace_dir no_journal journal_path
      deadline_ms retry_after_cap_ms cache_dir =
    init_cache cache_dir;
    let base = Server.default_config ~socket in
    let journal =
      if no_journal then None
      else match journal_path with Some p -> Some p | None -> base.journal
    in
    let cfg =
      {
        base with
        workers;
        queue_max;
        client_max;
        conn_inflight_max;
        outbuf_max_bytes;
        compute_delay_s = float_of_int compute_delay_ms /. 1000.0;
        trace_dir;
        journal;
        deadline_s =
          (if deadline_ms > 0 then Some (float_of_int deadline_ms /. 1000.0)
           else None);
        retry_after_cap_ms;
      }
    in
    Printf.printf "mcd-dvfs serve: listening on %s (%d workers, queue %d%s)\n%!"
      socket workers queue_max
      (match cfg.journal with
      | Some path -> ", journal " ^ path
      | None -> ", no journal");
    match Server.run cfg with
    | Ok () ->
        Printf.printf "mcd-dvfs serve: drained, bye\n%!";
        0
    | Error e -> fail_error e
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains")
  in
  let queue_max =
    Arg.(value & opt int 64
         & info [ "queue-max" ] ~docv:"N"
             ~doc:"Queued jobs admitted before submits are rejected \
                   $(b,overloaded)")
  in
  let client_max =
    Arg.(value & opt int 16
         & info [ "client-max" ] ~docv:"N"
             ~doc:"Queued jobs one client may hold (fairness bound)")
  in
  let conn_inflight_max =
    Arg.(value & opt int 128
         & info [ "conn-inflight-max" ] ~docv:"N"
             ~doc:"Parked waits one pipelined connection may hold before \
                   further waits are rejected $(b,overloaded) (admission \
                   cap for the readiness-driven event loop)")
  in
  let outbuf_max_bytes =
    Arg.(value & opt int (16 * 1024 * 1024)
         & info [ "outbuf-max-bytes" ] ~docv:"BYTES"
             ~doc:"Pending response bytes buffered for one connection \
                   before the server closes it as a slow reader")
  in
  let compute_delay_ms =
    Arg.(value & opt int 0
         & info [ "compute-delay-ms" ] ~docv:"MS"
             ~doc:"Artificial per-job delay (testing aid: makes overload \
                   and drain timing deterministic)")
  in
  let trace_dir =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Export the server's observability sink there on exit")
  in
  let no_journal =
    Arg.(value & flag
         & info [ "no-journal" ]
             ~doc:"Disable the write-ahead job journal: acknowledged jobs \
                   are lost across a crash instead of replayed on restart")
  in
  let journal_path =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Job journal path (default: $(b,serve.journal) in the \
                   cache directory; no journal when no cache is configured)")
  in
  let deadline_ms =
    Arg.(value & opt int 0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-job compute deadline: a job running past it fails \
                   typed ($(b,deadline)) and its worker is replaced; 0 \
                   disables the watchdog")
  in
  let retry_after_cap_ms =
    Arg.(value & opt int 10_000
         & info [ "retry-after-cap-ms" ] ~docv:"MS"
             ~doc:"Ceiling on the $(b,overloaded) retry-after hint derived \
                   from observed job latency")
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:
         "Run the experiment daemon: a Unix-socket service with a priority \
          job queue, request coalescing by cache digest, backpressure, and \
          a write-ahead job journal that replays acknowledged jobs across \
          a crash. Drains gracefully on SIGTERM or $(b,mcd-dvfs drain)")
    Term.(
      const run $ socket_arg $ workers $ queue_max $ client_max
      $ conn_inflight_max $ outbuf_max_bytes $ compute_delay_ms $ trace_dir
      $ no_journal $ journal_path $ deadline_ms $ retry_after_cap_ms
      $ cache_dir_arg)

let wire_policy_enum =
  Arg.enum
    [
      ("baseline", Sproto.Baseline);
      ("offline", Sproto.Offline);
      ("online", Sproto.Online);
      ("profile", Sproto.Profile);
    ]

let priority_enum =
  Arg.enum
    [ ("high", Sproto.High); ("normal", Sproto.Normal); ("low", Sproto.Low) ]

let with_client socket f =
  match Client.connect ~socket with
  | Error e -> fail_error e
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let submit_cmd =
  let run w policy context slowdown priority raw socket =
    with_client socket @@ fun c ->
    let request =
      Sproto.request ~policy ~context:context.Context.name
        ~slowdown_pct:slowdown w.Workload.name
    in
    match Client.run ~priority c request with
    | Error e -> fail_error e
    | Ok payload -> (
        if raw then begin
          print_string payload;
          0
        end
        else
          match Metrics.decode payload with
          | Ok m ->
              Format.printf "%a@." Metrics.pp m;
              0
          | Error reason ->
              Format.eprintf "mcd-dvfs: undecodable payload: %s@." reason;
              3)
  in
  let w = Arg.(required & pos 0 (some workload_arg) None & info [] ~docv:"BENCHMARK") in
  let policy =
    Arg.(value & opt wire_policy_enum Sproto.Profile
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"baseline | offline | online | profile")
  in
  let context =
    Arg.(value & opt context_arg Context.lf
         & info [ "context" ] ~docv:"CTX" ~doc:"Calling-context definition")
  in
  let slowdown =
    Arg.(value & opt float Runner.default_slowdown_pct
         & info [ "slowdown" ] ~docv:"PCT" ~doc:"Tolerated slowdown")
  in
  let priority =
    Arg.(value & opt priority_enum Sproto.Normal
         & info [ "priority" ] ~docv:"PRI" ~doc:"high | normal | low")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Print the raw cached payload bytes instead of the \
                   decoded summary")
  in
  Cmd.v
    (cmd_info "submit"
       ~doc:
         "Submit a benchmark run to the daemon, wait, and print the result. \
          Identical concurrent requests coalesce server-side; results are \
          byte-identical to a one-shot $(b,mcd-dvfs run)")
    Term.(
      const run $ w $ policy $ context $ slowdown $ priority $ raw
      $ socket_arg)

let status_cmd =
  let run id socket =
    with_client socket @@ fun c ->
    match id with
    | Some id -> (
        match Client.status c id with
        | Error e -> fail_error e
        | Ok state ->
            (match state with
            | Sproto.Failed message ->
                Printf.printf "job %d: failed: %s\n" id message
            | state ->
                Printf.printf "job %d: %s\n" id (Sproto.state_name state));
            0)
    | None -> (
        match Client.stats c with
        | Error e -> fail_error e
        | Ok body ->
            print_string body;
            0)
  in
  let id =
    Arg.(value & pos 0 (some int) None & info [] ~docv:"JOB"
         ~doc:"Job id from $(b,submit); omit for server-wide stats")
  in
  Cmd.v
    (cmd_info "status"
       ~doc:
         "Query the daemon: a job's state, or (with no job id) the \
          server's metrics registry as JSON lines")
    Term.(const run $ id $ socket_arg)

let drain_cmd =
  let run socket =
    with_client socket @@ fun c ->
    match Client.drain c with
    | Error e -> fail_error e
    | Ok () ->
        Printf.printf "draining: admission closed, in-flight jobs completing\n";
        0
  in
  Cmd.v
    (cmd_info "drain"
       ~doc:
         "Ask the daemon to stop admitting work, finish in-flight jobs, \
          and exit")
    Term.(const run $ socket_arg)

let () =
  let info =
    cmd_info "mcd-dvfs"
      ~doc:"Profile-based DVFS for a multiple clock domain microprocessor"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            suite_cmd;
            run_cmd;
            tree_cmd;
            plan_cmd;
            compare_cmd;
            tournament_cmd;
            campaign_cmd;
            trace_cmd;
            cache_cmd;
            robustness_cmd;
            serve_cmd;
            submit_cmd;
            status_cmd;
            drain_cmd;
          ]))
