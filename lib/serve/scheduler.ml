module Metrics = Mcd_obs.Metrics
module Sink = Mcd_obs.Sink

type state =
  | Queued
  | Running
  | Done of string
  | Failed of { message : string; backtrace : string }

type job = {
  id : int;
  digest : string;
  request : Protocol.request;
  priority : Protocol.priority;
  client : string;
  mutable state : state;
  mutable submits : int;
  submitted_s : float;
  mutable latency_s : float;
  mutable started_s : float;
  mutable timed_out : bool;
}

type info = {
  id : int;
  digest : string;
  request : Protocol.request;
  priority : Protocol.priority;
  client : string;
  state : state;
  submits : int;
  latency_s : float;
  timed_out : bool;
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;
  queue : job Jobq.t;
  jobs : (int, job) Hashtbl.t;
  by_digest : (string, job) Hashtbl.t;
  compute : Protocol.request -> string;
  on_complete : int -> unit;
  sink : Sink.t;
  started_s : float;
  n_workers : int;
  deadline_s : float option;
  retry_after_cap_ms : int;
  mutable next_id : int;
  mutable busy : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable joined : bool;
  mutable latency_ewma_s : float;
  mutable domains : unit Domain.t list;
  (* instruments (all registered in [create]; updated under [mutex]) *)
  m_submitted : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_rejected : Metrics.counter;
  m_completed : Metrics.counter;
  m_failed : Metrics.counter;
  m_deadline : Metrics.counter;
  m_replayed : Metrics.counter;
  g_depth : Metrics.gauge;
  g_busy : Metrics.gauge;
  h_latency : Metrics.histogram;
}

(* serve.latency_ms bin [i] covers [2^i - 1, 2^(i+1) - 1) milliseconds;
   the last bin is open-ended. *)
let latency_bins = 12

let latency_bin_of_ms ms =
  let rec go i bound = if ms < bound || i = latency_bins - 1 then i else go (i + 1) ((bound + 1) * 2 - 1) in
  go 0 1

let info_of_job (j : job) =
  {
    id = j.id;
    digest = j.digest;
    request = j.request;
    priority = j.priority;
    client = j.client;
    state = j.state;
    submits = j.submits;
    latency_s = j.latency_s;
    timed_out = j.timed_out;
  }

(* Wall time since scheduler start, as the sink's picosecond axis. *)
let now_ps t = int_of_float ((Unix.gettimeofday () -. t.started_s) *. 1e12)

let update_gauges t =
  Metrics.set t.g_depth (float_of_int (Jobq.length t.queue));
  Metrics.set t.g_busy (float_of_int t.busy)

(* --- worker pool ------------------------------------------------------- *)

(* Called with the mutex held; returns with it held. *)
let rec take t =
  if t.stopped then None
  else
    match Jobq.pop t.queue with
    | Some job ->
        job.state <- Running;
        job.started_s <- Unix.gettimeofday ();
        t.busy <- t.busy + 1;
        update_gauges t;
        Some job
    | None ->
        Condition.wait t.work t.mutex;
        take t

(* Returns [false] when this worker found its job already failed by the
   deadline watchdog: the watchdog spawned a replacement, so the
   now-surplus worker retires instead of over-provisioning the pool. *)
let run_one t (job : job) =
  let outcome =
    match t.compute job.request with
    | payload -> Ok payload
    | exception e ->
        (* Mark the job failed and free the worker — a raising compute
           must not wedge the pool. The backtrace is captured at the
           raise site, the same discipline Par.map uses before
           raise_with_backtrace; here it is recorded in the job rather
           than re-raised, because the failure belongs to one request,
           not to the service. *)
        let bt = Printexc.get_raw_backtrace () in
        Result.Error (Printexc.to_string e, Printexc.raw_backtrace_to_string bt)
  in
  Mutex.lock t.mutex;
  if job.timed_out then begin
    (* The watchdog already failed this job and answered its waiters;
       the late result is discarded — serving it now would race the
       typed deadline error the client saw. *)
    t.busy <- t.busy - 1;
    update_gauges t;
    Mutex.unlock t.mutex;
    false
  end
  else begin
    job.latency_s <- Unix.gettimeofday () -. job.submitted_s;
    let ms = job.latency_s *. 1000.0 in
    Metrics.observe t.h_latency ~bin:(latency_bin_of_ms (int_of_float ms)) ~weight:1.0;
    t.latency_ewma_s <-
      (if t.latency_ewma_s = 0.0 then job.latency_s
       else (0.7 *. t.latency_ewma_s) +. (0.3 *. job.latency_s));
    (match outcome with
    | Ok payload ->
        job.state <- Done payload;
        Metrics.incr t.m_completed;
        Sink.decision t.sink ~t_ps:(now_ps t) ~source:"serve"
          ~trigger:Sink.Marker
          ~detail:(Printf.sprintf "done id=%d ms=%.1f" job.id ms)
          ()
    | Result.Error (message, backtrace) ->
        job.state <- Failed { message; backtrace };
        Metrics.incr t.m_failed;
        Sink.degraded t.sink ~t_ps:(now_ps t) ~source:"serve"
          ~detail:(Printf.sprintf "job %d failed: %s" job.id message));
    t.busy <- t.busy - 1;
    update_gauges t;
    Mutex.unlock t.mutex;
    t.on_complete job.id;
    true
  end

let rec worker_loop t =
  Mutex.lock t.mutex;
  let job = take t in
  Mutex.unlock t.mutex;
  match job with
  | None -> ()
  | Some job -> if run_one t job then worker_loop t

(* --- deadline watchdog -------------------------------------------------- *)

(* OCaml domains cannot be killed, so an overdue compute cannot be
   interrupted — instead the watchdog fails the *job* (typed, so the
   client sees Deadline rather than a hang) and spawns a replacement
   worker domain. The stuck worker becomes a zombie: whenever its
   compute finally returns, run_one discards the result and retires it,
   shrinking the pool back to [n_workers]. *)
let watchdog_tick t ~deadline_s =
  let now = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  let overdue = ref [] in
  Hashtbl.iter
    (fun _ (job : job) ->
      match job.state with
      | Running when (not job.timed_out) && now -. job.started_s > deadline_s ->
          overdue := job :: !overdue
      | _ -> ())
    t.jobs;
  List.iter
    (fun (job : job) ->
      let deadline_ms = int_of_float (deadline_s *. 1000.0) in
      job.timed_out <- true;
      job.state <-
        Failed
          {
            message =
              Mcd_robust.Error.to_string
                (Mcd_robust.Error.Deadline_exceeded
                   { id = job.id; deadline_ms });
            backtrace = "";
          };
      job.latency_s <- now -. job.submitted_s;
      Metrics.incr t.m_deadline;
      Metrics.incr t.m_failed;
      (* a timed-out digest is forgotten so a retry recomputes instead
         of coalescing onto the failure forever *)
      (match Hashtbl.find_opt t.by_digest job.digest with
      | Some j when j.id = job.id -> Hashtbl.remove t.by_digest job.digest
      | _ -> ());
      Sink.degraded t.sink ~t_ps:(now_ps t) ~source:"serve"
        ~detail:
          (Printf.sprintf "job %d deadline exceeded after %.2fs" job.id
             (now -. job.started_s)))
    !overdue;
  let replacements =
    if t.stopped then []
    else List.map (fun _ -> Domain.spawn (fun () -> worker_loop t)) !overdue
  in
  t.domains <- replacements @ t.domains;
  Mutex.unlock t.mutex;
  List.iter (fun (job : job) -> t.on_complete job.id) !overdue

let rec watchdog_loop t ~deadline_s =
  if not t.stopped then begin
    (* tick proportional to the deadline, floored at 10ms so short test
       deadlines stay sharp, capped at 250ms so a long deadline neither
       scans the job table needlessly often nor makes shutdown's
       Domain.join wait out a multi-second sleep *)
    Unix.sleepf (Float.max 0.01 (Float.min 0.25 (deadline_s /. 4.0)));
    watchdog_tick t ~deadline_s;
    watchdog_loop t ~deadline_s
  end

(* --- construction ------------------------------------------------------ *)

let create ?(workers = 1) ?(queue_max = 64) ?(client_max = 16) ?deadline_s
    ?(retry_after_cap_ms = 10_000) ?sink ?(on_complete = fun _ -> ()) ~compute
    () =
  Printexc.record_backtrace true;
  let sink = match sink with Some s -> s | None -> Sink.create ~domains:1 () in
  let metrics = Sink.metrics sink in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Jobq.create ~queue_max ~client_max ();
      jobs = Hashtbl.create 64;
      by_digest = Hashtbl.create 64;
      compute;
      on_complete;
      sink;
      started_s = Unix.gettimeofday ();
      n_workers = max 1 workers;
      deadline_s;
      retry_after_cap_ms = max 100 retry_after_cap_ms;
      next_id = 1;
      busy = 0;
      draining = false;
      stopped = false;
      joined = false;
      latency_ewma_s = 0.0;
      domains = [];
      m_submitted = Metrics.counter metrics "serve.submitted";
      m_coalesced = Metrics.counter metrics "serve.coalesced";
      m_rejected = Metrics.counter metrics "serve.rejected";
      m_completed = Metrics.counter metrics "serve.completed";
      m_failed = Metrics.counter metrics "serve.failed";
      m_deadline = Metrics.counter metrics "serve.deadline_exceeded";
      m_replayed = Metrics.counter metrics "serve.replayed";
      g_depth = Metrics.gauge metrics "serve.queue_depth";
      g_busy = Metrics.gauge metrics "serve.busy_workers";
      h_latency = Metrics.histogram metrics "serve.latency_ms" ~bins:latency_bins;
    }
  in
  t.domains <-
    List.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  (match deadline_s with
  | Some d when d > 0.0 ->
      t.domains <-
        Domain.spawn (fun () -> watchdog_loop t ~deadline_s:d) :: t.domains
  | Some _ | None -> ());
  t

let workers t = t.n_workers
let queue_max t = Jobq.queue_max t.queue
let sink t = t.sink

(* --- submission -------------------------------------------------------- *)

type admission =
  | Accepted of info
  | Coalesced of info
  | Rejected of Protocol.reject

(* The hint scales with observed latency: when jobs take seconds, "try
   again in 100ms" just converts backpressure into a retry storm. The
   cap keeps a latency spike from teaching clients to stay away for
   minutes after the spike has passed. *)
let retry_after_ms t =
  max 100 (min t.retry_after_cap_ms (int_of_float (t.latency_ewma_s *. 1000.0)))

let submit t ~client ~priority ~digest request =
  Mutex.lock t.mutex;
  Metrics.incr t.m_submitted;
  let verdict =
    if t.draining || t.stopped then begin
      Metrics.incr t.m_rejected;
      Sink.degraded t.sink ~t_ps:(now_ps t) ~source:"serve"
        ~detail:(Printf.sprintf "rejected (draining) client=%s" client);
      Rejected Protocol.Draining
    end
    else
      match Hashtbl.find_opt t.by_digest digest with
      | Some job ->
          job.submits <- job.submits + 1;
          Metrics.incr t.m_coalesced;
          Coalesced (info_of_job job)
      | None -> (
          let job =
            {
              id = t.next_id;
              digest;
              request;
              priority;
              client;
              state = Queued;
              submits = 1;
              submitted_s = Unix.gettimeofday ();
              latency_s = 0.0;
              started_s = 0.0;
              timed_out = false;
            }
          in
          match
            Jobq.push t.queue
              ~level:(Protocol.priority_level priority)
              ~client job
          with
          | Result.Error rejection ->
              Metrics.incr t.m_rejected;
              let queue_depth, limit =
                match rejection with
                | Jobq.Queue_full depth -> (depth, Jobq.queue_max t.queue)
                | Jobq.Client_full mine -> (mine, Jobq.client_max t.queue)
              in
              Sink.degraded t.sink ~t_ps:(now_ps t) ~source:"serve"
                ~detail:
                  (Printf.sprintf "rejected (overloaded %d/%d) client=%s"
                     queue_depth limit client);
              Rejected
                (Protocol.Overloaded
                   { queue_depth; limit; retry_after_ms = retry_after_ms t })
          | Ok () ->
              t.next_id <- t.next_id + 1;
              Hashtbl.replace t.jobs job.id job;
              Hashtbl.replace t.by_digest digest job;
              update_gauges t;
              Sink.decision t.sink ~t_ps:(now_ps t) ~source:"serve"
                ~trigger:Sink.Marker
                ~detail:
                  (Printf.sprintf "submit id=%d digest=%s client=%s" job.id
                     digest client)
                ();
              Condition.signal t.work;
              Accepted (info_of_job job))
  in
  Mutex.unlock t.mutex;
  verdict

(* --- journal replay ----------------------------------------------------- *)

(* Re-queue jobs recovered from the journal, preserving their original
   ids (a client reconnecting after a crash polls the id it was acked
   with). Replay bypasses admission bounds: these jobs were already
   admitted once, and must not be dropped because the restart came up
   with a smaller queue configuration. [next_id] is the journal's
   high-water mark and floors fresh allocations even when the replay
   list is empty — every pre-crash job may have completed, but its id
   is still owned by whichever client was acked with it. *)
let restore t ~next_id (entries : Journal.entry list) =
  Mutex.lock t.mutex;
  t.next_id <- max t.next_id next_id;
  let n =
    List.fold_left
      (fun n (e : Journal.entry) ->
        if Hashtbl.mem t.jobs e.Journal.id then n
        else begin
          let job =
            {
              id = e.Journal.id;
              digest = e.Journal.digest;
              request = e.Journal.request;
              priority = e.Journal.priority;
              client = e.Journal.client;
              state = Queued;
              submits = 1;
              submitted_s = Unix.gettimeofday ();
              latency_s = 0.0;
              started_s = 0.0;
              timed_out = false;
            }
          in
          (match
             Jobq.push ~force:true t.queue
               ~level:(Protocol.priority_level job.priority)
               ~client:job.client job
           with
          | Ok () -> ()
          | Result.Error _ -> assert false (* force push cannot reject *));
          Hashtbl.replace t.jobs job.id job;
          Hashtbl.replace t.by_digest job.digest job;
          t.next_id <- max t.next_id (job.id + 1);
          Metrics.incr t.m_replayed;
          n + 1
        end)
      0 entries
  in
  if n > 0 then begin
    update_gauges t;
    Sink.decision t.sink ~t_ps:(now_ps t) ~source:"serve" ~trigger:Sink.Marker
      ~detail:(Printf.sprintf "replayed %d journaled jobs" n)
      ();
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mutex;
  n

(* --- inspection -------------------------------------------------------- *)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t id =
  locked t (fun () -> Option.map info_of_job (Hashtbl.find_opt t.jobs id))

let queue_depth t = locked t (fun () -> Jobq.length t.queue)
let busy t = locked t (fun () -> t.busy)
let idle t = locked t (fun () -> Jobq.length t.queue = 0 && t.busy = 0)

let set_draining t =
  locked t (fun () ->
      if not t.draining then begin
        t.draining <- true;
        Sink.degraded t.sink ~t_ps:(now_ps t) ~source:"serve"
          ~detail:"draining: admission closed"
      end)

let draining t = locked t (fun () -> t.draining)

(* OCaml's Condition has no timed wait, and neither caller is hot:
   polling at a few hundred hertz is the simple correct watchdog. *)
let poll_until ~timeout_s cond =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () > deadline then cond ()
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let await_idle ?(timeout_s = 60.0) t = poll_until ~timeout_s (fun () -> idle t)

let terminal (i : info) =
  match i.state with Done _ | Failed _ -> true | Queued | Running -> false

let wait_job ?(timeout_s = 60.0) t id =
  match find t id with
  | None -> None
  | Some _ ->
      let ok =
        poll_until ~timeout_s (fun () ->
            match find t id with Some i -> terminal i | None -> true)
      in
      ignore ok;
      find t id

let with_registry t f = locked t (fun () -> f (Sink.metrics t.sink))
let export_metrics t = locked t (fun () -> Mcd_obs.Export.metrics_jsonl t.sink)

let shutdown t =
  let join =
    locked t (fun () ->
        if t.joined then []
        else begin
          t.joined <- true;
          t.stopped <- true;
          Condition.broadcast t.work;
          t.domains
        end)
  in
  List.iter Domain.join join
