type 'a t = {
  data : 'a array;
  dummy : 'a;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity dummy; dummy; start = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.data
let length t = t.len
let dropped t = t.dropped

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    (* overwrite the oldest slot and advance the window *)
    t.data.(t.start) <- v;
    t.start <- (t.start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.data.((t.start + t.len) mod cap) <- v;
    t.len <- t.len + 1
  end

let iter f t =
  let cap = Array.length t.data in
  for i = 0 to t.len - 1 do
    f t.data.((t.start + i) mod cap)
  done

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) t.dummy;
  t.start <- 0;
  t.len <- 0
