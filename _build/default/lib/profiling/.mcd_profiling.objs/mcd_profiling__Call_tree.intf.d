lib/profiling/call_tree.mli: Context Format Mcd_isa
