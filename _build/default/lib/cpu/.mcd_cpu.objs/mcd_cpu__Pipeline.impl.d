lib/cpu/pipeline.ml: Array Branch_pred Cache Config Controller Fu List Mcd_domains Mcd_isa Mcd_power Mcd_util Printf Probe Queue
