(* Tests for the MCD clocking layer: frequencies, DVFS slew, clocks,
   synchronization, and the reconfiguration register. *)

module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Dvfs = Mcd_domains.Dvfs
module Clock = Mcd_domains.Clock
module Sync = Mcd_domains.Sync
module Reconfig = Mcd_domains.Reconfig
module Time = Mcd_util.Time
module Rng = Mcd_util.Rng

let qcheck ?(seed = 0x3cd) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let check_float = Alcotest.(check (float 1e-6))

(* --- Domain --------------------------------------------------------- *)

let test_domain_indexing () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "roundtrip" true (Domain.of_index (Domain.index d) = d))
    Domain.all;
  Alcotest.(check int) "count" 4 (List.length Domain.all);
  Alcotest.check_raises "bad index" (Invalid_argument "Domain.of_index: 4")
    (fun () -> ignore (Domain.of_index 4))

let test_domain_power_weights () =
  let total = List.fold_left (fun a d -> a +. Domain.relative_power d) 0.0 Domain.all in
  check_float "weights sum to 1" 1.0 total

(* --- Freq ----------------------------------------------------------- *)

let test_freq_steps () =
  Alcotest.(check int) "16 steps" 16 Freq.num_steps;
  Alcotest.(check int) "first" 250 Freq.steps.(0);
  Alcotest.(check int) "last" 1000 Freq.steps.(Freq.num_steps - 1);
  Array.iter
    (fun f -> Alcotest.(check int) "index roundtrip" f (Freq.of_index (Freq.index_of f)))
    Freq.steps

let test_freq_clamp () =
  Alcotest.(check int) "below" 250 (Freq.clamp 100);
  Alcotest.(check int) "above" 1000 (Freq.clamp 5000);
  Alcotest.(check int) "snap down" 500 (Freq.clamp 510);
  Alcotest.(check int) "snap up" 550 (Freq.clamp 530);
  Alcotest.(check int) "exact" 700 (Freq.clamp 700)

let test_freq_voltage () =
  check_float "vmax at fmax" 1.20 (Freq.voltage 1000);
  check_float "vmin at fmin" 0.65 (Freq.voltage 250);
  let v625 = Freq.voltage 625 in
  check_float "midpoint" ((1.20 +. 0.65) /. 2.0) v625;
  Alcotest.(check bool) "monotone" true
    (Array.for_all
       (fun f -> Freq.voltage f <= Freq.voltage (f + 50) +. 1e-9)
       (Array.sub Freq.steps 0 (Freq.num_steps - 1)))

let test_freq_period () =
  Alcotest.(check int) "1GHz period" 1000 (Freq.period_ps 1000.0);
  Alcotest.(check int) "250MHz period" 4000 (Freq.period_ps 250.0);
  Alcotest.(check int) "750MHz period" 1333 (Freq.period_ps 750.0)

let test_freq_energy_scale () =
  check_float "full speed scale" 1.0 (Freq.energy_scale 1000.0);
  let s = Freq.energy_scale 250.0 in
  check_float "min scale is (vmin/vmax)^2" (0.65 *. 0.65 /. (1.2 *. 1.2)) s

(* --- Dvfs ----------------------------------------------------------- *)

let test_dvfs_initial () =
  let d = Dvfs.create () in
  List.iter
    (fun dom ->
      check_float "starts at fmax" 1000.0 (Dvfs.current_mhz d dom ~now:Time.zero))
    Domain.all

let test_dvfs_slew_rate () =
  let d = Dvfs.create () in
  Dvfs.set_target d Domain.Integer ~now:Time.zero ~mhz:250;
  (* 73.3 ns/MHz: after 73.3 ns the frequency has moved 1 MHz *)
  let f1 = Dvfs.current_mhz d Domain.Integer ~now:(Time.of_ns_float 73.3) in
  Alcotest.(check bool) "one MHz down" true (Float.abs (f1 -. 999.0) < 0.01);
  (* the full 750 MHz traversal takes about 55 us *)
  let f_before = Dvfs.current_mhz d Domain.Integer ~now:(Time.us 54) in
  Alcotest.(check bool) "not yet at floor" true (f_before > 250.0);
  let f_after = Dvfs.current_mhz d Domain.Integer ~now:(Time.us 56) in
  check_float "at floor after 55us" 250.0 f_after

let test_dvfs_transition_flag () =
  let d = Dvfs.create () in
  Alcotest.(check bool) "stable initially" false
    (Dvfs.in_transition d Domain.Memory ~now:Time.zero);
  Dvfs.set_target d Domain.Memory ~now:Time.zero ~mhz:500;
  Alcotest.(check bool) "in transition" true
    (Dvfs.in_transition d Domain.Memory ~now:(Time.us 1));
  Alcotest.(check bool) "settled" false
    (Dvfs.in_transition d Domain.Memory ~now:(Time.us 50))

let test_dvfs_retarget_mid_ramp () =
  let d = Dvfs.create () in
  Dvfs.set_target d Domain.Floating ~now:Time.zero ~mhz:250;
  (* halfway down, turn around *)
  let mid = Dvfs.current_mhz d Domain.Floating ~now:(Time.us 20) in
  Dvfs.set_target d Domain.Floating ~now:(Time.us 20) ~mhz:1000;
  let later = Dvfs.current_mhz d Domain.Floating ~now:(Time.us 30) in
  Alcotest.(check bool) "coming back up" true (later > mid);
  Alcotest.(check int) "target" 1000 (Dvfs.target_mhz d Domain.Floating)

(* Regression: the slew must land exactly on the target — not merely
   asymptotically close — no matter how finely queries are interleaved,
   because [in_transition] compares [current] and [target] with float
   equality. Drive a full-range ramp with many irregular tiny steps and
   demand an exact arrival. *)
let test_dvfs_interleaved_slew_terminates () =
  let d = Dvfs.create () in
  Dvfs.set_target d Domain.Integer ~now:Time.zero ~mhz:250;
  (* 750 MHz at 73.3 ns/MHz ~ 55 us; step with awkward increments *)
  let now = ref Time.zero in
  let steps = [| 137; 731; 7; 1; 4099; 53 |] in
  let i = ref 0 in
  while
    Dvfs.in_transition d Domain.Integer ~now:!now
    && !now < Time.us 60 (* bound the loop if the fix regresses *)
  do
    now := !now + Time.ps steps.(!i mod Array.length steps);
    incr i;
    ignore (Dvfs.current_mhz d Domain.Integer ~now:!now)
  done;
  Alcotest.(check bool) "terminates within the ramp time" true
    (!now < Time.us 60);
  Alcotest.(check bool) "settled" false
    (Dvfs.in_transition d Domain.Integer ~now:!now);
  Alcotest.(check (float 0.0)) "landed exactly on the target" 250.0
    (Dvfs.current_mhz d Domain.Integer ~now:!now)

let test_dvfs_past_query_no_rewind () =
  let d = Dvfs.create () in
  Dvfs.set_target d Domain.Integer ~now:Time.zero ~mhz:500;
  let at_10us = Dvfs.current_mhz d Domain.Integer ~now:(Time.us 10) in
  (* a query at an earlier time answers with the current point *)
  let past = Dvfs.current_mhz d Domain.Integer ~now:(Time.us 5) in
  check_float "no rewind" at_10us past

let test_dvfs_clamps_target () =
  let d = Dvfs.create () in
  Dvfs.set_target d Domain.Integer ~now:Time.zero ~mhz:123;
  Alcotest.(check int) "snapped" 250 (Dvfs.target_mhz d Domain.Integer)

let test_dvfs_snap_diagnostic () =
  let d = Dvfs.create () in
  let snaps = ref [] in
  let on_snap ~requested ~snapped = snaps := (requested, snapped) :: !snaps in
  (* off-grid request: the hook fires with both values *)
  Dvfs.set_target ~on_snap d Domain.Integer ~now:Time.zero ~mhz:313;
  Alcotest.(check (list (pair int int))) "snap reported" [ (313, 300) ] !snaps;
  (* on-grid request: silent *)
  Dvfs.set_target ~on_snap d Domain.Integer ~now:Time.zero ~mhz:500;
  Alcotest.(check int) "no spurious report" 1 (List.length !snaps)

let test_dvfs_stuck_fault () =
  let d = Dvfs.create () in
  Dvfs.inject d (Dvfs.Stuck_at (Domain.Memory, 313));
  Alcotest.(check int) "pinned on a legal step" 300
    (Dvfs.target_mhz d Domain.Memory);
  Dvfs.set_target d Domain.Memory ~now:Time.zero ~mhz:500;
  Alcotest.(check int) "writes ignored" 300 (Dvfs.target_mhz d Domain.Memory)

let test_dvfs_frozen_slew_fault () =
  let d = Dvfs.create () in
  Dvfs.inject d (Dvfs.Frozen_slew Domain.Floating);
  Dvfs.set_target d Domain.Floating ~now:Time.zero ~mhz:250;
  Alcotest.(check int) "target accepted" 250
    (Dvfs.target_mhz d Domain.Floating);
  check_float "operating point never moves" 1000.0
    (Dvfs.current_mhz d Domain.Floating ~now:(Time.us 100))

(* --- Clock ---------------------------------------------------------- *)

let fixed_freq f = fun ~now:_ -> f

let test_clock_advance () =
  let c =
    Clock.create ~jitter_sigma_ps:0.0 ~rng:(Rng.create 1)
      ~freq_mhz:(fixed_freq 1000.0) ()
  in
  Alcotest.(check int) "first edge at zero" 0 (Clock.next_edge c);
  Clock.advance c;
  Alcotest.(check int) "next edge" 1000 (Clock.next_edge c);
  Clock.advance c;
  Alcotest.(check int) "cycles" 2 (Clock.cycles c)

let test_clock_jitter_bounded () =
  let c =
    Clock.create ~rng:(Rng.create 2) ~freq_mhz:(fixed_freq 1000.0) ()
  in
  let prev = ref (Clock.next_edge c) in
  for _ = 1 to 1000 do
    Clock.advance c;
    let e = Clock.next_edge c in
    let delta = e - !prev in
    if delta < 1000 - 110 || delta > 1000 + 110 then
      Alcotest.failf "edge spacing %d outside jitter bound" delta;
    prev := e
  done

let test_clock_monotone () =
  let c = Clock.create ~rng:(Rng.create 3) ~freq_mhz:(fixed_freq 250.0) () in
  let prev = ref (-1) in
  for _ = 1 to 500 do
    let e = Clock.next_edge c in
    if e <= !prev then Alcotest.fail "clock went backward";
    prev := e;
    Clock.advance c
  done

let test_clock_project_edge () =
  let c =
    Clock.create ~jitter_sigma_ps:0.0 ~rng:(Rng.create 4)
      ~freq_mhz:(fixed_freq 1000.0) ()
  in
  Clock.advance c;
  Clock.advance c;
  (* next edge at 2000 *)
  Alcotest.(check int) "at edge" 2000 (Clock.project_edge c ~at_or_after:2000);
  Alcotest.(check int) "between" 3000 (Clock.project_edge c ~at_or_after:2001);
  Alcotest.(check int) "future" 5000 (Clock.project_edge c ~at_or_after:4001);
  Alcotest.(check int) "past extrapolation" 1000
    (Clock.project_edge c ~at_or_after:500);
  Alcotest.(check int) "past exact" 1000
    (Clock.project_edge c ~at_or_after:1000)

(* --- Sync ----------------------------------------------------------- *)

let mk_consumer ?(offset = 0) period_mhz =
  let c =
    Clock.create ~jitter_sigma_ps:0.0 ~rng:(Rng.create 5)
      ~freq_mhz:(fixed_freq period_mhz) ()
  in
  for _ = 1 to offset do
    Clock.advance c
  done;
  c

let test_sync_clean_capture () =
  let consumer = mk_consumer 1000.0 in
  (* production at 400 ps: next edge 1000, distance 600 > 300 window,
     and 1000-600=400 > window on the other side too *)
  let a =
    Sync.arrival ~consumer ~producer_period_ps:1000 ~t:400 ()
  in
  Alcotest.(check int) "captured at next edge" 1000 a

let test_sync_window_penalty_close_after () =
  let consumer = mk_consumer 1000.0 in
  (* production at 900 ps: distance to edge 1000 is 100 < 300 *)
  let a = Sync.arrival ~consumer ~producer_period_ps:1000 ~t:900 () in
  Alcotest.(check int) "slipped one cycle" 2000 a

let test_sync_window_penalty_close_before () =
  let consumer = mk_consumer 1000.0 in
  (* production at 1100: distance to capturing edge 2000 is 900; but the
     edge just missed (1000) is only 100 behind -> unsafe *)
  let a = Sync.arrival ~consumer ~producer_period_ps:1000 ~t:1100 () in
  Alcotest.(check int) "slipped one cycle" 3000 a

let test_sync_stats () =
  let consumer = mk_consumer 1000.0 in
  let stats = Sync.create_stats () in
  let _ = Sync.arrival ~stats ~consumer ~producer_period_ps:1000 ~t:400 () in
  let _ = Sync.arrival ~stats ~consumer ~producer_period_ps:1000 ~t:900 () in
  Alcotest.(check int) "crossings" 2 stats.Sync.crossings;
  Alcotest.(check int) "penalties" 1 stats.Sync.penalties

let test_sync_window_boundaries () =
  (* Window = 30% of the 1000 ps period = 300 ps, and the unsafe test is
     strict on both sides: a production edge exactly [window] away from
     either consumer edge captures cleanly; one ps closer slips. *)
  let stats = Sync.create_stats () in
  let at t = Sync.arrival ~stats ~consumer:(mk_consumer 1000.0)
      ~producer_period_ps:1000 ~t () in
  Alcotest.(check int) "distance = window is safe" 1000 (at 700);
  Alcotest.(check int) "period - distance = window is safe" 1000 (at 300);
  Alcotest.(check int) "distance = window - 1 slips" 2000 (at 701);
  Alcotest.(check int) "hold-side window - 1 slips" 2000 (at 299);
  (* each unsafe crossing counts exactly once *)
  Alcotest.(check int) "crossings" 4 stats.Sync.crossings;
  Alcotest.(check int) "penalties" 2 stats.Sync.penalties

let test_sync_window_uses_faster_clock () =
  (* consumer at 250 MHz (4000 ps): window is 30% of the faster
     (producer, 1000 ps) = 300 ps *)
  let consumer = mk_consumer 250.0 in
  let a = Sync.arrival ~consumer ~producer_period_ps:1000 ~t:1000 () in
  (* distance to edge 4000 is 3000 ps; other side 1000 ps: both safe *)
  Alcotest.(check int) "safe capture" 4000 a

(* --- Reconfig ------------------------------------------------------- *)

let test_reconfig_make () =
  let s = Reconfig.make ~front_end:480 ~integer:1200 ~floating:250 ~memory:20 in
  Alcotest.(check int) "snap fe" 500 (Reconfig.get s Domain.Front_end);
  Alcotest.(check int) "clamp int" 1000 (Reconfig.get s Domain.Integer);
  Alcotest.(check int) "fp" 250 (Reconfig.get s Domain.Floating);
  Alcotest.(check int) "clamp mem" 250 (Reconfig.get s Domain.Memory)

let test_reconfig_write () =
  let dvfs = Dvfs.create () in
  let r = Reconfig.create dvfs in
  Alcotest.(check int) "no writes" 0 (Reconfig.writes r);
  let s = Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:750 in
  Reconfig.write r s ~now:Time.zero;
  Alcotest.(check int) "one write" 1 (Reconfig.writes r);
  Alcotest.(check int) "target set" 500 (Dvfs.target_mhz dvfs Domain.Integer);
  Alcotest.(check int) "target set fp" 250 (Dvfs.target_mhz dvfs Domain.Floating);
  Alcotest.(check bool) "last setting" true
    (Reconfig.equal (Reconfig.last_setting r) s)

let test_reconfig_noop_writes_not_counted () =
  (* Regression: rewriting the live setting used to bump the write
     counter even though nothing changed. *)
  let dvfs = Dvfs.create () in
  let r = Reconfig.create dvfs in
  let s = Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:750 in
  Reconfig.write r s ~now:Time.zero;
  Reconfig.write r s ~now:(Time.us 1);
  Alcotest.(check int) "second identical write is a no-op" 1
    (Reconfig.writes r);
  (* the register starts at full speed, so writing full speed first is
     also a no-op *)
  let r2 = Reconfig.create (Dvfs.create ()) in
  Reconfig.write r2 (Reconfig.full_speed ()) ~now:Time.zero;
  Alcotest.(check int) "initial full-speed write is a no-op" 0
    (Reconfig.writes r2)

let test_reconfig_noop_event_traced () =
  (* With a sink attached, the skipped write still leaves an audit
     event, flagged noop, and lands in the noop counter. *)
  let sink = Mcd_obs.Sink.create ~domains:Domain.count () in
  let r = Reconfig.create (Dvfs.create ()) in
  let s = Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:750 in
  Reconfig.write ~sink r s ~now:Time.zero;
  Reconfig.write ~sink r s ~now:(Time.us 1);
  let noops =
    List.filter
      (function
        | Mcd_obs.Sink.Reconfig_write { noop; _ } -> noop
        | _ -> false)
      (Mcd_obs.Sink.events sink)
  in
  Alcotest.(check int) "one noop event" 1 (List.length noops);
  let m = Mcd_obs.Sink.metrics sink in
  Alcotest.(check int) "obs.noop_writes" 1
    (Mcd_obs.Metrics.value (Mcd_obs.Metrics.counter m "obs.noop_writes"));
  Alcotest.(check int) "obs.reconfig_writes counts the real one" 1
    (Mcd_obs.Metrics.value (Mcd_obs.Metrics.counter m "obs.reconfig_writes"))

let test_reconfig_full_speed_fresh () =
  let a = Reconfig.full_speed () in
  a.(0) <- 250;
  let b = Reconfig.full_speed () in
  Alcotest.(check int) "fresh array" 1000 b.(0)

(* --- qcheck properties ---------------------------------------------- *)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"freq clamp idempotent" ~count:500
    QCheck.(int_range (-1000) 5000)
    (fun f -> Freq.clamp (Freq.clamp f) = Freq.clamp f)

let prop_voltage_in_range =
  QCheck.Test.make ~name:"voltage within rails" ~count:500
    QCheck.(float_range 0.0 2000.0)
    (fun f ->
      let v = Freq.voltage_f f in
      v >= Freq.vmin -. 1e-9 && v <= Freq.vmax +. 1e-9)

let prop_sync_arrival_after_production =
  QCheck.Test.make ~name:"sync arrival never precedes production" ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 0 15))
    (fun (t, step) ->
      let mhz = float_of_int (Freq.of_index step) in
      let consumer = mk_consumer mhz in
      Sync.arrival ~consumer ~producer_period_ps:1000 ~t () >= t)

let suite =
  [
    ("domain indexing", `Quick, test_domain_indexing);
    ("domain power weights", `Quick, test_domain_power_weights);
    ("freq steps", `Quick, test_freq_steps);
    ("freq clamp", `Quick, test_freq_clamp);
    ("freq voltage", `Quick, test_freq_voltage);
    ("freq period", `Quick, test_freq_period);
    ("freq energy scale", `Quick, test_freq_energy_scale);
    ("dvfs initial", `Quick, test_dvfs_initial);
    ("dvfs slew rate", `Quick, test_dvfs_slew_rate);
    ("dvfs transition flag", `Quick, test_dvfs_transition_flag);
    ("dvfs retarget mid-ramp", `Quick, test_dvfs_retarget_mid_ramp);
    ("dvfs interleaved slew terminates", `Quick,
     test_dvfs_interleaved_slew_terminates);
    ("dvfs past query", `Quick, test_dvfs_past_query_no_rewind);
    ("dvfs clamps target", `Quick, test_dvfs_clamps_target);
    ("dvfs snap diagnostic", `Quick, test_dvfs_snap_diagnostic);
    ("dvfs stuck fault", `Quick, test_dvfs_stuck_fault);
    ("dvfs frozen slew fault", `Quick, test_dvfs_frozen_slew_fault);
    ("clock advance", `Quick, test_clock_advance);
    ("clock jitter bounded", `Quick, test_clock_jitter_bounded);
    ("clock monotone", `Quick, test_clock_monotone);
    ("clock project edge", `Quick, test_clock_project_edge);
    ("sync clean capture", `Quick, test_sync_clean_capture);
    ("sync penalty after", `Quick, test_sync_window_penalty_close_after);
    ("sync penalty before", `Quick, test_sync_window_penalty_close_before);
    ("sync stats", `Quick, test_sync_stats);
    ("sync window boundaries", `Quick, test_sync_window_boundaries);
    ("sync faster-clock window", `Quick, test_sync_window_uses_faster_clock);
    ("reconfig make", `Quick, test_reconfig_make);
    ("reconfig write", `Quick, test_reconfig_write);
    ("reconfig noop writes not counted", `Quick,
     test_reconfig_noop_writes_not_counted);
    ("reconfig noop event traced", `Quick, test_reconfig_noop_event_traced);
    ("reconfig full-speed fresh", `Quick, test_reconfig_full_speed_fresh);
    qcheck prop_clamp_idempotent;
    qcheck prop_voltage_in_range;
    qcheck prop_sync_arrival_after_production;
  ]
