lib/core/analyze.mli: Mcd_cpu Mcd_isa Mcd_profiling Plan
