lib/mcd/domain.mli: Format
