(** Structured diagnostics for the profile→edit→run pipeline.

    Every failure the robustness subsystem can detect — in plan files,
    in plan values, or in run-time reconfiguration behaviour — is a
    variant here, carrying enough context to render a one-line
    actionable message. Diagnostics are split into three classes:
    [`Io] (the artifact could not be read at all), [`Validation]
    (the artifact was read but violates an invariant), and [`Overload]
    (the experiment service refused work it could have done later —
    the caller should back off and retry). The CLI maps the classes to
    distinct exit codes so harnesses can script against them. *)

type t =
  | Io_error of { path : string; message : string }
      (** the file could not be opened or read *)
  | Empty_file of { path : string }
  | Bad_header of { path : string; found : string }
      (** first line is not the plan-format magic *)
  | Malformed_line of {
      path : string;
      line : int;  (** 1-based line number *)
      content : string;
      reason : string;
    }
  | Missing_fingerprint of { path : string }
  | Missing_header_field of { path : string; field : string; default : string }
      (** a [context]/[slowdown] header line is absent; the loader
          substituted the stated default instead of failing — but the
          plan was probably written by hand or damaged, so say so *)
  | Truncated_file of { path : string }
      (** the end-of-plan marker is missing: the tail of the file was
          lost in transit *)
  | Fingerprint_mismatch of { path : string; expected : string; found : string }
      (** the program or training input changed shape since the plan
          was saved *)
  | Tree_shape_drift of { path : string; node : int; detail : string }
      (** the plan names a call-tree node the rebuilt tree does not
          have *)
  | Illegal_frequency of { where : string; requested_mhz : int; snapped_mhz : int }
      (** a frequency outside the legal grid; [snapped_mhz] is what the
          degradation policy substituted *)
  | Bad_setting_arity of { where : string; expected : int; found : int }
      (** a reconfiguration setting with the wrong number of domains *)
  | Bad_histogram_weight of { node : int; domain : int; bin : int; weight : float }
      (** NaN or negative weight in a retained histogram *)
  | Bad_histogram_shape of { node : int; expected_bins : int; found_bins : int }
      (** a retained histogram whose bin count does not match the
          frequency grid *)
  | Bad_slowdown of { value : float }
      (** NaN or negative slowdown tolerance *)
  | Runtime_fault of { where : string; detail : string }
      (** a run-time watchdog observation: a domain that ignores
          reconfiguration writes, a slew that never completes, ... *)
  | Cache_corrupt of { path : string; reason : string }
      (** a result-cache object failed to parse (truncated, damaged, or
          a digest collision); the store falls back to recompute *)
  | Overloaded of { queue_depth : int; limit : int; retry_after_ms : int }
      (** the experiment service's admission controller rejected a
          request: the job queue is at its bound (or the client at its
          fairness cap); [retry_after_ms] is the server's backoff
          hint *)
  | Draining of { detail : string }
      (** the service is shutting down gracefully and no longer admits
          new work; in-flight jobs still complete *)
  | Protocol_violation of { line : string; reason : string }
      (** a wire-protocol line the peer could not parse or that names
          an unknown workload/context/job *)
  | Server_unavailable of { socket : string; message : string }
      (** the service socket could not be reached *)
  | Unknown_job of { id : int }
      (** the server has no job under this id — typically a restarted
          server whose journal compacted the job away because it
          completed before the crash; resubmitting by digest returns
          the cached bytes *)
  | Deadline_exceeded of { id : int; deadline_ms : int }
      (** a job's compute outran its per-job deadline; the scheduler
          failed the job and abandoned the worker's eventual result *)
  | Journal_corrupt of { path : string; reason : string }
      (** a job-journal record failed to parse (torn append, bit rot);
          recovery keeps the good prefix and drops the rest *)

val class_ : t -> [ `Io | `Validation | `Overload ]

val exit_code : t -> int
(** 2 for [`Validation], 3 for [`Io], 4 for [`Overload] — the CLI
    contract. *)

val exit_code_of_list : t list -> int
(** The I/O code dominates: 3 if any error is [`Io], else 4 if any is
    [`Overload], else 2. 0 for the empty list. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line. *)
