(** Growable arrays (OCaml 5.1 has no [Dynarray] yet).

    Used for event logs and call-tree node stores, where sizes are not
    known in advance and random access is required. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val clear : 'a t -> unit
