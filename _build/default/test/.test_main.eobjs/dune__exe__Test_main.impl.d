test/test_main.ml: Alcotest Test_control Test_core Test_cpu Test_experiments Test_isa Test_mcd Test_power Test_profiling Test_trace Test_util Test_workloads
