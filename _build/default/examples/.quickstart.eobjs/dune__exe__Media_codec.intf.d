examples/media_codec.mli:
