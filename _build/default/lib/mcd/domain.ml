type t = Front_end | Integer | Floating | Memory

let all = [ Front_end; Integer; Floating; Memory ]
let count = 4

let index = function
  | Front_end -> 0
  | Integer -> 1
  | Floating -> 2
  | Memory -> 3

let of_index = function
  | 0 -> Front_end
  | 1 -> Integer
  | 2 -> Floating
  | 3 -> Memory
  | i -> invalid_arg (Printf.sprintf "Domain.of_index: %d" i)

let name = function
  | Front_end -> "front-end"
  | Integer -> "integer"
  | Floating -> "floating"
  | Memory -> "memory"

let pp fmt t = Format.pp_print_string fmt (name t)

(* Weights in the spirit of Wattch's unit breakdown for a 21264-class
   core: front-end (fetch+rename+ROB) and integer core dominate. *)
let relative_power = function
  | Front_end -> 0.32
  | Integer -> 0.26
  | Floating -> 0.18
  | Memory -> 0.24
