(** Structured diagnostics for the profile→edit→run pipeline.

    Every failure the robustness subsystem can detect — in plan files,
    in plan values, or in run-time reconfiguration behaviour — is a
    variant here, carrying enough context to render a one-line
    actionable message. Diagnostics are split into two classes:
    [`Io] (the artifact could not be read at all) and [`Validation]
    (the artifact was read but violates an invariant). The CLI maps the
    classes to distinct exit codes so harnesses can script against
    them. *)

type t =
  | Io_error of { path : string; message : string }
      (** the file could not be opened or read *)
  | Empty_file of { path : string }
  | Bad_header of { path : string; found : string }
      (** first line is not the plan-format magic *)
  | Malformed_line of {
      path : string;
      line : int;  (** 1-based line number *)
      content : string;
      reason : string;
    }
  | Missing_fingerprint of { path : string }
  | Missing_header_field of { path : string; field : string; default : string }
      (** a [context]/[slowdown] header line is absent; the loader
          substituted the stated default instead of failing — but the
          plan was probably written by hand or damaged, so say so *)
  | Truncated_file of { path : string }
      (** the end-of-plan marker is missing: the tail of the file was
          lost in transit *)
  | Fingerprint_mismatch of { path : string; expected : string; found : string }
      (** the program or training input changed shape since the plan
          was saved *)
  | Tree_shape_drift of { path : string; node : int; detail : string }
      (** the plan names a call-tree node the rebuilt tree does not
          have *)
  | Illegal_frequency of { where : string; requested_mhz : int; snapped_mhz : int }
      (** a frequency outside the legal grid; [snapped_mhz] is what the
          degradation policy substituted *)
  | Bad_setting_arity of { where : string; expected : int; found : int }
      (** a reconfiguration setting with the wrong number of domains *)
  | Bad_histogram_weight of { node : int; domain : int; bin : int; weight : float }
      (** NaN or negative weight in a retained histogram *)
  | Bad_histogram_shape of { node : int; expected_bins : int; found_bins : int }
      (** a retained histogram whose bin count does not match the
          frequency grid *)
  | Bad_slowdown of { value : float }
      (** NaN or negative slowdown tolerance *)
  | Runtime_fault of { where : string; detail : string }
      (** a run-time watchdog observation: a domain that ignores
          reconfiguration writes, a slew that never completes, ... *)
  | Cache_corrupt of { path : string; reason : string }
      (** a result-cache object failed to parse (truncated, damaged, or
          a digest collision); the store falls back to recompute *)

val class_ : t -> [ `Io | `Validation ]

val exit_code : t -> int
(** 2 for [`Validation], 3 for [`Io] — the CLI contract. *)

val exit_code_of_list : t list -> int
(** The I/O code dominates: 3 if any error is [`Io], else 2.
    0 for the empty list. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line. *)
