examples/ship_plan.mli:
