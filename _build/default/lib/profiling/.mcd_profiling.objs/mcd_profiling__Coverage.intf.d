lib/profiling/coverage.mli: Call_tree
