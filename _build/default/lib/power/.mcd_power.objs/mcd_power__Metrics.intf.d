lib/power/metrics.mli: Format
