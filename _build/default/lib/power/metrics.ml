type run = {
  runtime_ps : int;
  energy_pj : float;
  per_domain_pj : float array;
  instructions : int;
  cycles_front : int;
  sync_crossings : int;
  sync_penalties : int;
  reconfigurations : int;
  instr_points : int;
  instr_overhead_ps : int;
}

let ipc run =
  if run.cycles_front = 0 then 0.0
  else float_of_int run.instructions /. float_of_int run.cycles_front

let energy_delay run = run.energy_pj *. Mcd_util.Time.to_s run.runtime_ps

let perf_degradation_pct ~baseline run =
  Mcd_util.Stats.ratio_percent_change
    ~baseline:(float_of_int baseline.runtime_ps)
    ~value:(float_of_int run.runtime_ps)

let energy_savings_pct ~baseline run =
  -.Mcd_util.Stats.ratio_percent_change ~baseline:baseline.energy_pj
      ~value:run.energy_pj

let ed_improvement_pct ~baseline run =
  -.Mcd_util.Stats.ratio_percent_change
      ~baseline:(energy_delay baseline)
      ~value:(energy_delay run)

let pp fmt run =
  Format.fprintf fmt
    "@[<v>runtime=%a energy=%.1f nJ insts=%d ipc=%.2f sync=%d/%d reconf=%d@]"
    Mcd_util.Time.pp run.runtime_ps (run.energy_pj /. 1000.0)
    run.instructions (ipc run) run.sync_penalties run.sync_crossings
    run.reconfigurations
