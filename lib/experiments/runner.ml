module Workload = Mcd_workloads.Workload
module Metrics = Mcd_power.Metrics
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Editor = Mcd_core.Editor
module Analyze = Mcd_core.Analyze
module Attack_decay = Mcd_control.Attack_decay
module Policy = Mcd_control.Policy
module Freq = Mcd_domains.Freq
module Ckey = Mcd_cache.Key
module Cstore = Mcd_cache.Store

type comparison = {
  degradation_pct : float;
  savings_pct : float;
  ed_improvement_pct : float;
}

let compare_runs ~baseline run =
  {
    degradation_pct = Metrics.perf_degradation_pct ~baseline run;
    savings_pct = Metrics.energy_savings_pct ~baseline run;
    ed_improvement_pct = Metrics.ed_improvement_pct ~baseline run;
  }

let default_slowdown_pct = 7.0

let config = Config.alpha21264_like

type profiled_run = {
  run : Metrics.run;
  plan : Plan.t Lazy.t;
  counters : Editor.counters;
}

(* --- simulation mode --------------------------------------------------- *)

module Sampler = Mcd_cpu.Sampler

type sim_mode = Exact | Sampled of Sampler.params

(* Mutable configuration, like [jobs] below: the bench/CLI drivers set
   it once at startup and every entry point inherits it without
   threading a parameter through each signature. Worker domains read
   the same ref. *)
let sim_mode = ref Exact
let set_sim_mode m = sim_mode := m
let get_sim_mode () = !sim_mode

let sampling () = match !sim_mode with Exact -> None | Sampled p -> Some p

(* Sampled results are different objects from exact ones: production
   run keys grow a ("sim", ...) part and every in-memory memo key a
   matching suffix, so the two modes never serve each other's numbers.
   In [Exact] mode both are empty — exact keys are byte-identical to
   what they were before sampling existed. Plans and oracle analyses
   are always computed exactly, so their keys never carry the part. *)
let sim_parts () =
  match !sim_mode with
  | Exact -> []
  | Sampled p -> [ ("sim", "sampled:" ^ Sampler.params_id p) ]

let sim_tag () =
  match !sim_mode with
  | Exact -> ""
  | Sampled p -> "/sampled:" ^ Sampler.params_id p

(* Memo tables are domain-local: experiment sweeps fan out across OCaml
   domains (see [map_workloads]) and [Hashtbl] is not safe under
   concurrent mutation. Each domain lazily builds its own table, so a
   worker keeps full memoization within its share of a sweep while the
   main domain retains its cache across experiments, exactly as the old
   global tables did in sequential runs. Results are deterministic per
   key, so duplicated computation across domains cannot change output.

   Below the memo tables sits the optional persistent content-addressed
   store ({!Mcd_cache.Store.default}): memo tables die with their domain
   (and with the process), the disk store survives both, so a warm rerun
   skips simulation entirely. *)
let dls_table () = Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let memo_key : (string, Metrics.run) Hashtbl.t Domain.DLS.key = dls_table ()
let plan_memo_key : (string, Plan.t) Hashtbl.t Domain.DLS.key = dls_table ()

let oracle_memo_key : (string, Mcd_core.Oracle.analysis) Hashtbl.t Domain.DLS.key =
  dls_table ()

(* full profiled runs (with counters) at the default slowdown *)
let profiled_memo_key : (string, profiled_run) Hashtbl.t Domain.DLS.key =
  dls_table ()

let memo () = Domain.DLS.get memo_key
let plan_memo () = Domain.DLS.get plan_memo_key
let oracle_memo () = Domain.DLS.get oracle_memo_key
let profiled_memo () = Domain.DLS.get profiled_memo_key

let clear_caches () =
  Hashtbl.reset (memo ());
  Hashtbl.reset (plan_memo ());
  Hashtbl.reset (oracle_memo ());
  Hashtbl.reset (profiled_memo ())

let memoize tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.add tbl key v;
      v

(* Concurrency of the experiment fan-out. Mutable configuration rather
   than a parameter so every figure/table module inherits it without
   threading [?jobs] through each signature; set once at startup by the
   bench/CLI drivers. *)
let jobs = ref 1
let set_jobs n = jobs := max 1 n
let get_jobs () = !jobs

let par_map f xs = Mcd_util.Par.map ~jobs:!jobs f xs
let map_workloads f ws = par_map f ws

(* --- shared analysis-window derivation --------------------------------- *)

(* One derivation for every consumer (plan_for, load_plan, Tables's
   coverage table, the CLI's tree command): the profiler walks
   [analysis_profile_insts] instructions to build the call tree, and the
   timing trace behind a plan covers at most 120_000 of the training
   window. Divergent copies of these constants are precisely how plan
   files stop round-tripping. *)
let analysis_profile_insts = 400_000

let analysis_input (w : Workload.t) ~train =
  match train with
  | `Train -> (w.Workload.train, w.Workload.train_window)
  | `Reference -> (w.Workload.reference, w.Workload.ref_window)

let analysis_trace_insts (w : Workload.t) ~train =
  let _, window = analysis_input w ~train in
  min window 120_000

(* Full profiler walks are the warm-path tax S1 of PR 7 removes: the
   counter lets tests pin that a warm disk hit performs none. *)
let profiler_walk_count = Atomic.make 0
let profiler_walks () = Atomic.get profiler_walk_count

let training_tree ?threshold (w : Workload.t) ~context ~train =
  Atomic.incr profiler_walk_count;
  let input, _ = analysis_input w ~train in
  Mcd_profiling.Call_tree.build w.Workload.program ~input ~context ?threshold
    ~max_insts:analysis_profile_insts ()

(* --- persistent cache keys and codecs ---------------------------------- *)

let base_parts (w : Workload.t) ~config ~input =
  Ckey.program_fragment w.Workload.program ~input
  @ Ckey.input_fragment input
  @ Ckey.config_fragment config
  @ Ckey.freq_fragment ()

(* A production run is identified by everything the simulator sees: the
   program (at the reference input), the input itself, the processor
   configuration, the frequency grid, the measurement window, and the
   policy driving reconfiguration (with all its parameters). The policy
   identity is rendered by [Ckey.policy_fragment] so the experiment
   service derives byte-identical request keys. Runs that are exact in
   every mode (see [online_run]) pass [~modal:false] to drop the
   ("sim", ...) part: their one result serves both modes. *)
let run_key ?(modal = true) (w : Workload.t) ~config ~policy ~params =
  Ckey.make ~kind:"run"
    ~parts:
      (base_parts w ~config ~input:w.Workload.reference
      @ [
          ("warmup", string_of_int w.Workload.ref_offset);
          ("window", string_of_int w.Workload.ref_window);
        ]
      @ Ckey.policy_fragment ~name:policy ~params
      @ (if modal then sim_parts () else []))

(* Analysis knobs (long-running threshold, shaker pass budget) key the
   plan only when overridden, so the default-knob key stays byte-
   identical to what every non-ablation caller always used — an
   ablation's default point reads the object the headline experiments
   already wrote. The processor configuration is inside [base_parts],
   so a narrow-core plan separates for free. *)
let default_shaker_passes = 24

let plan_key ?(threshold = Mcd_profiling.Call_tree.default_threshold)
    ?(shaker = default_shaker_passes) ?(config = config) (w : Workload.t)
    ~context ~train ~slowdown_pct =
  let input, _ = analysis_input w ~train in
  Ckey.make ~kind:"plan"
    ~parts:
      (base_parts w ~config ~input
      @ [
          ("context", context.Context.name);
          ("slowdown", Printf.sprintf "%h" slowdown_pct);
          ("profile_insts", string_of_int analysis_profile_insts);
          ("trace_insts", string_of_int (analysis_trace_insts w ~train));
        ]
      @ (if threshold <> Mcd_profiling.Call_tree.default_threshold then
           [ ("threshold", string_of_int threshold) ]
         else [])
      @
      if shaker <> default_shaker_passes then
        [ ("shaker", string_of_int shaker) ]
      else [])

let oracle_key (w : Workload.t) =
  Ckey.make ~kind:"oracle"
    ~parts:
      (base_parts w ~config ~input:w.Workload.reference
      @ [
          ( "interval_insts",
            string_of_int Mcd_core.Oracle.default_interval_insts );
          ( "trace_insts",
            string_of_int (w.Workload.ref_offset + w.Workload.ref_window) );
        ])

(* Read-through the persistent store when one is configured; a cache
   problem of any kind degrades to plain recomputation inside
   [Cstore.cached]. [key] is a thunk so key construction costs nothing
   when caching is off. *)
let disk_cached ~key ~encode ~decode f =
  match Cstore.default () with
  | None -> f ()
  | Some store -> Cstore.cached store ~key:(key ()) ~encode ~decode f

let run_cached ~key f =
  disk_cached ~key ~encode:Metrics.encode ~decode:Metrics.decode f

(* Plans are stored in the Plan_io text format. Decoding rebuilds the
   training tree (cheap: a profiler walk, no timing simulation) and
   refuses — i.e. reports corruption, triggering recompute — if the
   stored plan does not round-trip cleanly against it. *)
let plan_codec ?threshold (w : Workload.t) ~context ~train =
  let decode payload =
    let tree = training_tree ?threshold w ~context ~train in
    match Mcd_core.Plan_io.of_string_result ~path:"<cache>" ~tree payload with
    | Result.Ok { Mcd_core.Plan_io.plan; warnings = [] } -> Result.Ok plan
    | Result.Ok { Mcd_core.Plan_io.warnings; _ } ->
        Result.Error
          (String.concat "; " (List.map Mcd_robust.Error.to_string warnings))
    | Result.Error errors ->
        Result.Error
          (String.concat "; " (List.map Mcd_robust.Error.to_string errors))
  in
  (Mcd_core.Plan_io.to_string, decode)

(* --- policy runs ------------------------------------------------------- *)

(* A short stable identity for a processor configuration, for
   in-memory memo keys only (disk keys carry the full config fragment
   through [base_parts]). *)
let config_tag cfg =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ v) (Ckey.config_fragment cfg))))

let sim_run ?controller ?sampling:(sampl = sampling ()) (w : Workload.t)
    ~config =
  Pipeline.run ?controller ?sampling:sampl ~config
    ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
    ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()

let config_baseline ?(config = config) (w : Workload.t) =
  memoize (memo ())
    (Printf.sprintf "%s/baseline/%s%s" w.Workload.name (config_tag config)
       (sim_tag ()))
  @@ fun () ->
  run_cached ~key:(fun () -> run_key w ~config ~policy:"baseline" ~params:[])
  @@ fun () -> sim_run w ~config

let baseline (w : Workload.t) = config_baseline w

let single_clock (w : Workload.t) ~mhz =
  memoize (memo ())
    (Printf.sprintf "%s/single/%d%s" w.Workload.name mhz (sim_tag ()))
  @@ fun () ->
  let config = Config.single_clock ~mhz in
  run_cached ~key:(fun () -> run_key w ~config ~policy:"baseline" ~params:[])
  @@ fun () -> sim_run w ~config

let input_tag = function `Train -> "train" | `Reference -> "ref"

(* The plan segment of an experiment: profiling walk + traced training
   run + shaker, cached independently of the production runs that
   consume the result, so an ablation that only perturbs the production
   side (or a knob that only perturbs the analysis side) recomputes one
   segment instead of the whole pipeline. Plans are always computed
   exactly — sampling never touches analysis quality. *)
let analyzed_plan ?threshold_insts ?shaker_passes ?(config = config)
    ?(slowdown_pct = default_slowdown_pct) (w : Workload.t) ~context ~train =
  let threshold =
    Option.value threshold_insts
      ~default:Mcd_profiling.Call_tree.default_threshold
  in
  let shaker = Option.value shaker_passes ~default:default_shaker_passes in
  memoize (plan_memo ())
    (Printf.sprintf "%s/%s/%s/th%d/sh%d/%s/%s" w.Workload.name
       context.Context.name (input_tag train) threshold shaker
       (Ckey.float_param slowdown_pct)
       (config_tag config))
  @@ fun () ->
  let encode, decode = plan_codec ~threshold w ~context ~train in
  disk_cached
    ~key:(fun () ->
      plan_key ~threshold ~shaker ~config w ~context ~train ~slowdown_pct)
    ~encode ~decode
  @@ fun () ->
  let input, _ = analysis_input w ~train in
  let trace_insts = analysis_trace_insts w ~train in
  let plan, _stats =
    Analyze.analyze ~program:w.Workload.program ~train:input ~context
      ~slowdown_pct ~threshold_insts:threshold ~shaker_passes:shaker
      ~trace_insts ~config ()
  in
  plan

let plan_for (w : Workload.t) ~context ~train = analyzed_plan w ~context ~train

(* The production segment under an explicit plan: keyed by the plan's
   content digest (plus workload, config, window and simulation mode
   through [run_key]), so every ablation point sharing a plan shares
   one cached run. *)
let plan_run ?(config = config) (w : Workload.t) ~plan =
  let digest = Digest.to_hex (Digest.string (Mcd_core.Plan_io.to_string plan)) in
  memoize (memo ())
    (Printf.sprintf "%s/plan/%s/%s%s" w.Workload.name digest
       (config_tag config) (sim_tag ()))
  @@ fun () ->
  run_cached
    ~key:(fun () -> run_key w ~config ~policy:"plan" ~params:[ digest ])
  @@ fun () ->
  let edited = Editor.edit plan in
  sim_run ~controller:edited.Editor.controller w ~config

(* The result path for shipped plans: rebuild the profiling tree from
   exactly the derivation Analyze/plan_for use ({!training_tree}), then
   load with typed diagnostics instead of exceptions. [train] selects
   which input the plan was trained on (shipped plans are normally
   [`Train]; [`Reference]-trained plans come from the oracle
   configuration). *)
let load_plan ?(train = `Train) (w : Workload.t) ~context ~path =
  let tree = training_tree w ~context ~train in
  Mcd_core.Plan_io.load_result ~path ~tree

let oracle_analysis (w : Workload.t) =
  memoize (oracle_memo ()) (w.Workload.name ^ "/oracle") @@ fun () ->
  disk_cached
    ~key:(fun () -> oracle_key w)
    ~encode:Mcd_core.Oracle.encode_analysis
    ~decode:Mcd_core.Oracle.decode_analysis
  @@ fun () ->
  Mcd_core.Oracle.analyze ~program:w.Workload.program
    ~input:w.Workload.reference
    ~trace_insts:(w.Workload.ref_offset + w.Workload.ref_window)
    ~config ()

let offline_policy_params slowdown_pct =
  [
    Ckey.float_param slowdown_pct;
    string_of_int Mcd_core.Oracle.default_interval_insts;
  ]

let offline_run ?(slowdown_pct = default_slowdown_pct) (w : Workload.t) =
  (* memoized at every slowdown: the memo key carries the canonical
     [Ckey.float_param] rendering rather than gating on float equality
     with the default, so sweep points are cached in-process too *)
  memoize (memo ())
    (Printf.sprintf "%s/offline/%s%s" w.Workload.name
       (Ckey.float_param slowdown_pct)
       (sim_tag ()))
  @@ fun () ->
  run_cached
    ~key:(fun () ->
      run_key w ~config ~policy:"offline"
        ~params:(offline_policy_params slowdown_pct))
  @@ fun () ->
  let schedule =
    Mcd_core.Oracle.schedule_of (oracle_analysis w) ~slowdown_pct
  in
  sim_run ~controller:(Mcd_core.Oracle.policy schedule) w ~config

let profile_run_uncached (w : Workload.t) ~plan =
  let edited = Editor.edit plan in
  let run = sim_run ~controller:edited.Editor.controller w ~config in
  { run; plan = Lazy.from_val plan; counters = edited.Editor.counters }

(* A profiled run's cached payload is the run plus the editor counters;
   the plan itself is recovered through [plan_for]'s own cache, so it is
   not duplicated in every profiled-run object. *)
let encode_profiled pr =
  Printf.sprintf "profiled 1\nreconfig_execs %d\ninstr_execs %d\n%s"
    pr.counters.Editor.reconfig_execs pr.counters.Editor.instr_execs
    (Metrics.encode pr.run)

let decode_profiled ~plan_of payload =
  let ( let* ) = Result.bind in
  let int_field name line =
    match String.split_on_char ' ' line with
    | [ n; v ] when n = name -> (
        match int_of_string_opt v with
        | Some v -> Result.Ok v
        | None -> Result.Error (Printf.sprintf "bad %s value %S" name v))
    | _ -> Result.Error (Printf.sprintf "expected %S line, got %S" name line)
  in
  match String.index_opt payload '\n' with
  | None -> Result.Error "truncated profiled payload"
  | Some e1 -> (
      if String.sub payload 0 e1 <> "profiled 1" then
        Result.Error "bad profiled header"
      else
        match String.index_from_opt payload (e1 + 1) '\n' with
        | None -> Result.Error "truncated profiled payload"
        | Some e2 -> (
            match String.index_from_opt payload (e2 + 1) '\n' with
            | None -> Result.Error "truncated profiled payload"
            | Some e3 ->
                let* reconfig_execs =
                  int_field "reconfig_execs"
                    (String.sub payload (e1 + 1) (e2 - e1 - 1))
                in
                let* instr_execs =
                  int_field "instr_execs"
                    (String.sub payload (e2 + 1) (e3 - e2 - 1))
                in
                let* run =
                  Metrics.decode
                    (String.sub payload (e3 + 1)
                       (String.length payload - e3 - 1))
                in
                Result.Ok
                  {
                    run;
                    (* lazy on purpose: a warm disk hit must not pay
                       [plan_for]'s profiler walk for a plan most
                       callers never read *)
                    plan = lazy (plan_of ());
                    counters = { Editor.reconfig_execs; instr_execs };
                  }))

let profile_policy_params (w : Workload.t) ~context ~train ~slowdown_pct =
  [
    context.Context.name;
    input_tag train;
    Ckey.float_param slowdown_pct;
    string_of_int analysis_profile_insts;
    string_of_int (analysis_trace_insts w ~train);
  ]

let profile_run ?(slowdown_pct = default_slowdown_pct) (w : Workload.t)
    ~context ~train =
  let plan_of () =
    let base = plan_for w ~context ~train in
    if slowdown_pct = default_slowdown_pct then base
    else Plan.with_slowdown base ~slowdown_pct
  in
  memoize (profiled_memo ())
    (Printf.sprintf "%s/%s/%s/%s%s/run" w.Workload.name context.Context.name
       (input_tag train)
       (Ckey.float_param slowdown_pct)
       (sim_tag ()))
  @@ fun () ->
  disk_cached
    ~key:(fun () ->
      run_key w ~config ~policy:"profile"
        ~params:(profile_policy_params w ~context ~train ~slowdown_pct))
    ~encode:encode_profiled
    ~decode:(decode_profiled ~plan_of)
  @@ fun () -> profile_run_uncached w ~plan:(plan_of ())

let online_policy_params = Attack_decay.params_id

(* --- the generic policy path ------------------------------------------- *)

(* Every {!Mcd_control.Policy.t} runs through one entry point. Feedback
   policies are always simulated exactly, whatever the global
   [sim_mode]: a cycle-driven feedback loop (attack/decay, PID,
   cache-aware, util-prop all read queue occupancy or miss counters
   every interval) cannot observe skipped instances — under sampling it
   reacts to a sparse, unrepresentative subsequence of intervals and
   its frequency trajectory diverges from the exact run by tens of
   points. Feed-forward policies (baseline, fixed, offline, profile)
   react to the marker stream, which sampling preserves, so they sample
   safely. Because a feedback result is mode-independent, so are its
   keys ([~modal:false], no [sim_tag]): a sampled bench pass reuses the
   on-line runs the exact pass already cached. *)
let policy_key (p : Policy.t) (w : Workload.t) =
  run_key
    ~modal:(not p.Policy.feedback)
    w ~config ~policy:p.Policy.name ~params:p.Policy.params

let policy_run (p : Policy.t) (w : Workload.t) =
  (* memoized on the disk key's canonical line: it already names the
     policy with all parameters, the workload, the config and (for
     modal runs) the simulation mode, so two parameterisations of one
     policy can never serve each other's numbers in-process either *)
  let key = policy_key p w in
  memoize (memo ()) ("policy/" ^ Ckey.canonical key)
  @@ fun () ->
  run_cached ~key:(fun () -> key)
  @@ fun () ->
  let controller = p.Policy.create () in
  if p.Policy.feedback then sim_run ~sampling:None ~controller w ~config
  else sim_run ~controller w ~config

let online_run ?params (w : Workload.t) =
  policy_run (Attack_decay.policy ?params ()) w

(* Traced variant of the per-policy runs: never memoized (the sink is a
   side channel — a cached Metrics.run would leave it empty), and the
   end-of-run aggregates are mirrored into the sink's registry as
   gauges so an exported metrics.jsonl is self-contained. *)
let observed_run ?(policy = `Profile) ?(context = Context.lf) ~sink
    (w : Workload.t) =
  let controller =
    match policy with
    | `Baseline -> None
    | `Online -> Some (Attack_decay.controller ~sink ())
    | `Offline ->
        let schedule =
          Mcd_core.Oracle.schedule_of (oracle_analysis w)
            ~slowdown_pct:default_slowdown_pct
        in
        Some (Mcd_core.Oracle.policy schedule)
    | `Profile ->
        let plan = plan_for w ~context ~train:`Train in
        Some (Editor.edit plan).Editor.controller
  in
  let run =
    Pipeline.run ?controller ~sink ~config
      ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
      ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
  in
  let m = Mcd_obs.Sink.metrics sink in
  let g name v = Mcd_obs.Metrics.set (Mcd_obs.Metrics.gauge m name) v in
  g "run.runtime_ps" (float_of_int run.Metrics.runtime_ps);
  g "run.energy_pj" run.Metrics.energy_pj;
  g "run.instructions" (float_of_int run.Metrics.instructions);
  g "run.cycles_front" (float_of_int run.Metrics.cycles_front);
  g "run.sync_crossings" (float_of_int run.Metrics.sync_crossings);
  g "run.sync_penalties" (float_of_int run.Metrics.sync_penalties);
  g "run.reconfigurations" (float_of_int run.Metrics.reconfigurations);
  run

(* --- served requests --------------------------------------------------- *)

(* The experiment service coalesces concurrent identical requests by
   content-addressed digest, so a request's key must be exactly the key
   the underlying run is cached under — and parameters a policy does not
   consume must be normalized away (a baseline run at slowdown 5% and
   one at 9% are the same computation and must coalesce). *)
let request_policy (w : Workload.t) ~policy ~context ~slowdown_pct =
  match policy with
  | `Baseline -> ("baseline", [])
  | `Online -> ("online", online_policy_params Attack_decay.default_params)
  | `Offline -> ("offline", offline_policy_params slowdown_pct)
  | `Profile ->
      ( "profile",
        profile_policy_params w ~context ~train:`Train ~slowdown_pct )

let request_key (w : Workload.t) ~policy ~context ~slowdown_pct =
  let name, params = request_policy w ~policy ~context ~slowdown_pct in
  run_key ~modal:(policy <> `Online) w ~config ~policy:name ~params

let run_request (w : Workload.t) ~policy ~context ~slowdown_pct =
  match policy with
  | `Baseline -> baseline w
  | `Online -> online_run w
  | `Offline -> offline_run ~slowdown_pct w
  | `Profile -> (profile_run ~slowdown_pct w ~context ~train:`Train).run

(* The paper's "global" bar: a single-clock processor scaled so that its
   total runtime matches the off-line algorithm's. A first-order 1/f
   estimate seeds the search; the chosen frequency is the slowest step
   whose runtime still meets the target (or fmax when nothing does). *)
let global_dvs_run (w : Workload.t) ~target_runtime_ps =
  let full = single_clock w ~mhz:Freq.fmax_mhz in
  let estimate =
    float_of_int Freq.fmax_mhz
    *. float_of_int full.Metrics.runtime_ps
    /. float_of_int (max 1 target_runtime_ps)
  in
  let start_mhz = Freq.clamp (int_of_float estimate) in
  let run_at mhz = single_clock w ~mhz in
  let meets mhz = (run_at mhz).Metrics.runtime_ps <= target_runtime_ps in
  (* walk up until the target is met (the 1/f estimate can land low) *)
  let rec up mhz =
    if meets mhz || mhz >= Freq.fmax_mhz then mhz
    else up (Freq.clamp (mhz + Freq.step_mhz))
  in
  let mhz0 = up start_mhz in
  (* then walk down while a lower step still meets it: the estimate can
     just as well land several steps high, and stopping after a single
     probe would report a faster (less energy-efficient) frequency than
     the scaling target permits *)
  let rec down mhz =
    if mhz <= Freq.fmin_mhz then mhz
    else
      let lower = Freq.clamp (mhz - Freq.step_mhz) in
      if meets lower then down lower else mhz
  in
  let final_mhz = if meets mhz0 then down mhz0 else mhz0 in
  (run_at final_mhz, final_mhz)
