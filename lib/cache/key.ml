module Program = Mcd_isa.Program
module Config = Mcd_cpu.Config
module Freq = Mcd_domains.Freq

let format_version = 1
(* 2: the attack/decay revert path now clears the idle streak, which
   changes every online-policy trajectory — pre-fix cached runs must
   miss cleanly. *)
let model_version = 2

type t = { kind : string; canonical : string; digest : string }

(* Part names and values are joined with spaces into a single-line
   canonical string, so the three characters that would make the
   rendering ambiguous or multi-line are percent-encoded. *)
let encode_value v =
  let plain =
    String.for_all (fun c -> c <> ' ' && c <> '%' && c <> '\n') v
  in
  if plain then v
  else begin
    let buf = Buffer.create (String.length v + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  end

let make ~kind ~parts =
  let canonical =
    String.concat " "
      (Printf.sprintf "mcd-dvfs-cache/%d" format_version
      :: Printf.sprintf "model/%d" model_version
      :: Printf.sprintf "kind=%s" (encode_value kind)
      :: List.map
           (fun (k, v) ->
             Printf.sprintf "%s=%s" (encode_value k) (encode_value v))
           parts)
  in
  { kind; canonical; digest = Digest.to_hex (Digest.string canonical) }

let kind t = t.kind
let canonical t = t.canonical
let digest t = t.digest

(* --- standard fragments ------------------------------------------------ *)

let program_fragment program ~input =
  (* The full structural rendering runs to kilobytes; store its digest
     so key strings stay short enough to embed in object headers. *)
  [
    ( "program",
      Digest.to_hex (Digest.string (Program.canonical program ~input)) );
  ]

let input_fragment (input : Program.input) =
  [
    ( "input",
      Printf.sprintf "%s:%d:%h:%d" input.Program.input_name
        input.Program.scale input.Program.divergence input.Program.seed );
  ]

let config_fragment (c : Config.t) =
  let geo (g : Config.cache_geometry) =
    Printf.sprintf "%d.%d.%d.%d" g.Config.sets g.Config.ways
      g.Config.line_bytes g.Config.latency_cycles
  in
  let clocking =
    match c.Config.clocking with
    | Config.Mcd -> "mcd"
    | Config.Single_clock mhz -> Printf.sprintf "single.%d" mhz
  in
  [
    ( "config",
      String.concat ":"
        [
          string_of_int c.Config.fetch_width;
          string_of_int c.Config.decode_depth;
          string_of_int c.Config.dispatch_width;
          string_of_int c.Config.retire_width;
          string_of_int c.Config.rob_size;
          string_of_int c.Config.int_phys_regs;
          string_of_int c.Config.fp_phys_regs;
          string_of_int c.Config.iq_int_size;
          string_of_int c.Config.iq_fp_size;
          string_of_int c.Config.lsq_size;
          string_of_int c.Config.int_alus;
          string_of_int c.Config.int_mults;
          string_of_int c.Config.fp_alus;
          string_of_int c.Config.fp_mults;
          string_of_int c.Config.int_alu_latency;
          string_of_int c.Config.int_mult_latency;
          string_of_int c.Config.fp_alu_latency;
          string_of_int c.Config.fp_mult_latency;
          string_of_int c.Config.issue_per_domain;
          string_of_int c.Config.mem_ports;
          geo c.Config.l1i;
          geo c.Config.l1d;
          geo c.Config.l2;
          string_of_int c.Config.main_memory_ns;
          string_of_int c.Config.branch_penalty_cycles;
          clocking;
          string_of_bool c.Config.jitter;
          string_of_int c.Config.seed;
        ] );
  ]

let float_param = Printf.sprintf "%h"

let policy_fragment ~name ~params =
  [ ("policy", String.concat ":" (name :: params)) ]

let freq_fragment () =
  [
    ( "freq",
      Printf.sprintf "%d-%d:%d:%d:%h-%h" Freq.fmin_mhz Freq.fmax_mhz
        Freq.step_mhz Freq.num_steps Freq.vmin Freq.vmax );
  ]
