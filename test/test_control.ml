(* Tests for the on-line attack/decay controller and simple policies,
   driven with synthetic samples. *)

module AD = Mcd_control.Attack_decay
module Policies = Mcd_control.Policies
module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Walker = Mcd_isa.Walker

let sample ?(elapsed = 10_000) ?(retired = 5_000) ~int_occ ~fp_occ ~mem_occ () =
  let occ = Array.make Domain.count 0.0 in
  occ.(Domain.index Domain.Integer) <- int_occ;
  occ.(Domain.index Domain.Floating) <- fp_occ;
  occ.(Domain.index Domain.Memory) <- mem_occ;
  {
    Controller.elapsed_cycles = elapsed;
    avg_occupancy = occ;
    retired;
    total_retired = retired;
    target_mhz = Array.make Domain.count Freq.fmax_mhz;
    current_mhz = Array.make Domain.count (float_of_int Freq.fmax_mhz);
  }

let feed ctl samples =
  let last = ref None in
  List.iteri
    (fun i s ->
      match ctl.Controller.on_sample s ~now:(i * 10_000_000) with
      | Some setting -> last := Some setting
      | None -> ())
    samples;
  !last

let test_idle_fp_plunges () =
  let ctl = AD.controller () in
  let samples =
    List.init 12 (fun _ -> sample ~int_occ:8.0 ~fp_occ:0.0 ~mem_occ:10.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "fp plunged to floor" Freq.fmin_mhz
        (Reconfig.get setting Domain.Floating)
  | None -> Alcotest.fail "controller never reconfigured"

let test_backlogged_domain_stays_fast () =
  let ctl = AD.controller () in
  let samples =
    List.init 12 (fun _ -> sample ~int_occ:14.0 ~fp_occ:0.0 ~mem_occ:5.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "backlogged integer stays at fmax" Freq.fmax_mhz
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "controller never reconfigured"

let test_low_util_decays () =
  let ctl = AD.controller () in
  (* integer lightly used and IPC steady: should drift downward *)
  let samples =
    List.init 30 (fun _ -> sample ~int_occ:1.5 ~fp_occ:6.0 ~mem_occ:10.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check bool) "integer decayed" true
        (Reconfig.get setting Domain.Integer < Freq.fmax_mhz)
  | None -> Alcotest.fail "controller never reconfigured"

let test_guard_reverts_on_ipc_drop () =
  let ctl = AD.controller () in
  (* run stable, then decay happens; afterwards IPC collapses: the guard
     must push the frequency back up *)
  let stable =
    List.init 6 (fun _ ->
        sample ~retired:6_000 ~int_occ:1.5 ~fp_occ:5.0 ~mem_occ:10.0 ())
  in
  let collapsed =
    List.init 8 (fun _ ->
        sample ~retired:1_000 ~int_occ:1.5 ~fp_occ:5.0 ~mem_occ:10.0 ())
  in
  let _ = feed ctl stable in
  let after = feed ctl collapsed in
  match after with
  | Some setting ->
      (* after reverts and cooldowns the integer frequency should not be
         at the floor *)
      Alcotest.(check bool) "guard kept frequency off the floor" true
        (Reconfig.get setting Domain.Integer > Freq.fmin_mhz)
  | None ->
      (* no reconfiguration at all also means no runaway decay *)
      ()

let test_guard_revert_is_exact () =
  (* Regression: the guard used to undo a decay_step_mhz (50) decay by
     adding attack_step_mhz (150), overshooting the pre-decay frequency
     by 100 MHz. Drive the integer domain down to 700 MHz with two idle
     plunges, trigger one decay to 650, then collapse the IPC so the
     guard fires: it must restore exactly 700 MHz, not 800. *)
  let ctl = AD.controller () in
  (* three idle samples: prev_util primes on the first, the next two
     plunge 1000 -> 850 -> 700 *)
  let idle =
    List.init 3 (fun _ -> sample ~int_occ:0.1 ~fp_occ:6.0 ~mem_occ:30.0 ())
  in
  (* light-but-present utilisation with steady IPC: decays 700 -> 650
     and arms the guard (pending_check = 3) *)
  let decay = [ sample ~int_occ:0.8 ~fp_occ:6.0 ~mem_occ:30.0 () ] in
  (* IPC collapses while utilisation holds: when the pending check
     expires the guard must revert the decay *)
  let collapsed =
    List.init 3 (fun _ ->
        sample ~retired:500 ~int_occ:0.8 ~fp_occ:6.0 ~mem_occ:30.0 ())
  in
  let last = feed ctl (idle @ decay @ collapsed) in
  match last with
  | Some setting ->
      Alcotest.(check int) "revert restores the exact pre-decay frequency"
        700
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "guard never fired"

let test_attack_on_rising_util () =
  let ctl = AD.controller () in
  (* establish low utilisation, decay a bit, then a surge *)
  let low =
    List.init 10 (fun _ -> sample ~int_occ:1.0 ~fp_occ:2.0 ~mem_occ:5.0 ())
  in
  let surge = [ sample ~int_occ:19.0 ~fp_occ:2.0 ~mem_occ:5.0 () ] in
  let _ = feed ctl low in
  match feed ctl surge with
  | Some setting ->
      Alcotest.(check int) "deep backlog jumps to fmax" Freq.fmax_mhz
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "no reaction to surge"

let test_front_end_never_scaled () =
  let ctl = AD.controller () in
  let samples =
    List.init 20 (fun _ -> sample ~int_occ:0.0 ~fp_occ:0.0 ~mem_occ:0.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "front-end fixed" Freq.fmax_mhz
        (Reconfig.get setting Domain.Front_end)
  | None -> Alcotest.fail "controller never reconfigured"

let test_markers_ignored () =
  let ctl = AD.controller () in
  let r =
    ctl.Controller.on_marker (Walker.Enter_func { fid = 0; site_id = None })
      ~now:0
  in
  Alcotest.(check bool) "no marker reaction" true (r = Controller.no_reaction)

let test_params_interval_exposed () =
  let p = { AD.default_params with AD.interval_cycles = 1234 } in
  let ctl = AD.controller ~params:p () in
  Alcotest.(check int) "interval" 1234 ctl.Controller.sample_interval_cycles

(* --- Policies --------------------------------------------------------- *)

let test_fixed_policy_fires_once () =
  let setting =
    Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:1000
  in
  let ctl = Policies.fixed setting in
  let m = Walker.Enter_func { fid = 0; site_id = None } in
  let r1 = ctl.Controller.on_marker m ~now:0 in
  let r2 = ctl.Controller.on_marker m ~now:1 in
  Alcotest.(check bool) "first marker sets" true (r1.Controller.set = Some setting);
  Alcotest.(check bool) "second marker silent" true (r2.Controller.set = None)

let test_baseline_policy_inert () =
  let ctl = Policies.baseline in
  let m = Walker.Enter_func { fid = 0; site_id = None } in
  Alcotest.(check bool) "no reaction" true
    (ctl.Controller.on_marker m ~now:0 = Controller.no_reaction);
  Alcotest.(check int) "no sampling" 0 ctl.Controller.sample_interval_cycles

let suite =
  [
    ("idle fp plunges", `Quick, test_idle_fp_plunges);
    ("backlogged domain stays fast", `Quick, test_backlogged_domain_stays_fast);
    ("low utilisation decays", `Quick, test_low_util_decays);
    ("guard reverts on ipc drop", `Quick, test_guard_reverts_on_ipc_drop);
    ("guard revert is exact", `Quick, test_guard_revert_is_exact);
    ("attack on rising utilisation", `Quick, test_attack_on_rising_util);
    ("front-end never scaled", `Quick, test_front_end_never_scaled);
    ("markers ignored", `Quick, test_markers_ignored);
    ("params interval exposed", `Quick, test_params_interval_exposed);
    ("fixed policy fires once", `Quick, test_fixed_policy_fires_once);
    ("baseline policy inert", `Quick, test_baseline_policy_inert);
  ]
