lib/cpu/fu.ml: Array
