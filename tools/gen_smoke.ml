(* Generative-workload smoke test for the @verify alias.

   Two layers. The library layer exercises the contracts the workload
   fabric rests on, directly against one seeded spec: canonical program
   bytes and cache-key digests are identical across regenerations and
   under Par.map --jobs 4 (content addressing and serve-side dedup both
   assume it), an exact and a phase-sampled profile run of the same
   generated workload stay within drift bounds, and the sink-observed
   assertions (plan-floor, decision-grid) hold on a real run. The CLI
   layer then runs a bounded 100-spec campaign through the real binary
   — sequential, observation off, small windows, a warm cache — checks
   the mcd-dvfs-campaign/1 report parses with a replayable spec inside
   every find, and replays one minimized counterexample expecting the
   violation to reproduce (exit 0).

   The CLI executable path arrives as argv(1) from the dune rule, so
   the test always runs the binary built from this tree.

   Exits 0 on success, 1 with a message on the first violation. *)

module Spec = Mcd_gen.Spec
module Gassert = Mcd_gen.Assert
module P = Mcd_isa.Program
module W = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Key = Mcd_cache.Key
module Par = Mcd_util.Par
module Metrics = Mcd_power.Metrics
module Domain = Mcd_domains.Domain
module Sink = Mcd_obs.Sink
module Json = Mcd_obs.Json
module Context = Mcd_profiling.Context
module Runner = Mcd_experiments.Runner
module Policies = Mcd_control.Policies

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "gen_smoke: FAIL %s\n%!" msg
      end)
    fmt

let no_violations label vs =
  List.iter
    (fun (v : Gassert.violation) ->
      check false "%s: %s: %s" label v.Gassert.check v.Gassert.detail)
    vs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let cli =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else failwith "usage: gen_smoke MCD_DVFS_CLI"
  in
  let spec = { Spec.default with Spec.seed = 42 } in

  (* --- digest stability: regeneration and parallel generation --------- *)
  let canonical_of s =
    let w = Spec.workload s in
    P.canonical w.W.program ~input:w.W.reference
  in
  let c1 = canonical_of spec in
  check (String.equal c1 (canonical_of spec)) "regenerated canonical bytes differ";
  let seq_digest = Digest.to_hex (Digest.string c1) in
  let key_of s =
    let w = Spec.workload s in
    Key.digest
      (Key.make ~kind:"golden"
         ~parts:
           (Key.program_fragment w.W.program ~input:w.W.reference
           @ Key.input_fragment w.W.reference))
  in
  let k0 = key_of spec in
  Par.map ~jobs:4
    (fun s -> (Digest.to_hex (Digest.string (canonical_of s)), key_of s))
    [ spec; spec; spec; spec ]
  |> List.iteri (fun i (d, k) ->
         check (String.equal d seq_digest)
           "par worker %d canonical digest %s, sequential %s" i d seq_digest;
         check (String.equal k k0) "par worker %d cache key %s, sequential %s"
           i k k0);

  (* --- dedup identity: one spec, two evaluations, same bytes ---------- *)
  let w = Spec.workload spec in
  Suite.register w;
  let b1 = Runner.baseline w in
  Runner.clear_caches ();
  let b2 = Runner.baseline (Spec.workload spec) in
  check
    (String.equal (Metrics.encode b1) (Metrics.encode b2))
    "baseline runs of a regenerated spec are not byte-identical";
  (match Policies.adversaries () with
  | policy :: _ ->
      check
        (String.equal
           (Key.digest (Runner.policy_key policy w))
           (Key.digest (Runner.policy_key policy (Spec.workload spec))))
        "policy cache keys diverge across regenerations of one spec"
  | [] -> check false "no adversary policies registered");

  (* --- exact vs sampled drift on the generated workload --------------- *)
  let exact =
    (Runner.profile_run w ~context:Context.lf ~train:`Train).Runner.run
  in
  no_violations "profile-exact" (Gassert.run_sane ~label:"profile-exact" exact);
  Runner.set_sim_mode (Runner.Sampled Mcd_cpu.Sampler.default_params);
  let sampled =
    (Runner.profile_run w ~context:Context.lf ~train:`Train).Runner.run
  in
  Runner.set_sim_mode Runner.Exact;
  no_violations "profile-sampled"
    (Gassert.run_sane ~label:"profile-sampled" sampled);
  no_violations "drift"
    (Gassert.drift_bounded ~label:"profile" ~bound_pp:3.0 ~baseline:b1 ~exact
       ~sampled);

  (* --- observed-run assertions: plan floor and decision grid ---------- *)
  let sink = Sink.create ~domains:Domain.count () in
  let orun = Runner.observed_run ~policy:`Profile ~context:Context.lf ~sink w in
  no_violations "profile-observed"
    (Gassert.run_sane ~label:"profile-observed" orun);
  let plan = Runner.plan_for w ~context:Context.lf ~train:`Train in
  let floor = Gassert.plan_floor_mhz plan in
  no_violations "floor"
    (Gassert.floor_respected ~label:"profile-observed" ~floor_mhz:floor
       ~ipc_threshold:(0.5 *. Metrics.ipc b1) sink);
  let sink2 = Sink.create ~domains:Domain.count () in
  let _ = Runner.observed_run ~policy:`Online ~sink:sink2 w in
  no_violations "decision-grid"
    (Gassert.decisions_on_grid ~label:"online-observed" sink2);

  (* --- the bounded campaign through the real CLI ---------------------- *)
  let out = Filename.temp_file "mcd-gen" ".out" in
  let json_path = Filename.temp_file "mcd-gen" ".json" in
  let common_flags =
    "--jobs 0 --no-observe --train-insts 6000 --ref-insts 12000 --cache-dir \
     /tmp/mcd-gen-cache.verify"
  in
  let cmd =
    Printf.sprintf "%s campaign --count 100 --seed 7 --minimize 2 %s --json %s > %s"
      (Filename.quote cli) common_flags (Filename.quote json_path)
      (Filename.quote out)
  in
  let rc = Sys.command cmd in
  check (rc = 0) "exit code %d from %s" rc cmd;
  let findings =
    match Json.of_string (read_file json_path) with
    | Error e ->
        check false "campaign JSON does not parse: %s" e;
        []
    | Ok j ->
        check
          (Option.bind (Json.member "schema" j) Json.to_string_opt
          = Some "mcd-dvfs-campaign/1")
          "bad or missing campaign schema";
        check
          (Option.bind (Json.member "total" j) Json.to_int_opt = Some 100)
          "campaign did not evaluate 100 specs";
        let hits =
          Option.bind (Json.member "hits" j) Json.to_list_opt
          |> Option.value ~default:[]
        in
        let findings =
          Option.bind (Json.member "findings" j) Json.to_list_opt
          |> Option.value ~default:[]
        in
        (* every find must carry a replayable spec *)
        List.iter
          (fun h ->
            check
              (match Json.member "spec" h with
              | Some s ->
                  Option.bind (Json.member "schema" s) Json.to_string_opt
                  = Some "mcd-gen-spec/1"
              | None -> false)
              "hit without a replayable mcd-gen-spec/1 spec")
          hits;
        List.iter
          (fun f ->
            check
              (Json.member "minimized" f <> None
              && Json.member "kind" f <> None)
              "finding without minimized spec or kind")
          findings;
        check
          (findings = [] = (hits = []))
          "hits and findings disagree about whether anything was found";
        findings
  in
  (* replay the report's first minimized counterexample: the violation
     must reproduce (exit 0) *)
  if findings <> [] then begin
    let cmd =
      Printf.sprintf "%s campaign --replay %s %s > %s" (Filename.quote cli)
        (Filename.quote json_path) common_flags (Filename.quote out)
    in
    let rc = Sys.command cmd in
    check (rc = 0) "stored counterexample did not reproduce (exit %d)" rc
  end;
  Sys.remove out;
  Sys.remove json_path;
  if !failures > 0 then exit 1;
  print_endline "gen_smoke: OK"
