(* Tests for the experiment harness: comparison math, caching, and the
   figure/table formatters (on a single small benchmark to stay fast). *)

module Runner = Mcd_experiments.Runner
module Headline = Mcd_experiments.Headline
module Context_sense = Mcd_experiments.Context_sense
module Sweep = Mcd_experiments.Sweep
module Tables = Mcd_experiments.Tables
module Tournament = Mcd_experiments.Tournament
module Policy = Mcd_control.Policy
module Policies = Mcd_control.Policies
module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Metrics = Mcd_power.Metrics
module Freq = Mcd_domains.Freq
module Key = Mcd_cache.Key
module Store = Mcd_cache.Store
module Json = Mcd_obs.Json

let w () = Suite.by_name "adpcm decode"

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_compare_runs () =
  let base = Runner.baseline (w ()) in
  let c = Runner.compare_runs ~baseline:base base in
  Alcotest.(check (float 1e-9)) "self degradation" 0.0 c.Runner.degradation_pct;
  Alcotest.(check (float 1e-9)) "self savings" 0.0 c.Runner.savings_pct;
  Alcotest.(check (float 1e-9)) "self ed" 0.0 c.Runner.ed_improvement_pct

let test_baseline_cached () =
  let a = Runner.baseline (w ()) in
  let b = Runner.baseline (w ()) in
  Alcotest.(check bool) "same object" true (a == b)

let test_single_clock_cached_per_freq () =
  let a = Runner.single_clock (w ()) ~mhz:1000 in
  let b = Runner.single_clock (w ()) ~mhz:500 in
  Alcotest.(check bool) "distinct runs" true (a != b);
  Alcotest.(check bool) "slower at 500" true
    (b.Metrics.runtime_ps > a.Metrics.runtime_ps)

let test_profile_run_produces_savings () =
  let base = Runner.baseline (w ()) in
  let pr = Runner.profile_run (w ()) ~context:Context.lf ~train:`Train in
  let c = Runner.compare_runs ~baseline:base pr.Runner.run in
  Alcotest.(check bool) "saves energy" true (c.Runner.savings_pct > 2.0);
  Alcotest.(check bool) "bounded degradation" true
    (c.Runner.degradation_pct < 20.0);
  Alcotest.(check bool) "reconfigured" true
    (pr.Runner.run.Metrics.reconfigurations > 0)

let test_global_dvs_targets_runtime () =
  let base = Runner.baseline (w ()) in
  let target = base.Metrics.runtime_ps * 105 / 100 in
  let run, mhz = Runner.global_dvs_run (w ()) ~target_runtime_ps:target in
  Alcotest.(check bool) "legal frequency" true
    (mhz >= Freq.fmin_mhz && mhz <= Freq.fmax_mhz);
  Alcotest.(check bool) "within target" true
    (run.Metrics.runtime_ps <= target)

(* Regression for the global-DVS frequency walk: the old loop stepped
   upward from the estimate until the target was met but never walked
   back down, so an overshooting first estimate (mcf's low IPC inflates
   cycles/instruction at full speed) returned a faster frequency than
   needed. The contract is the *slowest* step that still meets the
   target. *)
let test_global_dvs_picks_slowest_meeting () =
  let mcf = Suite.by_name "mcf" in
  let at_500 = Runner.single_clock mcf ~mhz:500 in
  let target = at_500.Metrics.runtime_ps in
  let run, mhz = Runner.global_dvs_run mcf ~target_runtime_ps:target in
  Alcotest.(check int) "slowest meeting step" 500 mhz;
  Alcotest.(check bool) "meets target" true (run.Metrics.runtime_ps <= target);
  let below = Runner.single_clock mcf ~mhz:(mhz - Freq.step_mhz) in
  Alcotest.(check bool) "next step down misses" true
    (below.Metrics.runtime_ps > target)

(* A plan saved from plan_for must load back warning-free under either
   training selector: load_plan shares plan_for's window/tree
   derivation, so fingerprints and node ids line up exactly. *)
let test_load_plan_roundtrip_both_trains () =
  let module Plan_io = Mcd_core.Plan_io in
  List.iter
    (fun train ->
      let plan = Runner.plan_for (w ()) ~context:Context.lf ~train in
      let path = Filename.temp_file "mcd-plan" ".plan" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Plan_io.save plan ~path;
          match Runner.load_plan ~train (w ()) ~context:Context.lf ~path with
          | Error errs ->
              Alcotest.failf "load_plan rejected its own save: %s"
                (String.concat "; "
                   (List.map Mcd_robust.Error.to_string errs))
          | Ok loaded ->
              Alcotest.(check int) "no warnings" 0
                (List.length loaded.Plan_io.warnings);
              Alcotest.(check string) "plan round-trips byte-identically"
                (Plan_io.to_string plan)
                (Plan_io.to_string loaded.Plan_io.plan)))
    [ `Train; `Reference ]

(* The array-based sweep transpose must agree bit-for-bit with the
   per-column averages it replaced: a two-workload curve is exactly the
   point-wise mean of the two single-workload curves. *)
let test_sweep_transpose_matches_columns () =
  let w1 = Suite.by_name "adpcm decode" in
  let w2 = Suite.by_name "adpcm encode" in
  let deltas = [ 2.0; 14.0 ] in
  let combined = Sweep.profile_curve ~workloads:[ w1; w2 ] ~deltas () in
  let c1 = Sweep.profile_curve ~workloads:[ w1 ] ~deltas () in
  let c2 = Sweep.profile_curve ~workloads:[ w2 ] ~deltas () in
  Alcotest.(check int) "point count" (List.length deltas)
    (List.length combined);
  List.iteri
    (fun i p ->
      let p1 = List.nth c1 i and p2 = List.nth c2 i in
      let mean f = Mcd_util.Stats.mean [ f p1; f p2 ] in
      Alcotest.(check (float 0.0)) "slowdown" (mean (fun p -> p.Sweep.slowdown))
        p.Sweep.slowdown;
      Alcotest.(check (float 0.0)) "savings" (mean (fun p -> p.Sweep.savings))
        p.Sweep.savings;
      Alcotest.(check (float 0.0)) "ed" (mean (fun p -> p.Sweep.ed)) p.Sweep.ed)
    combined

let test_headline_row_sane () =
  let rows = Headline.rows ~workloads:[ w () ] () in
  match rows with
  | [ row ] ->
      Alcotest.(check bool) "profile close to offline" true
        (Float.abs
           (row.Headline.profile.Runner.savings_pct
           -. row.Headline.offline.Runner.savings_pct)
        < 10.0);
      let s = Headline.fig4 rows in
      Alcotest.(check bool) "fig4 mentions benchmark" true
        (contains ~needle:"adpcm decode" s);
      Alcotest.(check bool) "fig5 renders" true
        (String.length (Headline.fig5 rows) > 0);
      Alcotest.(check bool) "fig6 renders" true
        (String.length (Headline.fig6 rows) > 0)
  | _ -> Alcotest.fail "expected one row"

let test_context_rows_and_tables () =
  let rows =
    Context_sense.rows ~workloads:[ w () ]
      ~contexts:[ Context.lfcp; Context.lf ] ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "static instr >= reconfig" true
        (r.Context_sense.static_instr >= r.Context_sense.static_reconfig);
      Alcotest.(check bool) "overhead bounded" true
        (r.Context_sense.overhead_pct >= 0.0
        && r.Context_sense.overhead_pct < 50.0))
    rows;
  let t4 = Context_sense.table4 rows in
  Alcotest.(check bool) "table4 renders" true (contains ~needle:"Table 4" t4);
  let f12 = Context_sense.fig12 rows in
  Alcotest.(check bool) "fig12 renders" true (contains ~needle:"Figure 12" f12)

let test_lf_overhead_below_lfcp () =
  let rows =
    Context_sense.rows ~workloads:[ w () ]
      ~contexts:[ Context.lfcp; Context.lf ] ()
  in
  let find name =
    List.find (fun r -> r.Context_sense.context.Context.name = name) rows
  in
  let lfcp = find "L+F+C+P" and lf = find "L+F" in
  Alcotest.(check bool) "L+F cheaper than L+F+C+P" true
    (lf.Context_sense.overhead_pct <= lfcp.Context_sense.overhead_pct)

let test_sweep_monotone_savings () =
  let points =
    Sweep.profile_curve ~workloads:[ w () ] ~deltas:[ 2.0; 14.0 ] ()
  in
  match points with
  | [ tight; loose ] ->
      Alcotest.(check bool) "looser budget saves at least as much" true
        (loose.Sweep.savings >= tight.Sweep.savings -. 0.5)
  | _ -> Alcotest.fail "expected two points"

(* Golden cycle-exactness: every constant below was captured from the
   list-based simulator before the array-queue rewrite. The refactor
   contract is bit-identical simulation, so any drift — a single cycle,
   sync penalty, or picojoule — fails this test. Energies are compared
   with zero tolerance on purpose: the event order inside a cycle feeds
   the power model, so float identity is the real invariant. *)
let check_golden name (r : Metrics.run) ~runtime_ps ~energy_pj ~instructions
    ~cycles ~sync_crossings ~sync_penalties ~reconfigurations =
  Alcotest.(check int) (name ^ ": runtime_ps") runtime_ps r.Metrics.runtime_ps;
  Alcotest.(check (float 0.0)) (name ^ ": energy_pj") energy_pj
    r.Metrics.energy_pj;
  Alcotest.(check int) (name ^ ": instructions") instructions
    r.Metrics.instructions;
  Alcotest.(check int) (name ^ ": cycles_front") cycles r.Metrics.cycles_front;
  Alcotest.(check int) (name ^ ": sync_crossings") sync_crossings
    r.Metrics.sync_crossings;
  Alcotest.(check int) (name ^ ": sync_penalties") sync_penalties
    r.Metrics.sync_penalties;
  Alcotest.(check int) (name ^ ": reconfigurations") reconfigurations
    r.Metrics.reconfigurations

let test_golden_cycle_exact () =
  let adpcm = Suite.by_name "adpcm decode" in
  let gsm = Suite.by_name "gsm encode" in
  check_golden "adpcm baseline" (Runner.baseline adpcm)
    ~runtime_ps:150_198_724 ~energy_pj:634901.7799991403
    ~instructions:120_000 ~cycles:150_204 ~sync_crossings:292_143
    ~sync_penalties:171_883 ~reconfigurations:0;
  (* Recaptured after the attack/decay guard fix: the revert now
     restores the exact pre-decay frequency instead of overshooting it
     by attack_step - decay_step, which shifts the on-line trajectory. *)
  check_golden "adpcm online" (Runner.online_run adpcm)
    ~runtime_ps:168_114_178 ~energy_pj:557966.74518739036
    ~instructions:120_000 ~cycles:168_123 ~sync_crossings:292_142
    ~sync_penalties:159_676 ~reconfigurations:9;
  let adpcm_pr = Runner.profile_run adpcm ~context:Context.lf ~train:`Train in
  check_golden "adpcm profile L+F" adpcm_pr.Runner.run
    ~runtime_ps:159_474_437 ~energy_pj:547978.1986847776
    ~instructions:120_000 ~cycles:149_918 ~sync_crossings:292_142
    ~sync_penalties:170_865 ~reconfigurations:16;
  Alcotest.(check int) "adpcm profile L+F: instr_points" 16
    adpcm_pr.Runner.run.Metrics.instr_points;
  Alcotest.(check int) "adpcm profile L+F: instr_overhead_ps" 17_182
    adpcm_pr.Runner.run.Metrics.instr_overhead_ps;
  check_golden "gsm baseline" (Runner.baseline gsm)
    ~runtime_ps:319_951_932 ~energy_pj:1118708.7899937588
    ~instructions:160_000 ~cycles:319_965 ~sync_crossings:390_521
    ~sync_penalties:229_532 ~reconfigurations:0;
  let gsm_pr = Runner.profile_run gsm ~context:Context.lf ~train:`Train in
  check_golden "gsm profile L+F" gsm_pr.Runner.run
    ~runtime_ps:340_979_955 ~energy_pj:905049.84638683696
    ~instructions:160_000 ~cycles:300_411 ~sync_crossings:390_521
    ~sync_penalties:229_200 ~reconfigurations:18

(* The parallel runner must be invisible in the output: running the same
   experiment sequentially and with four domains has to produce
   byte-identical tables (order-preserving map + deterministic
   simulation; per-domain memo tables only affect speed). *)
let test_parallel_runs_deterministic () =
  let workloads = [ Suite.by_name "adpcm decode"; Suite.by_name "adpcm encode" ] in
  let render () =
    let rows = Headline.rows ~workloads () in
    Headline.fig4 rows ^ Headline.fig5 rows
    ^ Tables.table3 ~workloads ()
  in
  let saved = Runner.get_jobs () in
  Fun.protect
    ~finally:(fun () -> Runner.set_jobs saved)
    (fun () ->
      Runner.set_jobs 1;
      let seq = render () in
      Runner.set_jobs 4;
      let par = render () in
      Alcotest.(check string) "jobs=4 matches sequential" seq par)

let test_tables_render () =
  let t1 = Tables.table1 () in
  Alcotest.(check bool) "table1" true (contains ~needle:"Reorder buffer" t1);
  let t2 = Tables.table2 () in
  Alcotest.(check bool) "table2 lists suite" true (contains ~needle:"mcf" t2);
  let t3 = Tables.table3 ~workloads:[ w () ] () in
  Alcotest.(check bool) "table3" true (contains ~needle:"cov long" t3)

(* --- the policy tournament -------------------------------------------- *)

(* Every registered policy must key distinctly on one workload —
   including the two attack/decay parameterisations, which share a
   cache-key [name] and differ only in [params]. This is the structural
   fix for the policy-blind cache keys: aliasing here would let one
   policy serve another's numbers forever. *)
let test_policy_keys_pairwise_distinct () =
  let keys =
    List.map
      (fun p -> (p.Policy.label, Key.canonical (Runner.policy_key p (w ()))))
      (Policies.all ())
  in
  List.iteri
    (fun i (la, ka) ->
      List.iteri
        (fun j (lb, kb) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s key apart" la lb)
              true (ka <> kb))
        keys)
    keys

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

(* Warm-run the tournament against a fresh store: the cold pass must
   write exactly one object per (policy, workload) plus the shared
   baseline with zero hits (nothing aliased, nothing served across
   policies), and the warm pass must serve exactly that many hits with
   zero new stores while reproducing the report byte-identically. *)
let test_tournament_warm_rerun_isolated () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-tournament-test.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let store = Store.create ~dir in
  Fun.protect
    ~finally:(fun () ->
      Store.set_default None;
      rm_rf dir)
    (fun () ->
      Store.set_default (Some store);
      Runner.clear_caches ();
      let contenders = Policies.contenders () in
      let cold = Tournament.run ~workloads:[ w () ] () in
      let s0 = Store.stats store in
      Alcotest.(check int) "cold pass: one object per policy + baseline"
        (List.length contenders + 1)
        s0.Store.stores;
      Alcotest.(check int) "cold pass: zero cross-policy hits" 0 s0.Store.hits;
      Runner.clear_caches ();
      let warm = Tournament.run ~workloads:[ w () ] () in
      let s1 = Store.stats store in
      Alcotest.(check int) "warm pass: every run served from disk"
        (List.length contenders + 1)
        (s1.Store.hits - s0.Store.hits);
      Alcotest.(check int) "warm pass: no new objects" s0.Store.stores
        s1.Store.stores;
      Alcotest.(check string) "report byte-identical"
        (Tournament.render cold) (Tournament.render warm);
      Alcotest.(check string) "JSON byte-identical"
        (Json.to_string (Tournament.to_json cold))
        (Json.to_string (Tournament.to_json warm)))

let test_tournament_report_shape () =
  let t = Tournament.run ~workloads:[ w () ] () in
  let contenders = Policies.contenders () in
  Alcotest.(check int) "one entry per contender"
    (List.length contenders)
    (List.length t.Tournament.entries);
  List.iteri
    (fun i e -> Alcotest.(check int) "ranks count 1..N" (i + 1) e.Tournament.rank)
    t.Tournament.entries;
  let eds =
    List.map
      (fun e -> e.Tournament.mean.Runner.ed_improvement_pct)
      t.Tournament.entries
  in
  Alcotest.(check bool) "ranked by descending mean ED" true
    (List.sort (fun a b -> compare b a) eds = eds);
  Alcotest.(check bool) "some entry is Pareto-optimal" true
    (List.exists (fun e -> e.Tournament.pareto) t.Tournament.entries);
  let rendered = Tournament.render t in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Policy.label ^ " in table")
        true
        (contains ~needle:p.Policy.label rendered))
    contenders;
  (* the JSON writer's output must parse back with the same shape *)
  match Json.of_string (Json.to_string (Tournament.to_json t)) with
  | Error e -> Alcotest.failf "tournament JSON does not parse: %s" e
  | Ok j ->
      let entries =
        Option.bind (Json.member "entries" j) Json.to_list_opt
        |> Option.value ~default:[]
      in
      Alcotest.(check int) "JSON entries" (List.length contenders)
        (List.length entries)

let suite =
  [
    ("compare runs", `Quick, test_compare_runs);
    ("baseline cached", `Quick, test_baseline_cached);
    ("single clock cached per freq", `Quick, test_single_clock_cached_per_freq);
    ("profile run saves energy", `Slow, test_profile_run_produces_savings);
    ("global dvs targets runtime", `Slow, test_global_dvs_targets_runtime);
    ( "global dvs picks slowest meeting step",
      `Slow,
      test_global_dvs_picks_slowest_meeting );
    ( "load_plan round-trips both train selectors",
      `Slow,
      test_load_plan_roundtrip_both_trains );
    ( "sweep transpose matches per-column averages",
      `Slow,
      test_sweep_transpose_matches_columns );
    ("headline row sane", `Slow, test_headline_row_sane);
    ("context rows and tables", `Slow, test_context_rows_and_tables);
    ("L+F overhead below L+F+C+P", `Slow, test_lf_overhead_below_lfcp);
    ("sweep monotone savings", `Slow, test_sweep_monotone_savings);
    ("tables render", `Quick, test_tables_render);
    ("golden cycle-exact metrics", `Slow, test_golden_cycle_exact);
    ("parallel runs deterministic", `Slow, test_parallel_runs_deterministic);
    ( "policy keys pairwise distinct",
      `Quick,
      test_policy_keys_pairwise_distinct );
    ( "tournament warm rerun isolated",
      `Slow,
      test_tournament_warm_rerun_isolated );
    ("tournament report shape", `Slow, test_tournament_report_shape);
  ]
