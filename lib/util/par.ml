let recommended_jobs () = Domain.recommended_domain_count ()

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let jobs = min jobs n in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      (* Workers drain a shared index counter; each slot is written by
         exactly one domain and read only after the joins, so the array
         accesses are race-free. Exceptions are captured per item and
         re-raised (first item in input order) once every worker has
         stopped, so no domain is ever left unjoined. *)
      let worker () =
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else
            results.(i) <-
              (match f items.(i) with
              | v -> Done v
              | exception e ->
                  (* capture the backtrace in the worker, where the
                     raise happened — it is gone after the join *)
                  Failed (e, Printexc.get_raw_backtrace ()))
        done
      in
      let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.to_list
        (Array.map
           (function
             | Done v -> v
             | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
             | Pending -> assert false)
           results)
    end
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs : unit list)
