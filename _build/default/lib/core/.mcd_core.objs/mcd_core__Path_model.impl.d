lib/core/path_model.ml: Array Float List Mcd_domains
