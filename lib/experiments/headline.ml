module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats

type row = {
  workload : Workload.t;
  offline : Runner.comparison;
  online : Runner.comparison;
  profile : Runner.comparison;
}

let row_of (w : Workload.t) =
  let baseline = Runner.baseline w in
  let offline = Runner.offline_run w in
  let online = Runner.online_run w in
  let profile =
    (Runner.profile_run w ~context:Context.lf ~train:`Train).Runner.run
  in
  {
    workload = w;
    offline = Runner.compare_runs ~baseline offline;
    online = Runner.compare_runs ~baseline online;
    profile = Runner.compare_runs ~baseline profile;
  }

let rows ?(workloads = Suite.all) () = Runner.map_workloads row_of workloads

let render ~title ~extract rows =
  let header = [ "benchmark"; "off-line"; "on-line"; "profile L+F" ] in
  let body =
    List.map
      (fun r ->
        [
          r.workload.Workload.name;
          Table.fmt_pct (extract r.offline);
          Table.fmt_pct (extract r.online);
          Table.fmt_pct (extract r.profile);
        ])
      rows
  in
  let avg f = Stats.mean (List.map (fun r -> extract (f r)) rows) in
  let avg_row =
    [
      "AVERAGE";
      Table.fmt_pct (avg (fun r -> r.offline));
      Table.fmt_pct (avg (fun r -> r.online));
      Table.fmt_pct (avg (fun r -> r.profile));
    ]
  in
  let chart =
    Mcd_util.Chart.bars
      ~groups:
        (List.map
           (fun r ->
             ( r.workload.Workload.name,
               [
                 ("off-line", extract r.offline);
                 ("on-line", extract r.online);
                 ("L+F", extract r.profile);
               ] ))
           rows)
      ()
  in
  title ^ "\n" ^ Table.render ~header ~rows:(body @ [ avg_row ]) () ^ "\n"
  ^ chart

let fig4 =
  render ~title:"Figure 4: performance degradation (vs MCD baseline)"
    ~extract:(fun c -> c.Runner.degradation_pct)

let fig5 =
  render ~title:"Figure 5: energy savings (vs MCD baseline)"
    ~extract:(fun c -> c.Runner.savings_pct)

let fig6 =
  render ~title:"Figure 6: energy x delay improvement (vs MCD baseline)"
    ~extract:(fun c -> c.Runner.ed_improvement_pct)

type band = { min_v : float; max_v : float; avg : float }

type summary = {
  global_ : band * band * band;
  online_s : band * band * band;
  offline_s : band * band * band;
  profile_s : band * band * band;
}

let band_of values =
  {
    min_v = Stats.minimum values;
    max_v = Stats.maximum values;
    avg = Stats.mean values;
  }

let bands_of comparisons =
  ( band_of (List.map (fun c -> c.Runner.degradation_pct) comparisons),
    band_of (List.map (fun c -> c.Runner.savings_pct) comparisons),
    band_of (List.map (fun c -> c.Runner.ed_improvement_pct) comparisons) )

let summary rows =
  let globals =
    Runner.par_map
      (fun r ->
        let w = r.workload in
        let baseline = Runner.baseline w in
        let offline_run = Runner.offline_run w in
        let g, _mhz =
          Runner.global_dvs_run w
            ~target_runtime_ps:offline_run.Mcd_power.Metrics.runtime_ps
        in
        Runner.compare_runs ~baseline g)
      rows
  in
  {
    global_ = bands_of globals;
    online_s = bands_of (List.map (fun r -> r.online) rows);
    offline_s = bands_of (List.map (fun r -> r.offline) rows);
    profile_s = bands_of (List.map (fun r -> r.profile) rows);
  }

let fig7 s =
  let line name (slow, save, ed) =
    [
      name;
      Table.fmt_pct slow.min_v;
      Table.fmt_pct slow.avg;
      Table.fmt_pct slow.max_v;
      Table.fmt_pct save.min_v;
      Table.fmt_pct save.avg;
      Table.fmt_pct save.max_v;
      Table.fmt_pct ed.min_v;
      Table.fmt_pct ed.avg;
      Table.fmt_pct ed.max_v;
    ]
  in
  let header =
    [
      "method";
      "slow min"; "slow avg"; "slow max";
      "save min"; "save avg"; "save max";
      "ExD min"; "ExD avg"; "ExD max";
    ]
  in
  "Figure 7: min/avg/max slowdown, energy savings, energy x delay improvement\n"
  ^ Table.render ~header
      ~rows:
        [
          line "global" s.global_;
          line "on-line" s.online_s;
          line "off-line" s.offline_s;
          line "L+F" s.profile_s;
        ]
      ()
