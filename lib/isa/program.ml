type input = {
  input_name : string;
  scale : int;
  divergence : float;
  seed : int;
}

type mem_pattern =
  | Seq_stride of { stride : int; region : int }
  | Rand_in of { region : int }
  | Chase of { region : int }

type branch_pattern = Periodic of bool array | Biased of float

type block = {
  block_id : int;
  length : int;
  frac_int_mult : float;
  frac_fp_alu : float;
  frac_fp_mult : float;
  frac_load : float;
  frac_store : float;
  frac_branch : float;
  mem : mem_pattern;
  branch : branch_pattern;
  dep_chain : float;
}

type trips =
  | Const of int
  | Scaled of { base : int; per_scale : int }
  | Arg_scaled of { base : int; per_arg : int }

type stmt =
  | Straight of block
  | Loop of { loop_id : int; trips : trips; body : stmt list }
  | Call of { site_id : int; callee : string; arg : int }
  | Choose of {
      choose_id : int;
      prob : input -> float;
      on_true : stmt list;
      on_false : stmt list;
    }

type func = { fname : string; fid : int; body : stmt list }
type t = { pname : string; funcs : (string * func) list; main : string }

let find_func t name =
  match List.assoc_opt name t.funcs with
  | Some f -> f
  | None -> raise Not_found

let trip_count trips input ~arg =
  match trips with
  | Const n -> n
  | Scaled { base; per_scale } -> base + (per_scale * input.scale)
  | Arg_scaled { base; per_arg } -> base + (per_arg * arg)

let rec iter_stmt_list f stmts = List.iter (iter_one f) stmts

and iter_one f stmt =
  f stmt;
  match stmt with
  | Straight _ | Call _ -> ()
  | Loop { body; _ } -> iter_stmt_list f body
  | Choose { on_true; on_false; _ } ->
      iter_stmt_list f on_true;
      iter_stmt_list f on_false

let iter_stmts t ~f =
  List.iter (fun (_, fn) -> iter_stmt_list f fn.body) t.funcs

let static_instructions t =
  let n = ref 0 in
  iter_stmts t ~f:(fun stmt ->
      match stmt with
      | Straight b -> n := !n + b.length
      | Loop _ | Call _ | Choose _ -> incr n);
  !n

(* Canonical rendering for content addressing. Every field that can
   change simulated behaviour is printed — floats in lossless %h form —
   in a fixed traversal order, so equal renderings mean equal dynamic
   instruction streams for the given input. [Choose] probabilities are
   closures and cannot be serialized structurally; they are evaluated at
   the concrete [input] instead, which captures exactly the behaviour
   the walker will see on that input. *)
let canonical t ~input =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let mem = function
    | Seq_stride { stride; region } -> Printf.sprintf "seq:%d:%d" stride region
    | Rand_in { region } -> Printf.sprintf "rand:%d" region
    | Chase { region } -> Printf.sprintf "chase:%d" region
  in
  let branch = function
    | Periodic pattern ->
        "per:"
        ^ String.concat ""
            (List.map (fun b -> if b then "1" else "0") (Array.to_list pattern))
    | Biased p -> Printf.sprintf "bias:%h" p
  in
  let trips = function
    | Const n -> Printf.sprintf "const:%d" n
    | Scaled { base; per_scale } -> Printf.sprintf "scaled:%d:%d" base per_scale
    | Arg_scaled { base; per_arg } -> Printf.sprintf "arg:%d:%d" base per_arg
  in
  let rec stmt = function
    | Straight b ->
        add "B%d:%d:%h:%h:%h:%h:%h:%h:%s:%s:%h;" b.block_id b.length
          b.frac_int_mult b.frac_fp_alu b.frac_fp_mult b.frac_load
          b.frac_store b.frac_branch (mem b.mem) (branch b.branch) b.dep_chain
    | Loop { loop_id; trips = tr; body } ->
        add "L%d:%s(" loop_id (trips tr);
        List.iter stmt body;
        add ")"
    | Call { site_id; callee; arg } -> add "C%d:%s:%d;" site_id callee arg
    | Choose { choose_id; prob; on_true; on_false } ->
        add "?%d:%h(" choose_id (prob input);
        List.iter stmt on_true;
        add ")(";
        List.iter stmt on_false;
        add ")"
  in
  add "program:%s:main=%s;" t.pname t.main;
  List.iter
    (fun (name, f) ->
      add "func:%s:%d(" name f.fid;
      List.iter stmt f.body;
      add ")")
    t.funcs;
  Buffer.contents buf

let validate t =
  (match List.assoc_opt t.main t.funcs with
  | Some _ -> ()
  | None -> invalid_arg "Program.validate: main function not defined");
  let names = List.map fst t.funcs in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Program.validate: duplicate function names";
  let check_block b =
    let frac_sum =
      b.frac_int_mult +. b.frac_fp_alu +. b.frac_fp_mult +. b.frac_load
      +. b.frac_store +. b.frac_branch
    in
    if frac_sum > 1.0 +. 1e-9 then
      invalid_arg "Program.validate: block fractions exceed 1";
    if b.length <= 0 then invalid_arg "Program.validate: empty block";
    if b.dep_chain < 1.0 then
      invalid_arg "Program.validate: dep_chain below 1"
  in
  let loop_ids = Hashtbl.create 16 in
  let site_ids = Hashtbl.create 16 in
  let block_ids = Hashtbl.create 16 in
  let register tbl what id =
    if Hashtbl.mem tbl id then
      invalid_arg (Printf.sprintf "Program.validate: duplicate %s id %d" what id);
    Hashtbl.add tbl id ()
  in
  iter_stmts t ~f:(fun stmt ->
      match stmt with
      | Straight b ->
          register block_ids "block" b.block_id;
          check_block b
      | Loop { loop_id; trips; _ } -> (
          register loop_ids "loop" loop_id;
          match trips with
          | Const n when n < 0 -> invalid_arg "Program.validate: negative trips"
          | Const _ | Scaled _ | Arg_scaled _ -> ())
      | Call { site_id; callee; arg = _ } ->
          register site_ids "call site" site_id;
          if not (List.mem_assoc callee t.funcs) then
            invalid_arg
              (Printf.sprintf "Program.validate: unresolved callee %s" callee)
      | Choose _ -> ())
