type setting = int array

let full_speed () = Array.make Domain.count Freq.fmax_mhz

let make ~front_end ~integer ~floating ~memory =
  let s = Array.make Domain.count Freq.fmax_mhz in
  s.(Domain.index Domain.Front_end) <- Freq.clamp front_end;
  s.(Domain.index Domain.Integer) <- Freq.clamp integer;
  s.(Domain.index Domain.Floating) <- Freq.clamp floating;
  s.(Domain.index Domain.Memory) <- Freq.clamp memory;
  s

let get s domain = s.(Domain.index domain)
let equal a b = a = b

let pp fmt s =
  Format.fprintf fmt "{fe=%d int=%d fp=%d mem=%d}"
    (get s Domain.Front_end) (get s Domain.Integer) (get s Domain.Floating)
    (get s Domain.Memory)

type t = {
  dvfs : Dvfs.t;
  mutable count : int;
  mutable last : setting;
}

let create dvfs = { dvfs; count = 0; last = full_speed () }

let write ?on_snap ?sink t setting ~now =
  (* A write of the setting already held by the register is not a
     reconfiguration: the hardware targets don't move, so it must not
     inflate the paper's reconfiguration-count metric. The DVFS targets
     are still (re)programmed — harmless for a true no-op, and it keeps
     the watchdog's reissue path working on a faulty domain. *)
  let noop = equal setting t.last in
  List.iter
    (fun d ->
      Dvfs.set_target ?on_snap ?sink t.dvfs d ~now ~mhz:setting.(Domain.index d))
    Domain.all;
  (match sink with
  | None -> ()
  | Some s ->
      Mcd_obs.Sink.reconfig_write s ~t_ps:now ~before:t.last ~after:setting ~noop);
  if not noop then begin
    t.count <- t.count + 1;
    t.last <- Array.copy setting
  end

let writes t = t.count
let last_setting t = t.last
