(** Train-versus-reference tree comparison (the paper's Table 3).

    Two trees built under the same context are matched structurally: a
    node is "common" when a node with the same kind is reachable through
    the same sequence of ancestors in both trees. Coverage is the
    fraction of the reference tree's nodes (all, and long-running ones)
    that the training tree also discovered — low coverage signals that
    production runs take paths the training input never exercised. *)

type counts = {
  train_long : int;
  train_total : int;
  ref_long : int;
  ref_total : int;
  common_long : int;  (** matched nodes that are long-running in both *)
  common_total : int;
  long_coverage : float;  (** [common_long / ref_long]; 1.0 when no longs *)
  total_coverage : float;
}

val compare : train:Call_tree.t -> reference:Call_tree.t -> counts
(** Both trees must have been built with the same context. Raises
    [Invalid_argument] otherwise. Counts exclude the artificial root. *)
