module Error = Mcd_robust.Error

type t = {
  socket : string;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  version : int;
  workers : int;
  queue_max : int;
}

let version t = t.version
let workers t = t.workers
let queue_max t = t.queue_max

let transport_error t message =
  Error.Server_unavailable { socket = t.socket; message }

let ( let* ) = Result.bind

(* --- wire primitives --------------------------------------------------- *)

let read_reply_line socket ic =
  match input_line ic with
  | line -> (
      match Protocol.parse_reply line with
      | Ok reply -> Ok reply
      | Result.Error reason -> Result.Error (Error.Protocol_violation { line; reason }))
  | exception (End_of_file | Sys_error _) ->
      Result.Error
        (Error.Server_unavailable
           { socket; message = "connection closed by server" })

let roundtrip t cmd =
  match
    output_string t.oc (Protocol.render_command cmd ^ "\n");
    flush t.oc
  with
  | () -> read_reply_line t.socket t.ic
  | exception Sys_error _ ->
      Result.Error (transport_error t "connection closed by server")

(* After a [Payload]/[Stats_payload] header: exactly [bytes] bytes of
   body, then the ["end"] trailer line. *)
let read_body t bytes =
  match
    let buf = Bytes.create bytes in
    really_input t.ic buf 0 bytes;
    (Bytes.unsafe_to_string buf, input_line t.ic)
  with
  | body, "end" -> Ok body
  | _, trailer ->
      Result.Error
        (Error.Protocol_violation
           { line = trailer; reason = "expected payload trailer \"end\"" })
  | exception (End_of_file | Sys_error _) ->
      Result.Error (transport_error t "connection closed mid-payload")

let unexpected reply reason =
  Result.Error
    (Error.Protocol_violation { line = Protocol.render_reply reply; reason })

(* --- connection lifecycle ---------------------------------------------- *)

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Result.Error
        (Error.Server_unavailable { socket; message = Unix.error_message e })
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let fail e =
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Result.Error e
      in
      match read_reply_line socket ic with
      | Result.Error e -> fail e
      | Ok (Protocol.Ready { version; workers; queue_max }) ->
          if version <> Protocol.version then
            fail
              (Error.Protocol_violation
                 {
                   line = Printf.sprintf "mcd-serve/%d" version;
                   reason =
                     Printf.sprintf "unsupported protocol version (want %d)"
                       Protocol.version;
                 })
          else Ok { socket; fd; ic; oc; version; workers; queue_max }
      | Ok reply -> fail (Result.get_error (unexpected reply "expected greeting")))

let close t =
  (try
     output_string t.oc (Protocol.render_command Protocol.Quit ^ "\n");
     flush t.oc
   with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

(* --- commands ----------------------------------------------------------- *)

let ping t =
  let* reply = roundtrip t Protocol.Ping in
  match reply with
  | Protocol.Pong -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected pong"

type ticket = { id : int; digest : string; coalesced : bool }

let submit ?(priority = Protocol.Normal) t request =
  let* reply = roundtrip t (Protocol.Submit { priority; request }) in
  match reply with
  | Protocol.Queued_reply { id; digest; coalesced } ->
      Ok { id; digest; coalesced }
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected queued"

let state_of_reply ~verb reply =
  match reply with
  | Protocol.Status_reply { state; _ } -> Ok state
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply (Printf.sprintf "expected status for %s" verb)

let status t id =
  let* reply = roundtrip t (Protocol.Status id) in
  state_of_reply ~verb:"status" reply

let wait t id =
  let* reply = roundtrip t (Protocol.Wait id) in
  state_of_reply ~verb:"wait" reply

let result t id =
  let* reply = roundtrip t (Protocol.Result id) in
  match reply with
  | Protocol.Payload { bytes; _ } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected payload"

let run ?priority t request =
  let* ticket = submit ?priority t request in
  (* wait parks until the job is terminal; result then carries either
     the payload or the job's typed failure ([Job_failed], or
     [Deadline] for a watchdog kill) *)
  let* (_ : Protocol.state) = wait t ticket.id in
  result t ticket.id

let stats t =
  let* reply = roundtrip t Protocol.Stats in
  match reply with
  | Protocol.Stats_payload { bytes } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected stats-payload"

let drain t =
  let* reply = roundtrip t Protocol.Drain in
  match reply with
  | Protocol.Draining_reply -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected draining"

(* --- retry layer -------------------------------------------------------- *)

type retry_policy = {
  max_attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int option;
  sleep : float -> unit;
}

let default_policy =
  {
    max_attempts = 8;
    base_delay_ms = 50;
    max_delay_ms = 5_000;
    seed = None;
    sleep = Unix.sleepf;
  }

(* With no explicit seed, each retry loop draws its own jitter stream —
   pid-mixed so a fleet of clients restarting against the same downed
   server spreads out instead of thundering in lockstep (a shared
   constant seed would synchronize exactly the schedules the jitter
   exists to desynchronize). *)
let auto_seed_counter = Atomic.make 0

let auto_seed () =
  (Unix.getpid () * 1_000_003) + Atomic.fetch_and_add auto_seed_counter 1

(* The retryable class is transient service states — the server is full,
   leaving, restarting, or gone — plus [Unknown_job], which a restarted
   server reports for a job that completed (and was compacted away)
   before the crash: resubmitting hits the content-addressed store and
   returns the same bytes. Everything else is a verdict about the
   request itself, and retrying would only repeat it. *)
let retryable : Error.t -> bool = function
  | Error.Overloaded _ | Error.Draining _ | Error.Server_unavailable _
  | Error.Unknown_job _ ->
      true
  | _ -> false

let retry_after_hint : Error.t -> int option = function
  | Error.Overloaded { retry_after_ms; _ } -> Some retry_after_ms
  | _ -> None

(* Capped exponential backoff with full jitter: attempt [k] sleeps a
   uniform draw from [0, min (base * 2^k) cap], floored at the server's
   retry-after hint when one was given. Deterministic per explicit
   [seed] (the chaos harness replays byte-identical schedules). *)
let backoff_ms policy rng ~attempt ~hint =
  let expo =
    let rec go k acc =
      if k <= 0 || acc >= policy.max_delay_ms then acc else go (k - 1) (acc * 2)
    in
    go attempt policy.base_delay_ms
  in
  let ceiling = min policy.max_delay_ms expo in
  let jittered = Mcd_util.Rng.int rng (max 1 ceiling) in
  match hint with
  | None -> jittered
  | Some h -> max jittered (min policy.max_delay_ms h)

let run_with_retry ?priority ?(policy = default_policy) ~socket request =
  let rng =
    Mcd_util.Rng.create
      (match policy.seed with Some s -> s | None -> auto_seed ())
  in
  let attempt_once () =
    match connect ~socket with
    | Result.Error e -> Result.Error e
    | Ok t ->
        Fun.protect
          ~finally:(fun () -> close t)
          (fun () -> run ?priority t request)
  in
  let rec go attempt =
    match attempt_once () with
    | Ok payload -> Ok payload
    | Result.Error e when retryable e && attempt + 1 < policy.max_attempts ->
        let ms =
          backoff_ms policy rng ~attempt ~hint:(retry_after_hint e)
        in
        policy.sleep (float_of_int ms /. 1000.0);
        go (attempt + 1)
    | Result.Error _ as e -> e
  in
  go 0
