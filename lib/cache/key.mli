(** Content-addressed cache keys.

    A key is a single-line canonical string naming {e every} model input
    that can change a cached result — program structure, workload input,
    processor configuration, frequency grid, policy identity — plus a
    cache-format and model version, digested to a 32-hex-character
    address. Changing any input (or bumping a version constant after a
    behaviour-relevant code change) changes the digest, so stale entries
    are never served: the store self-invalidates by construction. *)

val format_version : int
(** Version of the on-disk object container format. *)

val model_version : int
(** Version of the {e simulation model} baked into cached results. Bump
    whenever pipeline/power/controller semantics change in a way the
    structural key parts cannot see. *)

type t

val make : kind:string -> parts:(string * string) list -> t
(** Build a key of the given kind (e.g. ["run"], ["plan"],
    ["oracle"]) from named parts. Part order is significant — callers
    must emit parts in a fixed order. Names and values containing
    space, ['%'], or newline are percent-encoded in the canonical
    rendering. *)

val kind : t -> string

val canonical : t -> string
(** The full canonical key line (embedded in object headers so a digest
    collision is detected as corruption rather than served). *)

val digest : t -> string
(** 32 lowercase hex characters (MD5 of {!canonical}). *)

(** {2 Standard fragments}

    Builders for the key parts shared by every cached result kind. Each
    returns an association-list fragment to splice into [parts]. *)

val program_fragment :
  Mcd_isa.Program.t -> input:Mcd_isa.Program.input -> (string * string) list
(** Digest of {!Mcd_isa.Program.canonical} evaluated at [input]. *)

val input_fragment : Mcd_isa.Program.input -> (string * string) list
(** name : scale : divergence : seed. *)

val config_fragment : Mcd_cpu.Config.t -> (string * string) list
(** Every [Config.t] field, including clocking mode, jitter, and seed. *)

val freq_fragment : unit -> (string * string) list
(** The frequency/voltage grid (range, step, step count, voltage
    range). *)

val float_param : float -> string
(** Canonical lossless rendering of a float key parameter ([%h]), the
    one rendering every key fragment and wire request must share —
    ["7."] and ["7.0"] digesting differently is how identical requests
    stop coalescing. *)

val policy_fragment : name:string -> params:string list -> (string * string) list
(** [[("policy", "name:p1:…:pn")]] — the canonical identity of the
    reconfiguration policy driving a run, shared by the runner's cache
    keys and the experiment service's request-coalescing keys. *)
