lib/mcd/dvfs.ml: Array Domain Float Freq Mcd_util
