module Error = Mcd_robust.Error

type t = {
  socket : string;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  version : int;
  workers : int;
  queue_max : int;
}

let version t = t.version
let workers t = t.workers
let queue_max t = t.queue_max

let transport_error t message =
  Error.Server_unavailable { socket = t.socket; message }

let ( let* ) = Result.bind

(* --- wire primitives --------------------------------------------------- *)

let read_reply_line socket ic =
  match input_line ic with
  | line -> (
      match Protocol.parse_reply line with
      (* one command in flight at a time, so seq tags never appear *)
      | Ok (reply, _seq) -> Ok reply
      | Result.Error reason -> Result.Error (Error.Protocol_violation { line; reason }))
  | exception (End_of_file | Sys_error _) ->
      Result.Error
        (Error.Server_unavailable
           { socket; message = "connection closed by server" })

let roundtrip t cmd =
  match
    output_string t.oc (Protocol.render_command cmd ^ "\n");
    flush t.oc
  with
  | () -> read_reply_line t.socket t.ic
  | exception Sys_error _ ->
      Result.Error (transport_error t "connection closed by server")

(* After a [Payload]/[Stats_payload] header: exactly [bytes] bytes of
   body, then the ["end"] trailer line. *)
let read_body t bytes =
  match
    let buf = Bytes.create bytes in
    really_input t.ic buf 0 bytes;
    (Bytes.unsafe_to_string buf, input_line t.ic)
  with
  | body, "end" -> Ok body
  | _, trailer ->
      Result.Error
        (Error.Protocol_violation
           { line = trailer; reason = "expected payload trailer \"end\"" })
  | exception (End_of_file | Sys_error _) ->
      Result.Error (transport_error t "connection closed mid-payload")

let unexpected reply reason =
  Result.Error
    (Error.Protocol_violation { line = Protocol.render_reply reply; reason })

(* --- connection lifecycle ---------------------------------------------- *)

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Result.Error
        (Error.Server_unavailable { socket; message = Unix.error_message e })
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let fail e =
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Result.Error e
      in
      match read_reply_line socket ic with
      | Result.Error e -> fail e
      | Ok (Protocol.Ready { version; workers; queue_max }) ->
          if version <> Protocol.version then
            fail
              (Error.Protocol_violation
                 {
                   line = Printf.sprintf "mcd-serve/%d" version;
                   reason =
                     Printf.sprintf "unsupported protocol version (want %d)"
                       Protocol.version;
                 })
          else Ok { socket; fd; ic; oc; version; workers; queue_max }
      | Ok reply -> fail (Result.get_error (unexpected reply "expected greeting")))

let close t =
  (try
     output_string t.oc (Protocol.render_command Protocol.Quit ^ "\n");
     flush t.oc
   with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

(* --- commands ----------------------------------------------------------- *)

let ping t =
  let* reply = roundtrip t Protocol.Ping in
  match reply with
  | Protocol.Pong -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected pong"

type ticket = { id : int; digest : string; coalesced : bool }

let submit ?(priority = Protocol.Normal) t request =
  let* reply = roundtrip t (Protocol.Submit { priority; request }) in
  match reply with
  | Protocol.Queued_reply { id; digest; coalesced } ->
      Ok { id; digest; coalesced }
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected queued"

let state_of_reply ~verb reply =
  match reply with
  | Protocol.Status_reply { state; _ } -> Ok state
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply (Printf.sprintf "expected status for %s" verb)

let status t id =
  let* reply = roundtrip t (Protocol.Status id) in
  state_of_reply ~verb:"status" reply

let wait t id =
  let* reply = roundtrip t (Protocol.Wait id) in
  state_of_reply ~verb:"wait" reply

let result t id =
  let* reply = roundtrip t (Protocol.Result id) in
  match reply with
  | Protocol.Payload { bytes; _ } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected payload"

let run ?priority t request =
  let* ticket = submit ?priority t request in
  (* wait parks until the job is terminal; result then carries either
     the payload or the job's typed failure ([Job_failed], or
     [Deadline] for a watchdog kill) *)
  let* (_ : Protocol.state) = wait t ticket.id in
  result t ticket.id

let stats t =
  let* reply = roundtrip t Protocol.Stats in
  match reply with
  | Protocol.Stats_payload { bytes } -> read_body t bytes
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected stats-payload"

let drain t =
  let* reply = roundtrip t Protocol.Drain in
  match reply with
  | Protocol.Draining_reply -> Ok ()
  | Protocol.Rejected r -> Result.Error (Protocol.error_of_reject r)
  | reply -> unexpected reply "expected draining"

(* --- retry layer -------------------------------------------------------- *)

type retry_policy = {
  max_attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int option;
  sleep : float -> unit;
}

let default_policy =
  {
    max_attempts = 8;
    base_delay_ms = 50;
    max_delay_ms = 5_000;
    seed = None;
    sleep = Unix.sleepf;
  }

(* With no explicit seed, each retry loop draws its own jitter stream —
   pid-mixed so a fleet of clients restarting against the same downed
   server spreads out instead of thundering in lockstep (a shared
   constant seed would synchronize exactly the schedules the jitter
   exists to desynchronize). *)
let auto_seed_counter = Atomic.make 0

let auto_seed () =
  (Unix.getpid () * 1_000_003) + Atomic.fetch_and_add auto_seed_counter 1

(* The retryable class is transient service states — the server is full,
   leaving, restarting, or gone — plus [Unknown_job], which a restarted
   server reports for a job that completed (and was compacted away)
   before the crash: resubmitting hits the content-addressed store and
   returns the same bytes. Everything else is a verdict about the
   request itself, and retrying would only repeat it. *)
let retryable : Error.t -> bool = function
  | Error.Overloaded _ | Error.Draining _ | Error.Server_unavailable _
  | Error.Unknown_job _ ->
      true
  | _ -> false

let retry_after_hint : Error.t -> int option = function
  | Error.Overloaded { retry_after_ms; _ } -> Some retry_after_ms
  | _ -> None

(* Capped exponential backoff with full jitter: attempt [k] sleeps a
   uniform draw from [0, min (base * 2^k) cap], floored at the server's
   retry-after hint when one was given. Deterministic per explicit
   [seed] (the chaos harness replays byte-identical schedules). *)
let backoff_ms policy rng ~attempt ~hint =
  let expo =
    let rec go k acc =
      if k <= 0 || acc >= policy.max_delay_ms then acc else go (k - 1) (acc * 2)
    in
    go attempt policy.base_delay_ms
  in
  let ceiling = min policy.max_delay_ms expo in
  let jittered = Mcd_util.Rng.int rng (max 1 ceiling) in
  match hint with
  | None -> jittered
  | Some h -> max jittered (min policy.max_delay_ms h)

(* A job-level rejection ([Overloaded], [Draining], [Unknown_job])
   arrives on a healthy connection — the framing is intact, only the
   verdict was transient — so the retry reuses the connection instead
   of paying connect + greeting again. Only transport failures
   ([Server_unavailable]: refused connect, severed socket) force a
   reconnect; anything else that smells of desync ([Protocol_violation])
   is terminal and never retried. *)
let run_with_retry ?priority ?(policy = default_policy) ~socket request =
  let rng =
    Mcd_util.Rng.create
      (match policy.seed with Some s -> s | None -> auto_seed ())
  in
  let conn = ref None in
  let drop () =
    match !conn with
    | None -> ()
    | Some t ->
        conn := None;
        close t
  in
  let attempt_once () =
    match !conn with
    | Some t -> run ?priority t request
    | None -> (
        match connect ~socket with
        | Result.Error e -> Result.Error e
        | Ok t ->
            conn := Some t;
            run ?priority t request)
  in
  let rec go attempt =
    match attempt_once () with
    | Ok payload ->
        drop ();
        Ok payload
    | Result.Error e when retryable e && attempt + 1 < policy.max_attempts ->
        (match e with Error.Server_unavailable _ -> drop () | _ -> ());
        let ms = backoff_ms policy rng ~attempt ~hint:(retry_after_hint e) in
        policy.sleep (float_of_int ms /. 1000.0);
        go (attempt + 1)
    | Result.Error _ as e ->
        drop ();
        e
  in
  go 0

(* --- pipelined connections ---------------------------------------------- *)

module Pipeline = struct
  (* Non-blocking socket + seq-tagged commands + the shared incremental
     frame decoder. Each logical request is a tiny state machine keyed
     by the seq of the command whose answer it is waiting for:

       Submitting --queued--> Waiting --terminal status--> Fetching
                                                  --payload/reject--> k

     The server answers waits in completion order, so frames for
     different requests interleave arbitrarily; the seq tag routes each
     one. Callbacks fire inside {!pump}, on the caller's thread. *)

  type phase =
    | Submitting
    | Waiting of int
    | Fetching of int

  type pending = { phase : phase; k : (string, Error.t) result -> unit }

  type t = {
    socket : string;
    fd : Unix.file_descr;
    frames : Protocol.Frames.t;
    out : Evloop.Outbuf.t;
    buf : Bytes.t;
    pending : (int, pending) Hashtbl.t;
    mutable next_seq : int;
    mutable failed : Error.t option;
    version : int;
    workers : int;
    queue_max : int;
  }

  let version t = t.version
  let workers t = t.workers
  let queue_max t = t.queue_max
  let fd t = t.fd
  let in_flight t = Hashtbl.length t.pending
  let has_output t = not (Evloop.Outbuf.is_empty t.out)

  (* Terminal transport/framing failure: every in-flight request is
     answered with the error, and the connection refuses further use. *)
  let fail t e =
    if t.failed = None then begin
      t.failed <- Some e;
      let ks = Hashtbl.fold (fun _ p acc -> p.k :: acc) t.pending [] in
      Hashtbl.reset t.pending;
      List.iter (fun k -> k (Result.Error e)) ks
    end;
    Result.Error e

  let transport_lost t =
    fail t
      (Error.Server_unavailable
         { socket = t.socket; message = "connection closed by server" })

  let connect ?max_payload ~socket () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Result.Error
          (Error.Server_unavailable { socket; message = Unix.error_message e })
    | () -> (
        (* Consume the greeting with the same decoder the pipelined
           path uses — blocking reads until one frame lands. *)
        let frames = Protocol.Frames.create ?max_payload () in
        let buf = Bytes.create 65536 in
        let give_up e =
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Result.Error e
        in
        let rec greeting () =
          match Protocol.Frames.next frames with
          | `Frame f -> Ok f
          | `Error reason ->
              Result.Error (Error.Protocol_violation { line = "<greeting>"; reason })
          | `Await -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 ->
                  Result.Error
                    (Error.Server_unavailable
                       { socket; message = "connection closed by server" })
              | n ->
                  Protocol.Frames.feed frames (Bytes.sub_string buf 0 n);
                  greeting ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> greeting ()
              | exception Unix.Unix_error (e, _, _) ->
                  Result.Error
                    (Error.Server_unavailable
                       { socket; message = Unix.error_message e }))
        in
        match greeting () with
        | Result.Error e -> give_up e
        | Ok { Protocol.Frames.reply = Protocol.Ready { version; workers; queue_max }; _ }
          ->
            if version <> Protocol.version then
              give_up
                (Error.Protocol_violation
                   {
                     line = Printf.sprintf "mcd-serve/%d" version;
                     reason =
                       Printf.sprintf "unsupported protocol version (want %d)"
                         Protocol.version;
                   })
            else begin
              Unix.set_nonblock fd;
              Ok
                {
                  socket;
                  fd;
                  frames;
                  out = Evloop.Outbuf.create ();
                  buf;
                  pending = Hashtbl.create 64;
                  next_seq = 1;
                  failed = None;
                  version;
                  workers;
                  queue_max;
                }
            end
        | Ok { Protocol.Frames.reply; _ } ->
            give_up
              (Error.Protocol_violation
                 {
                   line = Protocol.render_reply reply;
                   reason = "expected greeting";
                 }))

  let send_cmd t phase k cmd =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.pending seq { phase; k };
    Evloop.Outbuf.add t.out (Protocol.render_command ~seq cmd ^ "\n")

  let run ?(priority = Protocol.Normal) t request ~k =
    match t.failed with
    | Some e -> k (Result.Error e)
    | None -> send_cmd t Submitting k (Protocol.Submit { priority; request })

  let protocol_violation t reply reason =
    ignore
      (fail t
         (Error.Protocol_violation
            { line = Protocol.render_reply reply; reason }))

  (* One decoded frame: route by seq, advance that request's phase. *)
  let dispatch t (f : Protocol.Frames.frame) =
    match f.seq with
    | None -> protocol_violation t f.reply "unsolicited reply (no seq)"
    | Some seq -> (
        match Hashtbl.find_opt t.pending seq with
        | None -> protocol_violation t f.reply "reply for unknown seq"
        | Some info -> (
            Hashtbl.remove t.pending seq;
            match (info.phase, f.reply) with
            | Submitting, Protocol.Queued_reply { id; _ } ->
                send_cmd t (Waiting id) info.k (Protocol.Wait id)
            | Waiting id, Protocol.Status_reply _ ->
                (* terminal either way: [result] returns the payload or
                   the job's typed failure, same as the blocking path *)
                send_cmd t (Fetching id) info.k (Protocol.Result id)
            | Fetching _, Protocol.Payload _ ->
                info.k (Ok (Option.value ~default:"" f.body))
            | _, Protocol.Rejected r ->
                info.k (Result.Error (Protocol.error_of_reject r))
            | _, reply ->
                Hashtbl.replace t.pending seq info;
                protocol_violation t reply "reply does not match request phase"))

  let rec drain_frames t =
    if t.failed <> None then ()
    else
      match Protocol.Frames.next t.frames with
      | `Await -> ()
      | `Error reason ->
          ignore
            (fail t (Error.Protocol_violation { line = "<stream>"; reason }))
      | `Frame f ->
          dispatch t f;
          drain_frames t

  let read_ready t =
    let rec go () =
      if t.failed <> None then ()
      else
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> ignore (transport_lost t)
        | n ->
            Protocol.Frames.feed t.frames (Bytes.sub_string t.buf 0 n);
            drain_frames t;
            go ()
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> ignore (transport_lost t)
    in
    go ()

  let flush_out t =
    match Evloop.Outbuf.flush t.out t.fd with
    | `All | `Partial -> Ok ()
    | `Closed -> transport_lost t

  let pump ?(timeout_ms = 0) t =
    match t.failed with
    | Some e -> Result.Error e
    | None -> (
        match flush_out t with
        | Result.Error _ as e -> e
        | Ok () -> (
            match
              Evloop.wait_fd t.fd ~read:true ~write:(has_output t) ~timeout_ms
            with
            | None -> Ok ()
            | Some ev ->
                if ev.readable then read_ready t;
                (match t.failed with
                | Some e -> Result.Error e
                | None -> if ev.writable then flush_out t else Ok ())))

  let close t =
    (match t.failed with
    | Some _ -> ()
    | None ->
        Evloop.Outbuf.add t.out (Protocol.render_command Protocol.Quit ^ "\n");
        ignore (flush_out t);
        t.failed <-
          Some
            (Error.Server_unavailable
               { socket = t.socket; message = "connection closed locally" }));
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
end
