module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Editor = Mcd_core.Editor
module Metrics = Mcd_power.Metrics
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats

type row = {
  workload : Workload.t;
  context : Context.t;
  cmp : Runner.comparison;
  static_reconfig : int;
  static_instr : int;
  dyn_reconfig : int;
  dyn_instr : int;
  overhead_pct : float;
  table_bytes : int;
}

let default_workloads =
  List.map Suite.by_name
    [
      "mpeg2 decode";
      "epic encode";
      "adpcm decode";
      "adpcm encode";
      "gsm decode";
      "mpeg2 encode";
      "applu";
      "art";
    ]

(* Section 4.4: an edited binary carries an (n+1) x (s+1) table of node
   labels (2-byte entries) and an (n+1)-entry table of frequency
   settings (4 domains x 2 bytes), where n is the call-tree node count
   and s the number of instrumented subroutines. The L+F and F schemes
   need neither. *)
let lookup_table_bytes plan context =
  if not context.Context.paths then 0
  else begin
    let tree = plan.Plan.tree in
    let n = Mcd_profiling.Call_tree.size tree in
    let s =
      List.length (Mcd_profiling.Call_tree.instrumented_static_units tree)
    in
    ((n + 1) * (s + 1) * 2) + ((n + 1) * 8)
  end

let row_of (w : Workload.t) context =
  let baseline = Runner.baseline w in
  let pr = Runner.profile_run w ~context ~train:`Train in
  let run = pr.Runner.run in
  (* this row genuinely needs the plan's static structure, so forcing
     the lazy (possibly decoding the cached plan) is the real cost *)
  let plan = Lazy.force pr.Runner.plan in
  {
    workload = w;
    context;
    cmp = Runner.compare_runs ~baseline run;
    static_reconfig = Plan.static_reconfig_points plan;
    static_instr = Plan.static_instr_points plan;
    dyn_reconfig = pr.Runner.counters.Editor.reconfig_execs;
    dyn_instr = pr.Runner.counters.Editor.instr_execs;
    overhead_pct =
      Stats.percent
        (float_of_int run.Metrics.instr_overhead_ps)
        (float_of_int run.Metrics.runtime_ps);
    table_bytes = lookup_table_bytes plan context;
  }

let rows ?(workloads = default_workloads) ?(contexts = Context.all) () =
  (* fan out per workload: all of a workload's contexts stay on one
     domain, so its baseline and plans are computed once per worker *)
  List.concat
    (Runner.map_workloads (fun w -> List.map (row_of w) contexts) workloads)

let by_workload rows =
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.workload.Workload.name) rows)
  in
  List.map
    (fun n -> (n, List.filter (fun r -> r.workload.Workload.name = n) rows))
    names

let render_by_context ~title ~extract rows =
  let contexts =
    List.filter
      (fun c ->
        List.exists (fun r -> r.context.Context.name = c.Context.name) rows)
      Context.all
  in
  let header =
    "benchmark" :: List.map (fun c -> c.Context.name) contexts
  in
  let body =
    List.map
      (fun (name, wrows) ->
        name
        :: List.map
             (fun c ->
               match
                 List.find_opt
                   (fun r -> r.context.Context.name = c.Context.name)
                   wrows
               with
               | Some r -> Table.fmt_pct (extract r)
               | None -> "-")
             contexts)
      (by_workload rows)
  in
  title ^ "\n" ^ Table.render ~header ~rows:body ()

let fig8 =
  render_by_context
    ~title:
      "Figure 8: performance degradation by calling-context definition"
    ~extract:(fun r -> r.cmp.Runner.degradation_pct)

let fig9 =
  render_by_context
    ~title:"Figure 9: energy savings by calling-context definition"
    ~extract:(fun r -> r.cmp.Runner.savings_pct)

let fig12 rows =
  let contexts =
    List.filter
      (fun c ->
        List.exists (fun r -> r.context.Context.name = c.Context.name) rows)
      Context.all
  in
  let avg f ctx =
    let selected =
      List.filter (fun r -> r.context.Context.name = ctx.Context.name) rows
    in
    Stats.mean (List.map f selected)
  in
  let base_ctx = Context.lfcp in
  let norm f ctx =
    let b = avg f base_ctx in
    if b = 0.0 then 0.0 else avg f ctx /. b
  in
  let header =
    "quantity (normalised to L+F+C+P)"
    :: List.map (fun c -> c.Context.name) contexts
  in
  let line name f =
    name :: List.map (fun c -> Table.fmt_f2 (norm f c)) contexts
  in
  "Figure 12: static points and run-time overhead vs context definition\n"
  ^ Table.render ~header
      ~rows:
        [
          line "static reconfiguration points" (fun r ->
              float_of_int r.static_reconfig);
          line "static instrumentation points" (fun r ->
              float_of_int r.static_instr);
          line "run-time overhead" (fun r -> r.overhead_pct);
        ]
      ()

let table4 rows =
  let selected =
    List.filter (fun r -> r.context.Context.name = Context.lfcp.Context.name)
      rows
  in
  let header =
    [
      "benchmark"; "static reconf"; "static instr"; "dyn reconf";
      "dyn instr"; "overhead"; "tables";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload.Workload.name;
          string_of_int r.static_reconfig;
          string_of_int r.static_instr;
          string_of_int r.dyn_reconfig;
          string_of_int r.dyn_instr;
          Table.fmt_pct r.overhead_pct;
          Printf.sprintf "%.1f KB" (float_of_int r.table_bytes /. 1024.0);
        ])
      selected
  in
  "Table 4: static and dynamic reconfiguration/instrumentation points \
   (L+F+C+P)\n"
  ^ Table.render ~header ~rows:body ()
