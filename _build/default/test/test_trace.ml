(* Tests for the trace collector: attribution of primitive events to
   long-running nodes, segment caps, and ordering. *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Collector = Mcd_trace.Collector
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Probe = Mcd_cpu.Probe

let input = { P.input_name = "t"; scale = 1; divergence = 0.0; seed = 21 }

(* two long phases that alternate, and a long node nested in another *)
let phased_program () =
  B.program ~name:"phased" @@ fun b ->
  B.func b "phase_a"
    [ B.loop b (P.Const 40) [ B.straight b ~length:30 () ] ];
  B.func b "phase_b"
    [ B.loop b (P.Const 40) [ B.straight b ~length:30 ~frac_fp_alu:0.3 () ] ];
  B.func b "main"
    [
      B.loop b (P.Const 12) [ B.call b "phase_a"; B.call b "phase_b" ];
    ];
  "main"

let collect ?max_segments_per_node ?max_events_per_segment ~threshold program
    =
  let tree =
    Call_tree.build program ~input ~context:Context.lfcp ~threshold
      ~max_insts:100_000 ()
  in
  let col = Collector.create ~tree ?max_segments_per_node ?max_events_per_segment () in
  let _ =
    Pipeline.run
      ~probe:(Collector.probe col)
      ~config:Config.alpha21264_like ~program ~input ~max_insts:40_000 ()
  in
  (tree, col)

let test_segments_for_long_nodes () =
  let tree, col = collect ~threshold:800 (phased_program ()) in
  let segs = Collector.segments col in
  Alcotest.(check bool) "some segments" true (List.length segs > 0);
  List.iter
    (fun (node_id, _) ->
      Alcotest.(check bool) "segment nodes are long" true
        (Call_tree.node tree node_id).Call_tree.long)
    segs

let test_segment_events_sorted () =
  let _, col = collect ~threshold:800 (phased_program ()) in
  List.iter
    (fun (_, segments) ->
      List.iter
        (fun seg ->
          let prev = ref (-1) in
          Array.iter
            (fun (e : Probe.event) ->
              if e.Probe.seq < !prev then Alcotest.fail "segment not sorted";
              prev := e.Probe.seq)
            seg)
        segments)
    (Collector.segments col)

let test_segment_cap_respected () =
  let _, col =
    collect ~max_segments_per_node:2 ~threshold:800 (phased_program ())
  in
  List.iter
    (fun (_, segments) ->
      Alcotest.(check bool) "at most 2 segments" true
        (List.length segments <= 2))
    (Collector.segments col)

let test_event_cap_respected () =
  let _, col =
    collect ~max_events_per_segment:500 ~threshold:800 (phased_program ())
  in
  List.iter
    (fun (_, segments) ->
      List.iter
        (fun seg ->
          Alcotest.(check bool) "event cap" true (Array.length seg <= 500))
        segments)
    (Collector.segments col)

let test_no_long_nodes_no_segments () =
  let _, col = collect ~threshold:10_000_000 (phased_program ()) in
  Alcotest.(check int) "no segments" 0 (List.length (Collector.segments col))

let test_nested_attribution () =
  (* an inner long loop's events must not appear in the outer node's
     segments: seq ranges of different nodes are disjoint *)
  let tree, col = collect ~threshold:800 (phased_program ()) in
  ignore tree;
  let ranges = Hashtbl.create 8 in
  List.iter
    (fun (node_id, segments) ->
      List.iter
        (fun seg ->
          if Array.length seg > 0 then begin
            let lo = seg.(0).Probe.seq in
            let hi = seg.(Array.length seg - 1).Probe.seq in
            Hashtbl.add ranges node_id (lo, hi)
          end)
        segments)
    (Collector.segments col);
  (* ranges from different nodes never interleave: check pairwise *)
  let all = Hashtbl.fold (fun id r acc -> (id, r) :: acc) ranges [] in
  List.iter
    (fun (id1, (lo1, hi1)) ->
      List.iter
        (fun (id2, (lo2, hi2)) ->
          if id1 <> id2 && not (hi1 < lo2 || hi2 < lo1) then
            Alcotest.failf "segments of nodes %d and %d overlap" id1 id2)
        all)
    all

let test_intervals_seen () =
  let _, col = collect ~threshold:800 (phased_program ()) in
  Alcotest.(check bool) "intervals opened" true (Collector.intervals_seen col > 2)

(* --- Interval_collector ---------------------------------------------- *)

module Interval_collector = Mcd_trace.Interval_collector

let collect_intervals ~interval_insts program =
  let col = Interval_collector.create ~interval_insts () in
  let _ =
    Pipeline.run
      ~probe:(Interval_collector.probe col)
      ~config:Config.alpha21264_like ~program ~input ~max_insts:20_000 ()
  in
  Interval_collector.intervals col

let test_interval_bucketing () =
  let intervals = collect_intervals ~interval_insts:2_000 (phased_program ()) in
  Alcotest.(check bool) "about ten buckets" true
    (List.length intervals >= 9 && List.length intervals <= 12);
  (* every event sits in the bucket of its instruction *)
  List.iteri
    (fun i events ->
      Array.iter
        (fun (e : Probe.event) ->
          if e.Probe.seq / 2_000 <> i then
            Alcotest.fail "event filed in the wrong interval")
        events)
    intervals

let test_interval_events_sorted () =
  let intervals = collect_intervals ~interval_insts:2_000 (phased_program ()) in
  List.iter
    (fun events ->
      let prev = ref (-1) in
      Array.iter
        (fun (e : Probe.event) ->
          if e.Probe.seq < !prev then Alcotest.fail "interval not sorted";
          prev := e.Probe.seq)
        events)
    intervals

let test_interval_cap () =
  let col =
    Interval_collector.create ~interval_insts:2_000
      ~max_events_per_interval:100 ()
  in
  let _ =
    Pipeline.run
      ~probe:(Interval_collector.probe col)
      ~config:Config.alpha21264_like
      ~program:(phased_program ())
      ~input ~max_insts:10_000 ()
  in
  List.iter
    (fun events ->
      Alcotest.(check bool) "cap respected" true (Array.length events <= 100))
    (Interval_collector.intervals col)

let suite =
  [
    ("segments for long nodes", `Quick, test_segments_for_long_nodes);
    ("interval bucketing", `Quick, test_interval_bucketing);
    ("interval events sorted", `Quick, test_interval_events_sorted);
    ("interval cap", `Quick, test_interval_cap);
    ("segment events sorted", `Quick, test_segment_events_sorted);
    ("segment cap respected", `Quick, test_segment_cap_respected);
    ("event cap respected", `Quick, test_event_cap_respected);
    ("no long nodes, no segments", `Quick, test_no_long_nodes_no_segments);
    ("nested attribution disjoint", `Quick, test_nested_attribution);
    ("intervals seen", `Quick, test_intervals_seen);
  ]
