lib/core/plan.ml: Array Format Hashtbl List Mcd_domains Mcd_profiling Mcd_util Path_model Threshold
