(* Tests for the experiment service: wire-protocol round-trips, the
   bounded priority job queue, and the scheduler's coalescing,
   backpressure, drain, and failure-isolation behaviour. Socket-level
   behaviour (forked servers, concurrent clients, SIGTERM drain, warm
   restart) is covered end to end by tools/serve_smoke.ml under
   @verify. *)

module Protocol = Mcd_serve.Protocol
module Jobq = Mcd_serve.Jobq
module Scheduler = Mcd_serve.Scheduler
module Journal = Mcd_serve.Journal
module Error = Mcd_robust.Error

let qcheck ?(seed = 0x5e12e) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
module Inject = Mcd_robust.Inject
module Metrics = Mcd_obs.Metrics
module Rng = Mcd_util.Rng
module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Analyze = Mcd_core.Analyze
module Plan_io = Mcd_core.Plan_io

(* --- Protocol --------------------------------------------------------- *)

let all_commands =
  [
    Protocol.Ping;
    Protocol.Submit
      {
        priority = Protocol.High;
        request =
          Protocol.request ~policy:Protocol.Online ~context:"L+F+C+P"
            ~slowdown_pct:12.5 "adpcm decode";
      };
    Protocol.Submit
      { priority = Protocol.Low; request = Protocol.request "mcf" };
    Protocol.Status 7;
    Protocol.Wait 42;
    Protocol.Result 1;
    Protocol.Stats;
    Protocol.Drain;
    Protocol.Quit;
  ]

let test_command_roundtrip () =
  List.iter
    (fun cmd ->
      let line = Protocol.render_command cmd in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Protocol.parse_command line with
      | Ok (cmd', seq) ->
          Alcotest.(check bool) line true (cmd = cmd' && seq = None)
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_commands

let all_replies =
  [
    Protocol.Ready { version = 1; workers = 4; queue_max = 64 };
    Protocol.Pong;
    Protocol.Queued_reply
      { id = 3; digest = "0123456789abcdef0123456789abcdef"; coalesced = true };
    Protocol.Status_reply { id = 3; state = Protocol.Queued };
    Protocol.Status_reply { id = 3; state = Protocol.Running };
    Protocol.Status_reply { id = 3; state = Protocol.Done };
    Protocol.Status_reply
      { id = 3; state = Protocol.Failed "oops: 50% of\nplans corrupt" };
    Protocol.Payload { id = 9; bytes = 12345 };
    Protocol.Stats_payload { bytes = 0 };
    Protocol.Draining_reply;
    Protocol.Rejected
      (Protocol.Overloaded { queue_depth = 64; limit = 64; retry_after_ms = 250 });
    Protocol.Rejected Protocol.Draining;
    Protocol.Rejected (Protocol.Bad_request "unknown workload \"x y\"");
    Protocol.Rejected (Protocol.Unknown_job 17);
    Protocol.Rejected (Protocol.Job_failed { id = 2; message = "plan rejected" });
    Protocol.Rejected (Protocol.Not_done 4);
    Protocol.Rejected (Protocol.Deadline { id = 5; deadline_ms = 150 });
  ]

let test_reply_roundtrip () =
  List.iter
    (fun reply ->
      let line = Protocol.render_reply reply in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Protocol.parse_reply line with
      | Ok (reply', seq) ->
          Alcotest.(check bool) line true (reply = reply' && seq = None)
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_replies

let test_parse_rejects_garbage () =
  List.iter
    (fun line ->
      match Protocol.parse_command line with
      | Ok _ -> Alcotest.failf "command %S accepted" line
      | Error _ -> ())
    [
      "";
      "launch";
      "status";  (* missing id *)
      "status id=abc";
      "submit pri=urgent workload=mcf policy=profile context=F slowdown=7.";
      "submit pri=high workload=mcf policy=psychic context=F slowdown=7.";
      "submit pri=high workload=mcf policy=profile context=F slowdown=fast";
      "submit pri=high workload=m%2f policy=profile context=F slowdown=7.";
      (* bad escape *)
    ];
  List.iter
    (fun line ->
      match Protocol.parse_reply line with
      | Ok _ -> Alcotest.failf "reply %S accepted" line
      | Error _ -> ())
    [ ""; "status id=1 state=confused"; "error code=mystery"; "mcd-serve/x ready" ]

(* --- pipelined framing ------------------------------------------------- *)

let test_seq_roundtrip () =
  List.iter
    (fun cmd ->
      let line = Protocol.render_command ~seq:321 cmd in
      match Protocol.parse_command line with
      | Ok (cmd', Some 321) when cmd' = cmd -> ()
      | Ok (_, seq) ->
          Alcotest.failf "%s: seq came back %s" line
            (match seq with None -> "absent" | Some n -> string_of_int n)
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_commands;
  List.iter
    (fun reply ->
      let line = Protocol.render_reply ~seq:7 reply in
      match Protocol.parse_reply line with
      | Ok (reply', Some 7) when reply' = reply -> ()
      | Ok _ -> Alcotest.failf "%s: reply or seq mangled" line
      | Error e -> Alcotest.failf "%s does not parse back: %s" line e)
    all_replies

(* A generated frame: a reply line (maybe seq-tagged), plus a body for
   payload-carrying headers. Bodies are arbitrary bytes — newlines,
   percent signs, even "end\n" — the byte-count framing must not care. *)
let frame_gen =
  QCheck.Gen.(
    let body = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 80) in
    let seq = opt (int_bound 10_000) in
    let plain =
      oneofl
        [
          Protocol.Pong;
          Protocol.Draining_reply;
          Protocol.Queued_reply { id = 3; digest = "abc123"; coalesced = false };
          Protocol.Status_reply { id = 9; state = Protocol.Running };
          Protocol.Status_reply { id = 2; state = Protocol.Failed "b%d\nx" };
          Protocol.Rejected
            (Protocol.Overloaded
               { queue_depth = 4; limit = 4; retry_after_ms = 120 });
          Protocol.Rejected (Protocol.Unknown_job 5);
        ]
    in
    let* s = seq in
    frequency
      [
        (3, map (fun r -> (r, s, None)) plain);
        ( 1,
          map
            (fun b ->
              (Protocol.Payload { id = 1; bytes = String.length b }, s, Some b))
            body );
        ( 1,
          map
            (fun b ->
              (Protocol.Stats_payload { bytes = String.length b }, s, Some b))
            body );
      ])

let render_frame (reply, seq, body) =
  Protocol.render_reply ?seq reply ^ "\n"
  ^ match body with None -> "" | Some b -> b ^ "end\n"

(* Split [s] into chunks at arbitrary boundaries driven by [cuts]. *)
let chunks_of cuts s =
  let n = String.length s in
  let rec go off cuts acc =
    if off >= n then List.rev acc
    else
      match cuts with
      | [] -> List.rev (String.sub s off (n - off) :: acc)
      | c :: rest ->
          let len = min (max 1 c) (n - off) in
          go (off + len) rest (String.sub s off len :: acc)
  in
  go 0 cuts []

let prop_frames_roundtrip =
  QCheck.Test.make ~name:"Frames: chunked stream decodes to the same frames"
    ~count:300
    QCheck.(
      make
        ~print:(fun (frames, cuts) ->
          Printf.sprintf "cuts=[%s]\nwire=%S"
            (String.concat ";" (List.map string_of_int cuts))
            (String.concat "" (List.map render_frame frames)))
        Gen.(
          let* frames = list_size (int_range 1 8) frame_gen in
          let* cuts = list_size (int_bound 40) (int_range 1 17) in
          return (frames, cuts)))
    (fun (frames, cuts) ->
      let wire = String.concat "" (List.map render_frame frames) in
      let dec = Protocol.Frames.create () in
      let out = ref [] in
      let rec drain () =
        match Protocol.Frames.next dec with
        | `Frame f -> out := f :: !out;
            drain ()
        | `Await -> ()
        | `Error e -> QCheck.Test.fail_reportf "decode error: %s" e
      in
      List.iter
        (fun chunk ->
          Protocol.Frames.feed dec chunk;
          drain ())
        (chunks_of cuts wire);
      let got = List.rev !out in
      if List.length got <> List.length frames then
        QCheck.Test.fail_reportf "decoded %d frames, fed %d"
          (List.length got) (List.length frames);
      List.iter2
        (fun (reply, seq, body) (f : Protocol.Frames.frame) ->
          (* order, reply, seq tag and body must all survive chunking *)
          if f.reply <> reply || f.seq <> seq || f.body <> body then
            QCheck.Test.fail_reportf "frame mismatch on %s"
              (Protocol.render_reply ?seq reply))
        frames got;
      Protocol.Frames.buffered dec = 0)

let test_frames_oversized_rejected () =
  let dec = Protocol.Frames.create ~max_payload:100 () in
  Protocol.Frames.feed dec "payload id=1 bytes=101\n";
  (match Protocol.Frames.next dec with
  | `Error _ -> ()
  | `Frame _ | `Await ->
      Alcotest.fail "oversized payload header not refused");
  (* the error is terminal: feeding more never recovers *)
  Protocol.Frames.feed dec "pong\n";
  (match Protocol.Frames.next dec with
  | `Error _ -> ()
  | _ -> Alcotest.fail "decode error was not sticky");
  let dec2 = Protocol.Frames.create () in
  Protocol.Frames.feed dec2 "payload id=1 bytes=-4\n";
  (match Protocol.Frames.next dec2 with
  | `Error _ -> ()
  | _ -> Alcotest.fail "negative byte count not refused");
  (* a bad trailer is a desync, not a skippable frame *)
  let dec3 = Protocol.Frames.create () in
  Protocol.Frames.feed dec3 "payload id=1 bytes=2\nhiXXX\n";
  match Protocol.Frames.next dec3 with
  | `Error _ -> ()
  | _ -> Alcotest.fail "corrupt trailer not refused"

let test_request_normalization_digests () =
  (* the digest is the persistent-store key: spellings a policy cannot
     observe must collapse onto one identity, real differences must
     not *)
  let digest req =
    match Mcd_serve.Server.request_digest req with
    | Ok d -> d
    | Error e -> Alcotest.failf "request_digest: %s" e
  in
  let base = Protocol.request ~policy:Protocol.Baseline "adpcm decode" in
  let base' =
    Protocol.request ~policy:Protocol.Baseline ~context:"F" ~slowdown_pct:1.0
      "adpcm decode"
  in
  Alcotest.(check string) "baseline ignores context+slowdown" (digest base)
    (digest base');
  let prof = Protocol.request ~policy:Protocol.Profile "adpcm decode" in
  let prof_ctx =
    Protocol.request ~policy:Protocol.Profile ~context:"F" "adpcm decode"
  in
  let prof_slow =
    Protocol.request ~policy:Protocol.Profile ~slowdown_pct:3.0 "adpcm decode"
  in
  Alcotest.(check bool) "profile distinguishes context" false
    (digest prof = digest prof_ctx);
  Alcotest.(check bool) "profile distinguishes slowdown" false
    (digest prof = digest prof_slow);
  Alcotest.(check bool) "policies distinguished" false
    (digest base = digest prof);
  match Mcd_serve.Server.request_digest (Protocol.request "no such bench") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown workload digested"

let test_error_of_reject_exit_codes () =
  let code r = Error.exit_code (Protocol.error_of_reject r) in
  Alcotest.(check int) "overloaded -> 4" 4
    (code (Protocol.Overloaded { queue_depth = 1; limit = 1; retry_after_ms = 100 }));
  Alcotest.(check int) "draining -> 4" 4 (code Protocol.Draining);
  Alcotest.(check int) "bad request -> 2" 2 (code (Protocol.Bad_request "x"));
  Alcotest.(check int) "unknown job -> 2" 2 (code (Protocol.Unknown_job 1));
  Alcotest.(check int) "deadline -> 2" 2
    (code (Protocol.Deadline { id = 1; deadline_ms = 100 }))

(* --- Jobq ------------------------------------------------------------- *)

let test_jobq_priority_fifo () =
  let q = Jobq.create ~queue_max:16 ~client_max:16 () in
  let push level client item =
    match Jobq.push q ~level ~client item with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "push rejected below the bound"
  in
  push 2 "a" "low1";
  push 1 "a" "norm1";
  push 0 "a" "high1";
  push 1 "a" "norm2";
  push 0 "b" "high2";
  let order = List.init 5 (fun _ -> Option.get (Jobq.pop q)) in
  Alcotest.(check (list string)) "levels first, FIFO within"
    [ "high1"; "high2"; "norm1"; "norm2"; "low1" ]
    order;
  Alcotest.(check bool) "drained" true (Jobq.pop q = None)

let test_jobq_bounds () =
  let q = Jobq.create ~queue_max:3 ~client_max:2 () in
  let push client item = Jobq.push q ~level:1 ~client item in
  Alcotest.(check bool) "1 ok" true (push "a" 1 = Ok ());
  Alcotest.(check bool) "2 ok" true (push "a" 2 = Ok ());
  (match push "a" 3 with
  | Error (Jobq.Client_full n) -> Alcotest.(check int) "client pending" 2 n
  | _ -> Alcotest.fail "third job for one client admitted");
  Alcotest.(check bool) "other client ok" true (push "b" 3 = Ok ());
  (match push "c" 4 with
  | Error (Jobq.Queue_full n) -> Alcotest.(check int) "global depth" 3 n
  | _ -> Alcotest.fail "job beyond the global bound admitted");
  (* popping releases both the global slot and the client's slot *)
  ignore (Jobq.pop q);
  Alcotest.(check int) "client released" 1 (Jobq.client_pending q "a");
  Alcotest.(check bool) "slot freed" true (push "a" 5 = Ok ())

let test_jobq_level_clamped () =
  let q = Jobq.create ~queue_max:4 ~client_max:4 () in
  ignore (Jobq.push q ~level:(-3) ~client:"a" "early");
  ignore (Jobq.push q ~level:99 ~client:"a" "late");
  Alcotest.(check (option string)) "clamped high" (Some "early") (Jobq.pop q);
  Alcotest.(check (option string)) "clamped low" (Some "late") (Jobq.pop q)

let test_jobq_rejects_bad_bounds () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "Invalid_argument" true
        (match f () with
        | (_ : int Jobq.t) -> false
        | exception Invalid_argument _ -> true))
    [
      (fun () -> Jobq.create ~queue_max:0 ~client_max:1 ());
      (fun () -> Jobq.create ~queue_max:1 ~client_max:0 ());
      (fun () -> Jobq.create ~levels:0 ~queue_max:1 ~client_max:1 ());
    ]

let test_jobq_force_bypasses_bounds () =
  (* journal replay re-queues jobs that were already admitted once:
     [~force] must bypass both the global and the per-client bound, so
     a restart with a smaller queue config can never drop them *)
  let q = Jobq.create ~queue_max:1 ~client_max:1 () in
  Alcotest.(check bool) "fills" true
    (Jobq.push q ~level:1 ~client:"a" "one" = Ok ());
  (match Jobq.push q ~level:1 ~client:"a" "two" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bound not enforced without force");
  Alcotest.(check bool) "replay bypasses both bounds" true
    (Jobq.push ~force:true q ~level:1 ~client:"a" "replayed" = Ok ());
  Alcotest.(check int) "forced job counted" 2 (Jobq.length q);
  (* forced admissions still release like ordinary ones *)
  ignore (Jobq.pop q);
  ignore (Jobq.pop q);
  Alcotest.(check int) "client slots released" 0 (Jobq.client_pending q "a")

let test_jobq_fairness_under_pipelining () =
  (* A pipelined connection can burst hundreds of submits in one loop
     iteration. The per-client cap must hold under that shape: the
     greedy client gets exactly [client_max] slots no matter how hard
     it bursts, everyone else still gets in, and — since the greedy
     client can never occupy the whole queue — a victim's job is
     served after at most [client_max] greedy ones. *)
  let queue_max = 16 and client_max = 4 in
  let q = Jobq.create ~queue_max ~client_max () in
  let greedy_in = ref 0 in
  for i = 1 to 100 do
    match Jobq.push q ~level:1 ~client:"greedy" (Printf.sprintf "g%d" i) with
    | Ok () -> incr greedy_in
    | Error (Jobq.Client_full n) ->
        Alcotest.(check int) "cap reported at the bound" client_max n
    | Error (Jobq.Queue_full _) ->
        Alcotest.fail "greedy burst filled the global queue"
  done;
  Alcotest.(check int) "greedy capped" client_max !greedy_in;
  Alcotest.(check int) "greedy pending" client_max
    (Jobq.client_pending q "greedy");
  (* latecomers still get in behind the capped burst *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "victim %s admitted" c)
        true
        (Jobq.push q ~level:1 ~client:c ("job-" ^ c) = Ok ()))
    [ "v1"; "v2"; "v3" ];
  (* the victim is served after at most client_max greedy jobs *)
  let rec pops_until_victim n =
    match Jobq.pop q with
    | Some "job-v1" -> n
    | Some _ -> pops_until_victim (n + 1)
    | None -> Alcotest.fail "victim job never popped"
  in
  let ahead = pops_until_victim 0 in
  Alcotest.(check bool)
    (Printf.sprintf "victim waited behind %d <= %d greedy jobs" ahead
       client_max)
    true (ahead <= client_max);
  (* drained greedy slots free up for its next burst — backpressure,
     not a ban *)
  Alcotest.(check bool) "greedy readmitted after pops" true
    (Jobq.push q ~level:1 ~client:"greedy" "next" = Ok ())

(* --- Journal ----------------------------------------------------------- *)

let journal_entry ~id workload =
  {
    Journal.id;
    client = "tester";
    priority = Protocol.High;
    digest = "digest:" ^ workload;
    request =
      Protocol.request ~policy:Protocol.Online ~context:"L+F+C+P"
        ~slowdown_pct:12.5 workload;
  }

let with_journal_path f =
  let path = Filename.temp_file "mcd_journal_test" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_ok path =
  match Journal.open_journal ~fsync:false ~path () with
  | Ok v -> v
  | Error e -> Alcotest.failf "open_journal: %s" (Error.to_string e)

let replay_ids (r : Journal.recovery) =
  List.map (fun (e : Journal.entry) -> e.Journal.id) r.Journal.replay

let test_journal_entry_roundtrip () =
  let e = journal_entry ~id:42 "adpcm decode" in
  let line = Journal.render_entry e in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Journal.parse_entry line with
  | Ok e' -> Alcotest.(check bool) line true (e = e')
  | Error m -> Alcotest.failf "%s does not parse back: %s" line m

let test_journal_recovery_and_compaction () =
  with_journal_path @@ fun path ->
  (* session 1: three admits, one done, one failed *)
  let j, r0 = open_ok path in
  Alcotest.(check (list int)) "fresh journal replays nothing" [] (replay_ids r0);
  Journal.admit j (journal_entry ~id:1 "a");
  Journal.admit j (journal_entry ~id:2 "b");
  Journal.admit j (journal_entry ~id:3 "c");
  Journal.mark_done j ~id:1;
  Journal.mark_failed j ~id:2 ~msg:"boom: 50% of\nplans corrupt";
  let s = Journal.stats j in
  Alcotest.(check int) "admits counted" 3 s.Journal.admitted;
  Alcotest.(check int) "terminals counted" 2 s.Journal.finished;
  Journal.close j;
  (* session 2: only the incomplete job replays, with ids preserved *)
  let j2, r = open_ok path in
  Alcotest.(check (list int)) "incomplete admit replays" [ 3 ] (replay_ids r);
  Alcotest.(check int) "done seen" 1 r.Journal.completed;
  Alcotest.(check int) "fail seen" 1 r.Journal.failed;
  Alcotest.(check int) "next id past every admit" 4 r.Journal.next_id;
  Alcotest.(check bool) "no torn tail" false r.Journal.torn;
  Alcotest.(check bool) "no corruption" true (r.Journal.corrupt = None);
  (match r.Journal.replay with
  | [ e ] -> Alcotest.(check bool) "entry survives intact" true
               (e = journal_entry ~id:3 "c")
  | _ -> Alcotest.fail "expected exactly one replay entry");
  Journal.close j2;
  (* open compacted away the terminal records: a third session sees an
     already-clean log with the same single incomplete admit *)
  let j3, r2 = open_ok path in
  Alcotest.(check (list int)) "compacted log replays the same" [ 3 ]
    (replay_ids r2);
  Alcotest.(check int) "terminal records rewritten away" 0 r2.Journal.completed;
  (* finish the last job: the next recovery has nothing to replay, but
     the compacted log's [next] record must still hold the high-water
     id — ids of jobs completed before a crash are owned by the clients
     they were acked to, and must never be reissued *)
  Journal.mark_done j3 ~id:3;
  Journal.close j3;
  let j4, r3 = open_ok path in
  Alcotest.(check (list int)) "nothing left to replay" [] (replay_ids r3);
  Alcotest.(check int) "high-water id survives empty-replay compaction" 4
    r3.Journal.next_id;
  Journal.close j4;
  (* ...and survives a second compaction, when only the [next] record
     itself carries the mark *)
  let j5, r4 = open_ok path in
  Alcotest.(check int) "high-water id survives recompaction" 4
    r4.Journal.next_id;
  Journal.close j5

let test_journal_torn_tail_dropped () =
  with_journal_path @@ fun path ->
  let j, _ = open_ok path in
  Journal.admit j (journal_entry ~id:1 "a");
  Journal.admit j (journal_entry ~id:2 "b");
  Journal.close j;
  (* cut into the last record's [end] trailer: a torn append *)
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 2);
  Unix.close fd;
  let j2, r = open_ok path in
  Alcotest.(check bool) "torn tail detected" true r.Journal.torn;
  Alcotest.(check bool) "torn is not corruption" true (r.Journal.corrupt = None);
  Alcotest.(check (list int)) "good prefix wins" [ 1 ] (replay_ids r);
  Alcotest.(check int) "torn recovery surfaces in stats" 1
    (Journal.stats j2).Journal.recovered_torn;
  Journal.close j2

let test_journal_midfile_corruption_typed () =
  with_journal_path @@ fun path ->
  let j, _ = open_ok path in
  Journal.admit j (journal_entry ~id:1 "a");
  Journal.admit j (journal_entry ~id:2 "b");
  Journal.close j;
  (* scribble over the first record's header: framing breaks before
     the tail, which is corruption, not a torn append *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.write_substring fd "rot" 0 3);
  Unix.close fd;
  let j2, r = open_ok path in
  (match r.Journal.corrupt with
  | Some (Error.Journal_corrupt _) -> ()
  | Some e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | None -> Alcotest.fail "mid-file corruption not reported");
  Alcotest.(check bool) "corruption is not a torn tail" false r.Journal.torn;
  Alcotest.(check (list int)) "suffix after the bad record dropped" []
    (replay_ids r);
  Alcotest.(check int) "corrupt recovery surfaces in stats" 1
    (Journal.stats j2).Journal.recovered_corrupt;
  Journal.close j2;
  (* ...and a framed record whose body does not parse is also typed
     corruption: the good prefix before it still replays *)
  let good = journal_entry ~id:7 "a" in
  let body = Journal.render_entry good ^ "\n" in
  Out_channel.with_open_bin path (fun oc ->
      Printf.fprintf oc "rec admit bytes=%d\n%send\n" (String.length body) body;
      Out_channel.output_string oc "rec admit bytes=4\nxyz\nend\n");
  let j3, r2 = open_ok path in
  (match r2.Journal.corrupt with
  | Some (Error.Journal_corrupt _) -> ()
  | _ -> Alcotest.fail "unparseable body not reported as corruption");
  Alcotest.(check (list int)) "prefix before the bad body replays" [ 7 ]
    (replay_ids r2);
  Journal.close j3

(* --- Scheduler -------------------------------------------------------- *)

let digest_of (r : Protocol.request) = r.Protocol.workload

let with_scheduler ?(workers = 1) ?(queue_max = 8) ?(client_max = 8) ~compute f =
  let s = Scheduler.create ~workers ~queue_max ~client_max ~compute () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) (fun () -> f s)

let submit s req =
  Scheduler.submit s ~client:"t" ~priority:Protocol.Normal
    ~digest:(digest_of req) req

let test_scheduler_runs_and_coalesces () =
  let computed = Atomic.make 0 in
  let compute (r : Protocol.request) =
    Atomic.incr computed;
    "payload:" ^ r.Protocol.workload
  in
  with_scheduler ~workers:2 ~compute @@ fun s ->
  let a = Protocol.request "a" and b = Protocol.request "b" in
  let id_a =
    match submit s a with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "first submit not accepted"
  in
  (match submit s b with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "distinct digest not accepted");
  (* duplicate of a queued/running/finished job always coalesces *)
  (match submit s a with
  | Scheduler.Coalesced info ->
      Alcotest.(check int) "same job" id_a info.Scheduler.id
  | _ -> Alcotest.fail "duplicate did not coalesce");
  (match Scheduler.wait_job ~timeout_s:10.0 s id_a with
  | Some { Scheduler.state = Scheduler.Done payload; _ } ->
      Alcotest.(check string) "payload" "payload:a" payload
  | _ -> Alcotest.fail "job a never finished");
  Alcotest.(check bool) "drains idle" true (Scheduler.await_idle ~timeout_s:10.0 s);
  (* late duplicate after completion still coalesces (served warm) *)
  (match submit s a with
  | Scheduler.Coalesced info ->
      Alcotest.(check int) "same finished job" id_a info.Scheduler.id;
      Alcotest.(check int) "submit count" 3 info.Scheduler.submits
  | _ -> Alcotest.fail "late duplicate did not coalesce");
  Alcotest.(check int) "each digest computed once" 2 (Atomic.get computed);
  Scheduler.with_registry s (fun m ->
      let v name = Metrics.value (Metrics.counter m name) in
      Alcotest.(check int) "submitted" 4 (v "serve.submitted");
      Alcotest.(check int) "coalesced" 2 (v "serve.coalesced");
      Alcotest.(check int) "completed" 2 (v "serve.completed");
      Alcotest.(check int) "failed" 0 (v "serve.failed"))

let test_scheduler_backpressure () =
  (* one worker stuck on a slow job, a depth-2 queue: the burst must be
     rejected with a typed, hinted Overloaded — and nothing admitted
     may be lost *)
  let gate = Atomic.make false in
  let compute (r : Protocol.request) =
    while not (Atomic.get gate) do
      Unix.sleepf 0.002
    done;
    r.Protocol.workload
  in
  with_scheduler ~workers:1 ~queue_max:2 ~compute @@ fun s ->
  let accepted = ref [] in
  let rejected = ref 0 in
  (* park the first job on the worker before bursting, so the depth-2
     queue is empty when the burst arrives and the count is exact *)
  (match submit s (Protocol.request "job0") with
  | Scheduler.Accepted info -> accepted := [ info.Scheduler.id ]
  | _ -> Alcotest.fail "first job not accepted");
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Scheduler.queue_depth s > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "worker holds job0" 1 (Scheduler.busy s);
  for i = 1 to 5 do
    match submit s (Protocol.request (Printf.sprintf "job%d" i)) with
    | Scheduler.Accepted info -> accepted := info.Scheduler.id :: !accepted
    | Scheduler.Rejected (Protocol.Overloaded { retry_after_ms; limit; _ }) ->
        incr rejected;
        Alcotest.(check bool) "hint present" true (retry_after_ms >= 100);
        Alcotest.(check int) "limit reported" 2 limit
    | _ -> Alcotest.fail "unexpected admission verdict"
  done;
  (* worker holds one job; the queue holds two more *)
  Alcotest.(check int) "admitted" 3 (List.length !accepted);
  Alcotest.(check int) "shed" 3 !rejected;
  Atomic.set gate true;
  List.iter
    (fun id ->
      match Scheduler.wait_job ~timeout_s:10.0 s id with
      | Some { Scheduler.state = Scheduler.Done _; _ } -> ()
      | _ -> Alcotest.failf "admitted job %d was dropped" id)
    !accepted

let test_scheduler_drain_rejects () =
  with_scheduler ~compute:(fun _ -> "x") @@ fun s ->
  Scheduler.set_draining s;
  match submit s (Protocol.request "late") with
  | Scheduler.Rejected Protocol.Draining -> ()
  | _ -> Alcotest.fail "submit during drain not rejected as Draining"

(* Satellite regression: a worker whose compute raises — here tripping
   over an Inject-corrupted plan artifact — must fail its own job with
   the message and backtrace attached, and the pool must keep serving
   the jobs behind it. *)
let two_phase_program () =
  B.program ~name:"twophase" @@ fun b ->
  B.func b "int_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 () ] ];
  B.func b "fp_phase"
    [ B.loop b (P.Const 60) [ B.straight b ~length:40 ~frac_fp_alu:0.35 () ] ];
  B.func b "main"
    [ B.loop b (P.Const 15) [ B.call b "int_phase"; B.call b "fp_phase" ] ];
  "main"

let test_scheduler_fault_isolation () =
  let train = { P.input_name = "t"; scale = 1; divergence = 0.0; seed = 33 } in
  let plan, _ =
    Analyze.analyze ~program:(two_phase_program ()) ~train ~context:Context.lf
      ~threshold_insts:1_500 ~profile_insts:80_000 ~trace_insts:40_000 ()
  in
  let path = Filename.temp_file "mcd_serve_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Plan_io.save plan ~path;
  let rng = Rng.split (Rng.create 11) ~label:"serve" in
  Inject.corrupt_file Inject.Truncate ~rng ~path;
  let compute (r : Protocol.request) =
    if r.Protocol.workload = "boom" then
      ignore (Plan_io.load ~path ~tree:plan.Plan.tree : Plan.t);
    "survived"
  in
  with_scheduler ~compute @@ fun s ->
  let id_boom =
    match submit s (Protocol.request "boom") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "boom not accepted"
  in
  let id_ok =
    match submit s (Protocol.request "after") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "follow-up not accepted"
  in
  (match Scheduler.wait_job ~timeout_s:10.0 s id_boom with
  | Some { Scheduler.state = Scheduler.Failed { message; backtrace }; _ } ->
      Alcotest.(check bool) "carries the diagnostic" true (message <> "");
      Alcotest.(check bool) "carries a backtrace slot" true
        (String.length backtrace >= 0)
  | Some { Scheduler.state = Scheduler.Done _; _ } ->
      Alcotest.fail "corrupted plan load did not fail"
  | _ -> Alcotest.fail "boom job never turned terminal");
  (* the queue behind the fault keeps draining *)
  (match Scheduler.wait_job ~timeout_s:10.0 s id_ok with
  | Some { Scheduler.state = Scheduler.Done payload; _ } ->
      Alcotest.(check string) "pool survived" "survived" payload
  | _ -> Alcotest.fail "job behind the fault was wedged");
  Scheduler.with_registry s (fun m ->
      Alcotest.(check int) "failure counted" 1
        (Metrics.value (Metrics.counter m "serve.failed")))

let test_scheduler_deadline_watchdog () =
  let compute (r : Protocol.request) =
    if r.Protocol.workload = "slow" then Unix.sleepf 0.6;
    "done:" ^ r.Protocol.workload
  in
  let s = Scheduler.create ~workers:1 ~deadline_s:0.05 ~compute () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) @@ fun () ->
  let id_slow =
    match submit s (Protocol.request "slow") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "slow job not accepted"
  in
  (match Scheduler.wait_job ~timeout_s:10.0 s id_slow with
  | Some { Scheduler.state = Scheduler.Failed { message; _ }; timed_out; _ } ->
      Alcotest.(check string) "typed deadline message"
        (Error.to_string
           (Error.Deadline_exceeded { id = id_slow; deadline_ms = 50 }))
        message;
      Alcotest.(check bool) "flagged timed out" true timed_out
  | Some { Scheduler.state = Scheduler.Done _; _ } ->
      Alcotest.fail "overdue job served anyway"
  | _ -> Alcotest.fail "overdue job never turned terminal");
  (* the watchdog fails the job, never the pool: a replacement worker
     serves the next job while the stuck compute is still sleeping *)
  let id_ok =
    match submit s (Protocol.request "after") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "follow-up not accepted"
  in
  (match Scheduler.wait_job ~timeout_s:10.0 s id_ok with
  | Some { Scheduler.state = Scheduler.Done payload; _ } ->
      Alcotest.(check string) "replacement worker serves" "done:after" payload
  | _ -> Alcotest.fail "job behind the deadline casualty was wedged");
  Scheduler.with_registry s (fun m ->
      let v name = Metrics.value (Metrics.counter m name) in
      Alcotest.(check int) "deadline counted" 1 (v "serve.deadline_exceeded");
      Alcotest.(check int) "counted as a failure too" 1 (v "serve.failed"))

let test_scheduler_retry_after_cap () =
  let compute _ =
    Unix.sleepf 0.25;
    "x"
  in
  let s = Scheduler.create ~workers:1 ~retry_after_cap_ms:120 ~compute () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) @@ fun () ->
  Alcotest.(check int) "floor before any sample" 100 (Scheduler.retry_after_ms s);
  let id =
    match submit s (Protocol.request "slow-sample") with
    | Scheduler.Accepted info -> info.Scheduler.id
    | _ -> Alcotest.fail "job not accepted"
  in
  (match Scheduler.wait_job ~timeout_s:10.0 s id with
  | Some { Scheduler.state = Scheduler.Done _; _ } -> ()
  | _ -> Alcotest.fail "sample job never finished");
  (* the EWMA now sits near 250 ms: the advertised hint must clamp to
     the configured ceiling instead of telling clients to back off for
     the full observed latency *)
  Alcotest.(check int) "hint clamped to the cap" 120
    (Scheduler.retry_after_ms s)

let test_scheduler_restore_replays () =
  let computed = Atomic.make 0 in
  let compute (r : Protocol.request) =
    Atomic.incr computed;
    "payload:" ^ r.Protocol.workload
  in
  (* a depth-1 queue with two replayed entries: restore must force both
     past the admission bound, preserve their journaled ids, and keep
     fresh ids from colliding with replayed ones *)
  let s = Scheduler.create ~workers:1 ~queue_max:1 ~compute () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) @@ fun () ->
  let entries =
    [
      { (journal_entry ~id:4 "a") with Journal.priority = Protocol.Normal };
      { (journal_entry ~id:9 "b") with Journal.priority = Protocol.Normal };
    ]
  in
  Alcotest.(check int) "both entries restored" 2
    (Scheduler.restore s ~next_id:10 entries);
  List.iter
    (fun id ->
      match Scheduler.wait_job ~timeout_s:10.0 s id with
      | Some { Scheduler.state = Scheduler.Done _; _ } -> ()
      | _ -> Alcotest.failf "replayed job %d was not served" id)
    [ 4; 9 ];
  (match submit s (Protocol.request "fresh") with
  | Scheduler.Accepted info ->
      Alcotest.(check bool) "fresh id past the replayed ones" true
        (info.Scheduler.id > 9)
  | _ -> Alcotest.fail "fresh submit not accepted");
  Scheduler.with_registry s (fun m ->
      Alcotest.(check int) "replays counted" 2
        (Metrics.value (Metrics.counter m "serve.replayed")))

let test_scheduler_restore_floors_ids () =
  let compute (r : Protocol.request) = "payload:" ^ r.Protocol.workload in
  with_scheduler ~compute @@ fun s ->
  (* every pre-crash job completed, so nothing replays — but the
     journal's high-water mark must still floor fresh allocations, or a
     client polling a pre-crash id would be handed a new job's state *)
  Alcotest.(check int) "nothing to restore" 0
    (Scheduler.restore s ~next_id:42 []);
  match submit s (Protocol.request "fresh") with
  | Scheduler.Accepted info ->
      Alcotest.(check int) "fresh id starts at the journal high-water" 42
        info.Scheduler.id
  | _ -> Alcotest.fail "fresh submit not accepted"

(* --- client retry connection management -------------------------------- *)

let test_retry_connection_management () =
  (* A scripted server on a real Unix socket, counting accepted
     connections: a job-level Overloaded rejection must be retried on
     the SAME connection (the framing is intact, only the verdict was
     transient), while a transport cut must open a fresh one. *)
  let module Client = Mcd_serve.Client in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-retry-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove socket with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 8;
  let accepts = Atomic.make 0 in
  let payload = "the-bytes" in
  let send oc reply =
    output_string oc (Protocol.render_reply reply ^ "\n");
    flush oc
  in
  let greeting oc =
    send oc
      (Protocol.Ready { version = Protocol.version; workers = 1; queue_max = 8 })
  in
  (* Serve one connection to completion; with [reject_first] the first
     submit is shed Overloaded and the retry is expected on this same
     connection. *)
  let serve_full ic oc ~reject_first =
    let shed_already = ref (not reject_first) in
    let rec loop () =
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | line ->
          (match Protocol.parse_command line with
          | Ok (Protocol.Submit _, _) ->
              if not !shed_already then begin
                shed_already := true;
                send oc
                  (Protocol.Rejected
                     (Protocol.Overloaded
                        { queue_depth = 8; limit = 8; retry_after_ms = 100 }))
              end
              else
                send oc
                  (Protocol.Queued_reply
                     { id = 1; digest = "d"; coalesced = false })
          | Ok (Protocol.Wait _, _) ->
              send oc (Protocol.Status_reply { id = 1; state = Protocol.Done })
          | Ok (Protocol.Result _, _) ->
              send oc
                (Protocol.Payload { id = 1; bytes = String.length payload });
              output_string oc payload;
              output_string oc "end\n";
              flush oc
          | Ok (Protocol.Quit, _) -> raise Exit
          | Ok _ | Error _ -> ());
          loop ()
    in
    try loop () with Exit -> ()
  in
  let accept_channels () =
    let fd, _ = Unix.accept listen_fd in
    Atomic.incr accepts;
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let server =
    Domain.spawn (fun () ->
        (* connection 1: shed the first submit, serve the retry *)
        let fd1, ic1, oc1 = accept_channels () in
        greeting oc1;
        serve_full ic1 oc1 ~reject_first:true;
        (try Unix.close fd1 with Unix.Unix_error (_, _, _) -> ());
        (* connection 2: die right after reading the submit *)
        let fd2, ic2, oc2 = accept_channels () in
        greeting oc2;
        (match input_line ic2 with
        | (_ : string) -> ()
        | exception (End_of_file | Sys_error _) -> ());
        (try Unix.close fd2 with Unix.Unix_error (_, _, _) -> ());
        (* connection 3: the reconnect — serve in full *)
        let fd3, ic3, oc3 = accept_channels () in
        greeting oc3;
        serve_full ic3 oc3 ~reject_first:false;
        try Unix.close fd3 with Unix.Unix_error (_, _, _) -> ())
  in
  let policy =
    {
      Client.max_attempts = 4;
      base_delay_ms = 1;
      max_delay_ms = 2;
      seed = Some 11;
      sleep = (fun _ -> ());
    }
  in
  let req = Protocol.request "adpcm decode" in
  (match Client.run_with_retry ~policy ~socket req with
  | Ok p -> Alcotest.(check string) "payload" payload p
  | Error e -> Alcotest.failf "retryable run failed: %s" (Error.to_string e));
  Alcotest.(check int) "job-level retry reused the connection" 1
    (Atomic.get accepts);
  (match Client.run_with_retry ~policy ~socket req with
  | Ok p -> Alcotest.(check string) "payload after reconnect" payload p
  | Error e -> Alcotest.failf "reconnect run failed: %s" (Error.to_string e));
  Alcotest.(check int) "transport cut forced exactly one reconnect" 3
    (Atomic.get accepts);
  Domain.join server;
  Unix.close listen_fd;
  try Sys.remove socket with Sys_error _ -> ()

let suite =
  [
    ("protocol command roundtrip", `Quick, test_command_roundtrip);
    ("protocol reply roundtrip", `Quick, test_reply_roundtrip);
    ("protocol rejects garbage", `Quick, test_parse_rejects_garbage);
    ("protocol seq roundtrip", `Quick, test_seq_roundtrip);
    qcheck prop_frames_roundtrip;
    ("frames oversized rejected", `Quick, test_frames_oversized_rejected);
    ("request digests normalize", `Quick, test_request_normalization_digests);
    ("reject exit codes", `Quick, test_error_of_reject_exit_codes);
    ("jobq priority fifo", `Quick, test_jobq_priority_fifo);
    ("jobq bounds", `Quick, test_jobq_bounds);
    ("jobq level clamped", `Quick, test_jobq_level_clamped);
    ("jobq rejects bad bounds", `Quick, test_jobq_rejects_bad_bounds);
    ("jobq force bypasses bounds", `Quick, test_jobq_force_bypasses_bounds);
    ( "jobq fairness under pipelining",
      `Quick,
      test_jobq_fairness_under_pipelining );
    ("journal entry roundtrip", `Quick, test_journal_entry_roundtrip);
    ( "journal recovery and compaction",
      `Quick,
      test_journal_recovery_and_compaction );
    ("journal torn tail dropped", `Quick, test_journal_torn_tail_dropped);
    ( "journal mid-file corruption typed",
      `Quick,
      test_journal_midfile_corruption_typed );
    ("scheduler runs and coalesces", `Quick, test_scheduler_runs_and_coalesces);
    ("scheduler backpressure", `Quick, test_scheduler_backpressure);
    ("scheduler drain rejects", `Quick, test_scheduler_drain_rejects);
    ("scheduler fault isolation", `Quick, test_scheduler_fault_isolation);
    ("scheduler deadline watchdog", `Quick, test_scheduler_deadline_watchdog);
    ("scheduler retry-after cap", `Quick, test_scheduler_retry_after_cap);
    ("scheduler restore replays", `Quick, test_scheduler_restore_replays);
    ("scheduler restore floors ids", `Quick, test_scheduler_restore_floors_ids);
    ( "retry reuses connection, reconnects on cut",
      `Quick,
      test_retry_connection_management );
  ]
