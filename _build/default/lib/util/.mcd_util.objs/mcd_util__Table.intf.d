lib/util/table.mli:
