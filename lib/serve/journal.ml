module Error = Mcd_robust.Error

type entry = {
  id : int;
  client : string;
  priority : Protocol.priority;
  digest : string;
  request : Protocol.request;
}

type recovery = {
  replay : entry list;
  completed : int;
  failed : int;
  next_id : int;
  torn : bool;
  corrupt : Mcd_robust.Error.t option;
}

type t = {
  path : string;
  fsync : bool;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable admitted : int;
  mutable finished : int;
  replayed : int;
  recovered_torn : int;
  recovered_corrupt : int;
}

let path t = t.path

(* --- record bodies ------------------------------------------------------ *)

let ( let* ) = Result.bind

let kv k v = Printf.sprintf "%s=%s" k (Protocol.encode_value v)
let kvi k v = Printf.sprintf "%s=%d" k v

let render_entry (e : entry) =
  String.concat " "
    [
      kvi "id" e.id;
      kv "client" e.client;
      kv "pri" (Protocol.priority_name e.priority);
      kv "digest" e.digest;
      kv "workload" e.request.Protocol.workload;
      kv "policy" (Protocol.policy_name e.request.Protocol.policy);
      kv "context" e.request.Protocol.context;
      kv "slowdown" (Mcd_cache.Key.float_param e.request.Protocol.slowdown_pct);
    ]

let parse_entry line =
  let fs = Protocol.fields (Protocol.split line) in
  let* id = Protocol.int_field "id" fs in
  let* client = Protocol.field "client" fs in
  let* pri = Protocol.field "pri" fs in
  let* priority =
    match Protocol.priority_of_name pri with
    | Some p -> Ok p
    | None -> Result.Error (Printf.sprintf "unknown priority %S" pri)
  in
  let* digest = Protocol.field "digest" fs in
  let* workload = Protocol.field "workload" fs in
  let* pol = Protocol.field "policy" fs in
  let* policy =
    match Protocol.policy_of_name pol with
    | Some p -> Ok p
    | None -> Result.Error (Printf.sprintf "unknown policy %S" pol)
  in
  let* context = Protocol.field "context" fs in
  let* slowdown_pct = Protocol.float_field "slowdown" fs in
  Ok
    {
      id;
      client;
      priority;
      digest;
      request = { Protocol.workload; policy; context; slowdown_pct };
    }

(* --- record framing ----------------------------------------------------- *)

let render_record kind body =
  Printf.sprintf "rec %s bytes=%d\n%send\n" kind (String.length body) body

type raw = { kind : string; body : string }

let parse_header line =
  match String.split_on_char ' ' line with
  | [ "rec"; kind; bytes ] -> (
      match String.split_on_char '=' bytes with
      | [ "bytes"; v ] -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> Ok (kind, n)
          | _ -> Result.Error (Printf.sprintf "bad record size %S" v))
      | _ -> Result.Error (Printf.sprintf "bad record header %S" line))
  | _ -> Result.Error (Printf.sprintf "bad record header %S" line)

(* Scan the raw log. The good prefix always wins: an incomplete record
   at the tail is a torn append (expected across a crash — dropped
   silently into [torn]); a complete-but-unparseable record is
   corruption (everything after it is dropped, reported typed). *)
let parse_records content =
  let n = String.length content in
  let rec go i acc =
    if i >= n then (List.rev acc, false, None)
    else
      match String.index_from_opt content i '\n' with
      | None -> (List.rev acc, true, None)
      | Some e -> (
          let header = String.sub content i (e - i) in
          match parse_header header with
          | Result.Error reason -> (List.rev acc, false, Some reason)
          | Ok (kind, len) ->
              let start = e + 1 in
              if start + len + 4 > n then (List.rev acc, true, None)
              else if String.sub content (start + len) 4 <> "end\n" then
                (List.rev acc, false, Some "missing end marker")
              else
                go (start + len + 4)
                  ({ kind; body = String.sub content start len } :: acc))
  in
  go 0 []

(* A record body is one newline-terminated line. *)
let body_line body =
  match String.index_opt body '\n' with
  | Some i when i = String.length body - 1 -> Ok (String.sub body 0 i)
  | _ -> Result.Error "record body is not one line"

let id_of_body body =
  let* line = body_line body in
  Protocol.int_field "id" (Protocol.fields (Protocol.split line))

(* --- recovery ----------------------------------------------------------- *)

let recover_content ~path content =
  let raws, torn, corrupt_reason = parse_records content in
  let admits = ref [] in
  let terminal = Hashtbl.create 16 in
  let completed = ref 0 and failed = ref 0 in
  let id_floor = ref 1 in
  let bad = ref None in
  let note_bad reason = if !bad = None then bad := Some reason in
  List.iter
    (fun { kind; body } ->
      match kind with
      | "admit" -> (
          match
            let* line = body_line body in
            parse_entry line
          with
          | Ok e ->
              if not (List.exists (fun x -> x.id = e.id) !admits) then
                admits := e :: !admits
          | Result.Error reason -> note_bad reason)
      | "done" -> (
          match id_of_body body with
          | Ok id ->
              if not (Hashtbl.mem terminal id) then begin
                Hashtbl.replace terminal id ();
                incr completed
              end
          | Result.Error reason -> note_bad reason)
      | "fail" -> (
          match id_of_body body with
          | Ok id ->
              if not (Hashtbl.mem terminal id) then begin
                Hashtbl.replace terminal id ();
                incr failed
              end
          | Result.Error reason -> note_bad reason)
      | "next" -> (
          (* compaction drops completed admits, so the high-water id is
             carried explicitly: without it a restart after a fully-
             drained session would hand out ids its clients already hold *)
          match id_of_body body with
          | Ok id -> id_floor := max !id_floor id
          | Result.Error reason -> note_bad reason)
      | kind -> note_bad (Printf.sprintf "unknown record kind %S" kind))
    raws;
  let admits = List.rev !admits in
  let next_id =
    List.fold_left (fun acc (e : entry) -> max acc (e.id + 1)) !id_floor admits
  in
  let corrupt =
    match (corrupt_reason, !bad) with
    | Some reason, _ | None, Some reason ->
        Some (Error.Journal_corrupt { path; reason })
    | None, None -> None
  in
  {
    replay = List.filter (fun e -> not (Hashtbl.mem terminal e.id)) admits;
    completed = !completed;
    failed = !failed;
    next_id;
    torn;
    corrupt;
  }

(* --- appends ------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let append t kind body =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
          match
            write_all fd (render_record kind (body ^ "\n"));
            if t.fsync && kind = "admit" then Unix.fsync fd
          with
          | () ->
              if kind = "admit" then t.admitted <- t.admitted + 1
              else t.finished <- t.finished + 1
          | exception Unix.Unix_error (e, _, _) ->
              (* an unwritable journal degrades to journal-less serving
                 (replay protection lost, answers still correct), the
                 same never-fail-the-run posture as the result store *)
              Printf.eprintf "mcd-dvfs: %s\n%!"
                (Error.to_string
                   (Error.Io_error
                      { path = t.path; message = Unix.error_message e }));
              (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
              t.fd <- None))

let admit t entry = append t "admit" (render_entry entry)
let mark_done t ~id = append t "done" (kvi "id" id)

let mark_failed t ~id ~msg =
  append t "fail" (String.concat " " [ kvi "id" id; kv "msg" msg ])

(* --- open / compact ----------------------------------------------------- *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Ok content
  | exception Sys_error message -> Result.Error message

let tmp_seq = Atomic.make 0

let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_journal ?(fsync = true) ~path () =
  ensure_dir (Filename.dirname path);
  let io message = Result.Error (Error.Io_error { path; message }) in
  let* content =
    if Sys.file_exists path then
      match read_file path with
      | Ok c -> Ok c
      | Result.Error message -> io message
    else Ok ""
  in
  let recovery = recover_content ~path content in
  (* Compact: the surviving state is the incomplete admits plus the
     high-water id (a [next] record — completed admits are dropped, so
     their ids must not be reissued), rewritten atomically — tmp+rename,
     the Cache.Store discipline — and appended to from there. *)
  let compacted =
    String.concat ""
      (render_record "next" (kvi "id" recovery.next_id ^ "\n")
      :: List.map
           (fun e -> render_record "admit" (render_entry e ^ "\n"))
           recovery.replay)
  in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc compacted);
    Sys.rename tmp path
  with
  | exception Sys_error message ->
      (try Sys.remove tmp with Sys_error _ -> ());
      io message
  | () -> (
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
      | exception Unix.Unix_error (e, _, _) -> io (Unix.error_message e)
      | fd ->
          if fsync then (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
          Ok
            ( {
                path;
                fsync;
                mutex = Mutex.create ();
                fd = Some fd;
                admitted = 0;
                finished = 0;
                replayed = List.length recovery.replay;
                recovered_torn = (if recovery.torn then 1 else 0);
                recovered_corrupt = (if recovery.corrupt <> None then 1 else 0);
              },
              recovery ))

type stats = {
  admitted : int;
  finished : int;
  replayed : int;
  recovered_torn : int;
  recovered_corrupt : int;
}

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      admitted = t.admitted;
      finished = t.finished;
      replayed = t.replayed;
      recovered_torn = t.recovered_torn;
      recovered_corrupt = t.recovered_corrupt;
    }
  in
  Mutex.unlock t.mutex;
  s

let close t =
  Mutex.lock t.mutex;
  (match t.fd with
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  | None -> ());
  Mutex.unlock t.mutex
