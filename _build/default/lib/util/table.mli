(** Aligned text tables for benchmark and experiment output.

    The benchmark harness prints each paper table/figure as an aligned
    textual table; this module handles column sizing and alignment. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** Render an aligned table with a separator line under the header.
    [align] gives per-column alignment (default: first column left,
    remaining columns right); missing entries default to [Right]. Rows
    shorter than the header are padded with empty cells. *)

val fmt_f1 : float -> string
(** Format a float with one decimal, e.g. slowdown percentages. *)

val fmt_f2 : float -> string
(** Two decimals. *)

val fmt_pct : float -> string
(** One decimal with a trailing [%]. *)
