let fmax_mhz = 1000
let fmin_mhz = 250
let vmax = 1.20
let vmin = 0.65
let step_mhz = 50
let num_steps = ((fmax_mhz - fmin_mhz) / step_mhz) + 1
let steps = Array.init num_steps (fun i -> fmin_mhz + (i * step_mhz))

let clamp mhz =
  let mhz = max fmin_mhz (min fmax_mhz mhz) in
  let snapped = fmin_mhz + (step_mhz * ((mhz - fmin_mhz + (step_mhz / 2)) / step_mhz)) in
  max fmin_mhz (min fmax_mhz snapped)

let is_step mhz =
  mhz >= fmin_mhz && mhz <= fmax_mhz && (mhz - fmin_mhz) mod step_mhz = 0

let index_of mhz =
  if mhz < fmin_mhz || mhz > fmax_mhz || (mhz - fmin_mhz) mod step_mhz <> 0 then
    invalid_arg (Printf.sprintf "Freq.index_of: %d MHz is not a step" mhz);
  (mhz - fmin_mhz) / step_mhz

let of_index i =
  if i < 0 || i >= num_steps then
    invalid_arg (Printf.sprintf "Freq.of_index: %d" i);
  steps.(i)

let voltage_f fmhz =
  let fmhz = Float.max (float_of_int fmin_mhz) (Float.min (float_of_int fmax_mhz) fmhz) in
  vmin
  +. (vmax -. vmin)
     *. ((fmhz -. float_of_int fmin_mhz)
        /. float_of_int (fmax_mhz - fmin_mhz))

let voltage mhz = voltage_f (float_of_int mhz)

let period_ps fmhz =
  assert (fmhz > 0.0);
  int_of_float (Float.round (1_000_000.0 /. fmhz))

let energy_scale fmhz =
  let v = voltage_f fmhz in
  v *. v /. (vmax *. vmax)
