module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Metrics = Mcd_power.Metrics
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Analyze = Mcd_core.Analyze
module Editor = Mcd_core.Editor
module Freq = Mcd_domains.Freq
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats

let default_sync_workloads =
  List.map Suite.by_name
    [ "adpcm decode"; "gsm encode"; "jpeg compress"; "mcf"; "applu"; "equake" ]

let sync_penalty ?(workloads = default_sync_workloads) () =
  let header = [ "benchmark"; "perf penalty"; "energy penalty" ] in
  let results =
    Runner.map_workloads
      (fun (w : Workload.t) ->
        let mcd = Runner.baseline w in
        let single = Runner.single_clock w ~mhz:Freq.fmax_mhz in
        ( w.Workload.name,
          Metrics.perf_degradation_pct ~baseline:single mcd,
          -.Metrics.energy_savings_pct ~baseline:single mcd ))
      workloads
  in
  let body =
    List.map
      (fun (n, p, e) -> [ n; Table.fmt_pct p; Table.fmt_pct e ])
      results
  in
  let avg =
    [
      "AVERAGE";
      Table.fmt_pct (Stats.mean (List.map (fun (_, p, _) -> p) results));
      Table.fmt_pct (Stats.mean (List.map (fun (_, _, e) -> e) results));
    ]
  in
  "Ablation: inherent MCD synchronization penalty vs single-clock core\n"
  ^ Table.render ~header ~rows:(body @ [ avg ]) ()

let narrow_config =
  {
    Config.alpha21264_like with
    Config.fetch_width = 2;
    dispatch_width = 2;
    retire_width = 4;
    rob_size = 32;
    iq_int_size = 10;
    iq_fp_size = 8;
    lsq_size = 24;
    int_alus = 2;
    fp_alus = 1;
    issue_per_domain = 3;
  }

let default_narrow_workloads =
  List.map Suite.by_name [ "adpcm decode"; "gsm encode"; "jpeg compress"; "mcf" ]

let narrow_core ?(workloads = default_narrow_workloads) () =
  let header =
    [ "benchmark"; "core"; "degradation"; "energy savings"; "ExD" ]
  in
  let rows_for (w : Workload.t) config label =
    let baseline =
      Pipeline.run ~config ~warmup_insts:w.Workload.ref_offset
        ~program:w.Workload.program ~input:w.Workload.reference
        ~max_insts:w.Workload.ref_window ()
    in
    let plan, _ =
      Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
        ~context:Context.lf ~trace_insts:(min w.Workload.train_window 120_000)
        ~config ()
    in
    let edited = Mcd_core.Editor.edit plan in
    let run =
      Pipeline.run ~controller:edited.Mcd_core.Editor.controller ~config
        ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
        ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()
    in
    let c = Runner.compare_runs ~baseline run in
    [
      w.Workload.name;
      label;
      Table.fmt_pct c.Runner.degradation_pct;
      Table.fmt_pct c.Runner.savings_pct;
      Table.fmt_pct c.Runner.ed_improvement_pct;
    ]
  in
  let body =
    List.concat
      (Runner.map_workloads
         (fun w ->
           [
             rows_for w Config.alpha21264_like "4-wide (Table 1)";
             rows_for w narrow_config "2-wide narrow";
           ])
         workloads)
  in
  "Ablation: profile-based DVFS on a narrow core (train and run on the \
   same microarchitecture)\n"
  ^ Table.render ~header ~rows:body ()

let run_plan (w : Workload.t) plan =
  let edited = Editor.edit plan in
  Pipeline.run ~controller:edited.Editor.controller
    ~config:Config.alpha21264_like ~program:w.Workload.program
    ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()

let shaker_passes ?(workload = Suite.by_name "gsm encode")
    ?(passes = [ 1; 2; 6; 24 ]) () =
  let w = workload in
  let baseline = Runner.baseline w in
  let header =
    [ "shaker passes"; "degradation"; "energy savings"; "ExD improvement" ]
  in
  let body =
    Runner.par_map
      (fun p ->
        let plan, _ =
          Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
            ~context:Context.lf ~shaker_passes:p
            ~trace_insts:(min w.Workload.train_window 120_000) ()
        in
        let run = run_plan w plan in
        let c = Runner.compare_runs ~baseline run in
        [
          string_of_int p;
          Table.fmt_pct c.Runner.degradation_pct;
          Table.fmt_pct c.Runner.savings_pct;
          Table.fmt_pct c.Runner.ed_improvement_pct;
        ])
      passes
  in
  Printf.sprintf
    "Ablation: shaker pass budget (benchmark: %s)\n%s" w.Workload.name
    (Table.render ~header ~rows:body ())

let long_threshold ?(workload = Suite.by_name "epic encode")
    ?(thresholds = [ 2_000; 10_000; 50_000 ]) () =
  let w = workload in
  let baseline = Runner.baseline w in
  let header =
    [
      "threshold"; "long nodes"; "reconfigs"; "degradation";
      "energy savings"; "ExD improvement";
    ]
  in
  let body =
    Runner.par_map
      (fun threshold ->
        let plan, stats =
          Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
            ~context:Context.lf ~threshold_insts:threshold
            ~trace_insts:(min w.Workload.train_window 120_000) ()
        in
        let run = run_plan w plan in
        let c = Runner.compare_runs ~baseline run in
        [
          string_of_int threshold;
          string_of_int stats.Analyze.long_nodes;
          string_of_int run.Metrics.reconfigurations;
          Table.fmt_pct c.Runner.degradation_pct;
          Table.fmt_pct c.Runner.savings_pct;
          Table.fmt_pct c.Runner.ed_improvement_pct;
        ])
      thresholds
  in
  Printf.sprintf
    "Ablation: long-running threshold (benchmark: %s)\n%s" w.Workload.name
    (Table.render ~header ~rows:body ())
