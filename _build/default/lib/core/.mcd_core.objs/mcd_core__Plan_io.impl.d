lib/core/plan_io.ml: Array Char Fun Hashtbl Int64 List Mcd_domains Mcd_profiling Mcd_util Path_model Plan Printf String
