(** Simulated time in integer picoseconds.

    All clock arithmetic in the simulator is exact integer arithmetic on
    picoseconds: a 1 GHz clock has a 1000 ps period, the synchronization
    window of the MCD model is 300 ps, and the full voltage transition of
    55 us is 55_000_000 ps. OCaml's 63-bit integers overflow only after
    about 53 days of simulated time, far beyond any run. *)

type t = int
(** Picoseconds. Kept concrete for arithmetic convenience; use the
    constructors below rather than raw literals. *)

val zero : t

val ps : int -> t
val ns : int -> t
val us : int -> t

val of_ns_float : float -> t
(** Round a nanosecond quantity to picoseconds. *)

val to_ns : t -> float
val to_us : t -> float
val to_s : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
