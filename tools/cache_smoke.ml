(* Cold-vs-warm cache determinism smoke test for the @verify alias.

   Exercises the persistent result store end to end on one small
   MediaBench workload (adpcm decode), covering every cached payload
   kind — baseline run, oracle analysis, off-line run, profiling plan,
   profiled run:

   1. cold pass into a fresh temp store: objects get written;
   2. warm pass with the in-memory memo tables cleared: every result
      must come back byte-identical and from disk (hits, no new
      stores);
   3. corruption pass: truncate every object on disk, clear the memos
      again, and require the same bytes anyway — corruption must be
      detected (corrupt counter rises), degrade to recompute, and heal
      the objects by overwriting;
   4. healed pass: one more warm run must see no further corruption.

   Exits 0 on success, 1 with a message on the first violation. *)

module Store = Mcd_cache.Store
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_power.Metrics
module Plan_io = Mcd_core.Plan_io
module Suite = Mcd_workloads.Suite

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "cache_smoke: FAIL %s\n%!" msg
      end)
    fmt

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let rec object_files path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.to_list (Sys.readdir path)
      |> List.concat_map (fun e -> object_files (Filename.concat path e))
  | _ -> [ path ]
  | exception Unix.Unix_error _ -> []

(* One rendering of everything the cache can serve for this workload:
   three run payloads and the plan text. Byte-compared across passes. *)
let render () =
  let w = Suite.by_name "adpcm decode" in
  let context = Mcd_profiling.Context.lf in
  let baseline = Runner.baseline w in
  let offline = Runner.offline_run w in
  let profiled = Runner.profile_run w ~context ~train:`Train in
  String.concat "\n---\n"
    [
      Metrics.encode baseline;
      Metrics.encode offline;
      Metrics.encode profiled.Runner.run;
      Plan_io.to_string (Lazy.force profiled.Runner.plan);
    ]

let () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-cache-smoke.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let store = Store.create ~dir in
  Store.set_default (Some store);

  let cold = render () in
  let s0 = Store.stats store in
  check (s0.Store.stores >= 3) "cold pass stored only %d objects"
    s0.Store.stores;

  Runner.clear_caches ();
  let warm = render () in
  let s1 = Store.stats store in
  check (String.equal cold warm) "warm output differs from cold";
  check
    (s1.Store.hits - s0.Store.hits >= 3)
    "warm pass hit only %d objects"
    (s1.Store.hits - s0.Store.hits);
  check
    (s1.Store.stores = s0.Store.stores)
    "warm pass wrote %d new objects"
    (s1.Store.stores - s0.Store.stores);

  let objects = object_files (Filename.concat dir "objects") in
  check (objects <> []) "no objects on disk after the cold pass";
  List.iter
    (fun path ->
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len / 2))
    objects;

  Runner.clear_caches ();
  let corrupted = render () in
  let s2 = Store.stats store in
  check (String.equal cold corrupted)
    "output after corruption differs from cold";
  check
    (s2.Store.corrupt - s1.Store.corrupt >= 3)
    "only %d corrupt objects detected after truncating all of them"
    (s2.Store.corrupt - s1.Store.corrupt);

  Runner.clear_caches ();
  let healed = render () in
  let s3 = Store.stats store in
  check (String.equal cold healed) "output after healing differs from cold";
  check
    (s3.Store.corrupt = s2.Store.corrupt)
    "%d objects still corrupt after the healing recompute"
    (s3.Store.corrupt - s2.Store.corrupt);
  check
    (s3.Store.hits - s2.Store.hits >= 3)
    "healed pass hit only %d objects"
    (s3.Store.hits - s2.Store.hits);

  rm_rf dir;
  if !failures = 0 then print_endline "cache_smoke: OK (cold = warm = healed)"
  else exit 1
