lib/isa/walker.ml: Array Format Hashtbl Inst Mcd_util Printf Program
