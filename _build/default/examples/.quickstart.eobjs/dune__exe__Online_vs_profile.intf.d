examples/online_vs_profile.mli:
