lib/profiling/context.mli:
