(** Preallocated fixed-capacity ring buffer.

    The event tracer's backing store: one array allocated up front, O(1)
    [push] that overwrites the oldest element once the ring is full (the
    overwrite is counted in {!dropped}), and oldest-first traversal. A
    [dummy] element fills unused and vacated slots so values never leak
    through the array. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten because the ring was full. *)

val push : 'a t -> 'a -> unit
(** O(1), never allocates. When full, the oldest element is dropped. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first over the retained elements. *)

val to_list : 'a t -> 'a list
(** Oldest-first. *)

val clear : 'a t -> unit
(** Forget every element (the drop counter survives a clear). *)
