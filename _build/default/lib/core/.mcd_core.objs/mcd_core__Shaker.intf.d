lib/core/shaker.mli: Dag Mcd_util
