type trigger = Marker | Sample | Watchdog

let trigger_name = function
  | Marker -> "marker"
  | Sample -> "sample"
  | Watchdog -> "watchdog"

type event =
  | Reconfig_write of {
      t_ps : int;
      before : int array;
      after : int array;
      noop : bool;
    }
  | Dvfs_retarget of { t_ps : int; domain : int; before : int; after : int }
  | Sync_penalty of { t_ps : int; domain : int }
  | Decision of {
      t_ps : int;
      source : string;
      trigger : trigger;
      setting : int array option;
      detail : string;
    }
  | Degraded of { t_ps : int; source : string; detail : string }

let event_time = function
  | Reconfig_write { t_ps; _ }
  | Dvfs_retarget { t_ps; _ }
  | Sync_penalty { t_ps; _ }
  | Decision { t_ps; _ }
  | Degraded { t_ps; _ } ->
      t_ps

type t = {
  metrics : Metrics.t;
  series : Series.t;
  control : event Ring.t;
  hot : event Ring.t;
  stride_cycles : int;
  domains : int;
  reconfigs : Metrics.counter;
  noop_writes : Metrics.counter;
  retargets : Metrics.counter;
  penalties : Metrics.counter;
  decisions : Metrics.counter;
  degradations : Metrics.counter;
  samples : Metrics.counter;
}

let dummy_event = Sync_penalty { t_ps = 0; domain = 0 }

let create ?(stride_cycles = 2048) ?(control_capacity = 4096)
    ?(hot_capacity = 1024) ~domains () =
  if stride_cycles <= 0 then invalid_arg "Sink.create: stride_cycles must be positive";
  let metrics = Metrics.create () in
  {
    metrics;
    series = Series.create ~domains ();
    control = Ring.create ~capacity:control_capacity ~dummy:dummy_event;
    hot = Ring.create ~capacity:hot_capacity ~dummy:dummy_event;
    stride_cycles;
    domains;
    reconfigs = Metrics.counter metrics "obs.reconfig_writes";
    noop_writes = Metrics.counter metrics "obs.noop_writes";
    retargets = Metrics.counter metrics "obs.dvfs_retargets";
    penalties = Metrics.counter metrics "obs.sync_penalties";
    decisions = Metrics.counter metrics "obs.decisions";
    degradations = Metrics.counter metrics "obs.degradations";
    samples = Metrics.counter metrics "obs.samples";
  }

let metrics t = t.metrics
let series t = t.series
let stride_cycles t = t.stride_cycles
let domains t = t.domains

let reconfig_write t ~t_ps ~before ~after ~noop =
  if noop then Metrics.incr t.noop_writes else Metrics.incr t.reconfigs;
  Ring.push t.control
    (Reconfig_write { t_ps; before = Array.copy before; after = Array.copy after; noop })

let dvfs_retarget t ~t_ps ~domain ~before ~after =
  Metrics.incr t.retargets;
  Ring.push t.control (Dvfs_retarget { t_ps; domain; before; after })

let sync_penalty t ~t_ps ~domain =
  Metrics.incr t.penalties;
  Ring.push t.hot (Sync_penalty { t_ps; domain })

let decision t ~t_ps ~source ~trigger ?setting ~detail () =
  Metrics.incr t.decisions;
  let setting = Option.map Array.copy setting in
  Ring.push t.control (Decision { t_ps; source; trigger; setting; detail })

let degraded t ~t_ps ~source ~detail =
  Metrics.incr t.degradations;
  Ring.push t.control (Degraded { t_ps; source; detail })

let sample t ~t_ps ~cycles ~ipc ~mhz ~volt ~occ ~pj =
  Metrics.incr t.samples;
  Series.append t.series ~t_ps ~cycles ~ipc ~mhz ~volt ~occ ~pj

let events t =
  (* Both rings are individually time-ordered; merge them. *)
  let rec merge a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys ->
        if event_time x <= event_time y then x :: merge xs b else y :: merge a ys
  in
  merge (Ring.to_list t.control) (Ring.to_list t.hot)

let dropped_events t = Ring.dropped t.control + Ring.dropped t.hot
