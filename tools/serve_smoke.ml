(* End-to-end smoke test of the experiment daemon for the @verify alias.

   Four phases, all against real forked server processes on Unix
   sockets under a fresh temp cache:

   1. concurrency + coalescing: 8 forked clients hammer one server
      with rotated mixes of duplicate and distinct requests; every
      payload must be byte-identical to the one-shot Runner result
      computed up front with caching off, equivalent requests must
      share a digest (normalization), and the server's counters must
      show every duplicate coalesced onto the 2 distinct computations;

   2. overload: a one-worker server with a tiny queue and a slow canned
      compute is burst-fed distinct requests; the over-bound ones must
      come back as typed Overloaded rejections (with a retry-after
      hint), and every accepted job must still complete — shed, never
      dropped;

   3. kill mid-run: a server with an artificial compute delay gets
      SIGTERM while a job is in flight; the drain must finish the job,
      answer the parked wait, and serve the payload before exiting 0;

   4. warm restart: a fresh server on the same cache must serve the
      same bytes again, with the mirrored store.hits gauge showing the
      payload came from disk, not recomputation;

   5. idle wakeup: a completion must wake an otherwise-idle server's
      parked wait through the self-pipe in under 10ms (best of 3) —
      the regression guard for the deadline-driven poll timeout.

   Exits 0 on success, 1 with a message on the first violation. *)

module Server = Mcd_serve.Server
module Client = Mcd_serve.Client
module Protocol = Mcd_serve.Protocol
module Store = Mcd_cache.Store
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_power.Metrics
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Error = Mcd_robust.Error

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "serve_smoke: FAIL %s\n%!" msg
      end)
    fmt

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Pull one instrument's value out of a metrics_jsonl body. Counters
   print integers, gauges floats; both parse as float. *)
let metric_value body name =
  let needle = Printf.sprintf "\"name\":\"%s\"" name in
  String.split_on_char '\n' body
  |> List.find_opt (fun line -> contains line needle)
  |> Option.map (fun line ->
         match String.index_opt line ':' with
         | None -> nan
         | Some _ -> (
             let marker = "\"value\":" in
             let rec find i =
               if i + String.length marker > String.length line then None
               else if String.sub line i (String.length marker) = marker then
                 Some (i + String.length marker)
             else find (i + 1)
             in
             match find 0 with
             | None -> nan
             | Some start ->
                 let stop = ref start in
                 while
                   !stop < String.length line
                   && (match line.[!stop] with
                      | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
                      | _ -> false)
                 do
                   incr stop
                 done;
                 float_of_string (String.sub line start (!stop - start))))

(* --- process helpers --------------------------------------------------- *)

let fork_server ?digest ?compute cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        match Server.run ?digest ?compute cfg with
        | Ok () -> 0
        | Error e ->
            Printf.eprintf "serve_smoke server: %s\n%!" (Error.to_string e);
            1
      in
      exit code
  | pid -> pid

let wait_for_server socket =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Client.connect ~socket with
    | Ok c ->
        Client.close c;
        true
    | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let reap ~what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code ->
      check (code = 0) "%s exited with code %d" what code
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      check false "%s killed/stopped by signal %d" what s

let drain_and_reap ~what socket pid =
  (match Client.connect ~socket with
  | Ok c ->
      (match Client.drain c with
      | Ok () -> ()
      | Error e -> check false "drain %s: %s" what (Error.to_string e));
      Client.close c
  | Error e -> check false "connect to drain %s: %s" what (Error.to_string e));
  reap ~what pid

(* --- the request mix --------------------------------------------------- *)

let workload_name = "adpcm decode"

(* r0/r1 are the two distinct computations; r0' and r1' are equivalent
   spellings — baseline ignores context and slowdown, online ignores
   both too — that must normalize onto the same digests. *)
let r0 = Protocol.request ~policy:Protocol.Baseline workload_name
let r0' =
  Protocol.request ~policy:Protocol.Baseline ~context:"F" ~slowdown_pct:3.0
    workload_name
let r1 = Protocol.request ~policy:Protocol.Online workload_name
let r1' =
  Protocol.request ~policy:Protocol.Online ~slowdown_pct:12.0 workload_name

let rotate n l =
  let len = List.length l in
  let n = n mod len in
  let rec go i acc = function
    | [] -> List.rev acc
    | x :: rest -> if i < n then go (i + 1) (x :: acc) rest else (x :: rest) @ List.rev acc
  in
  go 0 [] l

(* --- phase 1: concurrency, coalescing, byte-identity ------------------- *)

let client_process socket ~expected_baseline ~expected_online i =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "serve_smoke client %d: FAIL %s\n%!" i msg;
        exit 1)
      fmt
  in
  let expected_of req =
    if req == r0 || req == r0' then expected_baseline else expected_online
  in
  match Client.connect ~socket with
  | Error e -> fail "connect: %s" (Error.to_string e)
  | Ok c ->
      let requests = rotate i [ r0; r1; r0'; r1' ] in
      let tickets =
        List.map
          (fun req ->
            match Client.submit c req with
            | Ok t -> (req, t)
            | Error e -> fail "submit: %s" (Error.to_string e))
          requests
      in
      (* equivalent spellings must coalesce onto the same job *)
      let digest_of req =
        match List.assq_opt req tickets with
        | Some t -> t.Client.digest
        | None -> fail "missing ticket"
      in
      if digest_of r0 <> digest_of r0' then
        fail "baseline digests differ: %s vs %s" (digest_of r0) (digest_of r0');
      if digest_of r1 <> digest_of r1' then
        fail "online digests differ: %s vs %s" (digest_of r1) (digest_of r1');
      List.iter
        (fun (req, (t : Client.ticket)) ->
          (match Client.wait c t.Client.id with
          | Ok Protocol.Done -> ()
          | Ok state -> fail "job %d ended %s" t.Client.id (Protocol.state_name state)
          | Error e -> fail "wait %d: %s" t.Client.id (Error.to_string e));
          match Client.result c t.Client.id with
          | Error e -> fail "result %d: %s" t.Client.id (Error.to_string e)
          | Ok payload ->
              if payload <> expected_of req then
                fail "job %d payload differs from one-shot Runner result"
                  t.Client.id)
        tickets;
      Client.close c;
      exit 0

let phase_concurrency socket cache_dir ~expected_baseline ~expected_online =
  let cfg =
    { (Server.default_config ~socket) with workers = 2; drain_grace_s = 0.2 }
  in
  let server = fork_server cfg in
  check (wait_for_server socket) "phase 1 server never came up";
  flush stdout;
  flush stderr;
  let clients =
    List.init 8 (fun i ->
        match Unix.fork () with
        | 0 -> client_process socket ~expected_baseline ~expected_online i
        | pid -> pid)
  in
  List.iteri (fun i pid -> reap ~what:(Printf.sprintf "client %d" i) pid) clients;
  (match Client.connect ~socket with
  | Error e -> check false "stats connect: %s" (Error.to_string e)
  | Ok c ->
      (match Client.stats c with
      | Error e -> check false "stats: %s" (Error.to_string e)
      | Ok body ->
          let v name =
            match metric_value body name with
            | Some v -> int_of_float v
            | None ->
                check false "stats missing %s" name;
                -1
          in
          (* 8 clients x 4 submits = 32, of which only the 2 distinct
             digests compute; every other submit must have coalesced. *)
          check (v "serve.submitted" = 32) "submitted=%d, want 32" (v "serve.submitted");
          check (v "serve.completed" = 2) "completed=%d, want 2" (v "serve.completed");
          check (v "serve.coalesced" = 30) "coalesced=%d, want 30" (v "serve.coalesced");
          check (v "serve.rejected" = 0) "rejected=%d, want 0" (v "serve.rejected");
          check (v "serve.failed" = 0) "failed=%d, want 0" (v "serve.failed");
          check (v "store.stores" = 2) "store.stores=%d, want 2" (v "store.stores"));
      Client.close c);
  drain_and_reap ~what:"phase 1 server" socket server;
  let objects, _bytes = Store.disk_usage (Store.create ~dir:cache_dir) in
  check (objects >= 2) "cache holds %d objects after phase 1, want >= 2" objects

(* --- phase 2: overload is shed, never dropped -------------------------- *)

let phase_overload socket =
  (* Canned compute: slow enough that a burst outruns the one worker
     and the depth-2 queue deterministically. *)
  let digest (r : Protocol.request) =
    Ok (Printf.sprintf "canned-%s" (Mcd_cache.Key.float_param r.slowdown_pct))
  in
  let compute (r : Protocol.request) =
    Unix.sleepf 0.3;
    Printf.sprintf "payload-%s" (Mcd_cache.Key.float_param r.slowdown_pct)
  in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      queue_max = 2;
      client_max = 2;
      drain_grace_s = 0.2;
    }
  in
  let server = fork_server ~digest ~compute cfg in
  check (wait_for_server socket) "phase 2 server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "phase 2 connect: %s" (Error.to_string e)
  | Ok c ->
      let requests =
        List.init 6 (fun i ->
            Protocol.request ~slowdown_pct:(float_of_int (i + 1)) workload_name)
      in
      let accepted = ref [] and overloaded = ref 0 in
      List.iter
        (fun req ->
          match Client.submit c req with
          | Ok t -> accepted := (req, t) :: !accepted
          | Error (Error.Overloaded { queue_depth; limit; retry_after_ms }) ->
              incr overloaded;
              check (retry_after_ms >= 100)
                "retry_after_ms=%d, want >= 100" retry_after_ms;
              check (queue_depth >= 0 && limit > 0)
                "nonsense overload report depth=%d limit=%d" queue_depth limit
          | Error e ->
              check false "burst submit rejected oddly: %s" (Error.to_string e))
        requests;
      check (!overloaded >= 1) "no Overloaded rejection in a 6-burst";
      check (List.length !accepted >= 3)
        "only %d accepted, want >= 3" (List.length !accepted);
      (* shed is not dropped: every accepted job still completes *)
      List.iter
        (fun ((r : Protocol.request), (t : Client.ticket)) ->
          match Client.wait c t.Client.id with
          | Ok Protocol.Done -> (
              match Client.result c t.Client.id with
              | Ok payload ->
                  check
                    (payload
                    = Printf.sprintf "payload-%s"
                        (Mcd_cache.Key.float_param r.slowdown_pct))
                    "job %d payload mismatch" t.Client.id
              | Error e ->
                  check false "result %d: %s" t.Client.id (Error.to_string e))
          | Ok state ->
              check false "accepted job %d ended %s" t.Client.id
                (Protocol.state_name state)
          | Error e -> check false "wait %d: %s" t.Client.id (Error.to_string e))
        !accepted;
      Client.close c);
  drain_and_reap ~what:"phase 2 server" socket server

(* --- phases 3+4: SIGTERM drain, then warm restart ---------------------- *)

let phase_kill_and_restart socket ~expected_online =
  (* The artificial delay guarantees the job is still in flight when
     SIGTERM lands, so the drain path is actually exercised. *)
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      compute_delay_s = 0.5;
      drain_grace_s = 5.0;
    }
  in
  let server = fork_server cfg in
  check (wait_for_server socket) "phase 3 server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "phase 3 connect: %s" (Error.to_string e)
  | Ok c ->
      (match Client.submit c r1 with
      | Error e -> check false "phase 3 submit: %s" (Error.to_string e)
      | Ok t ->
          Unix.kill server Sys.sigterm;
          (match Client.wait c t.Client.id with
          | Ok Protocol.Done -> ()
          | Ok state ->
              check false "drained job ended %s" (Protocol.state_name state)
          | Error e -> check false "wait across drain: %s" (Error.to_string e));
          (match Client.result c t.Client.id with
          | Ok payload ->
              check (payload = expected_online)
                "payload served across SIGTERM drain differs"
          | Error e ->
              check false "result across drain: %s" (Error.to_string e));
          (* admission is closed while the server drains *)
          match Client.submit c r0 with
          | Error (Error.Draining _) -> ()
          | Error e ->
              check false "submit during drain: unexpected %s" (Error.to_string e)
          | Ok _ -> check false "submit during drain was admitted");
      Client.close c);
  reap ~what:"phase 3 server (SIGTERM)" server;
  (* warm restart on the same cache: same bytes, served from disk *)
  let server = fork_server { (Server.default_config ~socket) with workers = 1; drain_grace_s = 0.2 } in
  check (wait_for_server socket) "phase 4 server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "phase 4 connect: %s" (Error.to_string e)
  | Ok c ->
      (match Client.run c r1 with
      | Ok payload ->
          check (payload = expected_online) "warm restart served different bytes"
      | Error e -> check false "phase 4 run: %s" (Error.to_string e));
      (match Client.stats c with
      | Ok body ->
          let hits =
            Option.value ~default:0.0 (metric_value body "store.hits")
          in
          check (hits >= 1.0)
            "store.hits=%g after warm restart, want >= 1" hits
      | Error e -> check false "phase 4 stats: %s" (Error.to_string e));
      Client.close c);
  drain_and_reap ~what:"phase 4 server" socket server

(* --- phase 5: completion wakes an idle server's parked wait fast ------- *)

(* The loop's poll timeout is deadline-driven with a 60s idle backstop;
   a completing job must wake it through the self-pipe, not wait for a
   tick. Measured overhead = (submit → wait answered) − the canned
   compute time; best-of-3 absorbs scheduler noise on a loaded box. *)
let phase_idle_wakeup socket =
  let digest (r : Protocol.request) =
    Ok (Printf.sprintf "wakeup-%s" (Mcd_cache.Key.float_param r.slowdown_pct))
  in
  let compute_s = 0.2 in
  let compute (r : Protocol.request) =
    Unix.sleepf compute_s;
    Printf.sprintf "payload-%s" (Mcd_cache.Key.float_param r.slowdown_pct)
  in
  let cfg =
    { (Server.default_config ~socket) with workers = 1; drain_grace_s = 0.2 }
  in
  let server = fork_server ~digest ~compute cfg in
  check (wait_for_server socket) "phase 5 server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "phase 5 connect: %s" (Error.to_string e)
  | Ok c ->
      let overhead_ms i =
        let req =
          Protocol.request ~slowdown_pct:(float_of_int (100 + i)) workload_name
        in
        let t0 = Unix.gettimeofday () in
        match Client.submit c req with
        | Error e ->
            check false "phase 5 submit: %s" (Error.to_string e);
            infinity
        | Ok t -> (
            match Client.wait c t.Client.id with
            | Ok Protocol.Done ->
                ((Unix.gettimeofday () -. t0) -. compute_s) *. 1000.0
            | Ok state ->
                check false "phase 5 job ended %s" (Protocol.state_name state);
                infinity
            | Error e ->
                check false "phase 5 wait: %s" (Error.to_string e);
                infinity)
      in
      let best =
        List.fold_left Float.min infinity (List.init 3 overhead_ms)
      in
      check (best < 10.0)
        "idle completion wakeup took %.1fms (best of 3), want < 10ms" best;
      Client.close c);
  drain_and_reap ~what:"phase 5 server" socket server

(* --- main -------------------------------------------------------------- *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-serve-smoke.%d" (Unix.getpid ()))
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  let socket n = Filename.concat tmp (Printf.sprintf "s%d.sock" n) in
  let cache_dir = Filename.concat tmp "cache" in
  Fun.protect ~finally:(fun () -> rm_rf tmp) @@ fun () ->
  (* One-shot expected payloads, computed with caching off so the
     comparison is against a genuinely independent computation. *)
  Store.set_default None;
  let w = Suite.by_name workload_name in
  let expected_baseline =
    Metrics.encode
      (Runner.run_request w ~policy:`Baseline ~context:Context.lf
         ~slowdown_pct:Runner.default_slowdown_pct)
  in
  let expected_online =
    Metrics.encode
      (Runner.run_request w ~policy:`Online ~context:Context.lf
         ~slowdown_pct:Runner.default_slowdown_pct)
  in
  (* Servers (forked below) inherit this default store. *)
  Store.set_default (Some (Store.create ~dir:cache_dir));
  phase_concurrency (socket 1) cache_dir ~expected_baseline ~expected_online;
  phase_overload (socket 2);
  phase_kill_and_restart (socket 3) ~expected_online;
  phase_idle_wakeup (socket 5);
  if !failures = 0 then print_endline "serve_smoke: OK"
  else begin
    Printf.eprintf "serve_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
