(* Open-loop load generator for the experiment daemon.

   Drives a forked server (canned compute with a configurable service
   time, so the bench measures the serving plane — event loop, framing,
   admission, journal — not simulation speed; byte-identity with real
   Runner results is serve_smoke's job) through four scenarios:

   - warm open loop: every arrival is one of the quick-suite requests
     verbatim, so all but the first few coalesce onto finished jobs —
     the store-hit/coalesced regime;
   - cold open loop: every arrival carries a unique slowdown, so every
     admitted job is a fresh compute — the cache-miss regime with a
     journal fsync per job;
   - saturated open loop: cold arrivals at a rate far above the canned
     service capacity, so admission control must shed — records the
     rejection rate and the server's retry-after hints next to the
     observed latency they are supposed to predict;
   - closed-loop comparison: at equal concurrency, requests/s through
     one pipelined connection (seq-tagged commands, many in flight)
     versus one-shot exchanges (fresh connect + greeting + sequential
     submit/wait/result per request) — the pipelining multiple.

   Open loop means arrivals follow the seeded exponential schedule
   regardless of completions: a slow server grows the in-flight count
   instead of silently slowing the offered load, which is what makes
   the percentiles honest under load.

   --json writes a mcd-dvfs-serve-bench/1 artifact (promoted as
   BENCH_serve.json under @verify). --smoke runs a seeded, low-rate
   preset and exits nonzero unless p99 stays under a generous bound,
   nothing is lost (every issued request gets a typed answer), and the
   pipelined closed loop beats one-shot by at least 3x. *)

module Server = Mcd_serve.Server
module Client = Mcd_serve.Client
module Pipeline = Mcd_serve.Client.Pipeline
module Protocol = Mcd_serve.Protocol
module Error = Mcd_robust.Error
module Rng = Mcd_util.Rng

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "serve_load: FAIL %s\n%!" msg
      end)
    fmt

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* --- forked canned server ---------------------------------------------- *)

(* Unique digest per (workload, slowdown) spelling: warm traffic repeats
   one spelling per workload and coalesces; cold traffic varies the
   slowdown and never does. *)
let canned_digest (r : Protocol.request) =
  Ok (Printf.sprintf "canned-%s-%s" r.workload (Mcd_cache.Key.float_param r.slowdown_pct))

let canned_compute ~service_ms (r : Protocol.request) =
  if service_ms > 0.0 then Unix.sleepf (service_ms /. 1000.0);
  Printf.sprintf "payload-%s-%s" r.workload (Mcd_cache.Key.float_param r.slowdown_pct)

let fork_server ~service_ms cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        match
          Server.run ~digest:canned_digest
            ~compute:(canned_compute ~service_ms) cfg
        with
        | Ok () -> 0
        | Error e ->
            Printf.eprintf "serve_load server: %s\n%!" (Error.to_string e);
            1
      in
      exit code
  | pid -> pid

let wait_for_server socket =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Client.connect ~socket with
    | Ok c ->
        Client.close c;
        true
    | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let drain_and_reap ~what socket pid =
  (match Client.connect ~socket with
  | Ok c ->
      (match Client.drain c with
      | Ok () -> ()
      | Error e -> check false "drain %s: %s" what (Error.to_string e));
      Client.close c
  | Error e -> check false "connect to drain %s: %s" what (Error.to_string e));
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED code -> check false "%s exited with code %d" what code
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      check false "%s killed/stopped by signal %d" what s

(* --- request mixes ------------------------------------------------------ *)

let quick_names = [| "adpcm decode"; "gsm encode"; "mpeg2 decode"; "mcf"; "applu" |]

let warm_request i =
  Protocol.request quick_names.(i mod Array.length quick_names)

let cold_request i =
  Protocol.request
    ~slowdown_pct:(7.0 +. (0.001 *. float_of_int i))
    quick_names.(i mod Array.length quick_names)

(* --- percentiles -------------------------------------------------------- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1 |> max 0))

(* --- open-loop scenario -------------------------------------------------- *)

type open_result = {
  sent : int;
  completed : int;
  rejected : int;  (** typed sheds: Overloaded/Draining *)
  retried : int;  (** re-issues after an Overloaded shed *)
  lost : int;  (** issued but never answered, or transport failure *)
  other_errors : int;
  duration_s : float;
  latencies_ms : float array;  (** sorted, completions only *)
  max_in_flight : int;
  hint_count : int;
  hint_sum_ms : int;
  hint_max_ms : int;
}

(* One logical arrival; retried at most [max_retries] times after an
   Overloaded shed, honoring the server's retry-after hint. *)
type arrival = { mutable retries_left : int; issue_at : float; req : Protocol.request }

let open_loop ~socket ~rate ~duration_s ~conns ~seed ~request_of ~max_retries () =
  let rng = Rng.create seed in
  let pipes =
    List.init conns (fun _ ->
        match Pipeline.connect ~socket () with
        | Ok p -> p
        | Error e ->
            check false "open_loop connect: %s" (Error.to_string e);
            exit 1)
  in
  let pipes = Array.of_list pipes in
  let started = Unix.gettimeofday () in
  let horizon = started +. duration_s in
  let sent = ref 0
  and completed = ref 0
  and rejected = ref 0
  and retried = ref 0
  and other_errors = ref 0
  and in_flight = ref 0
  and max_in_flight = ref 0
  and latencies = ref []
  and hint_count = ref 0
  and hint_sum = ref 0
  and hint_max = ref 0 in
  let due : arrival list ref = ref [] in
  let next_pipe = ref 0 in
  let rec issue (a : arrival) =
    let p = pipes.(!next_pipe mod Array.length pipes) in
    incr next_pipe;
    incr sent;
    incr in_flight;
    if !in_flight > !max_in_flight then max_in_flight := !in_flight;
    let t_issue = Unix.gettimeofday () in
    Pipeline.run p a.req ~k:(fun outcome ->
        decr in_flight;
        match outcome with
        | Ok _payload ->
            incr completed;
            latencies :=
              ((Unix.gettimeofday () -. t_issue) *. 1000.0) :: !latencies
        | Error (Error.Overloaded { retry_after_ms; _ }) ->
            incr rejected;
            incr hint_count;
            hint_sum := !hint_sum + retry_after_ms;
            if retry_after_ms > !hint_max then hint_max := retry_after_ms;
            if a.retries_left > 0 then begin
              a.retries_left <- a.retries_left - 1;
              incr retried;
              due :=
                {
                  a with
                  issue_at =
                    Unix.gettimeofday ()
                    +. (float_of_int retry_after_ms /. 1000.0);
                }
                :: !due
            end
        | Error (Error.Draining _) -> incr rejected
        | Error _ -> incr other_errors)
  and pump_all timeout_ms =
    Array.iter
      (fun p ->
        match Pipeline.pump ~timeout_ms p with
        | Ok () -> ()
        | Error _ -> (* callbacks already failed; counted as other_errors *) ())
      pipes;
    (* re-issue retries that have reached their backoff time *)
    let now = Unix.gettimeofday () in
    let ready, waiting = List.partition (fun a -> a.issue_at <= now) !due in
    due := waiting;
    List.iter issue ready
  in
  (* the arrival schedule: exponential inter-arrivals at [rate] *)
  let next_arrival = ref started in
  let arrivals = ref 0 in
  let schedule_next () =
    let u = Rng.float rng 1.0 in
    next_arrival := !next_arrival +. (-.Float.log (1.0 -. u) /. rate)
  in
  while Unix.gettimeofday () < horizon do
    let now = Unix.gettimeofday () in
    while !next_arrival <= now && !next_arrival < horizon do
      issue { retries_left = max_retries; issue_at = now; req = request_of !arrivals };
      incr arrivals;
      schedule_next ()
    done;
    pump_all 1
  done;
  (* drain: open loop stops offering, everything issued must resolve *)
  let drain_deadline = Unix.gettimeofday () +. 30.0 in
  while (!in_flight > 0 || !due <> []) && Unix.gettimeofday () < drain_deadline do
    pump_all 5
  done;
  let duration = Unix.gettimeofday () -. started in
  Array.iter Pipeline.close pipes;
  let lost = !in_flight + List.length !due in
  let latencies_ms = Array.of_list !latencies in
  Array.sort compare latencies_ms;
  {
    sent = !sent;
    completed = !completed;
    rejected = !rejected;
    retried = !retried;
    lost;
    other_errors = !other_errors;
    duration_s = duration;
    latencies_ms;
    max_in_flight = !max_in_flight;
    hint_count = !hint_count;
    hint_sum_ms = !hint_sum;
    hint_max_ms = !hint_max;
  }

(* --- closed-loop comparison ---------------------------------------------- *)

(* Equal concurrency, two shapes. Pipelined: one connection, [conc]
   requests in flight, a completion immediately issues the next.
   One-shot: [conc] slots, each slot pays a fresh connect + greeting
   and walks one blocking-shaped submit/wait/result exchange per
   request (over the same non-blocking machinery, so both sides are
   driven by the same pump loop). *)
let closed_pipelined ~socket ~conc ~duration_s =
  match Pipeline.connect ~socket () with
  | Error e ->
      check false "closed_pipelined connect: %s" (Error.to_string e);
      0
  | Ok p ->
      let completed = ref 0 in
      let horizon = Unix.gettimeofday () +. duration_s in
      let n = ref 0 in
      let rec issue () =
        incr n;
        Pipeline.run p (warm_request !n) ~k:(fun _ ->
            incr completed;
            if Unix.gettimeofday () < horizon then issue ())
      in
      for _ = 1 to conc do
        issue ()
      done;
      while Pipeline.in_flight p > 0 && Unix.gettimeofday () < horizon +. 10.0 do
        (match Pipeline.pump ~timeout_ms:5 p with Ok () -> () | Error _ -> ())
      done;
      Pipeline.close p;
      !completed

let closed_oneshot ~socket ~conc ~duration_s =
  let completed = ref 0 in
  let horizon = Unix.gettimeofday () +. duration_s in
  let n = ref 0 in
  (* a slot is None between requests (about to reconnect) *)
  let slots = Array.make conc None in
  let live = ref 0 in
  let start_slot i =
    if Unix.gettimeofday () < horizon then begin
      match Pipeline.connect ~socket () with
      | Error e -> check false "closed_oneshot connect: %s" (Error.to_string e)
      | Ok p ->
          incr n;
          incr live;
          slots.(i) <- Some p;
          Pipeline.run p (warm_request !n) ~k:(fun _ ->
              incr completed;
              slots.(i) <- None;
              decr live;
              Pipeline.close p)
    end
  in
  for i = 0 to conc - 1 do
    start_slot i
  done;
  let hard_stop = horizon +. 10.0 in
  let rec spin () =
    let now = Unix.gettimeofday () in
    if now < hard_stop && (!live > 0 || now < horizon) then begin
      Array.iteri
        (fun i slot ->
          match slot with
          | Some p -> (
              match Pipeline.pump ~timeout_ms:1 p with
              | Ok () -> ()
              | Error _ ->
                  slots.(i) <- None;
                  decr live;
                  Pipeline.close p)
          | None -> start_slot i)
        slots;
      spin ()
    end
  in
  spin ();
  Array.iter (function Some p -> Pipeline.close p | None -> ()) slots;
  !completed

(* --- JSON ---------------------------------------------------------------- *)

type scenario = {
  name : string;
  fields : (string * string) list;  (** key, rendered JSON value *)
}

let jf = Printf.sprintf "%.3f"

let open_scenario name ~rate ~conns (r : open_result) =
  let p q = percentile r.latencies_ms q in
  {
    name;
    fields =
      [
        ("mode", {|"open-loop"|});
        ("rate_per_s", jf rate);
        ("conns", string_of_int conns);
        ("sent", string_of_int r.sent);
        ("completed", string_of_int r.completed);
        ("rejected", string_of_int r.rejected);
        ("retried", string_of_int r.retried);
        ("lost", string_of_int r.lost);
        ("other_errors", string_of_int r.other_errors);
        ("duration_s", jf r.duration_s);
        ("throughput_per_s", jf (float_of_int r.completed /. r.duration_s));
        ("latency_p50_ms", jf (percentile r.latencies_ms 0.50));
        ("latency_p95_ms", jf (p 0.95));
        ("latency_p99_ms", jf (p 0.99));
        ( "latency_max_ms",
          jf
            (if Array.length r.latencies_ms = 0 then nan
             else r.latencies_ms.(Array.length r.latencies_ms - 1)) );
        ("max_in_flight", string_of_int r.max_in_flight);
        ( "retry_hint_mean_ms",
          jf
            (if r.hint_count = 0 then 0.0
             else float_of_int r.hint_sum_ms /. float_of_int r.hint_count) );
        ("retry_hint_max_ms", string_of_int r.hint_max_ms);
      ];
  }

let write_json path ~seed ~service_ms scenarios =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"mcd-dvfs-serve-bench/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"service_ms\": %s,\n" (jf service_ms);
  Printf.fprintf oc "  \"scenarios\": [\n";
  List.iteri
    (fun i s ->
      Printf.fprintf oc "    {\n      \"name\": %S" s.name;
      List.iter
        (fun (k, v) -> Printf.fprintf oc ",\n      \"%s\": %s" k v)
        s.fields;
      Printf.fprintf oc "\n    }%s\n"
        (if i < List.length scenarios - 1 then "," else ""))
    scenarios;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

(* --- main ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: serve_load [--smoke] [--json FILE] [--seed N] [--rate R]\n\
    \       [--duration S] [--conns N] [--conc N] [--service-ms F]";
  exit 2

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let smoke = ref false
  and json = ref None
  and seed = ref 42
  and rate = ref 150.0
  and duration = ref 3.0
  and conns = ref 4
  and conc = ref 8
  and service_ms = ref 5.0 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--rate" :: v :: rest ->
        rate := float_of_string v;
        parse rest
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | "--conns" :: v :: rest ->
        conns := int_of_string v;
        parse rest
    | "--conc" :: v :: rest ->
        conc := int_of_string v;
        parse rest
    | "--service-ms" :: v :: rest ->
        service_ms := float_of_string v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke then begin
    (* bounded CI preset: low rate, short run, fixed seed *)
    rate := 80.0;
    duration := 1.5;
    conns := 4;
    conc := 16;
    service_ms := 2.0
  end;
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-serve-load.%d" (Unix.getpid ()))
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  Fun.protect ~finally:(fun () -> rm_rf tmp) @@ fun () ->
  Mcd_cache.Store.set_default None;
  let socket = Filename.concat tmp "serve.sock" in
  let journal = Filename.concat tmp "serve.journal" in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 2;
      queue_max = 64;
      client_max = 256;
      journal = Some journal;
      drain_grace_s = 0.2;
    }
  in
  let server = fork_server ~service_ms:!service_ms cfg in
  if not (wait_for_server socket) then begin
    Printf.eprintf "serve_load: server never came up\n%!";
    exit 1
  end;
  (* warm: the repeating quick-suite mix — everything after the first
     few arrivals coalesces onto a finished job *)
  let warm =
    open_loop ~socket ~rate:!rate ~duration_s:!duration ~conns:!conns
      ~seed:!seed ~request_of:warm_request ~max_retries:2 ()
  in
  (* cold: unique slowdown per arrival — every admitted job computes,
     and the journal takes one fsync per admit. Offered at a rate the
     canned service can sustain (2 workers / service_ms each). *)
  let sustainable =
    if !service_ms <= 0.0 then !rate
    else Float.min !rate (0.5 *. 2.0 *. 1000.0 /. !service_ms)
  in
  let cold =
    open_loop ~socket ~rate:sustainable ~duration_s:!duration ~conns:!conns
      ~seed:(!seed + 1) ~request_of:cold_request ~max_retries:2 ()
  in
  (* saturated: cold traffic far above capacity — admission control
     must shed with retry-after hints, and nothing may be lost *)
  let sat_rate =
    if !service_ms <= 0.0 then 4.0 *. !rate
    else 4.0 *. 2.0 *. 1000.0 /. !service_ms
  in
  let saturated =
    open_loop ~socket ~rate:sat_rate ~duration_s:(Float.min !duration 2.0)
      ~conns:!conns ~seed:(!seed + 2)
      ~request_of:(fun i -> cold_request (1_000_000 + i))
      ~max_retries:0 ()
  in
  (* closed-loop comparison at equal concurrency *)
  let cmp_duration = Float.min !duration 3.0 in
  let oneshot_n = closed_oneshot ~socket ~conc:!conc ~duration_s:cmp_duration in
  let pipelined_n =
    closed_pipelined ~socket ~conc:!conc ~duration_s:cmp_duration
  in
  drain_and_reap ~what:"load server" socket server;
  let oneshot_rate = float_of_int oneshot_n /. cmp_duration in
  let pipelined_rate = float_of_int pipelined_n /. cmp_duration in
  let speedup =
    if oneshot_n = 0 then nan else pipelined_rate /. oneshot_rate
  in
  let scenarios =
    [
      open_scenario "warm-open-loop" ~rate:!rate ~conns:!conns warm;
      open_scenario "cold-open-loop" ~rate:sustainable ~conns:!conns cold;
      open_scenario "saturated-open-loop" ~rate:sat_rate ~conns:!conns
        saturated;
      {
        name = "closed-loop-comparison";
        fields =
          [
            ("mode", {|"closed-loop"|});
            ("concurrency", string_of_int !conc);
            ("duration_s", jf cmp_duration);
            ("oneshot_completed", string_of_int oneshot_n);
            ("pipelined_completed", string_of_int pipelined_n);
            ("oneshot_per_s", jf oneshot_rate);
            ("pipelined_per_s", jf pipelined_rate);
            ("pipelined_speedup", jf speedup);
          ];
      };
    ]
  in
  (match !json with
  | Some path -> write_json path ~seed:!seed ~service_ms:!service_ms scenarios
  | None -> ());
  (* structural checks, every mode *)
  check (warm.completed > 0) "warm scenario completed nothing";
  check (cold.completed > 0) "cold scenario completed nothing";
  check (warm.lost = 0) "warm: %d issued requests never answered" warm.lost;
  check (cold.lost = 0) "cold: %d issued requests never answered" cold.lost;
  check (saturated.lost = 0) "saturated: %d issued requests never answered"
    saturated.lost;
  check
    (saturated.rejected = 0 || saturated.hint_max_ms >= 100)
    "saturated: rejections carried hint below the 100ms floor (max %d)"
    saturated.hint_max_ms;
  if !smoke then begin
    (* the CI gate: bounded tail latency, zero losses, real pipelining *)
    let p99 = percentile warm.latencies_ms 0.99 in
    check (p99 < 2000.0) "warm p99=%.1fms, want < 2000ms" p99;
    check
      (warm.other_errors = 0 && cold.other_errors = 0)
      "unexpected errors (warm %d, cold %d)" warm.other_errors
      cold.other_errors;
    check (oneshot_n > 0) "one-shot closed loop completed nothing";
    check
      ((not (Float.is_nan speedup)) && speedup >= 3.0)
      "pipelined/one-shot speedup %.2fx, want >= 3x" speedup
  end;
  Printf.printf
    "serve_load: warm %.0f/s p99=%.1fms | cold %.0f/s p99=%.1fms | saturated \
     shed %d/%d | pipelined %.2fx one-shot\n"
    (float_of_int warm.completed /. warm.duration_s)
    (percentile warm.latencies_ms 0.99)
    (float_of_int cold.completed /. cold.duration_s)
    (percentile cold.latencies_ms 0.99)
    saturated.rejected saturated.sent speedup;
  if !failures = 0 then print_endline "serve_load: OK"
  else begin
    Printf.eprintf "serve_load: %d failure(s)\n%!" !failures;
    exit 1
  end
