(* Exporter smoke test for the @verify alias.

   Runs one short traced MediaBench workload through the observed
   pipeline, writes all three export formats into a temp directory,
   then parses them back with Mcd_obs.Json and asserts they are
   well-formed and mutually consistent:

   - metrics.jsonl: every line is a JSON object with a [name] and
     either a numeric [value] or histogram [bins]/[weights] of equal
     length; the obs.* counters are present.
   - trace.json: a Chrome trace-event object whose [traceEvents] is a
     list of objects each carrying ph/pid/ts fields; the number of
     non-noop reconfiguration instants matches the run's reported
     reconfiguration count, and every counter track sample carries a
     numeric value.
   - series.csv: header plus one line per sink sample, each with the
     full column count.

   Exits 0 on success, 1 with a message on the first violation. *)

module Json = Mcd_obs.Json
module Sink = Mcd_obs.Sink
module Metrics = Mcd_obs.Metrics

(* Total member access: missing key or non-object reads as Null, which
   every [to_*_opt] accessor maps to [None]. *)
let mem key j = match Json.member key j with Some v -> v | None -> Json.Null

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "trace_smoke: FAIL %s\n%!" msg
      end)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_or_die what s =
  match Json.of_string s with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "trace_smoke: FAIL %s does not parse: %s\n%!" what e;
      exit 1

(* ---- metrics.jsonl ------------------------------------------------- *)

let default_required_metrics =
  [
    "obs.reconfig_writes"; "obs.noop_writes"; "obs.sync_penalties";
    "obs.samples"; "obs.dropped_events"; "run.reconfigurations";
  ]

let check_metrics_jsonl ?(required = default_required_metrics)
    ?(allow_empty = false) path =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  if not allow_empty then check (lines <> []) "metrics.jsonl is empty";
  let names = Hashtbl.create 64 in
  List.iteri
    (fun i line ->
      let j = parse_or_die (Printf.sprintf "metrics.jsonl line %d" (i + 1)) line in
      match mem "name" j |> Json.to_string_opt with
      | None -> check false "metrics.jsonl line %d has no name" (i + 1)
      | Some name -> (
          Hashtbl.replace names name ();
          match mem "bins" j |> Json.to_int_opt with
          | Some bins ->
              let weights =
                match mem "weights" j |> Json.to_list_opt with
                | Some w -> w
                | None -> []
              in
              check
                (List.length weights = bins)
                "histogram %s has %d weights for %d bins" name
                (List.length weights) bins
          | None ->
              check
                (mem "value" j |> Json.to_float_opt <> None)
                "metric %s has neither value nor bins" name))
    lines;
  List.iter
    (fun n -> check (Hashtbl.mem names n) "metrics.jsonl missing %s" n)
    required;
  names

(* ---- trace.json ---------------------------------------------------- *)

let check_chrome_trace ?(allow_empty = false) path ~reconfigurations =
  let j = parse_or_die "trace.json" (read_file path) in
  let events =
    match mem "traceEvents" j |> Json.to_list_opt with
    | Some l -> l
    | None ->
        check false "trace.json has no traceEvents list";
        []
  in
  if not allow_empty then check (events <> []) "trace.json has no events";
  let non_noop_reconfigs = ref 0 in
  List.iteri
    (fun i ev ->
      let ph = mem "ph" ev |> Json.to_string_opt in
      check (ph <> None) "trace event %d has no ph" i;
      check
        (mem "pid" ev |> Json.to_int_opt <> None)
        "trace event %d has no pid" i;
      (if ph <> Some "M" then
         check
           (mem "ts" ev |> Json.to_float_opt <> None)
           "trace event %d has no ts" i);
      match ph with
      | Some "C" ->
          let args = mem "args" ev in
          check
            (mem "mhz" args |> Json.to_float_opt <> None
            || mem "occ" args |> Json.to_float_opt <> None)
            "counter event %d has no numeric mhz/occ value" i
      | Some "i" ->
          if mem "name" ev |> Json.to_string_opt = Some "reconfig" then
            let noop =
              mem "args" ev |> mem "noop" |> Json.to_bool_opt
            in
            check (noop <> None) "reconfig instant %d has no args.noop" i;
            if noop = Some false then incr non_noop_reconfigs
      | _ -> ())
    events;
  check
    (!non_noop_reconfigs = reconfigurations)
    "trace.json non-noop reconfig instants = %d, run reported %d"
    !non_noop_reconfigs reconfigurations

(* ---- series.csv ---------------------------------------------------- *)

let check_series_csv path ~samples =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> check false "series.csv is empty"
  | header :: rows ->
      let cols = List.length (String.split_on_char ',' header) in
      check (cols > 3) "series.csv header has only %d columns" cols;
      check
        (List.length rows = samples)
        "series.csv has %d rows, sink recorded %d samples"
        (List.length rows) samples;
      List.iteri
        (fun i row ->
          check
            (List.length (String.split_on_char ',' row) = cols)
            "series.csv row %d column count mismatch" (i + 1))
        rows

(* ---- edge inputs --------------------------------------------------- *)

(* The exporters must also hold up on degenerate sinks: a sink that saw
   nothing (the daemon exporting its trace after serving zero jobs) and
   a sink with exactly one sample. Both must still produce three files
   that parse back clean. *)
let check_edge_exports base =
  let rm_written dir written =
    List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) written;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let export dir sink =
    let written = Mcd_obs.Export.write_dir ~dir sink in
    check (List.length written = 3)
      "edge export: expected 3 files in %s, got %d" dir (List.length written);
    written
  in
  (* empty sink: no events, no samples *)
  let dir = Filename.concat base "edge-empty" in
  let sink = Sink.create ~domains:Mcd_domains.Domain.count () in
  let written = export dir sink in
  ignore
    (check_metrics_jsonl ~required:[] ~allow_empty:true
       (Filename.concat dir "metrics.jsonl"));
  check_chrome_trace ~allow_empty:true
    (Filename.concat dir "trace.json")
    ~reconfigurations:0;
  check_series_csv (Filename.concat dir "series.csv") ~samples:0;
  rm_written dir written;
  (* one-sample sink: the smallest non-trivial series *)
  let dir = Filename.concat base "edge-one" in
  let sink = Sink.create ~domains:Mcd_domains.Domain.count () in
  let n = Mcd_domains.Domain.count in
  Sink.sample sink ~t_ps:1_000 ~cycles:1 ~ipc:1.0
    ~mhz:(Array.make n 1000.0) ~volt:(Array.make n 1.2)
    ~occ:(Array.make n 0.0)
    ~pj:(Array.make (n + 1) 1.0);
  let written = export dir sink in
  ignore
    (check_metrics_jsonl ~required:[ "obs.samples" ]
       (Filename.concat dir "metrics.jsonl"));
  check_chrome_trace (Filename.concat dir "trace.json") ~reconfigurations:0;
  check_series_csv (Filename.concat dir "series.csv") ~samples:1;
  rm_written dir written

(* ---- driver -------------------------------------------------------- *)

let () =
  let w = Mcd_workloads.Mediabench.adpcm_decode in
  let sink =
    Sink.create ~stride_cycles:2048 ~domains:Mcd_domains.Domain.count ()
  in
  let run = Mcd_experiments.Runner.observed_run ~policy:`Profile ~sink w in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-trace-smoke.%d" (Unix.getpid ()))
  in
  check_edge_exports dir;
  let domain_names =
    Array.of_list (List.map Mcd_domains.Domain.name Mcd_domains.Domain.all)
  in
  let written = Mcd_obs.Export.write_dir ~domain_names ~dir sink in
  check (List.length written = 3) "expected 3 exported files, got %d"
    (List.length written);
  let reconfigurations = run.Mcd_power.Metrics.reconfigurations in
  check (reconfigurations > 0)
    "profiled adpcm run performed no reconfigurations";
  let samples =
    Metrics.value (Metrics.counter (Sink.metrics sink) "obs.samples")
  in
  let _names = check_metrics_jsonl (Filename.concat dir "metrics.jsonl") in
  check_chrome_trace (Filename.concat dir "trace.json") ~reconfigurations;
  check_series_csv (Filename.concat dir "series.csv") ~samples;
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) written;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures = 0 then print_endline "trace_smoke: OK"
  else begin
    Printf.eprintf "trace_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
