(** Dependence DAG over primitive events (input to the shaker).

    Built from one recorded segment of a long-running node. Vertices are
    primitive events; edges are the dependences observed by the
    simulator:

    - the intra-instruction pipeline chain
      (fetch -> dispatch -> execute/mem -> retire);
    - data dependences (producer execute/mem -> consumer execute/mem);
    - control dependences (mispredicted branch -> first fetch after the
      recovery);
    - fetch serialization (fetch i -> fetch i+1), in-order retirement
      (retire i -> retire i+1), and reorder-buffer occupancy pressure
      (retire i -> fetch i + rob_size).

    Without the structural edges the shaker would see phantom slack —
    fetch gaps caused by back-pressure look like idle time that could
    absorb frequency reduction, when in fact they shift one-for-one with
    the events that caused them.

    Event times come from the full-speed profiling run, so edge slack —
    the gap between a producer's end and a consumer's start — reflects
    real scheduling slack in the machine. *)

type event = {
  id : int;
  seq : int;  (** owning dynamic instruction *)
  domain : Mcd_domains.Domain.t;
  start : float;  (** ps, from the profiling run *)
  duration : float;  (** ps, at full frequency *)
}

type t = {
  events : event array;  (** indexed by [id], in (seq, stage) order *)
  succs : int array array;
  preds : int array array;
  t_min : float;  (** earliest event start (segment source bound) *)
  t_max : float;  (** latest event end (segment sink bound) *)
}

val build : ?rob_size:int -> Mcd_cpu.Probe.event array -> t
(** The input must be sorted by (seq, stage) as produced by
    {!Mcd_trace.Collector.segments}. Dependences on instructions outside
    the segment are dropped. [rob_size] defaults to the Table-1 value
    (80). *)

val size : t -> int
val edge_count : t -> int

val slack : t -> int -> float
(** Outgoing slack of an event: minimum over successors of
    [succ.start - (ev.start + ev.duration)], or distance to [t_max] for
    sinks. Non-negative by construction of the schedule (clamped at 0
    against rounding). *)

val validate : t -> unit
(** Check DAG invariants (edges point forward in time up to a small
    tolerance, ids consistent). Raises [Invalid_argument] on violation;
    used by tests. *)

val longest_path_signature : t -> slow:(Mcd_domains.Domain.t -> float) -> float array
(** Composition of the longest path when every event in domain [d] is
    stretched by [slow d] (>= 1): entry [Mcd_domains.Domain.index d] is
    the total {e unstretched} duration of path events in domain [d].
    Used to build the compact path model that validates a candidate
    setting's slowdown (the paper's "delay calculation"). *)

val path_signatures : t -> Path_model.segment
(** Signatures of the binding paths under a standard probe set (full
    speed, each domain slowed alone, all slowed), packaged with the
    full-speed critical-path length. *)
