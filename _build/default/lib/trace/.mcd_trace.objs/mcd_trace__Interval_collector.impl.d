lib/trace/interval_collector.ml: Array List Mcd_cpu Mcd_util
