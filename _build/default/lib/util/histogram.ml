type t = { weights : float array }

let create ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { weights = Array.make bins 0.0 }

let bins t = Array.length t.weights

let add t ~bin ~weight =
  if bin < 0 || bin >= Array.length t.weights then
    invalid_arg "Histogram.add: bin out of range";
  if weight < 0.0 then invalid_arg "Histogram.add: negative weight";
  t.weights.(bin) <- t.weights.(bin) +. weight

let get t ~bin = t.weights.(bin)

let total t = Array.fold_left ( +. ) 0.0 t.weights

let merge_into ~dst ~src =
  if Array.length dst.weights <> Array.length src.weights then
    invalid_arg "Histogram.merge_into: bin count mismatch";
  Array.iteri (fun i w -> dst.weights.(i) <- dst.weights.(i) +. w) src.weights

let copy t = { weights = Array.copy t.weights }

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i w -> acc := f !acc ~bin:i ~weight:w) t.weights;
  !acc

let suffix_sum t ~from =
  let n = Array.length t.weights in
  let from = max 0 from in
  let acc = ref 0.0 in
  for i = from to n - 1 do
    acc := !acc +. t.weights.(i)
  done;
  !acc

let pp fmt t =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i w ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.1f" w)
    t.weights;
  Format.fprintf fmt "]"
