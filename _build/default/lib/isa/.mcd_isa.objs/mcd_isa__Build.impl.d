lib/isa/build.ml: List Program
