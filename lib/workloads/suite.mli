(** The full 19-benchmark suite (Table 2 order). *)

val all : Workload.t list

val find_opt : string -> Workload.t option
(** Lookup by Table-2 name; [None] if unknown. *)

val by_name : string -> Workload.t
(** Raises [Invalid_argument] with the list of valid names if the
    benchmark is unknown — library call sites get a self-describing
    error instead of a bare [Not_found] backtrace. Use {!find_opt} for
    a non-raising lookup. *)

val names : string list

val media : Workload.t list
val spec_int : Workload.t list
val spec_fp : Workload.t list
