(* Looking inside the off-line analysis.

   Prints, for one benchmark: the training call tree with long-running
   nodes marked, each long node's shaker histograms (work by frequency
   step, per domain), the slowdown-thresholded setting, and the
   path-model slowdown estimate for that setting.

     dune exec examples/inspect_analysis.exe *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Call_tree = Mcd_profiling.Call_tree
module Analyze = Mcd_core.Analyze
module Plan = Mcd_core.Plan
module Path_model = Mcd_core.Path_model
module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

let () =
  let w = Suite.by_name "gsm encode" in
  Format.printf "=== %s: training call tree (L+F tree context)@.@."
    w.Workload.name;
  let plan, stats =
    Analyze.analyze ~program:w.Workload.program ~train:w.Workload.train
      ~context:Context.lf ~trace_insts:w.Workload.train_window ()
  in
  Format.printf "%a@." Call_tree.pp plan.Plan.tree;
  Format.printf
    "profiled %d instructions; %d long nodes; shook %d segments (%d events)@.@."
    stats.Analyze.profiled_insts stats.Analyze.long_nodes
    stats.Analyze.segments_shaken stats.Analyze.events_shaken;
  List.iter
    (fun (n : Call_tree.node) ->
      Format.printf "--- node %d (%d instances, %d instructions)@."
        n.Call_tree.id n.Call_tree.instances n.Call_tree.total_insts;
      (match Hashtbl.find_opt plan.Plan.node_histograms n.Call_tree.id with
      | None -> Format.printf "  (no recorded segments)@."
      | Some hists ->
          List.iter
            (fun d ->
              let h = hists.(Domain.index d) in
              if Histogram.total h > 0.0 then begin
                Format.printf "  %-10s " (Domain.name d);
                Array.iteri
                  (fun i f ->
                    let weight = Histogram.get h ~bin:i in
                    if weight > 0.0 then
                      Format.printf "%d:%0.0fc " f weight)
                  Freq.steps;
                Format.printf "@."
              end)
            Domain.all);
      (match Plan.setting_for_node plan n.Call_tree.id with
      | Some s ->
          Format.printf "  chosen setting: %a@." Reconfig.pp s;
          (match Hashtbl.find_opt plan.Plan.node_paths n.Call_tree.id with
          | Some pm ->
              Format.printf "  path-model slowdown estimate: %.1f%%@."
                (Path_model.estimated_slowdown_pct pm s)
          | None -> ())
      | None -> ());
      Format.printf "@.")
    (Call_tree.long_nodes plan.Plan.tree)
