lib/isa/walker.mli: Format Inst Program
