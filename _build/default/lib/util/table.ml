type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header ~rows () =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    let given = Option.value align ~default:[] in
    List.init ncols (fun i ->
        match List.nth_opt given i with
        | Some a -> a
        | None -> if i = 0 then Left else Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    String.concat "  " padded
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let fmt_f1 x = Printf.sprintf "%.1f" x
let fmt_f2 x = Printf.sprintf "%.2f" x
let fmt_pct x = Printf.sprintf "%.1f%%" x
