lib/core/analyze.ml: Array Dag List Mcd_cpu Mcd_domains Mcd_power Mcd_profiling Mcd_trace Mcd_util Path_model Plan Shaker
