type t =
  | Io_error of { path : string; message : string }
  | Empty_file of { path : string }
  | Bad_header of { path : string; found : string }
  | Malformed_line of {
      path : string;
      line : int;
      content : string;
      reason : string;
    }
  | Missing_fingerprint of { path : string }
  | Missing_header_field of { path : string; field : string; default : string }
  | Truncated_file of { path : string }
  | Fingerprint_mismatch of { path : string; expected : string; found : string }
  | Tree_shape_drift of { path : string; node : int; detail : string }
  | Illegal_frequency of { where : string; requested_mhz : int; snapped_mhz : int }
  | Bad_setting_arity of { where : string; expected : int; found : int }
  | Bad_histogram_weight of { node : int; domain : int; bin : int; weight : float }
  | Bad_histogram_shape of { node : int; expected_bins : int; found_bins : int }
  | Bad_slowdown of { value : float }
  | Runtime_fault of { where : string; detail : string }
  | Cache_corrupt of { path : string; reason : string }
  | Overloaded of { queue_depth : int; limit : int; retry_after_ms : int }
  | Draining of { detail : string }
  | Protocol_violation of { line : string; reason : string }
  | Server_unavailable of { socket : string; message : string }
  | Unknown_job of { id : int }
  | Deadline_exceeded of { id : int; deadline_ms : int }
  | Journal_corrupt of { path : string; reason : string }

let class_ = function
  | Io_error _ | Cache_corrupt _ | Server_unavailable _ | Journal_corrupt _ ->
      `Io
  | Overloaded _ | Draining _ -> `Overload
  | Empty_file _ | Bad_header _ | Malformed_line _ | Missing_fingerprint _
  | Missing_header_field _
  | Truncated_file _ | Fingerprint_mismatch _ | Tree_shape_drift _
  | Illegal_frequency _
  | Bad_setting_arity _ | Bad_histogram_weight _ | Bad_histogram_shape _
  | Bad_slowdown _ | Runtime_fault _ | Protocol_violation _ | Unknown_job _
  | Deadline_exceeded _ ->
      `Validation

let exit_code t =
  match class_ t with `Validation -> 2 | `Io -> 3 | `Overload -> 4

let exit_code_of_list = function
  | [] -> 0
  | errors ->
      if List.exists (fun e -> class_ e = `Io) errors then 3
      else if List.exists (fun e -> class_ e = `Overload) errors then 4
      else 2

let to_string = function
  | Io_error { path; message } -> Printf.sprintf "%s: I/O error: %s" path message
  | Empty_file { path } -> Printf.sprintf "%s: empty plan file" path
  | Bad_header { path; found } ->
      Printf.sprintf "%s: not a plan file (first line %S)" path found
  | Malformed_line { path; line; content; reason } ->
      Printf.sprintf "%s:%d: malformed line %S (%s)" path line content reason
  | Missing_fingerprint { path } ->
      Printf.sprintf "%s: missing tree fingerprint" path
  | Missing_header_field { path; field; default } ->
      Printf.sprintf "%s: missing %S header line (defaulting to %s)" path field
        default
  | Truncated_file { path } ->
      Printf.sprintf "%s: missing end-of-plan marker (file truncated?)" path
  | Fingerprint_mismatch { path; expected; found } ->
      Printf.sprintf
        "%s: tree fingerprint mismatch (plan %s, program %s): the program or \
         training input changed since the plan was saved"
        path found expected
  | Tree_shape_drift { path; node; detail } ->
      Printf.sprintf "%s: node %d is not in the rebuilt call tree (%s)" path
        node detail
  | Illegal_frequency { where; requested_mhz; snapped_mhz } ->
      Printf.sprintf "%s: %d MHz is not a legal frequency step (snapped to %d)"
        where requested_mhz snapped_mhz
  | Bad_setting_arity { where; expected; found } ->
      Printf.sprintf "%s: setting has %d domains, expected %d" where found
        expected
  | Bad_histogram_weight { node; domain; bin; weight } ->
      Printf.sprintf "node %d: bad histogram weight %h (domain %d, bin %d)"
        node weight domain bin
  | Bad_histogram_shape { node; expected_bins; found_bins } ->
      Printf.sprintf "node %d: histogram has %d bins, expected %d" node
        found_bins expected_bins
  | Bad_slowdown { value } ->
      Printf.sprintf "bad slowdown tolerance %h" value
  | Runtime_fault { where; detail } ->
      Printf.sprintf "%s: runtime fault: %s" where detail
  | Cache_corrupt { path; reason } ->
      Printf.sprintf "%s: corrupt cache object (%s); recomputing" path reason
  | Overloaded { queue_depth; limit; retry_after_ms } ->
      Printf.sprintf
        "server overloaded: queue depth %d at limit %d; retry in %d ms"
        queue_depth limit retry_after_ms
  | Draining { detail } ->
      Printf.sprintf "server draining, not admitting new work (%s)" detail
  | Protocol_violation { line; reason } ->
      Printf.sprintf "protocol violation in %S: %s" line reason
  | Server_unavailable { socket; message } ->
      Printf.sprintf "%s: server unavailable: %s" socket message
  | Unknown_job { id } ->
      Printf.sprintf
        "job %d: unknown to this server (completed before a restart, or never \
         acknowledged); resubmit to fetch it"
        id
  | Deadline_exceeded { id; deadline_ms } ->
      Printf.sprintf "job %d: deadline exceeded (%d ms); compute abandoned" id
        deadline_ms
  | Journal_corrupt { path; reason } ->
      Printf.sprintf "%s: corrupt journal record (%s); later records dropped"
        path reason

let pp fmt t = Format.pp_print_string fmt (to_string t)

let pp_list fmt errors =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp e) errors
