module Histogram = Mcd_util.Histogram
module Freq = Mcd_domains.Freq
module Domain = Mcd_domains.Domain

let fmax = float_of_int Freq.fmax_mhz

(* Ideal time of the histogram: every event at its own scaled frequency.
   Weights are full-speed cycles; time units are full-speed cycle
   times. *)
let ideal_time hist =
  Histogram.fold hist ~init:0.0 ~f:(fun acc ~bin ~weight ->
      acc +. (weight *. (fmax /. float_of_int (Freq.of_index bin))))

let extra_time hist ~freq_mhz =
  let f = float_of_int freq_mhz in
  Histogram.fold hist ~init:0.0 ~f:(fun acc ~bin ~weight ->
      let fb = float_of_int (Freq.of_index bin) in
      if fb > f then acc +. (weight *. ((fmax /. f) -. (fmax /. fb)))
      else acc)

let expected_slowdown hist ~freq_mhz =
  let ideal = ideal_time hist in
  if ideal <= 0.0 then 0.0 else 100.0 *. extra_time hist ~freq_mhz /. ideal

let choose hist ~slowdown_pct =
  if slowdown_pct < 0.0 then invalid_arg "Threshold.choose: negative slowdown";
  let ideal = ideal_time hist in
  (* a domain with no work in this node runs at the floor: it costs no
     time and its clock tree stops wasting energy *)
  if ideal <= 0.0 then Freq.fmin_mhz
  else begin
    let budget = slowdown_pct /. 100.0 *. ideal in
    (* scan steps from the lowest up; the first one within budget is the
       minimum feasible frequency *)
    let rec go idx =
      if idx >= Freq.num_steps - 1 then Freq.fmax_mhz
      else
        let f = Freq.of_index idx in
        if extra_time hist ~freq_mhz:f <= budget then f else go (idx + 1)
    in
    go 0
  end

let setting_of_histograms hists ~slowdown_pct =
  assert (Array.length hists = Domain.count);
  Array.map (fun h -> choose h ~slowdown_pct) hists
