(* Phase-sampled simulation: differential accuracy vs exact, sampled
   determinism, a pinned golden, and the warm-path regression batch
   (lazy plan decode, geomean guard, slowdown memo keys). *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Pipeline = Mcd_cpu.Pipeline
module Sampler = Mcd_cpu.Sampler
module Config = Mcd_cpu.Config
module Metrics = Mcd_power.Metrics
module Runner = Mcd_experiments.Runner
module Context = Mcd_profiling.Context

let qcheck ?(seed = 0x5a39) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Store = Mcd_cache.Store
module Stats = Mcd_util.Stats
module Controller = Mcd_cpu.Controller
module Reconfig = Mcd_domains.Reconfig
module Walker = Mcd_isa.Walker

let test_input = { P.input_name = "s"; scale = 1; divergence = 0.0; seed = 11 }

(* A phase-structured program: a kernel of ~2.4k instructions invoked
   many times from a driver loop — exactly the shape the sampler is
   built to exploit. *)
let phased_program ?(calls = 40) ?(fp = 0.0) () =
  B.program ~name:"phased" @@ fun b ->
  B.func b "kernel"
    [
      B.loop b (P.Const 10)
        [ B.straight b ~length:240 ~frac_load:0.2 ~frac_fp_alu:fp () ];
    ];
  B.func b "main" [ B.loop b (P.Const calls) [ B.call b "kernel" ] ];
  "main"

let run_phased ?sampling ?sampler_report ?(max_insts = 80_000) ?(fp = 0.0) () =
  Pipeline.run ?sampling ?sampler_report ~config:Config.alpha21264_like
    ~program:(phased_program ~fp ())
    ~input:test_input ~max_insts ()

let rel a b =
  Float.abs (a -. b) /. Float.max 1e-9 (Float.max (Float.abs a) (Float.abs b))

let test_sampler_skips_phases () =
  let report = ref None in
  let exact = run_phased () in
  let sampled =
    run_phased ~sampling:Sampler.default_params ~sampler_report:report ()
  in
  let r =
    match !report with
    | Some r -> r
    | None -> Alcotest.fail "no sampler report"
  in
  Alcotest.(check bool) "skipped instances" true (r.Sampler.skipped_instances > 0);
  Alcotest.(check bool)
    "most instructions extrapolated" true
    (r.Sampler.skipped_insts > 40_000);
  Alcotest.(check int) "window still filled" exact.Metrics.instructions
    sampled.Metrics.instructions;
  Alcotest.(check bool) "runtime close" true
    (rel (float_of_int exact.Metrics.runtime_ps)
       (float_of_int sampled.Metrics.runtime_ps)
    < 0.10);
  Alcotest.(check bool) "energy close" true
    (rel exact.Metrics.energy_pj sampled.Metrics.energy_pj < 0.10)

(* The sampler is deterministic: a sampled run is a pure function of
   (program, input, params), byte-identical across repeats. *)
let test_sampled_deterministic () =
  let a = run_phased ~sampling:Sampler.default_params () in
  let b = run_phased ~sampling:Sampler.default_params () in
  Alcotest.(check string) "sampled runs byte-identical" (Metrics.encode a)
    (Metrics.encode b)

(* Real-workload differential: sampling must stay within a few percent
   of the exact run on actual suite members, with no unstable
   signatures and a substantial extrapolated fraction. (adpcm and gsm
   are the two cheapest exact runs; the full five-benchmark sweep runs
   in the bench's --sample drift columns.) *)
let test_workload_drift_bounded () =
  List.iter
    (fun name ->
      let w = Suite.by_name name in
      let report = ref None in
      let run sampling =
        Pipeline.run ?sampling ~sampler_report:report
          ~config:Config.alpha21264_like ~warmup_insts:w.Workload.ref_offset
          ~program:w.Workload.program ~input:w.Workload.reference
          ~max_insts:w.Workload.ref_window ()
      in
      let exact = run None in
      let sampled = run (Some Sampler.default_params) in
      let r =
        match !report with
        | Some r -> r
        | None -> Alcotest.fail "no sampler report"
      in
      Printf.printf
        "%-14s rec=%d skip=%d insts=%d/%d unstable=%d drift_rt=%+.2f%% \
         drift_e=%+.2f%%\n%!"
        name r.Sampler.recorded_instances r.Sampler.skipped_instances
        r.Sampler.skipped_insts w.Workload.ref_window
        r.Sampler.unstable_signatures
        (100.
        *. float_of_int (sampled.Metrics.runtime_ps - exact.Metrics.runtime_ps)
        /. float_of_int exact.Metrics.runtime_ps)
        (100.
        *. (sampled.Metrics.energy_pj -. exact.Metrics.energy_pj)
        /. exact.Metrics.energy_pj);
      Alcotest.(check bool) (name ^ ": no unstable signatures") true
        (r.Sampler.unstable_signatures = 0);
      Alcotest.(check bool) (name ^ ": extrapolates a third of the window")
        true
        (3 * r.Sampler.skipped_insts > w.Workload.ref_window);
      Alcotest.(check bool) (name ^ ": runtime drift < 5%") true
        (rel
           (float_of_int exact.Metrics.runtime_ps)
           (float_of_int sampled.Metrics.runtime_ps)
        < 0.05);
      Alcotest.(check bool) (name ^ ": energy drift < 5%") true
        (rel exact.Metrics.energy_pj sampled.Metrics.energy_pj < 0.05))
    [ "adpcm decode"; "gsm encode" ]

(* Pinned golden: the sampled metrics of one real workload, exact to
   the picosecond. A failure here means the sampling layer's output
   changed — re-pin only for a deliberate algorithm change, never to
   absorb an accidental one. *)
let test_golden_sampled_metrics () =
  let w = Suite.by_name "adpcm decode" in
  let m =
    Pipeline.run ~sampling:Sampler.default_params
      ~config:Config.alpha21264_like ~warmup_insts:w.Workload.ref_offset
      ~program:w.Workload.program ~input:w.Workload.reference
      ~max_insts:w.Workload.ref_window ()
  in
  Alcotest.(check int) "instructions" 120_000 m.Metrics.instructions;
  Alcotest.(check int) "runtime_ps" 152_064_162 m.Metrics.runtime_ps;
  Alcotest.(check string) "energy_pj" "638814.132"
    (Printf.sprintf "%.3f" m.Metrics.energy_pj)

(* qcheck differential: across random two-kernel programs driven by a
   feed-forward DVFS policy, the headline metrics a figure would print
   (degradation / savings / ED improvement vs baseline) move by less
   than five percentage points when production runs are sampled.

   The policy reacts to marker identity alone — per-frequency settings
   keyed by the entered function, full speed restored at its exit —
   the same stateless shape as the profile-driven editor. That is the
   class of policy sampling preserves: a skipped instance's own
   enter/exit markers are still processed, so identity-keyed reactions
   happen in both modes, while a stateful controller (the on-line
   attack/decay loop, or anything counting markers) would observe only
   the non-swallowed subsequence and diverge — which is why
   {!Runner.online_run} pins the on-line policy to exact simulation.
   The frequency deltas are the modest phase-boundary kind real plans
   emit (~200 MHz): a policy that swings domains by half their range
   every couple of microseconds against the ~55 us voltage slew keeps
   the machine in a limit cycle that converges over a large fraction
   of the run, which position-matched sampling tracks only coarsely
   (several pp of drift at the extreme). *)
let prop_sampled_policy_drift =
  let feed_forward () =
    let slow_int =
      Reconfig.make ~front_end:1000 ~integer:800 ~floating:900 ~memory:1000
    and slow_fp =
      Reconfig.make ~front_end:1000 ~integer:900 ~floating:800 ~memory:950
    in
    {
      Controller.name = "test-feed-forward";
      on_marker =
        (fun m ~now:_ ->
          match m with
          | Walker.Enter_func { fid; _ } ->
              {
                Controller.no_reaction with
                set = Some (if fid land 1 = 0 then slow_int else slow_fp);
              }
          | Walker.Exit_func _ ->
              {
                Controller.no_reaction with
                set = Some (Reconfig.full_speed ());
              }
          | Walker.Enter_loop _ | Walker.Exit_loop _ ->
              Controller.no_reaction);
      on_sample = (fun _ ~now:_ -> None);
      sample_interval_cycles = 0;
    }
  in
  QCheck.Test.make ~name:"sampled policy metrics drift bounded" ~count:6
    QCheck.(
      pair
        (triple (int_range 15 40) (int_range 150 300) (int_range 1 1000))
        (float_range 0.0 0.3))
    (fun ((calls, length, seed), fl) ->
      let prog =
        B.program ~name:"q" @@ fun b ->
        B.func b "ikernel"
          [
            B.loop b (P.Const 10) [ B.straight b ~length ~frac_load:fl () ];
          ];
        B.func b "fkernel"
          [
            B.loop b (P.Const 8)
              [ B.straight b ~length ~frac_load:fl ~frac_fp_alu:0.3 () ];
          ];
        B.func b "main"
          [
            B.loop b (P.Const calls)
              [ B.call b "ikernel"; B.call b "fkernel" ];
          ];
        "main"
      in
      let input = { P.input_name = "q"; scale = 1; divergence = 0.0; seed } in
      let run ?sampling ~policy () =
        let controller = if policy then Some (feed_forward ()) else None in
        Pipeline.run ?sampling ?controller ~config:Config.alpha21264_like
          ~program:prog ~input ~max_insts:60_000 ()
      in
      let cmp baseline policy = Runner.compare_runs ~baseline policy in
      let e = cmp (run ~policy:false ()) (run ~policy:true ()) in
      let s =
        cmp
          (run ~sampling:Sampler.default_params ~policy:false ())
          (run ~sampling:Sampler.default_params ~policy:true ())
      in
      let close a b = Float.abs (a -. b) < 5.0 in
      close e.Runner.degradation_pct s.Runner.degradation_pct
      && close e.Runner.savings_pct s.Runner.savings_pct
      && close e.Runner.ed_improvement_pct s.Runner.ed_improvement_pct)

(* --- warm-path bugfix regressions ----------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let with_temp_store f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-sampling-test.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.create ~dir))

(* A warm profile_run disk hit must not pay a profiler walk: the cached
   payload's plan is decoded lazily, and only forcing it rebuilds the
   training tree. *)
let test_warm_profile_run_lazy_plan () =
  with_temp_store @@ fun store ->
  Fun.protect
    ~finally:(fun () -> Store.set_default None)
    (fun () ->
      Store.set_default (Some store);
      let w = Suite.by_name "adpcm decode" in
      Runner.clear_caches ();
      let cold = Runner.profile_run w ~context:Context.lf ~train:`Train in
      Runner.clear_caches ();
      let walks0 = Runner.profiler_walks () in
      let warm = Runner.profile_run w ~context:Context.lf ~train:`Train in
      Alcotest.(check string) "warm run byte-identical"
        (Metrics.encode cold.Runner.run)
        (Metrics.encode warm.Runner.run);
      Alcotest.(check int) "disk hit performs no profiler walk" walks0
        (Runner.profiler_walks ());
      ignore (Lazy.force warm.Runner.plan : Mcd_core.Plan.t);
      Alcotest.(check bool) "forcing the plan walks the profiler" true
        (Runner.profiler_walks () > walks0))

(* Geomean of a nonpositive sample is a caller bug, reported as
   Invalid_argument — not an assert that vanishes in release builds. *)
let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive element"
    (Invalid_argument "Stats.geomean: nonpositive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0; 4.0 ] : float));
  Alcotest.check_raises "negative element"
    (Invalid_argument "Stats.geomean: nonpositive element") (fun () ->
      ignore (Stats.geomean [ -2.0 ] : float))

(* Non-default slowdown points memoize: two identical calls inside one
   sweep share one simulation (physical equality of the memoized
   record), instead of re-simulating because the memo key dropped the
   slowdown parameter. *)
let test_nondefault_slowdown_memoizes () =
  let w = Suite.by_name "adpcm decode" in
  let r1 = Runner.profile_run ~slowdown_pct:5.5 w ~context:Context.lf ~train:`Train in
  let r2 = Runner.profile_run ~slowdown_pct:5.5 w ~context:Context.lf ~train:`Train in
  Alcotest.(check bool) "second call served from the memo" true (r1 == r2);
  let d = Runner.profile_run w ~context:Context.lf ~train:`Train in
  Alcotest.(check bool) "distinct from the default-slowdown run" true
    (not (d == r1))

let suite =
  [
    ("sampler skips phases", `Quick, test_sampler_skips_phases);
    ("sampled runs deterministic", `Quick, test_sampled_deterministic);
    ("workload drift bounded", `Slow, test_workload_drift_bounded);
    ("golden sampled metrics pinned", `Quick, test_golden_sampled_metrics);
    qcheck prop_sampled_policy_drift;
    ("warm profile_run decodes plan lazily", `Slow,
     test_warm_profile_run_lazy_plan);
    ("geomean rejects nonpositive", `Quick, test_geomean_rejects_nonpositive);
    ("non-default slowdown memoizes", `Slow,
     test_nondefault_slowdown_memoizes);
  ]
